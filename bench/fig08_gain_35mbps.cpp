// Reproduces Fig. 8: PDoS attack gains with R_attack = 35 Mbps.
#include "fig_gain_sweep.hpp"

int main(int argc, char** argv) {
  return pdos::bench::run_gain_figure("Fig. 8", pdos::mbps(35), argc, argv);
}
