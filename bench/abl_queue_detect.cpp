// Ablations beyond the paper's figures:
//   (1) §5's forward-looking claim: a PDoS attacker achieves a higher gain
//       against a RED bottleneck than against a drop-tail bottleneck.
//   (2) The risk term quantified: detection outcomes for flooding vs
//       optimized PDoS vs shrew trains under a windowed rate detector
//       (flooding-era defenses) and the DTW pulse detector of [8], at two
//       sampling periods to expose its T_extent blind spot.
#include <cstdio>

#include "common.hpp"
#include "detect/dtw_detector.hpp"
#include "detect/rate_detector.hpp"
#include "stats/timeseries.hpp"

using namespace pdos;

namespace {

void queue_ablation(const bench::Mode& mode) {
  std::printf("## (1) RED vs drop-tail bottleneck, 15 flows, "
              "T_extent=75ms R_attack=30Mbps, kappa=1\n");
  std::printf("%8s %14s %14s\n", "gamma", "gain_red", "gain_droptail");
  ScenarioConfig red = ScenarioConfig::ns2_dumbbell(15);
  ScenarioConfig droptail = red;
  droptail.queue = QueueKind::kDropTail;
  const BitRate red_base = measure_baseline(red, mode.control);
  const BitRate dt_base = measure_baseline(droptail, mode.control);
  double red_total = 0.0;
  double dt_total = 0.0;
  for (double gamma : {0.25, 0.4, 0.55, 0.7, 0.85}) {
    const PulseTrain train =
        PulseTrain::from_gamma(ms(75), mbps(30), gamma, red.bottleneck);
    const double g_red =
        measure_gain(red, train, 1.0, mode.control, red_base).gain;
    const double g_dt =
        measure_gain(droptail, train, 1.0, mode.control, dt_base).gain;
    std::printf("%8.2f %14.4f %14.4f\n", gamma, g_red, g_dt);
    red_total += g_red;
    dt_total += g_dt;
  }
  std::printf("# mean gain: RED %.4f vs drop-tail %.4f -> RED is the %s "
              "target\n\n",
              red_total / 5, dt_total / 5,
              red_total >= dt_total ? "softer" : "harder");
}

void detection_ablation(const bench::Mode& mode) {
  std::printf("## (2) detection outcomes (attack traffic at the ingress)\n");
  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(10);
  RunControl control = mode.control;
  control.warmup = 0.0;
  control.bin_width = ms(100);

  struct TrainSpec {
    const char* name;
    PulseTrain train;
  };
  const TrainSpec specs[] = {
      {"flooding 25M", PulseTrain::flooding(mbps(25))},
      {"pdos g=0.5 Te=50ms",
       PulseTrain::from_gamma(ms(50), mbps(25), 0.5, mbps(15))},
      {"pdos g=0.25 Te=50ms",
       PulseTrain::from_gamma(ms(50), mbps(25), 0.25, mbps(15))},
      {"shrew T=1s Te=100ms",
       PulseTrain{ms(100), mbps(30), ms(900), /*n=*/1 << 30, 1040}},
  };

  std::printf("%-22s %10s %12s %14s %14s\n", "attack", "gamma",
              "rate_alarm", "dtw_100ms", "dtw_500ms");
  for (const auto& spec : specs) {
    const RunResult result = run_scenario(scenario, spec.train, control);

    RateDetectorConfig rate_config;
    rate_config.window = sec(1.0);
    rate_config.threshold_fraction = 0.9;
    rate_config.capacity = scenario.bottleneck;
    RateAnomalyDetector rate_detector(rate_config);
    for (std::size_t i = 0; i < result.attack_bins.size(); ++i) {
      rate_detector.observe(static_cast<double>(i) * control.bin_width,
                            static_cast<Bytes>(result.attack_bins[i]));
    }
    rate_detector.finish(control.horizon());

    // The DTW detector watches the router's aggregate traffic, as deployed
    // in [8]; legitimate TCP provides the background it must see through.
    DtwDetectorConfig fine;
    fine.sampling_period = ms(100);
    const auto fine_result =
        DtwPulseDetector(fine).analyze(result.incoming_bins);

    DtwDetectorConfig coarse;
    coarse.sampling_period = ms(500);
    BinnedSeries coarse_bins(ms(500));
    for (std::size_t i = 0; i < result.incoming_bins.size(); ++i) {
      coarse_bins.add(static_cast<double>(i) * control.bin_width,
                      result.incoming_bins[i]);
    }
    const auto coarse_result = DtwPulseDetector(coarse).analyze(
        coarse_bins.bins_until(control.horizon()));

    char fine_s[32];
    char coarse_s[32];
    std::snprintf(fine_s, sizeof(fine_s), "%s(%.2f)",
                  fine_result.detected ? "CAUGHT" : "evaded",
                  fine_result.score);
    std::snprintf(coarse_s, sizeof(coarse_s), "%s(%.2f)",
                  coarse_result.detected ? "CAUGHT" : "evaded",
                  coarse_result.score);
    std::printf("%-22s %10.2f %12s %14s %14s\n", spec.name,
                spec.train.gamma(scenario.bottleneck),
                rate_detector.triggered() ? "CAUGHT" : "evaded", fine_s,
                coarse_s);
  }
  std::printf(
      "# expected: flooding trips the rate detector but carries no pulse\n"
      "# shape for DTW; the slow shrew train (T_AIMD = 1 s) is exactly what\n"
      "# DTW at Ts=100ms catches; the optimized PDoS train (short period,\n"
      "# T_extent ~ Ts) evades both — the paper's motivation for tuning\n"
      "# gamma, and [8]'s blind spot once Ts exceeds the pulse width.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Ablations: queue discipline and detection (%s mode)\n\n",
              mode.name());
  queue_ablation(mode);
  detection_ablation(mode);
  return 0;
}
