// Reproduces Fig. 12: test-bed attack gains. 10 victim flows through a
// 10 Mbps / 150 ms Dummynet-style bottleneck with the paper's RED
// parameters; T_extent = 150 ms; R_attack in {15, 20, 30} Mbps.
//
// Expected shape (§4.2): all three curves follow the analysis;
// R_attack = 20 Mbps is the normal-gain case, 30 Mbps is under-estimated
// by the analysis (over-gain), 15 Mbps is over-estimated (under-gain).
#include <cstdio>

#include "common.hpp"

using namespace pdos;

int main(int argc, char** argv) {
  bench::Mode mode = bench::Mode::from_args(argc, argv);
  // The 10-flow test-bed is cheap to simulate; use a longer window even in
  // quick mode so the under/normal/over-gain regimes classify stably.
  if (!mode.full) mode.control.measure = sec(25);
  std::printf("# Fig. 12: test-bed experiment (%s mode)\n", mode.name());

  const ScenarioConfig scenario = ScenarioConfig::testbed(10);
  const BitRate baseline = measure_baseline(scenario, mode.control);
  std::printf("# 10 flows, RED(min=%.0f, max=%.0f, wq=0.002, maxp=0.1, "
              "gentle), B=%zu pkts, baseline %.2f Mbps\n",
              0.2 * static_cast<double>(scenario.buffer_packets),
              0.8 * static_cast<double>(scenario.buffer_packets),
              scenario.buffer_packets, to_mbps(baseline));

  const Time textent = ms(150);
  std::vector<double> errors;
  for (BitRate rattack : {mbps(15), mbps(20), mbps(30)}) {
    const double cpsi = c_psi(scenario.victim_profile(), textent,
                              rattack / scenario.bottleneck);
    const double hi = std::min(0.95, rattack / scenario.bottleneck - 0.01);
    const auto gammas =
        bench::gamma_grid(std::max(0.08, cpsi + 0.02), hi,
                          mode.gamma_points);
    const auto rows = bench::gain_curve(scenario, textent, rattack, 1.0,
                                        gammas, mode.control, baseline);
    char label[128];
    std::snprintf(label, sizeof(label),
                  "R_attack = %.0f Mbps (C_psi = %.3f)", to_mbps(rattack),
                  cpsi);
    bench::print_gain_header(label);
    bench::print_gain_rows(rows);
    double err = 0.0;
    for (const auto& row : rows) err += row.measured_gain - row.analytic_gain;
    err /= rows.empty() ? 1.0 : static_cast<double>(rows.size());
    errors.push_back(err);
    std::printf("# regime: %s (mean sim-analytic gain error %+.3f)\n\n",
                bench::classify_regime(rows), err);
  }
  std::printf("# section 4.2 ordering check — the analysis over-estimates "
              "at low R_attack\n# and under-estimates at high R_attack, so "
              "err(15M) <= err(20M) <= err(30M): %s\n",
              (errors[0] <= errors[1] + 0.02 && errors[1] <= errors[2] + 0.02)
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
