// Ablation: TCP loss-recovery variants as victims.
//
// §2.1 argues the model covers the whole AIMD(a, b) family — "TCP Tahoe,
// TCP Reno, and TCP New Reno all use AIMD(1, 0.5)". This bench checks that
// the measured attack gain is variant-robust: the same pulse train inflicts
// comparable degradation whether the victims run Tahoe, Reno or NewReno,
// with Tahoe (slow-start restart after every loss) hit hardest.
#include <cstdio>

#include "common.hpp"

using namespace pdos;

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Victim TCP-variant ablation (%s mode), 15 flows, "
              "T_extent=50ms R_attack=25Mbps\n",
              mode.name());
  std::printf("%-10s %14s %9s %9s %9s %9s\n", "variant", "baseline_mbps",
              "g=0.35", "g=0.55", "g=0.75", "timeouts");

  for (TcpVariant variant :
       {TcpVariant::kTahoe, TcpVariant::kReno, TcpVariant::kNewReno}) {
    ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
    scenario.tcp.variant = variant;
    const BitRate baseline = measure_baseline(scenario, mode.control);
    std::printf("%-10s %14.2f", tcp_variant_name(variant),
                to_mbps(baseline));
    std::uint64_t timeouts = 0;
    for (double gamma : {0.35, 0.55, 0.75}) {
      const PulseTrain train = PulseTrain::from_gamma(
          ms(50), mbps(25), gamma, scenario.bottleneck);
      const GainMeasurement point =
          measure_gain(scenario, train, 1.0, mode.control, baseline);
      std::printf(" %9.3f", point.degradation);
      timeouts += point.run.total_timeouts;
    }
    std::printf(" %9llu\n", static_cast<unsigned long long>(timeouts));
  }
  std::printf("# expected: all variants degrade on the same trend (the\n"
              "# model's AIMD(1,0.5) covers them); Tahoe, lacking fast\n"
              "# recovery, loses at least as much as Reno/NewReno.\n");
  return 0;
}
