// Fluid surrogate benchmarks (google-benchmark): the fig. 6 quick-mode
// grid point (15-flow ns-2 dumbbell, T_extent 50 ms, R_attack 25 Mbps,
// γ = 0.5, 5 s warmup + 15 s measure) evaluated on the fluid backend, the
// full packet backend, and the hybrid split, plus the bare fluid::solve
// kernel without the experiment wrapper, the lane-batched W = 8 γ-grid
// (fluid::solve_batch, DESIGN.md §16), and the frozen pre-vectorization
// scalar reference (fluid::refbench::solve) as the same-machine A/B arm
// for the vectorized paths. These are for interactive work on the
// surrogate tier — the tracked, gated numbers (the ≥100x fluid-vs-packet
// floor and the ≥1.10x batched-grid / ≥1.25x binned-solve SIMD floors)
// live in tools/bench_report (BENCH_fluid.json vs
// bench/baseline_fluid.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "fluid/batch.hpp"
#include "fluid/fluid.hpp"
#include "fluid/refbench.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

PulseTrain fig06_point_train(BitRate bottleneck) {
  return PulseTrain::from_gamma(ms(50), mbps(25), 0.5, bottleneck);
}

RunControl fig06_point_control() {
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  return control;
}

void run_backend_point(benchmark::State& state, Backend backend) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = backend;
  const PulseTrain train = fig06_point_train(config.bottleneck);
  const RunControl control = fig06_point_control();
  ScenarioWorkspace ws;
  for (auto _ : state) {
    const RunResult result = ws.run(config, train, control);
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("items = fig06 quick grid points");
}

void BM_FluidPoint(benchmark::State& state) {
  run_backend_point(state, Backend::kFluid);
}
BENCHMARK(BM_FluidPoint)->Unit(benchmark::kMicrosecond);

void BM_PacketPoint(benchmark::State& state) {
  run_backend_point(state, Backend::kFull);
}
BENCHMARK(BM_PacketPoint)->Unit(benchmark::kMillisecond);

void BM_HybridPoint(benchmark::State& state) {
  run_backend_point(state, Backend::kHybrid);
}
BENCHMARK(BM_HybridPoint)->Unit(benchmark::kMillisecond);

/// The binned million-flow system shared by the vectorized and reference
/// binned arms. The class list spreads the ns-2 dumbbell's 20-460 ms RTT
/// range over the full population, then bins to 64 classes
/// (fluid::bin_classes): the per-step cost is per *class*, so the solve
/// costs the same as a 64-flow config — the point of opt-in binning.
fluid::FluidConfig binned_million_flow_config() {
  fluid::FluidConfig config =
      make_fluid_config(ScenarioConfig::ns2_dumbbell(15));
  constexpr int kFlows = 1000000;
  std::vector<fluid::FluidClass> classes;
  classes.reserve(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    const double frac = static_cast<double>(i) / (kFlows - 1);
    classes.push_back(fluid::FluidClass{ms(20) + frac * ms(440), 1.0});
  }
  config.classes = fluid::bin_classes(std::move(classes), 64);
  // Scale the bottleneck so per-flow fair share stays sane at N = 1e6,
  // and the attack with it (γ = 0.5 needs R_attack > γ R_bottle).
  config.bottleneck = gbps(10);
  config.red = RedParams::paper_testbed(4000);
  return config;
}

fluid::FluidAttack binned_million_flow_attack(BitRate bottleneck) {
  const PulseTrain train = PulseTrain::from_gamma(
      ms(50), bottleneck * (25.0 / 15.0), 0.5, bottleneck);
  fluid::FluidAttack attack;
  attack.textent = train.textent;
  attack.rattack = train.rattack;
  attack.tspace = train.tspace;
  return attack;
}

void run_binned_solver(benchmark::State& state, bool reference) {
  const fluid::FluidConfig config = binned_million_flow_config();
  const fluid::FluidAttack attack =
      binned_million_flow_attack(config.bottleneck);
  fluid::FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  for (auto _ : state) {
    const fluid::FluidResult result =
        reference ? fluid::refbench::solve(config, attack, control)
                  : fluid::solve(config, attack, control);
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string("items = 20s horizons, 1e6 flows in 64 "
                             "classes, ") +
                 (reference ? "scalar reference" : fluid::simd_backend()));
}

void BM_FluidSolveMillionFlowsBinned(benchmark::State& state) {
  run_binned_solver(state, false);
}
BENCHMARK(BM_FluidSolveMillionFlowsBinned)->Unit(benchmark::kMicrosecond);

/// The frozen pre-vectorization scalar solver on the same binned system:
/// the denominator of bench_report's binned SIMD floor (DESIGN.md §16).
void BM_FluidSolveMillionFlowsBinnedRef(benchmark::State& state) {
  run_binned_solver(state, true);
}
BENCHMARK(BM_FluidSolveMillionFlowsBinnedRef)->Unit(benchmark::kMicrosecond);

/// The bare solver, no experiment-layer mapping: what the optimizer's
/// inner search actually pays per candidate γ.
void BM_FluidSolve(benchmark::State& state) {
  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  const fluid::FluidConfig config = make_fluid_config(scenario);
  const PulseTrain train = fig06_point_train(scenario.bottleneck);
  fluid::FluidAttack attack;
  attack.textent = train.textent;
  attack.rattack = train.rattack;
  attack.tspace = train.tspace;
  fluid::FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  for (auto _ : state) {
    const fluid::FluidResult result = fluid::solve(config, attack, control);
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FluidSolve)->Unit(benchmark::kMicrosecond);

/// The 8-lane γ-grid shared by the batched and point-at-a-time grid arms:
/// one fig. 6 topology, γ ∈ {0.1 … 0.8}, per-lane pulse trains — the
/// shape search_confirm_gamma's fluid phase evaluates (DESIGN.md §16).
std::vector<fluid::BatchLane> gamma_grid_lanes(BitRate bottleneck) {
  std::vector<fluid::BatchLane> lanes;
  for (int gi = 1; gi <= 8; ++gi) {
    const PulseTrain train =
        PulseTrain::from_gamma(ms(50), mbps(25), 0.1 * gi, bottleneck);
    fluid::FluidAttack attack;
    attack.textent = train.textent;
    attack.rattack = train.rattack;
    attack.tspace = train.tspace;
    lanes.push_back(fluid::BatchLane{attack});
  }
  return lanes;
}

/// The lane-batched grid: all 8 γ points through one fluid::solve_batch
/// call. Per-point time is this divided by 8 — compare against
/// BM_FluidSolve (vectorized single point) and BM_FluidRefGammaGrid / 8
/// (the scalar reference, the batched-grid SIMD floor's denominator).
void BM_FluidBatchGammaGridW8(benchmark::State& state) {
  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  const fluid::FluidConfig config = make_fluid_config(scenario);
  const std::vector<fluid::BatchLane> lanes =
      gamma_grid_lanes(scenario.bottleneck);
  fluid::FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  for (auto _ : state) {
    const std::vector<fluid::FluidResult> results =
        fluid::solve_batch(config, lanes, control);
    benchmark::DoNotOptimize(results.front().goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lanes.size()));
  state.SetLabel(std::string("items = grid points, W=8 lanes, ") +
                 fluid::simd_backend());
}
BENCHMARK(BM_FluidBatchGammaGridW8)->Unit(benchmark::kMicrosecond);

/// The same 8-point γ-grid through the frozen scalar reference solver,
/// point at a time — what the grid cost before the vectorized tier.
void BM_FluidRefGammaGrid(benchmark::State& state) {
  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  const fluid::FluidConfig config = make_fluid_config(scenario);
  const std::vector<fluid::BatchLane> lanes =
      gamma_grid_lanes(scenario.bottleneck);
  fluid::FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  for (auto _ : state) {
    for (const fluid::BatchLane& lane : lanes) {
      const fluid::FluidResult result =
          fluid::refbench::solve(config, lane.attack, control);
      benchmark::DoNotOptimize(result.goodput_bytes);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lanes.size()));
  state.SetLabel("items = grid points, scalar reference");
}
BENCHMARK(BM_FluidRefGammaGrid)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pdos

BENCHMARK_MAIN();
