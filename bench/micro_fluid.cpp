// Fluid surrogate benchmarks (google-benchmark): the fig. 6 quick-mode
// grid point (15-flow ns-2 dumbbell, T_extent 50 ms, R_attack 25 Mbps,
// γ = 0.5, 5 s warmup + 15 s measure) evaluated on the fluid backend, the
// full packet backend, and the hybrid split, plus the bare fluid::solve
// kernel without the experiment wrapper. These are for interactive work on
// the surrogate tier — the tracked, gated numbers (including the ≥100x
// fluid-vs-packet floor) live in tools/bench_report (BENCH_fluid.json vs
// bench/baseline_fluid.json).
#include <benchmark/benchmark.h>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "fluid/fluid.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

PulseTrain fig06_point_train(BitRate bottleneck) {
  return PulseTrain::from_gamma(ms(50), mbps(25), 0.5, bottleneck);
}

RunControl fig06_point_control() {
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  return control;
}

void run_backend_point(benchmark::State& state, Backend backend) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = backend;
  const PulseTrain train = fig06_point_train(config.bottleneck);
  const RunControl control = fig06_point_control();
  ScenarioWorkspace ws;
  for (auto _ : state) {
    const RunResult result = ws.run(config, train, control);
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("items = fig06 quick grid points");
}

void BM_FluidPoint(benchmark::State& state) {
  run_backend_point(state, Backend::kFluid);
}
BENCHMARK(BM_FluidPoint)->Unit(benchmark::kMicrosecond);

void BM_PacketPoint(benchmark::State& state) {
  run_backend_point(state, Backend::kFull);
}
BENCHMARK(BM_PacketPoint)->Unit(benchmark::kMillisecond);

void BM_HybridPoint(benchmark::State& state) {
  run_backend_point(state, Backend::kHybrid);
}
BENCHMARK(BM_HybridPoint)->Unit(benchmark::kMillisecond);

/// A million-flow population binned to 64 classes (fluid::bin_classes):
/// the per-step cost is per *class*, so the solve costs the same as a
/// 64-flow config — the point of opt-in binning. The class list spreads
/// the ns-2 dumbbell's 20-460 ms RTT range over the full population.
void BM_FluidSolveMillionFlowsBinned(benchmark::State& state) {
  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  fluid::FluidConfig config = make_fluid_config(scenario);
  constexpr int kFlows = 1000000;
  std::vector<fluid::FluidClass> classes;
  classes.reserve(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    const double frac = static_cast<double>(i) / (kFlows - 1);
    classes.push_back(fluid::FluidClass{ms(20) + frac * ms(440), 1.0});
  }
  config.classes = fluid::bin_classes(std::move(classes), 64);
  // Scale the bottleneck so per-flow fair share stays sane at N = 1e6,
  // and the attack with it (γ = 0.5 needs R_attack > γ R_bottle).
  config.bottleneck = gbps(10);
  config.red = RedParams::paper_testbed(4000);
  const PulseTrain train = PulseTrain::from_gamma(
      ms(50), config.bottleneck * (25.0 / 15.0), 0.5, config.bottleneck);
  fluid::FluidAttack attack;
  attack.textent = train.textent;
  attack.rattack = train.rattack;
  attack.tspace = train.tspace;
  fluid::FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  for (auto _ : state) {
    const fluid::FluidResult result = fluid::solve(config, attack, control);
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("items = 20s horizons, 1e6 flows in 64 classes");
}
BENCHMARK(BM_FluidSolveMillionFlowsBinned)->Unit(benchmark::kMicrosecond);

/// The bare solver, no experiment-layer mapping: what the optimizer's
/// inner search actually pays per candidate γ.
void BM_FluidSolve(benchmark::State& state) {
  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  const fluid::FluidConfig config = make_fluid_config(scenario);
  const PulseTrain train = fig06_point_train(scenario.bottleneck);
  fluid::FluidAttack attack;
  attack.textent = train.textent;
  attack.rattack = train.rattack;
  attack.tspace = train.tspace;
  fluid::FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  for (auto _ : state) {
    const fluid::FluidResult result = fluid::solve(config, attack, control);
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FluidSolve)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pdos

BENCHMARK_MAIN();
