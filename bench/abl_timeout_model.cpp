// Ablation: the timeout-aware model extension (§5 future work) against the
// base model and the simulator, on exactly the regimes where the base model
// fails:
//   (a) an over-gain configuration (long pulses, many timeout-bound flows)
//   (b) the Fig. 10 shrew points (T_AIMD = minRTO/n)
// The extension should close most of the gap the base model leaves.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/timeout_model.hpp"

using namespace pdos;

namespace {

struct Case {
  const char* name;
  Time textent;
  BitRate rattack;
  double gamma;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Timeout-model ablation (%s mode): Gamma predicted by the "
              "base model (Eq. 10),\n"
              "# the timeout-aware extension, and the simulator.\n",
              mode.name());

  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  const VictimProfile victim = scenario.victim_profile();
  const BitRate baseline = measure_baseline(scenario, mode.control);

  TimeoutModelParams ext;
  ext.min_rto = scenario.tcp.rto_min;
  const Bytes buffer_bytes =
      static_cast<Bytes>(scenario.buffer_packets) * victim.spacket;

  const Case cases[] = {
      {"normal-gain  50ms/25M g=0.60", ms(50), mbps(25), 0.60},
      {"over-gain   100ms/25M g=0.50", ms(100), mbps(25), 0.50},
      {"over-gain   100ms/40M g=0.60", ms(100), mbps(40), 0.60},
      {"shrew n=1   100ms/30M T=1s", ms(100), mbps(30),
       ms(100) * 2.0 / 1.0},
      {"shrew n=2    75ms/40M T=.5s", ms(75), mbps(40),
       ms(75) * (40.0 / 15.0) / 0.5},
      {"shrew n=3    50ms/50M T=1/3s", ms(50), mbps(50),
       ms(50) * (50.0 / 15.0) / (1.0 / 3.0)},
  };

  std::printf("%-30s %10s %10s %10s %10s %8s\n", "case", "Gam_base",
              "Gam_ext", "Gam_sim", "TO_flows", "TO_obs");
  double base_err = 0.0;
  double ext_err = 0.0;
  for (const Case& c : cases) {
    const double c_attack = c.rattack / scenario.bottleneck;
    const Time period = c.textent * c_attack / c.gamma;
    const PulseContext ctx{c.textent, c.rattack, buffer_bytes};
    const double gamma_base = throughput_degradation(victim, period);
    const double gamma_ext =
        throughput_degradation_ext(victim, period, ext, ctx);
    const int to_flows = timeout_bound_flow_count(victim, period, ext, ctx);

    PulseTrain train = PulseTrain::from_gamma(c.textent, c.rattack, c.gamma,
                                              scenario.bottleneck);
    const GainMeasurement point =
        measure_gain(scenario, train, 1.0, mode.control, baseline);

    std::printf("%-30s %10.3f %10.3f %10.3f %7d/%-2d %8llu\n", c.name,
                gamma_base, gamma_ext, point.degradation, to_flows,
                victim.num_flows(),
                static_cast<unsigned long long>(point.run.total_timeouts));
    base_err += std::abs(gamma_base - point.degradation);
    ext_err += std::abs(gamma_ext - point.degradation);
  }
  const double n = static_cast<double>(std::size(cases));
  std::printf("# mean |error| vs simulation: base %.3f, extended %.3f -> "
              "extension %s\n",
              base_err / n, ext_err / n,
              ext_err < base_err ? "closes the gap" : "does not help here");
  return 0;
}
