// Reproduces Fig. 10: the relationship between PDoS attacks and shrew
// attacks. Three configurations are swept over gamma:
//   R_attack = 30 Mbps, T_extent = 100 ms   (normal-gain)
//   R_attack = 40 Mbps, T_extent =  75 ms   (over-gain)
//   R_attack = 50 Mbps, T_extent =  50 ms   (under-gain)
// Points whose attack period T_AIMD lands on a shrew harmonic minRTO/n are
// marked '*': there the simulated gain exceeds the analytical prediction
// because flows are pinned in timeout, which the model ignores.
#include <algorithm>
#include <cstdio>

#include "attack/shrew.hpp"
#include "common.hpp"

using namespace pdos;

namespace {

// Gammas that place T_AIMD exactly on minRTO/n (Eq. 4 inverted).
std::vector<double> shrew_gammas(Time textent, BitRate rattack,
                                 BitRate rbottle, Time min_rto) {
  std::vector<double> gammas;
  for (int n = 1; n <= 3; ++n) {
    const double gamma =
        textent * (rattack / rbottle) / shrew_period(min_rto, n);
    if (gamma > 0.0 && gamma < 1.0) gammas.push_back(gamma);
  }
  return gammas;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Fig. 10: PDoS vs shrew attacks (%s mode); ns-2 minRTO=1s\n",
              mode.name());

  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  const BitRate baseline = measure_baseline(scenario, mode.control);
  std::printf("# 15 flows, baseline %.2f Mbps\n", to_mbps(baseline));

  struct Config {
    BitRate rattack;
    Time textent;
  };
  const Config configs[] = {
      {mbps(30), ms(100)}, {mbps(40), ms(75)}, {mbps(50), ms(50)}};

  for (const auto& config : configs) {
    const double cpsi = c_psi(scenario.victim_profile(), config.textent,
                              config.rattack / scenario.bottleneck);
    // Regular grid plus the exact shrew gammas.
    auto gammas = bench::gamma_grid(std::max(0.1, cpsi + 0.02), 0.95,
                                    mode.gamma_points);
    for (double g : shrew_gammas(config.textent, config.rattack,
                                 scenario.bottleneck,
                                 scenario.tcp.rto_min)) {
      gammas.push_back(g);
    }
    std::sort(gammas.begin(), gammas.end());
    const auto rows = bench::gain_curve(scenario, config.textent,
                                        config.rattack, 1.0, gammas,
                                        mode.control, baseline);
    char label[128];
    std::snprintf(label, sizeof(label),
                  "R_attack = %.0f Mbps, T_extent = %.0f ms (C_psi = %.3f); "
                  "'*' = shrew point",
                  to_mbps(config.rattack), to_ms(config.textent), cpsi);
    bench::print_gain_header(label);
    bench::print_gain_rows(rows);

    // The figure's observation: shrew points beat the analytic curve.
    double shrew_excess = 0.0;
    int shrew_count = 0;
    for (const auto& row : rows) {
      if (row.shrew) {
        shrew_excess += row.measured_gain - row.analytic_gain;
        ++shrew_count;
      }
    }
    if (shrew_count > 0) {
      std::printf("# mean shrew-point excess over analysis: %+.3f over %d "
                  "points\n\n",
                  shrew_excess / shrew_count, shrew_count);
    }
  }
  return 0;
}
