// Reproduces Fig. 6: PDoS attack gains with R_attack = 25 Mbps.
#include "fig_gain_sweep.hpp"

int main(int argc, char** argv) {
  return pdos::bench::run_gain_figure("Fig. 6", pdos::mbps(25), argc, argv);
}
