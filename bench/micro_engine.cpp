// Engine microbenchmarks (google-benchmark): scheduler throughput, queue
// disciplines, DTW, the analytical model/optimizer, and end-to-end
// simulation event rates. These guard the simulator's performance envelope
// — the figure harnesses run hundreds of packet-level simulations.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "detect/dtw_detector.hpp"
#include "net/droptail.hpp"
#include "net/red.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer.hpp"

namespace pdos {
namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    int sink = 0;
    for (int i = 0; i < n; ++i) {
      sched.schedule(static_cast<Time>((i * 2654435761u) % 1000),
                     [&sink] { ++sink; });
    }
    sched.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // TCP-like pattern: schedule a timer, cancel it, schedule the next.
  for (auto _ : state) {
    Scheduler sched;
    EventId pending = kInvalidEventId;
    for (int i = 0; i < 10000; ++i) {
      if (pending != kInvalidEventId) sched.cancel(pending);
      pending = sched.schedule(1000.0, [] {});
      sched.schedule(0.001 * i, [] {});
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_SchedulerCancelAmongCrowd(benchmark::State& state) {
  // Cancels hitting the middle of a large pending population: exercises
  // the indexed heap's O(log n) detach instead of the tail-pop fast case.
  const int crowd = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    std::vector<EventId> ids;
    ids.reserve(static_cast<std::size_t>(crowd));
    for (int i = 0; i < crowd; ++i) {
      ids.push_back(
          sched.schedule(static_cast<Time>((i * 2654435761u) % 1000), [] {}));
    }
    for (int i = 0; i < crowd; i += 2) sched.cancel(ids[static_cast<std::size_t>(i)]);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * crowd);
}
BENCHMARK(BM_SchedulerCancelAmongCrowd)->Arg(10000);

void BM_TimerRestart(benchmark::State& state) {
  // RTO shape: a pending timer repeatedly pushed back before it can fire.
  // Restart goes through reschedule_at, moving the heap node in place.
  for (auto _ : state) {
    Scheduler sched;
    int fired = 0;
    Timer timer(sched, [&fired] { ++fired; });
    timer.schedule_at(1.0);
    for (int i = 0; i < 10000; ++i) {
      timer.schedule_at(1.0 + 0.001 * i);
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TimerRestart);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  DropTailQueue queue(256);
  Packet pkt;
  pkt.size_bytes = 1040;
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) queue.enqueue(pkt);
    while (queue.dequeue().has_value()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  RedQueue queue(RedParams::paper_testbed(256), Rng(1));
  Packet pkt;
  pkt.size_bytes = 1040;
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) queue.enqueue(pkt);
    while (queue.dequeue().has_value()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RedEnqueueDequeue);

void BM_DtwDistance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = (i % 10 == 0) ? 1.0 : 0.0;
    b[i] = (i % 12 == 0) ? 1.0 : 0.0;
  }
  for (auto _ : state) benchmark::DoNotOptimize(dtw_distance(a, b));
}
BENCHMARK(BM_DtwDistance)->Arg(100)->Arg(400);

void BM_ModelCpsi(benchmark::State& state) {
  VictimProfile victim;
  victim.rbottle = mbps(15);
  victim.rtts = VictimProfile::even_rtts(45, ms(20), ms(460));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c_psi(victim, ms(50), 25.0 / 15.0));
  }
}
BENCHMARK(BM_ModelCpsi);

void BM_OptimizerClosedForm(benchmark::State& state) {
  for (auto _ : state) {
    for (double kappa = 0.1; kappa < 10.0; kappa += 0.1) {
      benchmark::DoNotOptimize(optimal_gamma(0.2, kappa));
    }
  }
  state.SetItemsProcessed(state.iterations() * 99);
}
BENCHMARK(BM_OptimizerClosedForm);

void BM_OptimizerGoldenSection(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_gamma_numeric(0.2, 1.5));
  }
}
BENCHMARK(BM_OptimizerGoldenSection);

void BM_ScenarioBaseline(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(flows);
  RunControl control;
  control.warmup = sec(1);
  control.measure = sec(4);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult result = run_scenario(config, std::nullopt, control);
    events += result.events_executed;
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_ScenarioBaseline)->Arg(15)->Arg(45)->Unit(benchmark::kMillisecond);

void BM_ScenarioUnderAttack(benchmark::State& state) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  const PulseTrain train =
      PulseTrain::from_gamma(ms(50), mbps(25), 0.5, mbps(15));
  RunControl control;
  control.warmup = sec(1);
  control.measure = sec(4);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult result = run_scenario(config, train, control);
    events += result.events_executed;
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_ScenarioUnderAttack)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdos

BENCHMARK_MAIN();
