// Data-path microbenchmarks (google-benchmark): the packet ring, the queue
// disciplines' ring-backed enqueue/dequeue, link service with and without
// taps, and the batched StatsHub sink. These isolate the per-packet layers
// under the end-to-end sweep numbers tracked by tools/bench_report.
#include <benchmark/benchmark.h>

#include <memory>

#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/packet_ring.hpp"
#include "sim/simulator.hpp"
#include "stats/stats_hub.hpp"

namespace pdos {
namespace {

Packet attack_packet() {
  Packet pkt;
  pkt.type = PacketType::kAttack;
  pkt.size_bytes = 1040;
  return pkt;
}

void BM_PacketRingChurn(benchmark::State& state) {
  // Steady-state FIFO churn at a queue-like occupancy: push a burst, drain
  // it, never reallocating after the first lap.
  PacketRing ring;
  ring.reserve(256);
  const Packet pkt = attack_packet();
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) ring.push_back(pkt);
    while (!ring.empty()) benchmark::DoNotOptimize(ring.pop_front());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PacketRingChurn);

void BM_PacketRingWrappedChurn(benchmark::State& state) {
  // One-in-one-out around the wrap point: the link's propagation pipeline
  // shape, where head and tail chase each other across the mask boundary.
  PacketRing ring;
  ring.reserve(8);
  const Packet pkt = attack_packet();
  for (int i = 0; i < 5; ++i) ring.push_back(pkt);
  for (auto _ : state) {
    ring.push_back(pkt);
    benchmark::DoNotOptimize(ring.pop_front());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PacketRingWrappedChurn);

struct NullSink : PacketHandler {
  long long received = 0;
  void handle(Packet) override { ++received; }
};

/// Drive `packets` through a 10 Mbps / 5 ms link at twice its service rate
/// (queue builds, then drains), returning events executed.
std::uint64_t run_link_pipeline(Link& link, Simulator& sim, int packets) {
  struct Source {
    Simulator& sim;
    Link& link;
    int remaining;
    void operator()() const {
      link.handle(attack_packet());
      if (remaining > 1) {
        sim.schedule(transmission_time(1040, mbps(20)),
                     Source{sim, link, remaining - 1});
      }
    }
  };
  sim.schedule(0.0, Source{sim, link, packets});
  return sim.run();
}

void BM_LinkServiceUntapped(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim(1);
    sim.reserve_events(64);
    auto* sink = sim.make<NullSink>();
    auto* link = sim.make<Link>(sim, "l", mbps(10), ms(5),
                                std::make_unique<DropTailQueue>(64), sink);
    run_link_pipeline(*link, sim, 1000);
    benchmark::DoNotOptimize(sink->received);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetLabel("items = packets offered");
}
BENCHMARK(BM_LinkServiceUntapped);

void BM_LinkServiceTapped(benchmark::State& state) {
  // Same pipeline with the production instrumentation attached: a StatsHub
  // arrival tap and a counting departure tap. The delta against the
  // untapped run is the whole observability bill.
  for (auto _ : state) {
    Simulator sim(1);
    sim.reserve_events(64);
    StatsHub hub(ms(10), sec(2));
    long long departures = 0;
    auto* sink = sim.make<NullSink>();
    auto* link = sim.make<Link>(sim, "l", mbps(10), ms(5),
                                std::make_unique<DropTailQueue>(64), sink);
    link->add_arrival_tap([&sim, &hub](const Packet& pkt) {
      hub.on_arrival(sim.now(), pkt);
    });
    link->add_departure_tap([&departures](const Packet&) { ++departures; });
    run_link_pipeline(*link, sim, 1000);
    benchmark::DoNotOptimize(hub.incoming_bins_until(sec(1)));
    benchmark::DoNotOptimize(departures);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetLabel("items = packets offered");
}
BENCHMARK(BM_LinkServiceTapped);

void BM_StatsHubArrival(benchmark::State& state) {
  // The tap body alone: bin-index computation plus the batched accumulate,
  // with a bin roll every 64 packets.
  StatsHub hub(ms(10), sec(1000));
  const Packet pkt = attack_packet();
  double now = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      hub.on_arrival(now, pkt);
      now += 0.00015625;  // 64 packets per 10 ms bin
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_StatsHubArrival);

void BM_DropTailRingPath(benchmark::State& state) {
  // Queue discipline over the ring, via the virtual interface the link
  // uses: enqueue to capacity, drain through dequeue_nonempty.
  DropTailQueue queue(256);
  QueueDiscipline& q = queue;
  const Packet pkt = attack_packet();
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) q.enqueue(pkt);
    while (q.length() > 0) benchmark::DoNotOptimize(q.dequeue_nonempty());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DropTailRingPath);

}  // namespace
}  // namespace pdos

BENCHMARK_MAIN();
