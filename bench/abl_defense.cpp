// Ablation: the randomized-RTO defense (Yang, Gerla & Sanadidi [7]) against
// both attack classes, reproducing the paper's §1.1 claim:
//
//   "it is proposed to randomize the timeout value in [7]. However, this
//    method cannot defend the AIMD-based attack, because the attack's
//    timing does not rely on the TCP timeout values."
//
// We run the shrew attack (period = minRTO) and the optimized AIMD attack
// with and without RTO randomization: the defense should recover a large
// share of the shrew victim's throughput but barely change the AIMD
// attack's damage.
#include <cstdio>

#include "attack/shrew.hpp"
#include "common.hpp"

using namespace pdos;

namespace {

double degradation_with(const ScenarioConfig& base, const PulseTrain& train,
                        Time rto_jitter, const RunControl& control) {
  ScenarioConfig scenario = base;
  scenario.tcp.rto_jitter = rto_jitter;
  const BitRate baseline = measure_baseline(scenario, control);
  return measure_gain(scenario, train, 1.0, control, baseline).degradation;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Mode mode = bench::Mode::from_args(argc, argv);
  if (!mode.full) mode.control.measure = sec(20);
  std::printf("# Randomized-RTO defense ablation (%s mode)\n", mode.name());

  // The shrew regime needs a SHORT outage: the pulse must wipe in-flight
  // windows, but the queue must drain quickly so that a retransmission at
  // a random phase survives and enjoys most of the period. A small buffer
  // keeps the congestion epoch down to ~100 ms of the 1 s period.
  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  scenario.buffer_packets = 60;
  const Time jitter = sec(1.0);  // minRTO drawn from [1 s, 2 s]

  // Shrew train: pulses at exactly minRTO, intense enough for burst loss.
  PulseTrain shrew;
  shrew.textent = ms(50);
  shrew.rattack = mbps(50);
  shrew.tspace = scenario.tcp.rto_min - shrew.textent;

  // AIMD-based train: optimized risk-neutral plan for the same pulse rate.
  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(30);
  request.kappa = 1.0;
  const AttackPlan aimd = plan_attack(request);

  std::printf("%-28s %16s %16s %12s\n", "attack", "Gamma_no_defense",
              "Gamma_defended", "recovered");
  struct Row {
    const char* name;
    const PulseTrain& train;
  };
  const Row rows[] = {{"shrew (T_AIMD = minRTO)", shrew},
                      {"AIMD-based (gamma*)", aimd.train}};
  for (const Row& row : rows) {
    const double undefended =
        degradation_with(scenario, row.train, 0.0, mode.control);
    const double defended =
        degradation_with(scenario, row.train, jitter, mode.control);
    std::printf("%-28s %16.3f %16.3f %11.1f%%\n", row.name, undefended,
                defended,
                undefended > 0.0
                    ? 100.0 * (undefended - defended) / undefended
                    : 0.0);
  }
  std::printf("# expected: randomization recovers far more throughput from "
              "the shrew attack\n# than from the AIMD-based attack (whose "
              "timing never waits for an RTO).\n");
  return 0;
}
