// Ablation: RoQ potency vs PDoS gain as attack objectives (§1.1's related
// work, Guirguis et al. [15]).
//
// Both objectives tune the same pulse trains; they just price the attack
// differently. The potency-optimal γ_RoQ = 2·C_Ψ (Ω = 1) spends far less
// traffic than the gain-optimal γ* = √C_Ψ, at the cost of absolute damage.
// The table sweeps γ and reports model and measured damage, potency, and
// gain; the fairness column shows the collateral skew across victims.
#include <cstdio>

#include "common.hpp"
#include "core/optimizer.hpp"
#include "core/roq.hpp"

using namespace pdos;

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# RoQ potency vs PDoS gain (%s mode): 15 flows, "
              "T_extent=50ms, R_attack=25Mbps\n",
              mode.name());

  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  const VictimProfile victim = scenario.victim_profile();
  const double c_attack = 25.0 / 15.0;
  const double cpsi = c_psi(victim, ms(50), c_attack);
  const double gamma_roq = roq_optimal_gamma(victim, ms(50), c_attack);
  const double gamma_gain = optimal_gamma(cpsi, 1.0);
  std::printf("# C_psi=%.3f -> gamma_RoQ=%.3f (2 C_psi), gamma_gain=%.3f "
              "(sqrt C_psi)\n",
              cpsi, gamma_roq, gamma_gain);

  const BitRate baseline = measure_baseline(scenario, mode.control);
  std::printf("%8s %12s %12s %12s %12s %10s\n", "gamma", "potency_model",
              "potency_sim", "G_sim", "Gamma_sim", "fairness");
  for (double gamma :
       {gamma_roq * 0.6, gamma_roq, gamma_roq * 1.5, gamma_gain, 0.8}) {
    if (gamma <= cpsi || gamma >= 1.0) continue;
    const PulseTrain train = PulseTrain::from_gamma(ms(50), mbps(25), gamma,
                                                    scenario.bottleneck);
    const GainMeasurement point =
        measure_gain(scenario, train, 1.0, mode.control, baseline);
    const double potency_model =
        pdos_model_potency(victim, ms(50), c_attack, gamma);
    const double potency_sim = roq_potency(
        point.degradation * baseline, train.average_rate());
    std::printf("%8.3f %12.3f %12.3f %12.3f %12.3f %10.3f\n", gamma,
                potency_model, potency_sim, point.gain, point.degradation,
                point.run.fairness_index);
  }
  std::printf("# expected: potency rewards the cheap low-gamma operating "
              "points (over-gain\n# there pushes measured potency above "
              "the model), while the gain objective\n# prefers the "
              "intermediate gamma*; fairness stays flat — quasi-global\n"
              "# sync damages all victims together.\n");
  return 0;
}
