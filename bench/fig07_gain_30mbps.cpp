// Reproduces Fig. 7: PDoS attack gains with R_attack = 30 Mbps.
#include "fig_gain_sweep.hpp"

int main(int argc, char** argv) {
  return pdos::bench::run_gain_figure("Fig. 7", pdos::mbps(30), argc, argv);
}
