// Reproduces Fig. 3: the quasi-global synchronization phenomenon.
//   (a) ns-2:     24 flows, T_extent=50 ms,  T_space=1950 ms, R=100 Mbps
//                 -> 30 evenly spaced pinnacles in 60 s (period 2.0 s)
//   (b) test-bed: 15 flows, T_extent=100 ms, T_space=2400 ms, R=50 Mbps
//                 -> 24 pinnacles in 60 s (period 2.5 s)
// Output: the zero-mean PAA of the bottleneck's incoming traffic (exactly
// the paper's post-processing), plus the measured peak count and period.
#include <cstdio>

#include "common.hpp"
#include "stats/timeseries.hpp"

using namespace pdos;

namespace {

void run_panel(const char* name, const char* stem,
               const ScenarioConfig& scenario, const PulseTrain& train,
               Time horizon, double expected_peaks,
               const std::string& out_dir) {
  RunControl control;
  control.warmup = 0.0;
  control.measure = horizon;
  control.bin_width = ms(100);
  const RunResult result = run_scenario(scenario, train, control);

  // The paper's pipeline: normalize to zero mean, then PAA.
  const auto normalized = normalize_zscore(result.incoming_bins);
  const auto reduced = paa(normalized, normalized.size() / 2);

  const Time period = estimate_period(normalized, control.bin_width, 5,
                                      static_cast<std::size_t>(
                                          4.0 * train.period() /
                                          control.bin_width));
  const std::size_t peaks = count_peaks(normalized, 1.0, 3);

  std::printf("\n## %s\n", name);
  std::printf("# attack: T_extent=%.0fms T_space=%.0fms R=%.0fMbps "
              "-> T_AIMD=%.2fs\n",
              to_ms(train.textent), to_ms(train.tspace),
              to_mbps(train.rattack), train.period());
  std::printf("# measured: %zu peaks in %.0f s (paper expects ~%.0f), "
              "period %.2f s (attack period %.2f s)\n",
              peaks, horizon, expected_peaks, period, train.period());
  std::printf("%8s %12s\n", "time_s", "paa_zscore");
  const Time paa_width = horizon / static_cast<double>(reduced.size());
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    std::printf("%8.2f %12.4f\n", (static_cast<double>(i) + 0.5) * paa_width,
                reduced[i]);
  }
  if (!out_dir.empty()) {
    const std::string gp =
        write_timeseries_figure(out_dir, stem, name, reduced, paa_width);
    std::printf("# plot artifacts: %s\n", gp.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Fig. 3: quasi-global synchronization (%s mode)\n",
              mode.name());
  const Time horizon = mode.full ? sec(60) : sec(30);
  const double scale = horizon / 60.0;

  {
    ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(24);
    PulseTrain train;
    train.textent = ms(50);
    train.tspace = ms(1950);
    train.rattack = mbps(100);
    run_panel("(a) ns-2 scenario", "fig03a", scenario, train, horizon,
              30.0 * scale, mode.out_dir);
  }
  {
    ScenarioConfig scenario = ScenarioConfig::testbed(15);
    PulseTrain train;
    train.textent = ms(100);
    train.tspace = ms(2400);
    train.rattack = mbps(50);
    run_panel("(b) test-bed scenario", "fig03b", scenario, train, horizon,
              24.0 * scale, mode.out_dir);
  }
  return 0;
}
