// Ablation: distributed (multi-source) PDoS.
//
// Splitting the pulse across k zombies keeps the aggregate train — and so
// the damage — while each source's average rate (what a per-link ingress
// detector sees) falls by k. Phase-spreading the sources softens the pulse
// edge and trades a little damage for a lower aggregate peak.
#include <cstdio>

#include "attack/distributed.hpp"
#include "common.hpp"
#include "detect/rate_detector.hpp"

using namespace pdos;

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Distributed-attack ablation (%s mode): 15 flows, "
              "T_extent=50ms, aggregate R_attack=25Mbps, gamma=0.5\n",
              mode.name());

  ScenarioConfig base = ScenarioConfig::ns2_dumbbell(15);
  const BitRate baseline = measure_baseline(base, mode.control);
  const PulseTrain train =
      PulseTrain::from_gamma(ms(50), mbps(25), 0.5, base.bottleneck);

  std::printf("%12s %12s %10s %16s %18s\n", "sources", "phase_ms",
              "Gamma_sim", "gamma_per_source", "src_detector");
  for (int k : {1, 2, 5, 10}) {
    for (Time spread : {0.0, ms(25)}) {
      ScenarioConfig scenario = base;
      scenario.num_attackers = k;
      scenario.attacker_phase_spread = spread;
      const GainMeasurement point =
          measure_gain(scenario, train, 1.0, mode.control, baseline);
      const double src_gamma =
          per_source_gamma(train, k, scenario.bottleneck);
      // A per-source ingress detector sees 1/k of the attack: alarm iff
      // the per-source average exceeds 30% of an access-link-sized budget.
      const bool caught = src_gamma * scenario.bottleneck > 0.3 * mbps(10);
      std::printf("%12d %12.0f %10.3f %16.3f %18s\n", k, to_ms(spread),
                  point.degradation, src_gamma,
                  caught ? "CAUGHT" : "evaded");
    }
  }
  std::printf("# expected: Gamma is nearly k-invariant for synchronized "
              "sources; per-source\n# gamma (and hence detectability at "
              "the sources) shrinks as 1/k.\n");
  return 0;
}
