// Replicate-batch benchmarks (google-benchmark): the fig. 6 quick-mode
// grid point (15-flow ns-2 dumbbell, T_extent 50 ms, R_attack 25 Mbps,
// γ = 0.5, 5 s warmup + 15 s measure) executed as R = 8 seed-varied
// replicates, sequentially on one warm workspace vs co-resident through
// ReplicateBatch (DESIGN.md §14), on the packet and fluid tiers. These are
// for interactive work on the batching layer — the tracked, gated numbers
// (including the ≥1.3x fluid-tier replicate-throughput floor) live in
// tools/bench_report (BENCH_replicate.json vs bench/baseline_replicate.json).
#include <benchmark/benchmark.h>

#include <vector>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "sweep/replicate_batch.hpp"
#include "sweep/sweep.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

constexpr int kReplicates = 8;

PulseTrain fig06_point_train(BitRate bottleneck) {
  return PulseTrain::from_gamma(ms(50), mbps(25), 0.5, bottleneck);
}

RunControl fig06_point_control() {
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  return control;
}

std::vector<std::uint64_t> replicate_seeds() {
  std::vector<std::uint64_t> seeds;
  for (int r = 0; r < kReplicates; ++r) {
    seeds.push_back(sweep::replicate_seed(1, r));
  }
  return seeds;
}

void run_sequential(benchmark::State& state, Backend backend) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = backend;
  const PulseTrain train = fig06_point_train(config.bottleneck);
  const RunControl control = fig06_point_control();
  const std::vector<std::uint64_t> seeds = replicate_seeds();
  ScenarioWorkspace ws;
  for (auto _ : state) {
    for (std::uint64_t seed : seeds) {
      ScenarioConfig replicate = config;
      replicate.seed = seed;
      const RunResult result = ws.run(replicate, train, control);
      benchmark::DoNotOptimize(result.goodput_bytes);
    }
  }
  state.SetItemsProcessed(state.iterations() * kReplicates);
  state.SetLabel("items = replicates");
}

void run_batched(benchmark::State& state, Backend backend) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = backend;
  const PulseTrain train = fig06_point_train(config.bottleneck);
  const RunControl control = fig06_point_control();
  const std::vector<std::uint64_t> seeds = replicate_seeds();
  sweep::ReplicateBatch batch;
  for (auto _ : state) {
    const std::vector<RunResult> results =
        batch.run(config, train, control, seeds);
    benchmark::DoNotOptimize(results.front().goodput_bytes);
  }
  state.SetItemsProcessed(state.iterations() * kReplicates);
  state.SetLabel("items = replicates");
}

void BM_SequentialReplicatesPacket(benchmark::State& state) {
  run_sequential(state, Backend::kFull);
}
BENCHMARK(BM_SequentialReplicatesPacket)->Unit(benchmark::kMillisecond);

void BM_BatchedReplicatesPacket(benchmark::State& state) {
  run_batched(state, Backend::kFull);
}
BENCHMARK(BM_BatchedReplicatesPacket)->Unit(benchmark::kMillisecond);

void BM_SequentialReplicatesFluid(benchmark::State& state) {
  run_sequential(state, Backend::kFluid);
}
BENCHMARK(BM_SequentialReplicatesFluid)->Unit(benchmark::kMicrosecond);

void BM_BatchedReplicatesFluid(benchmark::State& state) {
  run_batched(state, Backend::kFluid);
}
BENCHMARK(BM_BatchedReplicatesFluid)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pdos

BENCHMARK_MAIN();
