// Scenario setup microbenchmarks (google-benchmark): fresh-construct vs
// warm-reset scenario builds, and the arena vs heap construction paths.
// These isolate what the sweep engine's workspace reuse saves per point —
// the end-to-end cold/resume wall-clock lives in tools/bench_report
// (BENCH_sweep.json).
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

/// A horizon so short that almost no simulation events execute: the cost
/// measured is topology construction (+ teardown on reset), not the run.
RunControl setup_only_control() {
  RunControl control;
  control.warmup = 0.0;
  control.measure = ms(1);
  return control;
}

void BM_ScenarioSetupFresh(benchmark::State& state) {
  // Cold path: a brand-new workspace per point — every arena block, slab,
  // and container capacity is paid again.
  const ScenarioConfig config =
      ScenarioConfig::ns2_dumbbell(static_cast<int>(state.range(0)));
  const RunControl control = setup_only_control();
  for (auto _ : state) {
    ScenarioWorkspace ws;
    benchmark::DoNotOptimize(ws.run(config, std::nullopt, control));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("items = scenario builds");
}
BENCHMARK(BM_ScenarioSetupFresh)->Arg(15)->Arg(45);

void BM_ScenarioSetupWarm(benchmark::State& state) {
  // Warm path: one workspace rewound between points, the way run_sweep
  // workers reuse them. After the first lap this allocates nothing.
  const ScenarioConfig config =
      ScenarioConfig::ns2_dumbbell(static_cast<int>(state.range(0)));
  const RunControl control = setup_only_control();
  ScenarioWorkspace ws;
  benchmark::DoNotOptimize(ws.run(config, std::nullopt, control));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.run(config, std::nullopt, control));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("items = scenario builds");
}
BENCHMARK(BM_ScenarioSetupWarm)->Arg(15)->Arg(45);

}  // namespace
}  // namespace pdos

BENCHMARK_MAIN();
