// Shared plumbing for the figure-reproduction harnesses.
//
// Every bench binary prints, to stdout, the same series the corresponding
// paper figure plots: analytical curves computed from the model in
// src/core plus simulated points from packet-level runs. Two fidelity
// modes:
//   quick (default) — coarser gamma grids and shorter measurement windows;
//     finishes in seconds and preserves every qualitative conclusion.
//   full (--full flag or PDOS_BENCH_FULL=1) — the paper-sized grid.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/planner.hpp"
#include "io/gnuplot.hpp"

namespace pdos::bench {

struct Mode {
  bool full = false;
  RunControl control;
  int gamma_points = 7;
  std::string out_dir;  // when set, also write .dat/.gp plot artifacts

  static Mode from_args(int argc, char** argv) {
    Mode mode;
    const char* env = std::getenv("PDOS_BENCH_FULL");
    mode.full = (env != nullptr && std::strcmp(env, "0") != 0);
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) mode.full = true;
      if (std::strcmp(argv[i], "--quick") == 0) mode.full = false;
      if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        mode.out_dir = argv[i + 1];
      }
    }
    if (mode.full) {
      mode.control.warmup = sec(8);
      mode.control.measure = sec(40);
      mode.gamma_points = 15;
    } else {
      mode.control.warmup = sec(5);
      mode.control.measure = sec(15);
      mode.gamma_points = 7;
    }
    return mode;
  }

  const char* name() const { return full ? "full" : "quick"; }
};

/// Evenly spaced gamma sweep on (lo, hi), endpoints included.
inline std::vector<double> gamma_grid(double lo, double hi, int points) {
  std::vector<double> grid;
  for (int i = 0; i < points; ++i) {
    grid.push_back(lo + (hi - lo) * i / (points - 1));
  }
  return grid;
}

struct GainRow {
  double gamma = 0.0;
  double analytic_gain = 0.0;
  double measured_gain = 0.0;
  double analytic_degradation = 0.0;
  double measured_degradation = 0.0;
  std::uint64_t timeouts = 0;
  bool shrew = false;
};

/// One curve of Figs. 6-10/12: sweep gamma for a fixed pulse shape.
inline std::vector<GainRow> gain_curve(const ScenarioConfig& scenario,
                                       Time textent, BitRate rattack,
                                       double kappa,
                                       const std::vector<double>& gammas,
                                       const RunControl& control,
                                       BitRate baseline) {
  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = textent;
  request.rattack = rattack;
  request.kappa = kappa;
  request.victim_min_rto = scenario.tcp.rto_min;

  std::vector<GainRow> rows;
  for (double gamma : gammas) {
    if (gamma <= 0.0 || gamma >= 1.0) continue;
    if (gamma > rattack / scenario.bottleneck) continue;  // needs tspace >= 0
    const AttackPlan plan = plan_attack_at_gamma(request, gamma);
    const GainMeasurement point =
        measure_gain(scenario, plan.train, kappa, control, baseline);
    GainRow row;
    row.gamma = gamma;
    row.analytic_gain = plan.predicted_gain;
    row.measured_gain = point.gain;
    row.analytic_degradation = plan.predicted_degradation;
    row.measured_degradation = point.degradation;
    row.timeouts = point.run.total_timeouts;
    row.shrew = plan.shrew_harmonic.has_value();
    rows.push_back(row);
  }
  return rows;
}

inline void print_gain_header(const char* label) {
  std::printf("# %s\n", label);
  std::printf("%8s %12s %12s %12s %12s %9s %6s\n", "gamma", "G_analytic",
              "G_sim", "Gam_analytic", "Gam_sim", "timeouts", "shrew");
}

inline void print_gain_rows(const std::vector<GainRow>& rows) {
  for (const auto& row : rows) {
    std::printf("%8.3f %12.4f %12.4f %12.4f %12.4f %9llu %6s\n", row.gamma,
                row.analytic_gain, row.measured_gain,
                row.analytic_degradation, row.measured_degradation,
                static_cast<unsigned long long>(row.timeouts),
                row.shrew ? "*" : "");
  }
}

/// Convert gain rows into a plot-ready curve.
inline GainCurveData to_curve(const std::string& label,
                              const std::vector<GainRow>& rows) {
  GainCurveData curve;
  curve.label = label;
  for (const auto& row : rows) {
    curve.gamma.push_back(row.gamma);
    curve.analytic.push_back(row.analytic_gain);
    curve.simulated.push_back(row.measured_gain);
  }
  return curve;
}

/// Classify a curve the way §4.1.1 does, from the mean signed error around
/// the analytic maximum.
inline const char* classify_regime(const std::vector<GainRow>& rows) {
  double err = 0.0;
  int n = 0;
  for (const auto& row : rows) {
    if (row.shrew) continue;  // the paper excludes shrew points
    err += row.measured_gain - row.analytic_gain;
    ++n;
  }
  if (n == 0) return "n/a";
  err /= n;
  if (err > 0.07) return "over-gain";
  if (err < -0.07) return "under-gain";
  return "normal-gain";
}

}  // namespace pdos::bench
