// Reproduces Fig. 9: PDoS attack gains with R_attack = 40 Mbps.
#include "fig_gain_sweep.hpp"

int main(int argc, char** argv) {
  return pdos::bench::run_gain_figure("Fig. 9", pdos::mbps(40), argc, argv);
}
