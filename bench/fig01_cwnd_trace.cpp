// Reproduces Fig. 1: the cwnd of a victim flow under a fixed-period
// AIMD-based attack — transient decay over the first few pulses, then a
// periodic sawtooth around the converged window W∞ of Eq. (1).
#include <cstdio>

#include "common.hpp"

using namespace pdos;

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Fig. 1: cwnd under a fixed-period PDoS attack (%s mode)\n",
              mode.name());

  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(5);
  PulseTrain train;
  train.textent = ms(50);
  train.tspace = ms(1950);  // T_AIMD = 2 s
  train.rattack = mbps(80);

  RunControl control;
  control.warmup = 0.0;
  control.measure = mode.full ? sec(60) : sec(30);
  // Trace the middle flow (RTT 240 ms): its W_inf is well below its fair-
  // share window, so between pulses it grows linearly as the model assumes
  // instead of bumping into self-inflicted congestion.
  control.traced_flow = 2;

  const Time rtt = scenario.rtts[2];
  const double w_inf =
      converged_cwnd(scenario.tcp.aimd, train.period(), rtt);
  std::printf("# flow RTT = %.0f ms, T_AIMD = %.1f s -> W_inf = %.1f "
              "segments (Eq. 1)\n",
              to_ms(rtt), train.period(), w_inf);

  const RunResult result = run_scenario(scenario, train, control);
  std::printf("%10s %10s\n", "time_s", "cwnd_seg");
  // Thin the trace: one sample per 100 ms, last value wins.
  Time next_sample = 0.0;
  double last = 0.0;
  for (const auto& [t, w] : result.cwnd_trace) {
    while (t >= next_sample) {
      std::printf("%10.2f %10.2f\n", next_sample, last);
      next_sample += 0.1;
    }
    last = w;
  }

  // Steady-phase check: mean cwnd just before attack epochs ~ W_inf.
  double sum = 0.0;
  int n = 0;
  for (const auto& [t, w] : result.cwnd_trace) {
    const double phase = std::fmod(t, train.period());
    if (t > 10.0 && phase > 0.9 * train.period()) {
      sum += w;
      ++n;
    }
  }
  if (n > 0) {
    std::printf("# steady-phase pre-epoch cwnd: measured %.1f vs W_inf %.1f\n",
                sum / n, w_inf);
  }
  std::printf("# timeouts=%llu fast_recoveries=%llu\n",
              static_cast<unsigned long long>(result.total_timeouts),
              static_cast<unsigned long long>(result.total_fast_recoveries));
  return 0;
}
