// Shared driver for Figs. 6-9: attack gain vs gamma on the ns-2 dumbbell,
// one figure per R_attack, four subplots (15/25/35/45 flows), three curves
// per subplot (T_extent = 50/75/100 ms).
#pragma once

#include "common.hpp"

namespace pdos::bench {

inline int run_gain_figure(const char* figure, BitRate rattack, int argc,
                           char** argv) {
  const Mode mode = Mode::from_args(argc, argv);
  std::printf("# %s: attack gain vs gamma, R_attack = %.0f Mbps (%s mode)\n",
              figure, to_mbps(rattack), mode.name());
  std::printf("# lines: analytical Eq. (12); symbols: simulation; kappa=1\n");

  const std::vector<int> flow_counts = {15, 25, 35, 45};
  const std::vector<Time> textents = {ms(50), ms(75), ms(100)};

  for (int flows : flow_counts) {
    const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(flows);
    const BitRate baseline = measure_baseline(scenario, mode.control);
    std::printf("\n## %d TCP flows (baseline goodput %.2f Mbps, "
                "utilization %.2f)\n",
                flows, to_mbps(baseline), baseline / scenario.bottleneck);
    std::vector<GainCurveData> curves;
    for (Time textent : textents) {
      const double c_attack = rattack / scenario.bottleneck;
      const double cpsi =
          c_psi(scenario.victim_profile(), textent, c_attack);
      const auto gammas =
          gamma_grid(std::max(0.1, cpsi + 0.02), 0.95, mode.gamma_points);
      const auto rows = gain_curve(scenario, textent, rattack, 1.0, gammas,
                                   mode.control, baseline);
      char label[128];
      std::snprintf(label, sizeof(label),
                    "T_extent = %.0f ms  (C_psi = %.3f)", to_ms(textent),
                    cpsi);
      print_gain_header(label);
      print_gain_rows(rows);
      std::printf("# regime: %s\n", classify_regime(rows));
      char short_label[64];
      std::snprintf(short_label, sizeof(short_label), "T_extent = %.0f ms",
                    to_ms(textent));
      curves.push_back(to_curve(short_label, rows));
    }
    if (!mode.out_dir.empty()) {
      char stem[64];
      std::snprintf(stem, sizeof(stem), "%s_%dflows", figure, flows);
      for (char& c : stem) {
        if (c == ' ' || c == '.') c = '_';
      }
      const std::string gp = write_gain_figure(
          mode.out_dir, stem, std::string(figure) + ", " +
                                  std::to_string(flows) + " flows",
          curves);
      std::printf("# plot artifacts: %s\n", gp.c_str());
    }
  }
  return 0;
}

}  // namespace pdos::bench
