// Shared driver for Figs. 6-9: attack gain vs gamma on the ns-2 dumbbell,
// one figure per R_attack, four subplots (15/25/35/45 flows), three curves
// per subplot (T_extent = 50/75/100 ms).
//
// The grid runs on the sweep engine (src/sweep): every (flows, T_extent,
// gamma) point is an independent simulation executed across a
// work-stealing thread pool, then printed in the figure's order from the
// stable result table. Thread count comes from PDOS_SWEEP_THREADS (0 or
// unset = all hardware threads); output is byte-identical regardless.
#pragma once

#include "common.hpp"
#include "sweep/sweep.hpp"

namespace pdos::bench {

inline int sweep_threads_from_env() {
  const char* env = std::getenv("PDOS_SWEEP_THREADS");
  return env != nullptr ? std::atoi(env) : 0;
}

inline int run_gain_figure(const char* figure, BitRate rattack, int argc,
                           char** argv) {
  const Mode mode = Mode::from_args(argc, argv);
  std::printf("# %s: attack gain vs gamma, R_attack = %.0f Mbps (%s mode)\n",
              figure, to_mbps(rattack), mode.name());
  std::printf("# lines: analytical Eq. (12); symbols: simulation; kappa=1\n");

  sweep::SweepSpec spec;
  spec.flow_counts = {15, 25, 35, 45};
  spec.textents = {ms(50), ms(75), ms(100)};
  spec.rattacks = {rattack};
  spec.gamma_points = mode.gamma_points;
  spec.control = mode.control;

  sweep::SweepOptions options;
  options.threads = sweep_threads_from_env();
  const sweep::SweepResult result = sweep::run_sweep(spec, options);
  std::printf("# sweep: %zu points on %d threads in %.2f s\n",
              result.points.size(), result.threads, result.wall_seconds);
  if (result.failures() > 0 || result.cancelled) {
    for (const auto& point : result.points) {
      if (point.status == sweep::PointStatus::kFailed) {
        std::fprintf(stderr, "point %zu failed: %s\n", point.index,
                     point.error.c_str());
      }
    }
    return 1;
  }

  for (int flows : spec.flow_counts) {
    const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(flows);
    double baseline = 0.0;
    for (const auto& point : result.points) {
      if (point.point.flows == flows) {
        baseline = point.baseline_goodput;
        break;
      }
    }
    std::printf("\n## %d TCP flows (baseline goodput %.2f Mbps, "
                "utilization %.2f)\n",
                flows, to_mbps(baseline), baseline / scenario.bottleneck);
    std::vector<GainCurveData> curves;
    for (Time textent : spec.textents) {
      std::vector<GainRow> rows;
      double cpsi = 0.0;
      for (const auto& point : result.points) {
        if (point.point.flows != flows || point.point.textent != textent) {
          continue;
        }
        cpsi = point.c_psi;
        GainRow row;
        row.gamma = point.point.gamma;
        row.analytic_gain = point.analytic_gain;
        row.measured_gain = point.measured_gain;
        row.analytic_degradation = point.analytic_degradation;
        row.measured_degradation = point.measured_degradation;
        row.timeouts = point.timeouts;
        row.shrew = point.shrew;
        rows.push_back(row);
      }
      char label[128];
      std::snprintf(label, sizeof(label),
                    "T_extent = %.0f ms  (C_psi = %.3f)", to_ms(textent),
                    cpsi);
      print_gain_header(label);
      print_gain_rows(rows);
      std::printf("# regime: %s\n", classify_regime(rows));
      char short_label[64];
      std::snprintf(short_label, sizeof(short_label), "T_extent = %.0f ms",
                    to_ms(textent));
      curves.push_back(to_curve(short_label, rows));
    }
    if (!mode.out_dir.empty()) {
      char stem[64];
      std::snprintf(stem, sizeof(stem), "%s_%dflows", figure, flows);
      for (char& c : stem) {
        if (c == ' ' || c == '.') c = '_';
      }
      const std::string gp = write_gain_figure(
          mode.out_dir, stem, std::string(figure) + ", " +
                                  std::to_string(flows) + " flows",
          curves);
      std::printf("# plot artifacts: %s\n", gp.c_str());
    }
  }
  return 0;
}

}  // namespace pdos::bench
