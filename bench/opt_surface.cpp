// §3.2 companion table: the optimal attack settings across the attacker-
// preference space. For a grid of (C_Psi, kappa) it prints the closed-form
// gamma* (Eq. 13), the numerically maximized gamma (golden section), the
// optimal gain, and the pulse spacing mu (exact and the paper's Eq. 16
// approximation), verifying Corollaries 1-4 at the grid edges.
//
// The grid is evaluated across the sweep subsystem's thread pool: each
// (C_Psi, kappa) cell is independent, results land in preallocated slots,
// and rows print in grid order — output is identical at any thread count.
#include <cstdio>
#include <vector>

#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "sweep/thread_pool.hpp"
#include "util/units.hpp"

using namespace pdos;

namespace {

struct SurfaceRow {
  double cpsi = 0.0;
  double kappa = 0.0;
  double gamma_closed = 0.0;
  double gamma_numeric = 0.0;
  double gain = 0.0;
  double mu_exact = -1.0;
  double mu_paper = 0.0;
};

}  // namespace

int main() {
  std::printf("# Optimal attack surface: gamma*, G*, mu over (C_psi, kappa)"
              "\n");
  std::printf("# C_attack = 25/15 (ns-2 scenario pulse rate over "
              "bottleneck)\n");
  const double c_attack = 25.0 / 15.0;
  const std::vector<double> cpsis = {0.05, 0.1, 0.2, 0.3, 0.5, 0.7};
  const std::vector<double> kappas = {0.1, 0.5, 1.0, 2.0, 5.0, 20.0};

  std::vector<SurfaceRow> rows(cpsis.size() * kappas.size());
  sweep::ThreadPool pool;
  sweep::parallel_for(pool, rows.size(), [&](std::size_t i) {
    SurfaceRow& row = rows[i];
    row.cpsi = cpsis[i / kappas.size()];
    row.kappa = kappas[i % kappas.size()];
    row.gamma_closed = optimal_gamma(row.cpsi, row.kappa);
    row.gamma_numeric = optimal_gamma_numeric(row.cpsi, row.kappa);
    row.gain = optimal_gain(row.cpsi, row.kappa);
    if (row.gamma_closed <= c_attack) {
      row.mu_exact = optimal_mu_exact(c_attack, row.cpsi, row.kappa);
    }
    row.mu_paper = optimal_mu_paper(c_attack, row.cpsi, row.kappa);
  });

  std::printf("%8s %8s %12s %12s %12s %10s %10s\n", "C_psi", "kappa",
              "gamma*_eq13", "gamma*_num", "G*", "mu_exact", "mu_eq16");
  for (const SurfaceRow& row : rows) {
    std::printf("%8.2f %8.1f %12.6f %12.6f %12.6f %10.4f %10.4f\n", row.cpsi,
                row.kappa, row.gamma_closed, row.gamma_numeric, row.gain,
                row.mu_exact, row.mu_paper);
  }
  std::printf("\n# corollary checks\n");
  const double cpsi = 0.2;
  std::printf("kappa=1    : gamma* = %.6f, sqrt(C_psi) = %.6f (Cor. 3)\n",
              optimal_gamma(cpsi, 1.0), optimal_gamma_risk_neutral(cpsi));
  std::printf("kappa=1e9  : gamma* = %.6f -> C_psi = %.6f (Cor. 1)\n",
              optimal_gamma(cpsi, 1e9), cpsi);
  std::printf("kappa=1e-9 : gamma* = %.6f -> 1 (Cor. 2)\n",
              optimal_gamma(cpsi, 1e-9));
  std::printf("Cor. 4     : mu = sqrt(C_attack/(T_extent*C_victim)) = %.4f "
              "vs Eq. 16 at kappa=1: %.4f\n",
              optimal_mu_risk_neutral_paper(c_attack, ms(50),
                                            cpsi / (ms(50) * c_attack)),
              optimal_mu_paper(c_attack, cpsi, 1.0));
  return 0;
}
