// CampaignStore benchmarks (google-benchmark): the store operations a
// campaign worker issues per task — result append, in-memory lookup,
// claim + release round-trip, and the incremental refresh a drain loop
// polls with (DESIGN.md §15). Each runs against a throwaway store
// directory under /tmp, so the numbers include the real flock + append
// syscall cost. These are for interactive work on the store layer — the
// tracked, gated campaign numbers (including the ≥2.5x 4-worker cold
// campaign floor) live in tools/bench_report (BENCH_campaign.json vs
// bench/baseline_campaign.json).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "sweep/campaign_store.hpp"

namespace pdos::sweep {
namespace {

/// A fresh store directory per benchmark run, removed on destruction.
class ScratchStore {
 public:
  ScratchStore() {
    char name[] = "/tmp/pdos_micro_campaign_XXXXXX";
    if (mkdtemp(name) == nullptr) std::abort();
    dir_ = name;
    store_ = std::make_unique<CampaignStore>(dir_);
  }
  ~ScratchStore() {
    store_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  CampaignStore& store() { return *store_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::unique_ptr<CampaignStore> store_;
};

CachedPoint sample_point() {
  CachedPoint p;
  p.c_psi = 0.1748646993;
  p.analytic_degradation = 0.417117669;
  p.analytic_gain = 0.2919823683;
  p.baseline_goodput = 14250666.0;
  p.goodput = 8821333.0;
  p.measured_degradation = 0.380988024;
  p.measured_gain = 0.2666916168;
  p.utilization = 0.5880888889;
  p.fairness = 0.3946231059;
  p.fast_recoveries = 3;
  p.attack_packets = 1200;
  p.events = 11850;
  return p;
}

/// Appending one point record: serialize + flock + O_APPEND write.
void BM_StoreAppend(benchmark::State& state) {
  ScratchStore scratch;
  const CachedPoint point = sample_point();
  std::uint64_t key = 0;
  for (auto _ : state) {
    scratch.store().store_point(key++, point);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAppend);

/// In-memory hit path — what every warm campaign task costs.
void BM_StoreLookupHit(benchmark::State& state) {
  ScratchStore scratch;
  const CachedPoint point = sample_point();
  constexpr std::uint64_t kKeys = 1024;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    scratch.store().store_point(k * 0x9e3779b97f4a7c15ull, point);
  }
  CachedPoint out;
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scratch.store().lookup_point((k++ % kKeys) * 0x9e3779b97f4a7c15ull,
                                     out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLookupHit);

/// Claim + release round-trip: two flock'd appends plus a tail scan — the
/// per-task coordination overhead a cold campaign pays.
void BM_StoreClaimRelease(benchmark::State& state) {
  ScratchStore scratch;
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scratch.store().claim_point(key));
    scratch.store().release_point(key);
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreClaimRelease);

/// Refresh with nothing new: 16 shared-lock tail checks — the idle cost of
/// one drain-loop poll.
void BM_StoreRefreshIdle(benchmark::State& state) {
  ScratchStore scratch;
  const CachedPoint point = sample_point();
  for (std::uint64_t k = 0; k < 256; ++k) {
    scratch.store().store_point(k * 0x9e3779b97f4a7c15ull, point);
  }
  for (auto _ : state) {
    scratch.store().refresh();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreRefreshIdle);

/// Refresh that folds in one peer append — the productive drain-loop poll.
void BM_StoreRefreshOneNew(benchmark::State& state) {
  ScratchStore reader;
  CampaignStore writer(reader.dir());
  const CachedPoint point = sample_point();
  std::uint64_t key = 0;
  for (auto _ : state) {
    state.PauseTiming();
    writer.store_point(key++, point);
    state.ResumeTiming();
    reader.store().refresh();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreRefreshOneNew);

}  // namespace
}  // namespace pdos::sweep

BENCHMARK_MAIN();
