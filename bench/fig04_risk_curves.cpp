// Reproduces Fig. 4: the attacker's risk preference (1 - gamma)^kappa for
// risk-loving (kappa < 1), risk-neutral (kappa = 1) and risk-averse
// (kappa > 1) attackers, including the limiting cases discussed in §3.
#include <cstdio>

#include "core/model.hpp"
#include "core/params.hpp"

using namespace pdos;

int main() {
  std::printf("# Fig. 4: risk preference (1-gamma)^kappa\n");
  const double kappas[] = {0.0, 0.2, 0.5, 1.0, 2.0, 5.0, 50.0};
  std::printf("%8s", "gamma");
  for (double kappa : kappas) std::printf("  k=%-8.1f", kappa);
  std::printf("\n");
  for (double gamma = 0.0; gamma <= 1.0001; gamma += 0.05) {
    const double g = gamma > 1.0 ? 1.0 : gamma;
    std::printf("%8.2f", g);
    for (double kappa : kappas) std::printf("  %-10.4f", risk_term(g, kappa));
    std::printf("\n");
  }
  std::printf("# kappa -> 0: risk ignored (flooding attacker); "
              "kappa -> inf: risk-dominated (no attack)\n");
  std::printf("# classes: kappa<1 %s, kappa=1 %s, kappa>1 %s\n",
              risk_class_name(classify_risk(0.5)),
              risk_class_name(classify_risk(1.0)),
              risk_class_name(classify_risk(2.0)));
  return 0;
}
