// Ablation: gain-curve robustness to unresponsive cross traffic.
//
// The paper's scenarios carry only bulk TCP. Real bottlenecks also carry
// open-loop traffic that neither backs off under the attack nor
// contributes duplicate ACKs. This bench repeats a Fig. 6-style sweep with
// an exponential ON/OFF source consuming 0 / 10 / 20% of the bottleneck:
// the measured gain curve should keep its unimodal shape and peak
// location, with Γ computed against the correspondingly lower TCP
// baseline.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.hpp"

using namespace pdos;

int main(int argc, char** argv) {
  const bench::Mode mode = bench::Mode::from_args(argc, argv);
  std::printf("# Cross-traffic robustness (%s mode): 15 flows, "
              "T_extent=50ms, R_attack=25Mbps, kappa=1\n",
              mode.name());

  for (double fraction : {0.0, 0.1, 0.2}) {
    ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
    scenario.cross_traffic_rate = fraction * scenario.bottleneck;
    const BitRate baseline = measure_baseline(scenario, mode.control);
    const double cpsi = c_psi(scenario.victim_profile(), ms(50),
                              25.0 / 15.0);
    const auto gammas =
        bench::gamma_grid(std::max(0.1, cpsi + 0.02), 0.95,
                          mode.gamma_points);
    const auto rows = bench::gain_curve(scenario, ms(50), mbps(25), 1.0,
                                        gammas, mode.control, baseline);
    char label[96];
    std::snprintf(label, sizeof(label),
                  "cross traffic = %.0f%% of bottleneck (TCP baseline "
                  "%.2f Mbps)",
                  100.0 * fraction, to_mbps(baseline));
    bench::print_gain_header(label);
    bench::print_gain_rows(rows);

    // Peak location check: the argmax should stay near gamma*.
    double best_gamma = 0.0;
    double best_gain = -1.0;
    for (const auto& row : rows) {
      if (row.measured_gain > best_gain) {
        best_gain = row.measured_gain;
        best_gamma = row.gamma;
      }
    }
    std::printf("# measured peak at gamma=%.2f (analytic gamma*=%.2f)\n\n",
                best_gamma, std::sqrt(cpsi));
  }
  return 0;
}
