// Gigabit-scale scenario benchmarks (google-benchmark): the LargeScale
// dumbbell family (250 flows @ 155 Mbps, 1000 flows @ 1 Gbps) with the
// express-lane/fused fast path on and off. These are for interactive
// work on the large-N data path — the tracked, gated numbers live in
// tools/bench_report (BENCH_scale.json vs bench/baseline_scale.json).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

/// Pulse train scaled to the bottleneck per the paper's Eq. (1)-(2): the
/// pulse magnitude must exceed the bottleneck rate for the queue to fill
/// within T_extent, so R_attack tracks R_bottle (same 25/15 ratio as the
/// ns-2 reference scenario) with γ = 0.3 fixing the period.
PulseTrain large_scale_train(BitRate bottleneck) {
  return PulseTrain::from_gamma(ms(50), bottleneck * (25.0 / 15.0), 0.3,
                                bottleneck);
}

/// Short horizon: long enough that steady-state forwarding dominates the
/// build cost, short enough for interactive iteration at 1 Gbps.
RunControl short_horizon() {
  RunControl control;
  control.warmup = sec(0.5);
  control.measure = sec(1.0);
  return control;
}

void run_large_scale(benchmark::State& state, bool fast) {
  ScenarioConfig config = ScenarioConfig::large_scale(
      static_cast<int>(state.range(0)), mbps(static_cast<double>(state.range(1))));
  config.fast_path = fast;
  const PulseTrain train = large_scale_train(config.bottleneck);
  const RunControl control = short_horizon();
  ScenarioWorkspace ws;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const RunResult result = ws.run(config, train, control);
    events += result.events_executed;
    benchmark::DoNotOptimize(result.goodput_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = scheduler events");
}

void BM_LargeScaleFastPath(benchmark::State& state) {
  run_large_scale(state, true);
}
BENCHMARK(BM_LargeScaleFastPath)
    ->Args({250, 155})
    ->Args({1000, 1000})
    ->Unit(benchmark::kMillisecond);

void BM_LargeScaleFullPath(benchmark::State& state) {
  run_large_scale(state, false);
}
BENCHMARK(BM_LargeScaleFullPath)
    ->Args({250, 155})
    ->Args({1000, 1000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pdos

BENCHMARK_MAIN();
