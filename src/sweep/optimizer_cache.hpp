// PointStore-backed FluidGainCache (DESIGN.md §16).
//
// `search_confirm_gamma` scores its γ grid on the fluid surrogate before
// packet-confirming the leaders. Those surrogate scores are pure functions
// of (scenario, control, pulse shape, κ, γ) — no seed — so a sweep or
// campaign that runs many searches (or resumes an interrupted one) can
// persist them in the same PointStore that caches its points. This adapter
// bridges the optimizer's FluidGainCache interface onto any PointStore:
//
//   - keys come from `scenario_digest` (point_cache.hpp) with the search's
//     scenario coerced to the fluid backend — the cached value is a fluid
//     result no matter which tier the search will confirm on — under the
//     "fluid-gain" / "fluid-baseline" tags;
//   - values are single doubles (the surrogate gain G, the fluid baseline
//     goodput), stored as baseline-format records, so the store's record
//     codecs, flock'd appends, and campaign sharding all apply unchanged.
//
// A search resumed against a warmed store reports fluid_runs == 0 and
// returns bit-identical results: batched fluid solves are bit-identical to
// point-at-a-time ones, so replaying a stored double IS replaying the run.
#pragma once

#include "core/optimizer.hpp"
#include "sweep/point_cache.hpp"

namespace pdos::sweep {

class FluidGainPointStoreCache : public FluidGainCache {
 public:
  /// Non-owning: `store` must outlive the adapter.
  explicit FluidGainPointStoreCache(PointStore& store) : store_(store) {}

  std::optional<BitRate> lookup_baseline(const GammaSearch& search) override;
  void store_baseline(const GammaSearch& search, BitRate baseline) override;
  std::optional<double> lookup_gain(const GammaSearch& search,
                                    double gamma) override;
  void store_gain(const GammaSearch& search, double gamma,
                  double gain) override;

 private:
  PointStore& store_;
};

/// Key of one fluid surrogate-gain evaluation: the search's scenario
/// (backend coerced to kFluid), its control, and (T_extent, R_attack, κ, γ).
/// Exposed for the key-sensitivity tests.
std::uint64_t fluid_gain_key(const GammaSearch& search, double gamma);

/// Key of the fluid baseline those gains normalize against: same scenario
/// and control, no pulse axes (the baseline run has no attack).
std::uint64_t fluid_baseline_key(const GammaSearch& search);

}  // namespace pdos::sweep
