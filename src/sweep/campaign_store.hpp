// Sharded multi-process result store: the campaign coordination substrate.
//
// `PointCache` is one append-only file owned by one process. A campaign is
// K cooperating processes (possibly serving many submitted specs) sweeping
// one shared grid, so the store must let them (a) dedup results — a point
// simulated by any worker is a cache hit for every other worker and for
// every later campaign — and (b) partition cold work without a central
// dispatcher. `CampaignStore` does both with files only: no daemon, no
// shared memory, no sockets, so workers can be independent OS processes
// (or, later, NFS peers).
//
// Layout: a directory of 16 append-only segment files, `seg-0` … `seg-f`,
// keyed by the top 4 bits of the 64-bit content hash. Sharding bounds
// lock contention (two workers only collide when their keys share a
// prefix) and keeps each file small enough that compaction and re-scans
// stay cheap. Each segment is line-oriented with the same P/B record
// format (and the same %.17g bit-exact doubles) as the single-file cache,
// plus two coordination record kinds:
//
//   P <key> <outputs…>          completed point        (point_cache.hpp)
//   B <key> <goodput>           completed baseline
//   L <key> <owner> <expiry>    lease: <owner> is simulating <key> and
//                               promises a result (or a release) before
//                               wall-clock <expiry> (epoch seconds)
//   R <key> <owner>             release: <owner> gave up its lease
//
// Claim protocol (per key): take the segment's flock(2), fold in any
// records other processes appended since our last scan, then decide —
// result present → kDone; un-expired lease by another owner → kBusy;
// otherwise append our own lease and return kAcquired. The lock makes
// read-tail + append atomic, so exactly one worker wins a cold key. A
// result record supersedes the lease; a crashed worker's lease simply
// expires and the key is re-claimed by whoever polls it next — crash
// recovery needs no fsck pass.
//
// Torn-tail tolerance: a worker killed mid-write leaves a partial final
// line. Loaders skip lines that fail to parse, and every appender checks
// (under the lock) whether the segment ends in '\n' and prepends one if
// not, so a torn tail corrupts at most itself — never the next record.
//
// An in-memory index (maps keyed by the content hash) answers lookups
// without I/O; `refresh()` incrementally folds in segment bytes appended
// by other processes since the last scan (tracked by per-segment offset).
// `compact()` rewrites each segment in place, dropping lease/release
// records and duplicate results — run it when the campaign is quiescent
// (concurrent appends are serialized by the lock and survive, but a crash
// mid-compaction can lose records, which only costs re-simulation).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sweep/point_cache.hpp"

namespace pdos::sweep {

class CampaignStore : public PointStore {
 public:
  /// Open (creating if needed) the store directory at `dir`. `lease_ttl`
  /// is the wall-clock lifetime of a work claim in seconds: a worker that
  /// neither stores a result nor releases within the TTL is presumed
  /// crashed and its key becomes claimable again. Size it well above the
  /// slowest expected single point; expiry only costs duplicated work,
  /// never wrong results (both workers compute identical bytes).
  explicit CampaignStore(std::string dir, double lease_ttl_seconds = 120.0);
  ~CampaignStore() override;

  CampaignStore(const CampaignStore&) = delete;
  CampaignStore& operator=(const CampaignStore&) = delete;

  bool lookup_point(std::uint64_t key, CachedPoint& out) const override;
  bool lookup_baseline(std::uint64_t key, double& goodput) const override;
  void store_point(std::uint64_t key, const CachedPoint& value) override;
  void store_baseline(std::uint64_t key, double goodput) override;
  std::size_t size() const override;

  ClaimStatus claim_point(std::uint64_t key) override;
  ClaimStatus claim_baseline(std::uint64_t key) override;
  void release_point(std::uint64_t key) override;
  void release_baseline(std::uint64_t key) override;

  /// Fold in records appended by other processes since the last scan
  /// (incremental: reads only new bytes of each segment).
  void refresh() override;

  /// Rewrite every segment keeping one copy of each result record and no
  /// coordination records. Returns the number of lines dropped.
  std::size_t compact();

  const std::string& dir() const { return dir_; }
  /// This process's lease owner token (pid ⊕ random), for tests/logs.
  std::uint64_t owner() const { return owner_; }
  std::size_t segments() const;
  /// Path of the segment file holding `key`.
  std::string segment_path(std::uint64_t key) const;

 private:
  struct Lease {
    std::uint64_t owner = 0;
    double expiry = 0.0;  // epoch seconds
  };
  struct Segment {
    std::string path;
    int fd = -1;          // append fd, opened lazily
    std::uint64_t scanned = 0;  // bytes consumed by incremental scans
    bool header_ok = false;     // header line verified (or written by us)
    bool rewrite = false;       // foreign header: truncate on first append
  };

  static constexpr int kSegments = 16;
  static int segment_of(std::uint64_t key) {
    return static_cast<int>(key >> 60);
  }

  // All private helpers assume mutex_ is held.
  bool ensure_open(Segment& seg);
  void scan_segment(Segment& seg);
  void apply_line(const char* line, std::size_t len);
  void append_locked(Segment& seg, const std::string& line);
  ClaimStatus claim(std::uint64_t key, bool baseline);
  void release(std::uint64_t key);

  std::string dir_;
  double lease_ttl_;
  std::uint64_t owner_;
  mutable std::mutex mutex_;
  std::vector<Segment> segments_;
  std::unordered_map<std::uint64_t, CachedPoint> points_;
  std::unordered_map<std::uint64_t, double> baselines_;
  std::unordered_map<std::uint64_t, Lease> leases_;
};

}  // namespace pdos::sweep
