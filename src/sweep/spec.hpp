// key=value spec files for sweep campaigns.
//
// The format is one `key = value` pair per line, `#` comments, commas for
// lists — small enough to write by hand, rich enough to express the paper
// grid:
//
//   # full Figs. 6-9 grid
//   scenario     = ns2          # ns2 | testbed
//   queue        = red          # red | droptail
//   backend      = full         # full | fast | fluid | hybrid (tier, see
//                               # DESIGN.md §12; default full)
//   hybrid_foreground = 4       # hybrid only: packet-level flows per point
//   shards       = 1            # PDES shards per point (DESIGN.md §13);
//                               # results are bit-identical at any K, so
//                               # cache keys ignore it
//   batch_replicates = on       # on | off: run a point's replicates as one
//                               # co-resident batch (DESIGN.md §14); bit-
//                               # identical either way, cache keys ignore it
//   flows        = 15,25,35,45
//   textent_ms   = 50,75,100
//   rattack_mbps = 25,30,35,40
//   gamma        = auto         # or a comma list, e.g. 0.2,0.4,0.6
//   gamma_points = 7            # auto-grid resolution
//   kappa        = 1.0
//   replicates   = 1
//   base_seed    = 1
//   warmup_s     = 5
//   measure_s    = 15
//   threads      = 0            # 0 = all hardware threads
//   csv          = sweep.csv    # optional output paths
//   json         = sweep.json
//   cache        = points.cache # optional persistent point cache
//   store        = campaign.d   # optional sharded campaign store directory
//                               # (multi-process; overrides `cache`)
//
// Unknown keys are an error (they are always typos).
#pragma once

#include <string>

#include "sweep/sweep.hpp"

namespace pdos::sweep {

struct SpecFile {
  SweepSpec spec;
  SweepOptions options;
  std::string csv_path;   // empty: write CSV to stdout
  std::string json_path;  // empty: no JSON output
  /// `store =`: CampaignStore directory to coordinate through. The caller
  /// (pdos_sweep/pdos_campaign) owns the store object; this is just the
  /// parsed path. Takes precedence over `cache` when both are set.
  std::string store_dir;
};

/// Parse spec text (the file contents). Throws ParameterError with a
/// line-numbered message on malformed input.
SpecFile parse_spec(const std::string& text);

/// Read and parse a spec file from disk.
SpecFile load_spec_file(const std::string& path);

}  // namespace pdos::sweep
