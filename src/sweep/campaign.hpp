// Multi-process campaign orchestration.
//
// A campaign is one or more submitted sweep specs executed by K cooperating
// worker processes over one shared CampaignStore. `run_campaign` forks the
// workers (each runs every spec through the ordinary `run_sweep` engine,
// coordinating point-by-point via the store's claim protocol), streams
// merged progress from their report pipes, and — after the workers join —
// replays each spec from the store in-process to produce the final merged
// tables. The replay is byte-identical to a single-process run of the same
// spec: the result table is keyed by enumeration order and cached doubles
// round-trip bit-exactly, so CSV bytes cannot depend on which worker
// simulated which point.
//
// Cross-spec dedup costs nothing: keys are content hashes, so two specs
// that share a sub-grid (or a spec resubmitted by another user) share the
// store records, and only the first campaign simulates them.
//
// Worker processes are forked before any thread is created in the child
// (each child builds its own ThreadPool afterwards), communicate over a
// pipe with one short text line per event, and `_exit` without running
// parent atexit handlers. A worker that crashes mid-task simply leaves a
// lease to expire: the surviving workers (or the parent's final replay
// pass) re-claim and finish its points.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sweep/sweep.hpp"

namespace pdos::sweep {

/// One submitted spec plus where its merged outputs go.
struct CampaignSpec {
  SweepSpec spec;
  std::string csv_path;   // empty: suppress the CSV file
  std::string json_path;  // empty: no JSON output
  std::string name;       // label for progress lines (e.g. file basename)
};

/// Merged progress across all workers and specs. Every worker walks every
/// task of every spec (simulating the ones it claims, replaying the rest),
/// so a spec's campaign-wide progress is the furthest worker's progress,
/// summed over specs.
struct CampaignProgress {
  std::size_t done = 0;
  std::size_t total = 0;
  std::size_t cached = 0;  // of `done`, answered from the store
  double elapsed_seconds = 0.0;
  int workers_alive = 0;
};

struct CampaignOptions {
  /// CampaignStore directory shared by all workers (created if missing).
  std::string store_dir = ".pdos-cache/campaign";
  int workers = 2;
  /// Threads per worker (<= 0: ThreadPool::default_threads() in each).
  int threads = 0;
  bool keep_going = false;  // workers keep dispatching after a failure
  double lease_ttl_seconds = 120.0;
  double claim_poll_seconds = 0.05;
  /// When > 0 and a spec has a csv_path, the parent writes a lookup-only
  /// snapshot to `<csv_path>.partial` at this cadence while workers run.
  double partial_interval_seconds = 0.0;
  /// Serialized in the parent; called on every worker report line.
  std::function<void(const CampaignProgress&)> on_progress;
};

struct CampaignSpecResult {
  /// The parent's post-join replay of the spec (the merged table). All-hit
  /// when the workers completed the grid; any straggler a crashed worker
  /// left behind is simulated here.
  SweepResult result;
  std::size_t unique_tasks = 0;  // baselines + points, deduped within spec
};

struct CampaignResult {
  std::vector<CampaignSpecResult> specs;  // one per submitted spec
  /// Unique task keys across ALL specs — the floor of simulations a cold
  /// campaign must run, and (claim protocol working) also the ceiling.
  std::size_t unique_tasks = 0;
  /// Sum of the workers' SweepResult::simulated counters. On a cold store,
  /// worker_simulated + final_simulated > unique_tasks means duplicated
  /// work; <= holds whenever claiming dedups correctly (CI asserts it).
  std::size_t worker_simulated = 0;
  std::size_t final_simulated = 0;  // stragglers simulated by the parent
  int worker_failures = 0;  // workers that exited nonzero or crashed
  double wall_seconds = 0.0;

  bool ok() const;
};

/// Fork `options.workers` processes over `specs`, join them, and replay the
/// merged results. Must be called from a process that can fork safely
/// (i.e. before the caller spawns its own threads).
CampaignResult run_campaign(const std::vector<CampaignSpec>& specs,
                            const CampaignOptions& options);

/// Lookup-only replay: fill a result table from whatever the store already
/// holds, without claiming or simulating. Unresolved rows stay kSkipped.
/// Used for the parent's partial CSV snapshots while workers run.
SweepResult replay_from_store(const SweepSpec& spec, const PointStore& store);

/// Unique task count (baselines + points) of one spec.
std::size_t count_unique_tasks(const SweepSpec& spec);

}  // namespace pdos::sweep
