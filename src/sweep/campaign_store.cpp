#include "sweep/campaign_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>

namespace pdos::sweep {

namespace {

constexpr char kSegHeader[] = "pdos-campaign-seg-v1";

double now_epoch_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Lease owner token: pid in the high bits (debuggable in a hex dump), a
/// random salt in the low bits (distinguishes a restarted worker that got
/// the same pid from its crashed predecessor, whose stale lease must not
/// look like ours).
std::uint64_t make_owner_token() {
  std::random_device rd;
  const std::uint64_t salt =
      (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  return (static_cast<std::uint64_t>(::getpid()) << 32) ^ (salt & 0xffffffff);
}

std::string format_lease(std::uint64_t key, std::uint64_t owner,
                         double expiry) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "L %016" PRIx64 " %016" PRIx64 " %.17g\n",
                key, owner, expiry);
  return buf;
}

std::string format_release(std::uint64_t key, std::uint64_t owner) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "R %016" PRIx64 " %016" PRIx64 "\n", key,
                owner);
  return buf;
}

}  // namespace

CampaignStore::CampaignStore(std::string dir, double lease_ttl_seconds)
    : dir_(std::move(dir)),
      lease_ttl_(lease_ttl_seconds),
      owner_(make_owner_token()) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
  segments_.resize(kSegments);
  for (int i = 0; i < kSegments; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "seg-%x", i);
    segments_[i].path = dir_ + "/" + name;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (Segment& seg : segments_) {
    // Load only segments that already exist; the rest are created lazily
    // by the first append that hashes into them.
    if (std::filesystem::exists(seg.path, ec) && ensure_open(seg)) {
      scan_segment(seg);
    }
  }
}

CampaignStore::~CampaignStore() {
  for (Segment& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

std::size_t CampaignStore::segments() const { return kSegments; }

std::string CampaignStore::segment_path(std::uint64_t key) const {
  return segments_[segment_of(key)].path;
}

bool CampaignStore::ensure_open(Segment& seg) {
  if (seg.fd >= 0) return true;
  // O_RDWR (not O_WRONLY): incremental scans pread(2) through the same fd
  // the appends go through, so there is exactly one inode handle to lock.
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  return seg.fd >= 0;
}

void CampaignStore::apply_line(const char* line, std::size_t len) {
  if (len < 2 || line[1] != ' ') return;
  std::uint64_t key = 0;
  switch (line[0]) {
    case 'P': {
      CachedPoint value;
      if (parse_point_record(line + 2, key, value)) {
        points_[key] = value;
        leases_.erase(key);  // result supersedes any claim
      }
      break;
    }
    case 'B': {
      double goodput = 0.0;
      if (parse_baseline_record(line + 2, key, goodput)) {
        baselines_[key] = goodput;
        leases_.erase(key);
      }
      break;
    }
    case 'L': {
      std::uint64_t owner = 0;
      double expiry = 0.0;
      if (std::sscanf(line + 2, "%" SCNx64 " %" SCNx64 " %lg", &key, &owner,
                      &expiry) == 3) {
        // Last lease wins: a re-claim after expiry replaces the dead one.
        // Never shadow a result that already landed.
        if (points_.find(key) == points_.end() &&
            baselines_.find(key) == baselines_.end()) {
          leases_[key] = Lease{owner, expiry};
        }
      }
      break;
    }
    case 'R': {
      std::uint64_t owner = 0;
      if (std::sscanf(line + 2, "%" SCNx64 " %" SCNx64, &key, &owner) == 2) {
        const auto it = leases_.find(key);
        if (it != leases_.end() && it->second.owner == owner) {
          leases_.erase(it);
        }
      }
      break;
    }
    default:
      break;  // unknown record kinds are skipped, not fatal
  }
}

void CampaignStore::scan_segment(Segment& seg) {
  if (seg.rewrite) return;  // foreign file: ignored until truncated
  struct stat st;
  if (::fstat(seg.fd, &st) != 0) return;
  auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < seg.scanned) {
    // The segment shrank under us (a compaction pass rewrote it): rescan
    // from the start. Result records are idempotent facts, so re-applying
    // them is harmless; leases age out by TTL either way.
    seg.scanned = 0;
    seg.header_ok = false;
  }
  if (size == seg.scanned) return;

  std::string tail(size - seg.scanned, '\0');
  std::size_t got = 0;
  while (got < tail.size()) {
    const ssize_t n = ::pread(seg.fd, tail.data() + got, tail.size() - got,
                              static_cast<off_t>(seg.scanned + got));
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  tail.resize(got);

  // Consume complete lines only; a torn tail (no final newline yet) stays
  // unconsumed and is re-read — whole — on a later scan.
  std::size_t begin = 0;
  while (true) {
    const std::size_t nl = tail.find('\n', begin);
    if (nl == std::string::npos) break;
    const char* line = tail.data() + begin;
    const std::size_t len = nl - begin;
    if (seg.scanned == 0 && begin == 0 && !seg.header_ok) {
      if (len != sizeof(kSegHeader) - 1 ||
          std::memcmp(line, kSegHeader, len) != 0) {
        // Foreign or pre-v1 segment: load nothing from it and truncate it
        // on the first append (mirrors PointCache's rewrite semantics).
        seg.rewrite = true;
        return;
      }
      seg.header_ok = true;
    } else {
      apply_line(line, len);
    }
    begin = nl + 1;
  }
  seg.scanned += begin;
}

void CampaignStore::append_locked(Segment& seg, const std::string& line) {
  if (seg.rewrite) {
    if (::ftruncate(seg.fd, 0) != 0) return;
    seg.rewrite = false;
    seg.scanned = 0;
    seg.header_ok = false;
  }
  struct stat st;
  if (::fstat(seg.fd, &st) != 0) return;
  std::string out;
  if (st.st_size == 0) {
    out = std::string(kSegHeader) + "\n";
    seg.header_ok = true;
  } else {
    // Torn-tail repair: a worker killed mid-write left a partial final
    // line. Terminate it so our record starts on a fresh line — the torn
    // fragment becomes one malformed line that loaders skip, instead of
    // swallowing the next valid record.
    char last = '\n';
    if (::pread(seg.fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      out.assign(1, '\n');
    }
  }
  out += line;
  const char* data = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t n = ::write(seg.fd, data, left);
    if (n <= 0) break;  // disk full etc.: degrade to in-memory only
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  // Our own bytes need no re-parse: account them as scanned if we are
  // current with the file (the common case: we appended under the lock
  // right after a scan).
  struct stat after;
  if (::fstat(seg.fd, &after) == 0 &&
      static_cast<std::uint64_t>(after.st_size) ==
          seg.scanned + out.size()) {
    seg.scanned += out.size();
  }
}

bool CampaignStore::lookup_point(std::uint64_t key, CachedPoint& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(key);
  if (it == points_.end()) return false;
  out = it->second;
  return true;
}

bool CampaignStore::lookup_baseline(std::uint64_t key, double& goodput) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = baselines_.find(key);
  if (it == baselines_.end()) return false;
  goodput = it->second;
  return true;
}

void CampaignStore::store_point(std::uint64_t key, const CachedPoint& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!points_.emplace(key, value).second) return;  // already recorded
  leases_.erase(key);
  Segment& seg = segments_[segment_of(key)];
  if (!ensure_open(seg)) return;
  ::flock(seg.fd, LOCK_EX);
  append_locked(seg, format_point_record(key, value));
  ::flock(seg.fd, LOCK_UN);
}

void CampaignStore::store_baseline(std::uint64_t key, double goodput) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!baselines_.emplace(key, goodput).second) return;
  leases_.erase(key);
  Segment& seg = segments_[segment_of(key)];
  if (!ensure_open(seg)) return;
  ::flock(seg.fd, LOCK_EX);
  append_locked(seg, format_baseline_record(key, goodput));
  ::flock(seg.fd, LOCK_UN);
}

std::size_t CampaignStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_.size() + baselines_.size();
}

CampaignStore::ClaimStatus CampaignStore::claim(std::uint64_t key,
                                                bool baseline) {
  std::lock_guard<std::mutex> lock(mutex_);
  Segment& seg = segments_[segment_of(key)];
  if (!ensure_open(seg)) {
    // Unopenable store (permissions, disk): claim unconditionally so the
    // sweep still completes — it just can't coordinate.
    return ClaimStatus::kAcquired;
  }
  // Read-tail + decide + append must be atomic across processes, so the
  // whole protocol runs under the segment lock.
  ::flock(seg.fd, LOCK_EX);
  scan_segment(seg);
  ClaimStatus status;
  const bool done = baseline ? baselines_.find(key) != baselines_.end()
                             : points_.find(key) != points_.end();
  if (done) {
    status = ClaimStatus::kDone;
  } else {
    const auto it = leases_.find(key);
    if (it != leases_.end() && it->second.owner != owner_ &&
        it->second.expiry > now_epoch_seconds()) {
      status = ClaimStatus::kBusy;
    } else {
      const double expiry = now_epoch_seconds() + lease_ttl_;
      append_locked(seg, format_lease(key, owner_, expiry));
      leases_[key] = Lease{owner_, expiry};
      status = ClaimStatus::kAcquired;
    }
  }
  ::flock(seg.fd, LOCK_UN);
  return status;
}

CampaignStore::ClaimStatus CampaignStore::claim_point(std::uint64_t key) {
  return claim(key, false);
}

CampaignStore::ClaimStatus CampaignStore::claim_baseline(std::uint64_t key) {
  return claim(key, true);
}

void CampaignStore::release(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = leases_.find(key);
  if (it == leases_.end() || it->second.owner != owner_) return;
  leases_.erase(it);
  Segment& seg = segments_[segment_of(key)];
  if (!ensure_open(seg)) return;
  ::flock(seg.fd, LOCK_EX);
  append_locked(seg, format_release(key, owner_));
  ::flock(seg.fd, LOCK_UN);
}

void CampaignStore::release_point(std::uint64_t key) { release(key); }
void CampaignStore::release_baseline(std::uint64_t key) { release(key); }

void CampaignStore::refresh() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  for (Segment& seg : segments_) {
    if (seg.fd < 0 && !std::filesystem::exists(seg.path, ec)) continue;
    if (!ensure_open(seg)) continue;
    // Shared lock: appenders write whole lines under the exclusive lock,
    // so a scan never observes a half-written record.
    ::flock(seg.fd, LOCK_SH);
    scan_segment(seg);
    ::flock(seg.fd, LOCK_UN);
  }
}

std::size_t CampaignStore::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  std::error_code ec;
  for (int i = 0; i < kSegments; ++i) {
    Segment& seg = segments_[i];
    if (seg.fd < 0 && !std::filesystem::exists(seg.path, ec)) continue;
    if (!ensure_open(seg)) continue;
    ::flock(seg.fd, LOCK_EX);
    scan_segment(seg);  // fold in everything before rewriting

    struct stat st;
    std::size_t old_lines = 0;
    if (::fstat(seg.fd, &st) == 0 && st.st_size > 0) {
      std::string all(static_cast<std::size_t>(st.st_size), '\0');
      std::size_t got = 0;
      while (got < all.size()) {
        const ssize_t n = ::pread(seg.fd, all.data() + got, all.size() - got,
                                  static_cast<off_t>(got));
        if (n <= 0) break;
        got += static_cast<std::size_t>(n);
      }
      for (std::size_t at = 0; at < got; ++at) {
        if (all[at] == '\n') ++old_lines;
      }
    }

    // The rewrite is in place (same inode), so append fds held by other
    // live processes stay valid; their offset trackers notice the shrink
    // and rescan. A result present only in a torn line is lost — it is a
    // cache, the cost is one re-simulation.
    std::string content = std::string(kSegHeader) + "\n";
    std::size_t new_lines = 1;
    for (const auto& [key, value] : points_) {
      if (segment_of(key) != i) continue;
      content += format_point_record(key, value);
      ++new_lines;
    }
    for (const auto& [key, goodput] : baselines_) {
      if (segment_of(key) != i) continue;
      content += format_baseline_record(key, goodput);
      ++new_lines;
    }
    if (::ftruncate(seg.fd, 0) == 0) {
      const char* data = content.data();
      std::size_t left = content.size();
      while (left > 0) {
        const ssize_t n = ::write(seg.fd, data, left);
        if (n <= 0) break;
        data += n;
        left -= static_cast<std::size_t>(n);
      }
      seg.scanned = content.size() - left;
      seg.header_ok = true;
      if (old_lines > new_lines) dropped += old_lines - new_lines;
    }
    ::flock(seg.fd, LOCK_UN);
  }
  return dropped;
}

}  // namespace pdos::sweep
