// Batched replicate execution (DESIGN.md §14).
//
// Every statistical claim in the paper is a mean over seed-varied
// replicates of the SAME grid point: identical topology, route tables,
// pulse train, and measurement windows — only the seed (and therefore the
// RNG streams) differs. `ReplicateBatch` exploits that: it keeps R warm
// workspace slots (a flat structure-of-arrays of per-replicate simulators,
// each of whose hot flow state is already the PR 5 flat-array layout) and
// executes the R replicates of one point as co-resident simulations,
// round-robining them through `ScenarioWorkspace::advance_run` in bounded
// virtual-time slices. The shared immutable inputs — config, attack plan,
// control — are materialized once per point by the caller (run_sweep
// computes the attack plan once per replicate group instead of once per
// replicate).
//
// Determinism contract: every replicate keeps its OWN Scheduler, arena, and
// seed-derived streams, and the sliced loop is the monolithic `run()` loop
// split at arbitrary horizons (the scheduler pops in (time, rank) order
// regardless of how run_until partitions the horizon), so results are
// bit-identical to running each replicate sequentially — counters, bins,
// CSV bytes, golden digests, and point-cache keys are all unchanged.
// Pinned by tests/sweep/replicate_batch_test.cpp.
//
// Backend tiers:
//   - kFull / kFast / kHybrid, shards == 1: time-sliced co-resident loop.
//   - kFluid: the solver is a pure function of (config minus seed, attack,
//     control) — run_fluid_backend never reads config.seed — so ONE solve
//     serves every replicate slot; the batch runs slot 0 and fans the
//     result out, an ~R× replicate-throughput win (the floor BENCH_replicate
//     gates). Bit-identical because the sequential path computes the exact
//     same bits R times.
//   - shards > 1: the PDES engine drives its own round loop; replicates
//     fall back to sequential execution on the warm slots.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/experiment.hpp"

namespace pdos::sweep {

struct ReplicateBatchOptions {
  /// Virtual-time quantum of the round-robin: each slot advances this far
  /// before the next slot runs. Purely a wall-clock locality knob — results
  /// are bit-identical at any slice (DESIGN.md §14).
  Time slice = ms(250);
};

/// R co-resident replicate simulations of one sweep point. Reusable: slots
/// stay warm across calls (arena blocks, scheduler slabs, container
/// capacities), exactly like a pooled ScenarioWorkspace, and the slot
/// vector grows to the largest R ever requested.
class ReplicateBatch {
 public:
  explicit ReplicateBatch(ReplicateBatchOptions options = {});
  ~ReplicateBatch();
  ReplicateBatch(const ReplicateBatch&) = delete;
  ReplicateBatch& operator=(const ReplicateBatch&) = delete;

  /// Run `config` once per seed (config.seed is overridden slot by slot)
  /// and return the results in seed order. Bit-identical to calling
  /// ScenarioWorkspace::run once per seed.
  std::vector<RunResult> run(const ScenarioConfig& config,
                             const std::optional<PulseTrain>& attack,
                             const RunControl& control,
                             const std::vector<std::uint64_t>& seeds);

  /// Baseline (no-attack) goodput rates, one per seed.
  std::vector<BitRate> baseline(const ScenarioConfig& config,
                                const RunControl& control,
                                const std::vector<std::uint64_t>& seeds);

  /// Gain points, one per seed; `baselines[i]` normalizes `seeds[i]`.
  std::vector<GainMeasurement> gain(const ScenarioConfig& config,
                                    const PulseTrain& train, double kappa,
                                    const RunControl& control,
                                    const std::vector<BitRate>& baselines,
                                    const std::vector<std::uint64_t>& seeds);

  /// Warm slots currently held (never shrinks).
  std::size_t slots() const { return slots_.size(); }

 private:
  void ensure_slots(std::size_t n);

  ReplicateBatchOptions options_;
  std::vector<std::unique_ptr<ScenarioWorkspace>> slots_;
};

}  // namespace pdos::sweep
