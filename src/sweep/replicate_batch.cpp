#include "sweep/replicate_batch.hpp"

#include <utility>

#include "util/assert.hpp"

namespace pdos::sweep {

ReplicateBatch::ReplicateBatch(ReplicateBatchOptions options)
    : options_(options) {
  PDOS_REQUIRE(options_.slice > 0.0, "ReplicateBatch: slice must be > 0");
}

ReplicateBatch::~ReplicateBatch() = default;

void ReplicateBatch::ensure_slots(std::size_t n) {
  while (slots_.size() < n) {
    slots_.push_back(std::make_unique<ScenarioWorkspace>());
  }
}

std::vector<RunResult> ReplicateBatch::run(
    const ScenarioConfig& config, const std::optional<PulseTrain>& attack,
    const RunControl& control, const std::vector<std::uint64_t>& seeds) {
  std::vector<RunResult> results;
  if (seeds.empty()) return results;
  config.validate();
  ensure_slots(seeds.size());
  results.reserve(seeds.size());

  if (config.backend == Backend::kFluid) {
    // The fluid solver is deterministic in (config minus seed, attack,
    // control): run_fluid_backend never reads config.seed, so the R
    // per-seed sequential runs would compute the exact same bits R times.
    // Solve once and fan the result out — this is where the batch's ~R×
    // replicate-throughput floor comes from (BENCH_replicate.json).
    ScenarioConfig first = config;
    first.seed = seeds.front();
    RunResult solved = slots_.front()->run(first, attack, control);
    for (std::size_t i = 0; i + 1 < seeds.size(); ++i) {
      results.push_back(solved);
    }
    results.push_back(std::move(solved));
    return results;
  }

  if (config.shards > 1) {
    // The PDES engine owns its round loop; run the replicates back to back
    // on the warm slots (still one lease, still shared planning upstream).
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ScenarioConfig replicate = config;
      replicate.seed = seeds[i];
      results.push_back(slots_[i]->run(replicate, attack, control));
    }
    return results;
  }

  // Co-resident packet replicates: begin every slot, then round-robin them
  // through bounded virtual-time slices until all reach the horizon. Each
  // slot owns its scheduler and seed streams, so slicing only changes WHEN
  // (in wall time) a replicate's events execute, never which or in what
  // order. Abort all in-flight runs if any slot throws, so the slots come
  // back reusable.
  try {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ScenarioConfig replicate = config;
      replicate.seed = seeds[i];
      slots_[i]->begin_run(replicate, attack, control);
    }
    const Time horizon = control.horizon();
    bool done = false;
    for (Time slice_end = options_.slice; !done;
         slice_end += options_.slice) {
      const Time target = std::min(slice_end, horizon);
      done = true;
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        done = slots_[i]->advance_run(target) && done;
      }
    }
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      results.push_back(slots_[i]->finish_run());
    }
  } catch (...) {
    for (auto& slot : slots_) slot->abort_run();
    throw;
  }
  return results;
}

std::vector<BitRate> ReplicateBatch::baseline(
    const ScenarioConfig& config, const RunControl& control,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<RunResult> runs = run(config, std::nullopt, control, seeds);
  std::vector<BitRate> goodputs;
  goodputs.reserve(runs.size());
  for (const RunResult& r : runs) goodputs.push_back(r.goodput_rate);
  return goodputs;
}

std::vector<GainMeasurement> ReplicateBatch::gain(
    const ScenarioConfig& config, const PulseTrain& train, double kappa,
    const RunControl& control, const std::vector<BitRate>& baselines,
    const std::vector<std::uint64_t>& seeds) {
  PDOS_REQUIRE(baselines.size() == seeds.size(),
               "ReplicateBatch::gain: one baseline per seed");
  std::vector<RunResult> runs = run(config, train, control, seeds);
  std::vector<GainMeasurement> points;
  points.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    points.push_back(finish_gain(config, train, kappa, baselines[i],
                                 std::move(runs[i])));
  }
  return points;
}

}  // namespace pdos::sweep
