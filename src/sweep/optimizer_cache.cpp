#include "sweep/optimizer_cache.hpp"

namespace pdos::sweep {

namespace {

/// The scenario whose fluid tier the cached values describe. The search's
/// own backend field selects the CONFIRM tier (and is coerced kFull/kFast
/// by the optimizer); the fluid phase always runs kFluid, so two searches
/// that differ only in confirm tier share their surrogate scores.
ScenarioConfig fluid_scenario(const GammaSearch& search) {
  ScenarioConfig config = search.scenario;
  config.backend = Backend::kFluid;
  return config;
}

}  // namespace

std::uint64_t fluid_gain_key(const GammaSearch& search, double gamma) {
  const double extra[] = {search.textent, search.rattack, search.kappa,
                          gamma};
  return scenario_digest("fluid-gain", fluid_scenario(search), search.control,
                         extra, 4);
}

std::uint64_t fluid_baseline_key(const GammaSearch& search) {
  return scenario_digest("fluid-baseline", fluid_scenario(search),
                         search.control, nullptr, 0);
}

std::optional<BitRate> FluidGainPointStoreCache::lookup_baseline(
    const GammaSearch& search) {
  double goodput = 0.0;
  if (!store_.lookup_baseline(fluid_baseline_key(search), goodput)) {
    return std::nullopt;
  }
  return goodput;
}

void FluidGainPointStoreCache::store_baseline(const GammaSearch& search,
                                              BitRate baseline) {
  store_.store_baseline(fluid_baseline_key(search), baseline);
}

std::optional<double> FluidGainPointStoreCache::lookup_gain(
    const GammaSearch& search, double gamma) {
  double gain = 0.0;
  if (!store_.lookup_baseline(fluid_gain_key(search, gamma), gain)) {
    return std::nullopt;
  }
  return gain;
}

void FluidGainPointStoreCache::store_gain(const GammaSearch& search,
                                          double gamma, double gain) {
  store_.store_baseline(fluid_gain_key(search, gamma), gain);
}

}  // namespace pdos::sweep
