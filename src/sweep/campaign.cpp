#include "sweep/campaign.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "sweep/campaign_store.hpp"
#include "sweep/point_cache.hpp"
#include "util/assert.hpp"

namespace pdos::sweep {

namespace {

void fill_from_cache(PointResult& slot, const CachedPoint& hit) {
  slot.c_psi = hit.c_psi;
  slot.analytic_degradation = hit.analytic_degradation;
  slot.analytic_gain = hit.analytic_gain;
  slot.shrew = hit.shrew;
  slot.baseline_goodput = hit.baseline_goodput;
  slot.goodput = hit.goodput;
  slot.measured_degradation = hit.measured_degradation;
  slot.measured_gain = hit.measured_gain;
  slot.utilization = hit.utilization;
  slot.fairness = hit.fairness;
  slot.timeouts = hit.timeouts;
  slot.fast_recoveries = hit.fast_recoveries;
  slot.attack_packets = hit.attack_packets;
  slot.events = hit.events;
  slot.status = PointStatus::kOk;
}

/// Insert every task key of `spec` (points + deduped baselines) into `keys`.
void collect_task_keys(const SweepSpec& spec,
                       std::unordered_set<std::uint64_t>& keys) {
  PairIndex baseline_pairs;
  std::size_t next_slot = 0;
  for (const PointSpec& point : spec.enumerate()) {
    const std::uint64_t seed = replicate_seed(spec.base_seed, point.replicate);
    keys.insert(point_key(spec, point, seed));
    if (baseline_pairs.insert(point.flows, point.replicate, next_slot)
            .second) {
      ++next_slot;
      keys.insert(baseline_key(spec, point, seed));
    }
  }
}

/// Task count run_sweep will report for `spec` (points + unique baselines).
std::size_t spec_task_total(const SweepSpec& spec) {
  const std::vector<PointSpec> points = spec.enumerate();
  PairIndex pairs;
  std::size_t baselines = 0;
  for (const PointSpec& point : points) {
    if (pairs.insert(point.flows, point.replicate, baselines).second) {
      ++baselines;
    }
  }
  return points.size() + baselines;
}

std::ofstream open_output(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
  return std::ofstream(path);
}

/// One worker process: run every spec through the ordinary sweep engine
/// against the shared store, reporting progress as one text line per event
/// on `report_fd`. Lines are shorter than PIPE_BUF, so each lands atomically
/// in the parent's pipe.
int worker_main(const std::vector<CampaignSpec>& specs,
                const CampaignOptions& options, int report_fd) {
  CampaignStore store(options.store_dir, options.lease_ttl_seconds);
  FILE* report = ::fdopen(report_fd, "w");
  bool any_failed = false;
  for (std::size_t si = 0; si < specs.size(); ++si) {
    SweepOptions sweep_options;
    sweep_options.threads = options.threads;
    sweep_options.cancel_on_failure = !options.keep_going;
    sweep_options.store = &store;
    sweep_options.claim_poll_seconds = options.claim_poll_seconds;
    if (report != nullptr) {
      sweep_options.on_progress = [&](const SweepProgress& p) {
        std::fprintf(report, "p %zu %zu %zu %zu\n", si, p.done, p.total,
                     p.cached);
        std::fflush(report);
      };
    }
    const SweepResult r = run_sweep(specs[si].spec, sweep_options);
    if (report != nullptr) {
      std::fprintf(report, "f %zu %zu %zu %zu %zu %d\n", si, r.completed(),
                   r.failures(), r.cache_hits, r.simulated,
                   r.cancelled ? 1 : 0);
      std::fflush(report);
    }
    if (r.failures() > 0 || r.cancelled) any_failed = true;
  }
  if (report != nullptr) std::fclose(report);
  return any_failed ? 1 : 0;
}

}  // namespace

bool CampaignResult::ok() const {
  if (worker_failures > 0) return false;
  for (const CampaignSpecResult& s : specs) {
    if (s.result.failures() > 0 || s.result.cancelled) return false;
    for (const PointResult& p : s.result.points) {
      if (p.status != PointStatus::kOk) return false;
    }
  }
  return true;
}

std::size_t count_unique_tasks(const SweepSpec& spec) {
  std::unordered_set<std::uint64_t> keys;
  collect_task_keys(spec, keys);
  return keys.size();
}

SweepResult replay_from_store(const SweepSpec& spec, const PointStore& store) {
  const std::vector<PointSpec> points = spec.enumerate();
  SweepResult result;
  result.points.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointResult& slot = result.points[i];
    slot.index = i;
    slot.point = points[i];
    slot.seed = replicate_seed(spec.base_seed, points[i].replicate);
    CachedPoint hit;
    if (store.lookup_point(point_key(spec, slot.point, slot.seed), hit)) {
      fill_from_cache(slot, hit);
      ++result.cache_hits;
    }
  }
  return result;
}

CampaignResult run_campaign(const std::vector<CampaignSpec>& specs,
                            const CampaignOptions& options) {
  PDOS_REQUIRE(!specs.empty(), "run_campaign: no specs");
  const int workers = std::max(1, options.workers);
  const auto start = std::chrono::steady_clock::now();

  CampaignResult campaign;
  {
    std::unordered_set<std::uint64_t> keys;
    for (const CampaignSpec& spec : specs) {
      collect_task_keys(spec.spec, keys);
    }
    campaign.unique_tasks = keys.size();
  }
  std::vector<std::size_t> spec_totals(specs.size(), 0);
  for (std::size_t si = 0; si < specs.size(); ++si) {
    spec_totals[si] = spec_task_total(specs[si].spec);
  }

  // Fork the workers, each with a report pipe. Fork happens before this
  // process creates any thread; each child builds its own ThreadPool.
  std::vector<pid_t> pids;
  std::vector<int> report_fds;
  for (int w = 0; w < workers; ++w) {
    int fds[2];
    PDOS_REQUIRE(::pipe(fds) == 0, "run_campaign: pipe failed");
    const pid_t pid = ::fork();
    PDOS_REQUIRE(pid >= 0, "run_campaign: fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      for (int other : report_fds) ::close(other);
      int code = 1;
      try {
        code = worker_main(specs, options, fds[1]);
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    ::close(fds[1]);
    pids.push_back(pid);
    report_fds.push_back(fds[0]);
  }

  // Merged progress state: every worker walks every task of every spec, so
  // a spec's campaign progress is its furthest worker.
  std::vector<std::vector<std::size_t>> done(specs.size());
  std::vector<std::vector<std::size_t>> cached(specs.size());
  for (std::size_t si = 0; si < specs.size(); ++si) {
    done[si].assign(static_cast<std::size_t>(workers), 0);
    cached[si].assign(static_cast<std::size_t>(workers), 0);
  }
  const auto emit_progress = [&](int alive) {
    if (!options.on_progress) return;
    CampaignProgress progress;
    progress.workers_alive = alive;
    for (std::size_t si = 0; si < specs.size(); ++si) {
      std::size_t best_done = 0;
      std::size_t best_cached = 0;
      for (int w = 0; w < workers; ++w) {
        if (done[si][static_cast<std::size_t>(w)] > best_done) {
          best_done = done[si][static_cast<std::size_t>(w)];
          best_cached = cached[si][static_cast<std::size_t>(w)];
        }
      }
      progress.done += best_done;
      progress.cached += best_cached;
      progress.total += spec_totals[si];
    }
    progress.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    options.on_progress(progress);
  };

  std::unique_ptr<CampaignStore> store;  // parent's view, opened lazily
  const auto ensure_store = [&]() -> CampaignStore& {
    if (!store) {
      store = std::make_unique<CampaignStore>(options.store_dir,
                                              options.lease_ttl_seconds);
    }
    return *store;
  };

  // Drain the report pipes until every worker closes its end.
  std::vector<std::string> buffers(static_cast<std::size_t>(workers));
  int alive = workers;
  auto last_partial = start;
  while (alive > 0) {
    std::vector<pollfd> fds(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      fds[static_cast<std::size_t>(w)] =
          pollfd{report_fds[static_cast<std::size_t>(w)], POLLIN, 0};
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    bool saw_report = false;
    for (int w = 0; w < workers; ++w) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (report_fds[wi] < 0 ||
          (fds[wi].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      char buf[4096];
      const ssize_t n = ::read(report_fds[wi], buf, sizeof(buf));
      if (n <= 0) {
        ::close(report_fds[wi]);
        report_fds[wi] = -1;
        --alive;
        continue;
      }
      buffers[wi].append(buf, static_cast<std::size_t>(n));
      std::size_t begin = 0;
      while (true) {
        const std::size_t nl = buffers[wi].find('\n', begin);
        if (nl == std::string::npos) break;
        const std::string line = buffers[wi].substr(begin, nl - begin);
        begin = nl + 1;
        std::size_t si = 0;
        std::size_t a = 0, b = 0, c = 0, d = 0;
        int flag = 0;
        if (std::sscanf(line.c_str(), "p %zu %zu %zu %zu", &si, &a, &b,
                        &c) == 4 &&
            si < specs.size()) {
          done[si][wi] = a;
          cached[si][wi] = c;
          saw_report = true;
        } else if (std::sscanf(line.c_str(), "f %zu %zu %zu %zu %zu %d", &si,
                               &a, &b, &c, &d, &flag) == 6 &&
                   si < specs.size()) {
          campaign.worker_simulated += d;
          done[si][wi] = spec_totals[si];
          saw_report = true;
        }
      }
      buffers[wi].erase(0, begin);
    }
    if (saw_report) emit_progress(alive);

    if (options.partial_interval_seconds > 0.0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_partial).count() >=
          options.partial_interval_seconds) {
        last_partial = now;
        CampaignStore& view = ensure_store();
        view.refresh();
        for (const CampaignSpec& spec : specs) {
          if (spec.csv_path.empty()) continue;
          const SweepResult partial = replay_from_store(spec.spec, view);
          std::ofstream out = open_output(spec.csv_path + ".partial");
          if (out.good()) partial.write_csv(out);
        }
      }
    }
  }

  for (pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++campaign.worker_failures;
    }
  }

  // Merge pass: replay every spec through the full engine against the
  // joined store. All-hit when the workers finished the grid (so the CSVs
  // are byte-identical to a single-process run); stragglers from crashed
  // workers get simulated right here.
  CampaignStore& merged = ensure_store();
  merged.refresh();
  for (const CampaignSpec& spec : specs) {
    CampaignSpecResult spec_result;
    SweepOptions sweep_options;
    sweep_options.threads = options.threads;
    sweep_options.cancel_on_failure = !options.keep_going;
    sweep_options.store = &merged;
    sweep_options.claim_poll_seconds = options.claim_poll_seconds;
    spec_result.result = run_sweep(spec.spec, sweep_options);
    spec_result.unique_tasks = count_unique_tasks(spec.spec);
    campaign.final_simulated += spec_result.result.simulated;
    if (!spec.csv_path.empty()) {
      std::ofstream out = open_output(spec.csv_path);
      PDOS_REQUIRE(out.good(), "cannot open output: " + spec.csv_path);
      spec_result.result.write_csv(out);
    }
    if (!spec.json_path.empty()) {
      std::ofstream out = open_output(spec.json_path);
      PDOS_REQUIRE(out.good(), "cannot open output: " + spec.json_path);
      spec_result.result.write_json(out);
    }
    campaign.specs.push_back(std::move(spec_result));
  }

  campaign.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return campaign;
}

}  // namespace pdos::sweep
