#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/model.hpp"
#include "core/planner.hpp"
#include "io/csv.hpp"
#include "sweep/point_cache.hpp"
#include "sweep/thread_pool.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pdos::sweep {

const char* scenario_kind_name(ScenarioKind kind) {
  return kind == ScenarioKind::kNs2Dumbbell ? "ns2" : "testbed";
}

std::pair<std::size_t, bool> PairIndex::insert(int a, int b,
                                               std::size_t slot) {
  const std::uint64_t key = key_of(a, b);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::uint64_t k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return {it->slot, false};
  entries_.insert(it, Entry{key, slot});
  return {slot, true};
}

std::size_t PairIndex::at(int a, int b) const {
  const std::uint64_t key = key_of(a, b);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::uint64_t k) { return e.key < k; });
  PDOS_CHECK_MSG(it != entries_.end() && it->key == key,
                 "PairIndex::at: key not present");
  return it->slot;
}

bool PairIndex::contains(int a, int b) const {
  const std::uint64_t key = key_of(a, b);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::uint64_t k) { return e.key < k; });
  return it != entries_.end() && it->key == key;
}

std::uint64_t replicate_seed(std::uint64_t base_seed, int replicate) {
  // Stream tag keeps sweep seeds disjoint from the in-run component
  // streams derived from the same base (see experiment.cpp).
  constexpr std::uint64_t kReplicateStream = 0x73776565'70000000ULL;  // "sweep"
  return derive_seed(base_seed,
                     kReplicateStream + static_cast<std::uint64_t>(replicate));
}

ScenarioConfig SweepSpec::make_scenario(const PointSpec& point) const {
  ScenarioConfig config = scenario == ScenarioKind::kNs2Dumbbell
                              ? ScenarioConfig::ns2_dumbbell(point.flows)
                              : ScenarioConfig::testbed(point.flows);
  config.queue = queue;
  config.backend = backend;
  config.hybrid_foreground = hybrid_foreground;
  config.shards = shards;
  config.seed = replicate_seed(base_seed, point.replicate);
  return config;
}

void SweepSpec::validate() const {
  PDOS_REQUIRE(replicates >= 1, "SweepSpec: need at least one replicate");
  PDOS_REQUIRE(gamma_points >= 2, "SweepSpec: need gamma_points >= 2");
  if (explicit_points.empty()) {
    PDOS_REQUIRE(!flow_counts.empty(), "SweepSpec: flow_counts is empty");
    PDOS_REQUIRE(!textents.empty(), "SweepSpec: textents is empty");
    PDOS_REQUIRE(!rattacks.empty(), "SweepSpec: rattacks is empty");
    for (int flows : flow_counts) {
      PDOS_REQUIRE(flows >= 1, "SweepSpec: flow counts must be >= 1");
    }
  }
  PDOS_REQUIRE(control.measure > 0.0, "SweepSpec: measure window must be > 0");
}

std::vector<PointSpec> SweepSpec::enumerate() const {
  validate();
  std::vector<PointSpec> points;
  if (!explicit_points.empty()) {
    for (const PointSpec& point : explicit_points) {
      for (int rep = 0; rep < replicates; ++rep) {
        PointSpec copy = point;
        copy.replicate = rep;
        points.push_back(copy);
      }
    }
    return points;
  }
  for (int flows : flow_counts) {
    // C_Ψ depends only on the victim profile and pulse shape; reuse the
    // scenario across the inner axes.
    PointSpec probe;
    probe.flows = flows;
    const ScenarioConfig scenario_config = make_scenario(probe);
    const VictimProfile victim = scenario_config.victim_profile();
    for (Time textent : textents) {
      for (BitRate rattack : rattacks) {
        const double c_attack = rattack / scenario_config.bottleneck;
        std::vector<double> grid = gammas;
        if (grid.empty()) {
          const double cpsi = c_psi(victim, textent, c_attack);
          const double lo = std::max(0.1, cpsi + 0.02);
          const double hi = 0.95;
          for (int i = 0; i < gamma_points; ++i) {
            grid.push_back(lo + (hi - lo) * i / (gamma_points - 1));
          }
        }
        for (double gamma : grid) {
          if (gamma <= 0.0 || gamma >= 1.0) continue;
          if (gamma > c_attack) continue;  // needs T_space >= 0
          for (int rep = 0; rep < replicates; ++rep) {
            PointSpec point;
            point.flows = flows;
            point.textent = textent;
            point.rattack = rattack;
            point.gamma = gamma;
            point.kappa = kappa;
            point.replicate = rep;
            points.push_back(point);
          }
        }
      }
    }
  }
  return points;
}

std::size_t SweepResult::failures() const {
  std::size_t n = 0;
  for (const auto& point : points) {
    if (point.status == PointStatus::kFailed) ++n;
  }
  return n;
}

std::size_t SweepResult::completed() const {
  std::size_t n = 0;
  for (const auto& point : points) {
    if (point.status == PointStatus::kOk) ++n;
  }
  return n;
}

namespace {

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string fmt(std::uint64_t value) {
  return std::to_string(value);
}

const char* status_name(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kFailed: return "failed";
    case PointStatus::kSkipped: return "skipped";
  }
  return "?";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SweepResult::write_csv(std::ostream& out) const {
  CsvWriter csv(out, {"index", "scenario_flows", "textent_ms", "rattack_mbps",
                      "gamma", "kappa", "replicate", "seed", "status",
                      "c_psi", "analytic_degradation", "analytic_gain",
                      "shrew", "baseline_mbps", "goodput_mbps",
                      "measured_degradation", "measured_gain", "utilization",
                      "fairness", "timeouts", "fast_recoveries",
                      "attack_packets", "events", "error"});
  for (const auto& r : points) {
    csv.row({fmt(static_cast<std::uint64_t>(r.index)),
             std::to_string(r.point.flows), fmt(to_ms(r.point.textent)),
             fmt(to_mbps(r.point.rattack)), fmt(r.point.gamma),
             fmt(r.point.kappa), std::to_string(r.point.replicate),
             fmt(r.seed), status_name(r.status), fmt(r.c_psi),
             fmt(r.analytic_degradation), fmt(r.analytic_gain),
             r.shrew ? "1" : "0", fmt(to_mbps(r.baseline_goodput)),
             fmt(to_mbps(r.goodput)), fmt(r.measured_degradation),
             fmt(r.measured_gain), fmt(r.utilization), fmt(r.fairness),
             fmt(r.timeouts), fmt(r.fast_recoveries), fmt(r.attack_packets),
             fmt(r.events), r.error});
  }
}

void SweepResult::write_json(std::ostream& out) const {
  out << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i];
    out << "  {\"index\": " << r.index << ", \"flows\": " << r.point.flows
        << ", \"textent_ms\": " << fmt(to_ms(r.point.textent))
        << ", \"rattack_mbps\": " << fmt(to_mbps(r.point.rattack))
        << ", \"gamma\": " << fmt(r.point.gamma)
        << ", \"kappa\": " << fmt(r.point.kappa)
        << ", \"replicate\": " << r.point.replicate
        << ", \"seed\": " << r.seed
        << ", \"status\": \"" << status_name(r.status) << "\""
        << ", \"c_psi\": " << fmt(r.c_psi)
        << ", \"analytic_degradation\": " << fmt(r.analytic_degradation)
        << ", \"analytic_gain\": " << fmt(r.analytic_gain)
        << ", \"shrew\": " << (r.shrew ? "true" : "false")
        << ", \"baseline_mbps\": " << fmt(to_mbps(r.baseline_goodput))
        << ", \"goodput_mbps\": " << fmt(to_mbps(r.goodput))
        << ", \"measured_degradation\": " << fmt(r.measured_degradation)
        << ", \"measured_gain\": " << fmt(r.measured_gain)
        << ", \"utilization\": " << fmt(r.utilization)
        << ", \"fairness\": " << fmt(r.fairness)
        << ", \"timeouts\": " << r.timeouts
        << ", \"fast_recoveries\": " << r.fast_recoveries
        << ", \"attack_packets\": " << r.attack_packets
        << ", \"events\": " << r.events
        << ", \"error\": \"" << json_escape(r.error) << "\"}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

namespace {

/// Baseline goodput for one (flows, replicate) pair.
struct BaselineSlot {
  PointSpec probe;  // flows + replicate; attack axes unused
  BitRate goodput = 0.0;
  bool ok = false;
  std::string error;
};

/// Serialized progress bookkeeping shared by all workers.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total,
                const std::function<void(const SweepProgress&)>& callback)
      : total_(total),
        callback_(callback),
        start_(std::chrono::steady_clock::now()) {}

  void tick() {
    if (!callback_) {
      done_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    SweepProgress progress;
    progress.done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    progress.total = total_;
    progress.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (progress.done > 0) {
      progress.eta_seconds = progress.elapsed_seconds /
                             static_cast<double>(progress.done) *
                             static_cast<double>(total_ - progress.done);
    }
    callback_(progress);
  }

 private:
  std::size_t total_;
  const std::function<void(const SweepProgress&)>& callback_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::mutex mutex_;
};

/// Hands out warm `ScenarioWorkspace`s to sweep tasks. Each worker thread
/// runs tasks serially, so the pool never holds more workspaces than
/// threads; a released workspace keeps its arena blocks, scheduler slabs,
/// and container capacities hot for the next point.
class WorkspacePool {
 public:
  std::unique_ptr<ScenarioWorkspace> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        auto ws = std::move(idle_.back());
        idle_.pop_back();
        return ws;
      }
    }
    return std::make_unique<ScenarioWorkspace>();
  }

  void release(std::unique_ptr<ScenarioWorkspace> ws) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(ws));
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<ScenarioWorkspace>> idle_;
};

/// RAII acquire/release so exception paths return the workspace too.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(WorkspacePool& pool)
      : pool_(pool), ws_(pool.acquire()) {}
  ~WorkspaceLease() { pool_.release(std::move(ws_)); }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  ScenarioWorkspace& operator*() { return *ws_; }
  ScenarioWorkspace* operator->() { return ws_.get(); }

 private:
  WorkspacePool& pool_;
  std::unique_ptr<ScenarioWorkspace> ws_;
};

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  const std::vector<PointSpec> points = spec.enumerate();

  // Unique (flows, replicate) pairs, in stable order of first appearance.
  PairIndex baseline_index;
  std::vector<BaselineSlot> baselines;
  for (const PointSpec& point : points) {
    if (baseline_index.insert(point.flows, point.replicate, baselines.size())
            .second) {
      BaselineSlot slot;
      slot.probe = point;
      baselines.push_back(slot);
    }
  }

  SweepResult result;
  result.points.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointResult& slot = result.points[i];
    slot.index = i;
    slot.point = points[i];
    slot.seed = replicate_seed(spec.base_seed, points[i].replicate);
  }

  ThreadPool pool(options.threads);
  result.threads = pool.size();
  ProgressMeter meter(baselines.size() + points.size(), options.on_progress);
  std::atomic<bool> cancel{false};
  std::atomic<std::size_t> cache_hits{0};
  WorkspacePool workspaces;
  std::unique_ptr<PointCache> cache;
  if (!options.cache_path.empty()) {
    cache = std::make_unique<PointCache>(options.cache_path);
  }
  const auto start = std::chrono::steady_clock::now();

  // Phase 1: baselines. Each runs the no-attack scenario with the same
  // seed as the attack points it will normalize.
  parallel_for(pool, baselines.size(), [&](std::size_t i) {
    BaselineSlot& slot = baselines[i];
    if (cancel.load(std::memory_order_relaxed)) {
      slot.error = "skipped: sweep cancelled";
      meter.tick();
      return;
    }
    try {
      const std::uint64_t seed =
          replicate_seed(spec.base_seed, slot.probe.replicate);
      const std::uint64_t key =
          cache ? baseline_key(spec, slot.probe, seed) : 0;
      double cached = 0.0;
      if (cache && cache->lookup_baseline(key, cached)) {
        slot.goodput = cached;
        cache_hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        const ScenarioConfig scenario = spec.make_scenario(slot.probe);
        WorkspaceLease ws(workspaces);
        slot.goodput = ws->baseline(scenario, spec.control);
        if (cache) cache->store_baseline(key, slot.goodput);
      }
      PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
      if (options.cancel_on_failure) {
        cancel.store(true, std::memory_order_relaxed);
      }
    }
    meter.tick();
  });

  // Phase 2: the points themselves.
  parallel_for(pool, points.size(), [&](std::size_t i) {
    PointResult& slot = result.points[i];
    if (cancel.load(std::memory_order_relaxed)) {
      meter.tick();
      return;  // stays kSkipped
    }
    try {
      // A cached point carries everything, including its baseline — it can
      // complete even when this run's baseline task failed.
      const std::uint64_t key =
          cache ? point_key(spec, slot.point, slot.seed) : 0;
      CachedPoint hit;
      if (cache && cache->lookup_point(key, hit)) {
        slot.c_psi = hit.c_psi;
        slot.analytic_degradation = hit.analytic_degradation;
        slot.analytic_gain = hit.analytic_gain;
        slot.shrew = hit.shrew;
        slot.baseline_goodput = hit.baseline_goodput;
        slot.goodput = hit.goodput;
        slot.measured_degradation = hit.measured_degradation;
        slot.measured_gain = hit.measured_gain;
        slot.utilization = hit.utilization;
        slot.fairness = hit.fairness;
        slot.timeouts = hit.timeouts;
        slot.fast_recoveries = hit.fast_recoveries;
        slot.attack_packets = hit.attack_packets;
        slot.events = hit.events;
        slot.status = PointStatus::kOk;
        cache_hits.fetch_add(1, std::memory_order_relaxed);
        meter.tick();
        return;
      }

      const BaselineSlot& baseline =
          baselines[baseline_index.at(slot.point.flows, slot.point.replicate)];
      if (!baseline.ok) {
        throw std::runtime_error("baseline failed: " + baseline.error);
      }
      const ScenarioConfig scenario = spec.make_scenario(slot.point);

      AttackPlanRequest request;
      request.victim = scenario.victim_profile();
      request.textent = slot.point.textent;
      request.rattack = slot.point.rattack;
      request.kappa = slot.point.kappa;
      request.attack_packet_bytes = scenario.attack_packet_bytes;
      request.victim_min_rto = scenario.tcp.rto_min;
      const AttackPlan plan =
          plan_attack_at_gamma(request, slot.point.gamma);
      slot.c_psi = plan.c_psi;
      slot.analytic_degradation = plan.predicted_degradation;
      slot.analytic_gain = plan.predicted_gain;
      slot.shrew = plan.shrew_harmonic.has_value();

      GainMeasurement measured;
      {
        WorkspaceLease ws(workspaces);
        measured = ws->gain(scenario, plan.train, slot.point.kappa,
                            spec.control, baseline.goodput);
      }
      slot.baseline_goodput = baseline.goodput;
      slot.goodput = measured.run.goodput_rate;
      slot.measured_degradation = measured.degradation;
      slot.measured_gain = measured.gain;
      slot.utilization = measured.run.utilization;
      slot.fairness = measured.run.fairness_index;
      slot.timeouts = measured.run.total_timeouts;
      slot.fast_recoveries = measured.run.total_fast_recoveries;
      slot.attack_packets = measured.run.attack_packets_sent;
      slot.events = measured.run.events_executed;
      slot.status = PointStatus::kOk;
      if (cache) {
        CachedPoint record;
        record.c_psi = slot.c_psi;
        record.analytic_degradation = slot.analytic_degradation;
        record.analytic_gain = slot.analytic_gain;
        record.shrew = slot.shrew;
        record.baseline_goodput = slot.baseline_goodput;
        record.goodput = slot.goodput;
        record.measured_degradation = slot.measured_degradation;
        record.measured_gain = slot.measured_gain;
        record.utilization = slot.utilization;
        record.fairness = slot.fairness;
        record.timeouts = slot.timeouts;
        record.fast_recoveries = slot.fast_recoveries;
        record.attack_packets = slot.attack_packets;
        record.events = slot.events;
        cache->store_point(key, record);
      }
    } catch (const std::exception& e) {
      slot.status = PointStatus::kFailed;
      slot.error = e.what();
      if (options.cancel_on_failure) {
        cancel.store(true, std::memory_order_relaxed);
      }
    }
    meter.tick();
  });
  result.cache_hits = cache_hits.load(std::memory_order_relaxed);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.cancelled = cancel.load(std::memory_order_relaxed);
  return result;
}

}  // namespace pdos::sweep
