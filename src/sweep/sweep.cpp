#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/model.hpp"
#include "core/planner.hpp"
#include "io/csv.hpp"
#include "sweep/point_cache.hpp"
#include "sweep/replicate_batch.hpp"
#include "sweep/thread_pool.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pdos::sweep {

const char* scenario_kind_name(ScenarioKind kind) {
  return kind == ScenarioKind::kNs2Dumbbell ? "ns2" : "testbed";
}

std::pair<std::size_t, bool> PairIndex::insert(int a, int b,
                                               std::size_t slot) {
  const std::uint64_t key = key_of(a, b);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::uint64_t k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return {it->slot, false};
  entries_.insert(it, Entry{key, slot});
  return {slot, true};
}

std::size_t PairIndex::at(int a, int b) const {
  const std::uint64_t key = key_of(a, b);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::uint64_t k) { return e.key < k; });
  PDOS_CHECK_MSG(it != entries_.end() && it->key == key,
                 "PairIndex::at: key not present");
  return it->slot;
}

bool PairIndex::contains(int a, int b) const {
  const std::uint64_t key = key_of(a, b);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::uint64_t k) { return e.key < k; });
  return it != entries_.end() && it->key == key;
}

std::uint64_t replicate_seed(std::uint64_t base_seed, int replicate) {
  // Stream tag keeps sweep seeds disjoint from the in-run component
  // streams derived from the same base (see experiment.cpp).
  constexpr std::uint64_t kReplicateStream = 0x73776565'70000000ULL;  // "sweep"
  return derive_seed(base_seed,
                     kReplicateStream + static_cast<std::uint64_t>(replicate));
}

ScenarioConfig SweepSpec::make_scenario(const PointSpec& point) const {
  ScenarioConfig config = scenario == ScenarioKind::kNs2Dumbbell
                              ? ScenarioConfig::ns2_dumbbell(point.flows)
                              : ScenarioConfig::testbed(point.flows);
  config.queue = queue;
  config.backend = backend;
  config.hybrid_foreground = hybrid_foreground;
  config.shards = shards;
  config.seed = replicate_seed(base_seed, point.replicate);
  return config;
}

void SweepSpec::validate() const {
  PDOS_REQUIRE(replicates >= 1, "SweepSpec: need at least one replicate");
  PDOS_REQUIRE(gamma_points >= 2, "SweepSpec: need gamma_points >= 2");
  if (explicit_points.empty()) {
    PDOS_REQUIRE(!flow_counts.empty(), "SweepSpec: flow_counts is empty");
    PDOS_REQUIRE(!textents.empty(), "SweepSpec: textents is empty");
    PDOS_REQUIRE(!rattacks.empty(), "SweepSpec: rattacks is empty");
    for (int flows : flow_counts) {
      PDOS_REQUIRE(flows >= 1, "SweepSpec: flow counts must be >= 1");
    }
  }
  PDOS_REQUIRE(control.measure > 0.0, "SweepSpec: measure window must be > 0");
}

std::vector<PointSpec> SweepSpec::enumerate() const {
  validate();
  std::vector<PointSpec> points;
  if (!explicit_points.empty()) {
    for (const PointSpec& point : explicit_points) {
      for (int rep = 0; rep < replicates; ++rep) {
        PointSpec copy = point;
        copy.replicate = rep;
        points.push_back(copy);
      }
    }
    return points;
  }
  for (int flows : flow_counts) {
    // C_Ψ depends only on the victim profile and pulse shape; reuse the
    // scenario across the inner axes.
    PointSpec probe;
    probe.flows = flows;
    const ScenarioConfig scenario_config = make_scenario(probe);
    const VictimProfile victim = scenario_config.victim_profile();
    for (Time textent : textents) {
      for (BitRate rattack : rattacks) {
        const double c_attack = rattack / scenario_config.bottleneck;
        std::vector<double> grid = gammas;
        if (grid.empty()) {
          const double cpsi = c_psi(victim, textent, c_attack);
          const double lo = std::max(0.1, cpsi + 0.02);
          const double hi = 0.95;
          for (int i = 0; i < gamma_points; ++i) {
            grid.push_back(lo + (hi - lo) * i / (gamma_points - 1));
          }
        }
        for (double gamma : grid) {
          if (gamma <= 0.0 || gamma >= 1.0) continue;
          if (gamma > c_attack) continue;  // needs T_space >= 0
          for (int rep = 0; rep < replicates; ++rep) {
            PointSpec point;
            point.flows = flows;
            point.textent = textent;
            point.rattack = rattack;
            point.gamma = gamma;
            point.kappa = kappa;
            point.replicate = rep;
            points.push_back(point);
          }
        }
      }
    }
  }
  return points;
}

std::size_t SweepResult::failures() const {
  std::size_t n = 0;
  for (const auto& point : points) {
    if (point.status == PointStatus::kFailed) ++n;
  }
  return n;
}

std::size_t SweepResult::completed() const {
  std::size_t n = 0;
  for (const auto& point : points) {
    if (point.status == PointStatus::kOk) ++n;
  }
  return n;
}

namespace {

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string fmt(std::uint64_t value) {
  return std::to_string(value);
}

const char* status_name(PointStatus status) {
  switch (status) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kFailed: return "failed";
    case PointStatus::kSkipped: return "skipped";
  }
  return "?";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SweepResult::write_csv(std::ostream& out) const {
  CsvWriter csv(out, {"index", "scenario_flows", "textent_ms", "rattack_mbps",
                      "gamma", "kappa", "replicate", "seed", "status",
                      "c_psi", "analytic_degradation", "analytic_gain",
                      "shrew", "baseline_mbps", "goodput_mbps",
                      "measured_degradation", "measured_gain", "utilization",
                      "fairness", "timeouts", "fast_recoveries",
                      "attack_packets", "events", "error"});
  for (const auto& r : points) {
    csv.row({fmt(static_cast<std::uint64_t>(r.index)),
             std::to_string(r.point.flows), fmt(to_ms(r.point.textent)),
             fmt(to_mbps(r.point.rattack)), fmt(r.point.gamma),
             fmt(r.point.kappa), std::to_string(r.point.replicate),
             fmt(r.seed), status_name(r.status), fmt(r.c_psi),
             fmt(r.analytic_degradation), fmt(r.analytic_gain),
             r.shrew ? "1" : "0", fmt(to_mbps(r.baseline_goodput)),
             fmt(to_mbps(r.goodput)), fmt(r.measured_degradation),
             fmt(r.measured_gain), fmt(r.utilization), fmt(r.fairness),
             fmt(r.timeouts), fmt(r.fast_recoveries), fmt(r.attack_packets),
             fmt(r.events), r.error});
  }
}

void SweepResult::write_json(std::ostream& out) const {
  out << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i];
    out << "  {\"index\": " << r.index << ", \"flows\": " << r.point.flows
        << ", \"textent_ms\": " << fmt(to_ms(r.point.textent))
        << ", \"rattack_mbps\": " << fmt(to_mbps(r.point.rattack))
        << ", \"gamma\": " << fmt(r.point.gamma)
        << ", \"kappa\": " << fmt(r.point.kappa)
        << ", \"replicate\": " << r.point.replicate
        << ", \"seed\": " << r.seed
        << ", \"status\": \"" << status_name(r.status) << "\""
        << ", \"c_psi\": " << fmt(r.c_psi)
        << ", \"analytic_degradation\": " << fmt(r.analytic_degradation)
        << ", \"analytic_gain\": " << fmt(r.analytic_gain)
        << ", \"shrew\": " << (r.shrew ? "true" : "false")
        << ", \"baseline_mbps\": " << fmt(to_mbps(r.baseline_goodput))
        << ", \"goodput_mbps\": " << fmt(to_mbps(r.goodput))
        << ", \"measured_degradation\": " << fmt(r.measured_degradation)
        << ", \"measured_gain\": " << fmt(r.measured_gain)
        << ", \"utilization\": " << fmt(r.utilization)
        << ", \"fairness\": " << fmt(r.fairness)
        << ", \"timeouts\": " << r.timeouts
        << ", \"fast_recoveries\": " << r.fast_recoveries
        << ", \"attack_packets\": " << r.attack_packets
        << ", \"events\": " << r.events
        << ", \"error\": \"" << json_escape(r.error) << "\"}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

namespace {

/// Baseline goodput for one (flows, replicate) pair.
struct BaselineSlot {
  PointSpec probe;  // flows + replicate; attack axes unused
  BitRate goodput = 0.0;
  bool ok = false;
  std::string error;
};

/// Serialized progress bookkeeping shared by all workers.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total,
                const std::function<void(const SweepProgress&)>& callback)
      : total_(total),
        callback_(callback),
        start_(std::chrono::steady_clock::now()) {}

  void tick(bool cached) {
    if (!callback_) {
      done_.fetch_add(1, std::memory_order_relaxed);
      if (cached) cached_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    SweepProgress progress;
    progress.done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    progress.cached = cached_.fetch_add(cached ? 1 : 0,
                                        std::memory_order_relaxed) +
                      (cached ? 1 : 0);
    progress.total = total_;
    progress.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    // Cache hits replay in microseconds — weighting them at full cost made
    // --resume ETAs absurd (an all-hit replay predicted hours). Average the
    // elapsed wall time over the SIMULATED tasks only and predict the
    // remaining mix at the hit rate observed so far; with no simulated task
    // yet (pure replay) the remaining work rounds to zero.
    const std::size_t simulated = progress.done - progress.cached;
    if (simulated > 0) {
      const double per_task =
          progress.elapsed_seconds / static_cast<double>(simulated);
      const double simulated_share = static_cast<double>(simulated) /
                                     static_cast<double>(progress.done);
      progress.eta_seconds = per_task *
                             static_cast<double>(total_ - progress.done) *
                             simulated_share;
    }
    callback_(progress);
  }

 private:
  std::size_t total_;
  const std::function<void(const SweepProgress&)>& callback_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> cached_{0};
  std::mutex mutex_;
};

/// Hands out warm execution resources (ScenarioWorkspace, ReplicateBatch)
/// to sweep tasks. Each worker thread runs tasks serially, so the pool
/// never holds more resources than threads; a released resource keeps its
/// arena blocks, scheduler slabs, and container capacities hot for the next
/// point.
template <typename T>
class ResourcePool {
 public:
  std::unique_ptr<T> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        auto resource = std::move(idle_.back());
        idle_.pop_back();
        return resource;
      }
    }
    return std::make_unique<T>();
  }

  void release(std::unique_ptr<T> resource) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(resource));
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<T>> idle_;
};

/// RAII acquire/release so exception paths return the resource too.
template <typename T>
class Lease {
 public:
  explicit Lease(ResourcePool<T>& pool) : pool_(pool), res_(pool.acquire()) {}
  ~Lease() { pool_.release(std::move(res_)); }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  T& operator*() { return *res_; }
  T* operator->() { return res_.get(); }

 private:
  ResourcePool<T>& pool_;
  std::unique_ptr<T> res_;
};

using WorkspacePool = ResourcePool<ScenarioWorkspace>;
using WorkspaceLease = Lease<ScenarioWorkspace>;

/// A contiguous run of tasks that differ only in their replicate index.
struct TaskGroup {
  std::size_t first = 0;
  std::size_t count = 0;
};

bool same_point_axes(const PointSpec& a, const PointSpec& b) {
  return a.flows == b.flows && a.textent == b.textent &&
         a.rattack == b.rattack && a.gamma == b.gamma && a.kappa == b.kappa;
}

/// Group consecutive entries whose axes match (`enumerate()` emits the
/// replicate axis innermost, so a point's replicates are always adjacent).
template <typename GetSpec>
std::vector<TaskGroup> group_consecutive(std::size_t n, GetSpec&& spec_of) {
  std::vector<TaskGroup> groups;
  for (std::size_t i = 0; i < n; ++i) {
    if (!groups.empty()) {
      TaskGroup& last = groups.back();
      if (same_point_axes(spec_of(last.first), spec_of(i))) {
        ++last.count;
        continue;
      }
    }
    groups.push_back(TaskGroup{i, 1});
  }
  return groups;
}

/// Group consecutive entries sharing a flows value. On the fluid tier all
/// points with the same flows share one topology (make_scenario varies only
/// in the seed, which the fluid solver never reads), so each group is one
/// lane-batched solve_batch workload (DESIGN.md §16). `enumerate()` emits
/// flows as the outermost axis, so these groups cover whole flows blocks.
template <typename GetSpec>
std::vector<TaskGroup> group_by_flows(std::size_t n, GetSpec&& spec_of) {
  std::vector<TaskGroup> groups;
  for (std::size_t i = 0; i < n; ++i) {
    if (!groups.empty() &&
        spec_of(groups.back().first).flows == spec_of(i).flows) {
      ++groups.back().count;
      continue;
    }
    groups.push_back(TaskGroup{i, 1});
  }
  return groups;
}

/// Lanes per fluid solve_batch call in the fluid-tier point path: two
/// full SIMD chunks — wide enough to amortize the per-step scalar driver,
/// small enough that a ragged tail wastes little work. Not a result knob:
/// batched lanes are bit-identical to single-point solves at any width.
constexpr std::size_t kFluidBatchWidth = 8;

}  // namespace

namespace {

void fill_cached_point(PointResult& slot, const CachedPoint& hit) {
  slot.c_psi = hit.c_psi;
  slot.analytic_degradation = hit.analytic_degradation;
  slot.analytic_gain = hit.analytic_gain;
  slot.shrew = hit.shrew;
  slot.baseline_goodput = hit.baseline_goodput;
  slot.goodput = hit.goodput;
  slot.measured_degradation = hit.measured_degradation;
  slot.measured_gain = hit.measured_gain;
  slot.utilization = hit.utilization;
  slot.fairness = hit.fairness;
  slot.timeouts = hit.timeouts;
  slot.fast_recoveries = hit.fast_recoveries;
  slot.attack_packets = hit.attack_packets;
  slot.events = hit.events;
  slot.status = PointStatus::kOk;
}

CachedPoint to_cached_point(const PointResult& slot) {
  CachedPoint record;
  record.c_psi = slot.c_psi;
  record.analytic_degradation = slot.analytic_degradation;
  record.analytic_gain = slot.analytic_gain;
  record.shrew = slot.shrew;
  record.baseline_goodput = slot.baseline_goodput;
  record.goodput = slot.goodput;
  record.measured_degradation = slot.measured_degradation;
  record.measured_gain = slot.measured_gain;
  record.utilization = slot.utilization;
  record.fairness = slot.fairness;
  record.timeouts = slot.timeouts;
  record.fast_recoveries = slot.fast_recoveries;
  record.attack_packets = slot.attack_packets;
  record.events = slot.events;
  return record;
}

/// The analytic plan for a point. Depends on the scenario and the attack
/// axes only — never on the seed — so a replicate group shares one plan.
AttackPlan plan_point_attack(const ScenarioConfig& scenario,
                             const PointSpec& point) {
  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = point.textent;
  request.rattack = point.rattack;
  request.kappa = point.kappa;
  request.attack_packet_bytes = scenario.attack_packet_bytes;
  request.victim_min_rto = scenario.tcp.rto_min;
  return plan_attack_at_gamma(request, point.gamma);
}

void fill_plan(PointResult& slot, const AttackPlan& plan) {
  slot.c_psi = plan.c_psi;
  slot.analytic_degradation = plan.predicted_degradation;
  slot.analytic_gain = plan.predicted_gain;
  slot.shrew = plan.shrew_harmonic.has_value();
}

void fill_measured(PointResult& slot, const GainMeasurement& measured,
                   BitRate baseline_goodput) {
  slot.baseline_goodput = baseline_goodput;
  slot.goodput = measured.run.goodput_rate;
  slot.measured_degradation = measured.degradation;
  slot.measured_gain = measured.gain;
  slot.utilization = measured.run.utilization;
  slot.fairness = measured.run.fairness_index;
  slot.timeouts = measured.run.total_timeouts;
  slot.fast_recoveries = measured.run.total_fast_recoveries;
  slot.attack_packets = measured.run.attack_packets_sent;
  slot.events = measured.run.events_executed;
  slot.status = PointStatus::kOk;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  const std::vector<PointSpec> points = spec.enumerate();

  // Unique (flows, replicate) pairs, in stable order of first appearance.
  PairIndex baseline_index;
  std::vector<BaselineSlot> baselines;
  for (const PointSpec& point : points) {
    if (baseline_index.insert(point.flows, point.replicate, baselines.size())
            .second) {
      BaselineSlot slot;
      slot.probe = point;
      baselines.push_back(slot);
    }
  }

  SweepResult result;
  result.points.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointResult& slot = result.points[i];
    slot.index = i;
    slot.point = points[i];
    slot.seed = replicate_seed(spec.base_seed, points[i].replicate);
  }

  ThreadPool pool(options.threads);
  result.threads = pool.size();
  ProgressMeter meter(baselines.size() + points.size(), options.on_progress);
  std::atomic<bool> cancel{false};
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> simulated{0};
  WorkspacePool workspaces;
  ResourcePool<ReplicateBatch> batches;
  std::unique_ptr<PointCache> owned_cache;
  PointStore* store = options.store;
  if (store == nullptr && !options.cache_path.empty()) {
    owned_cache = std::make_unique<PointCache>(options.cache_path);
    store = owned_cache.get();
  }
  // Tasks another process holds a live lease on (claim returned kBusy):
  // deferred here and drained after each phase's main pass, so a pool
  // worker never idles waiting on a peer process.
  std::mutex deferred_mutex;
  std::vector<std::size_t> deferred_baselines;
  std::vector<std::size_t> deferred_points;
  const auto poll_interval = std::chrono::duration<double>(
      std::max(1e-3, options.claim_poll_seconds));
  using ClaimStatus = PointStore::ClaimStatus;
  const auto start = std::chrono::steady_clock::now();

  // Batched replicate execution (DESIGN.md §14): group the R seed-varied
  // replicates of each grid point into one co-resident ReplicateBatch per
  // worker. Results (and cache records) are bit-identical to the sequential
  // path, so the knob changes only how the work is scheduled.
  const bool batched = spec.batch_replicates && spec.replicates > 1;

  // Phase 1: baselines. Each runs the no-attack scenario with the same
  // seed as the attack points it will normalize.
  if (!batched) {
    parallel_for(pool, baselines.size(), [&](std::size_t i) {
      BaselineSlot& slot = baselines[i];
      if (cancel.load(std::memory_order_relaxed)) {
        slot.error = "skipped: sweep cancelled";
        meter.tick(false);
        return;
      }
      const std::uint64_t seed =
          replicate_seed(spec.base_seed, slot.probe.replicate);
      const std::uint64_t key =
          store ? baseline_key(spec, slot.probe, seed) : 0;
      bool hit = false;
      bool claimed = false;
      try {
        double cached = 0.0;
        if (store && store->lookup_baseline(key, cached)) {
          slot.goodput = cached;
          hit = true;
          cache_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (store) {
            const ClaimStatus st = store->claim_baseline(key);
            if (st == ClaimStatus::kBusy) {
              // A peer process is simulating this baseline; the drain pass
              // resolves it (and ticks the meter).
              std::lock_guard<std::mutex> lock(deferred_mutex);
              deferred_baselines.push_back(i);
              return;
            }
            if (st == ClaimStatus::kDone &&
                store->lookup_baseline(key, cached)) {
              slot.goodput = cached;
              hit = true;
              cache_hits.fetch_add(1, std::memory_order_relaxed);
            } else {
              claimed = true;
            }
          }
          if (!hit) {
            const ScenarioConfig scenario = spec.make_scenario(slot.probe);
            WorkspaceLease ws(workspaces);
            slot.goodput = ws->baseline(scenario, spec.control);
            if (store) store->store_baseline(key, slot.goodput);
            simulated.fetch_add(1, std::memory_order_relaxed);
          }
        }
        PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
        slot.ok = true;
      } catch (const std::exception& e) {
        if (claimed) store->release_baseline(key);
        slot.error = e.what();
        if (options.cancel_on_failure) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
      meter.tick(hit);
    });
  } else {
    // Baselines batch over their own (flows, replicate) slots: the probes
    // for one flows value are adjacent (replicate is the innermost
    // enumeration axis), so each group is one warm batch of R no-attack
    // replicates.
    const std::vector<TaskGroup> groups = group_consecutive(
        baselines.size(),
        [&](std::size_t i) -> const PointSpec& { return baselines[i].probe; });
    parallel_for(pool, groups.size(), [&](std::size_t gi) {
      const TaskGroup group = groups[gi];
      if (cancel.load(std::memory_order_relaxed)) {
        for (std::size_t j = 0; j < group.count; ++j) {
          baselines[group.first + j].error = "skipped: sweep cancelled";
          meter.tick(false);
        }
        return;
      }
      std::vector<std::size_t> miss;
      std::vector<std::uint64_t> miss_keys;
      for (std::size_t j = 0; j < group.count; ++j) {
        const std::size_t bi = group.first + j;
        BaselineSlot& slot = baselines[bi];
        try {
          const std::uint64_t seed =
              replicate_seed(spec.base_seed, slot.probe.replicate);
          const std::uint64_t key =
              store ? baseline_key(spec, slot.probe, seed) : 0;
          double cached = 0.0;
          if (store && store->lookup_baseline(key, cached)) {
            slot.goodput = cached;
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
            slot.ok = true;
            meter.tick(true);
            continue;
          }
          if (store) {
            const ClaimStatus st = store->claim_baseline(key);
            if (st == ClaimStatus::kBusy) {
              std::lock_guard<std::mutex> lock(deferred_mutex);
              deferred_baselines.push_back(bi);
              continue;
            }
            if (st == ClaimStatus::kDone &&
                store->lookup_baseline(key, cached)) {
              slot.goodput = cached;
              cache_hits.fetch_add(1, std::memory_order_relaxed);
              PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
              slot.ok = true;
              meter.tick(true);
              continue;
            }
          }
          miss.push_back(bi);
          miss_keys.push_back(key);
        } catch (const std::exception& e) {
          slot.error = e.what();
          if (options.cancel_on_failure) {
            cancel.store(true, std::memory_order_relaxed);
          }
          meter.tick(true);
        }
      }
      if (miss.empty()) return;
      std::vector<std::uint64_t> seeds;
      seeds.reserve(miss.size());
      for (std::size_t bi : miss) {
        seeds.push_back(
            replicate_seed(spec.base_seed, baselines[bi].probe.replicate));
      }
      try {
        const ScenarioConfig scenario =
            spec.make_scenario(baselines[miss.front()].probe);
        Lease<ReplicateBatch> batch(batches);
        const std::vector<BitRate> goodputs =
            batch->baseline(scenario, spec.control, seeds);
        for (std::size_t k = 0; k < miss.size(); ++k) {
          BaselineSlot& slot = baselines[miss[k]];
          try {
            slot.goodput = goodputs[k];
            if (store) store->store_baseline(miss_keys[k], slot.goodput);
            simulated.fetch_add(1, std::memory_order_relaxed);
            PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
            slot.ok = true;
          } catch (const std::exception& e) {
            slot.error = e.what();
            if (options.cancel_on_failure) {
              cancel.store(true, std::memory_order_relaxed);
            }
          }
        }
      } catch (const std::exception& e) {
        // The batch itself failed: every un-run replicate inherits the error
        // and gives up its claim so a peer can retry immediately.
        for (std::size_t k = 0; k < miss.size(); ++k) {
          if (store) store->release_baseline(miss_keys[k]);
          if (!baselines[miss[k]].ok && baselines[miss[k]].error.empty()) {
            baselines[miss[k]].error = e.what();
          }
        }
        if (options.cancel_on_failure) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
      for (std::size_t k = 0; k < miss.size(); ++k) meter.tick(false);
    });
  }

  // Drain baselines leased to peer processes: poll the store for their
  // results; once a lease expires unfulfilled (crashed peer) the claim
  // succeeds here and we simulate locally. Every wait is bounded by the
  // lease TTL, so the loop terminates.
  while (store && !deferred_baselines.empty()) {
    if (cancel.load(std::memory_order_relaxed)) {
      for (std::size_t i : deferred_baselines) {
        baselines[i].error = "skipped: sweep cancelled";
        meter.tick(false);
      }
      deferred_baselines.clear();
      break;
    }
    std::this_thread::sleep_for(poll_interval);
    store->refresh();
    std::vector<std::size_t> still;
    for (std::size_t i : deferred_baselines) {
      BaselineSlot& slot = baselines[i];
      const std::uint64_t seed =
          replicate_seed(spec.base_seed, slot.probe.replicate);
      const std::uint64_t key = baseline_key(spec, slot.probe, seed);
      bool claimed = false;
      try {
        double cached = 0.0;
        if (store->lookup_baseline(key, cached)) {
          slot.goodput = cached;
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
          slot.ok = true;
          meter.tick(true);
          continue;
        }
        const ClaimStatus st = store->claim_baseline(key);
        if (st == ClaimStatus::kBusy) {
          still.push_back(i);
          continue;
        }
        if (st == ClaimStatus::kDone && store->lookup_baseline(key, cached)) {
          slot.goodput = cached;
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
          slot.ok = true;
          meter.tick(true);
          continue;
        }
        claimed = (st == ClaimStatus::kAcquired);
        const ScenarioConfig scenario = spec.make_scenario(slot.probe);
        {
          WorkspaceLease ws(workspaces);
          slot.goodput = ws->baseline(scenario, spec.control);
        }
        store->store_baseline(key, slot.goodput);
        simulated.fetch_add(1, std::memory_order_relaxed);
        PDOS_REQUIRE(slot.goodput > 0.0, "baseline goodput is zero");
        slot.ok = true;
        meter.tick(false);
      } catch (const std::exception& e) {
        if (claimed) store->release_baseline(key);
        slot.error = e.what();
        if (options.cancel_on_failure) {
          cancel.store(true, std::memory_order_relaxed);
        }
        meter.tick(false);
      }
    }
    deferred_baselines.swap(still);
  }

  // Phase 2: the points themselves.
  if (spec.backend == Backend::kFluid) {
    // Fluid tier (DESIGN.md §16): each flows-group shares one topology and
    // the solver is seed-invariant, so the group's cache misses collapse to
    // their unique attack plans — solved as lanes of lane-batched fluid
    // evaluations, kFluidBatchWidth at a time — and every replicate is
    // finished against its own baseline. The records this path stores are
    // bit-identical to the point-at-a-time path's: solve_batch's identity
    // contract plus the seed-invariance fan-out the batched replicate
    // runner already relies on (replicate_batch.cpp).
    const std::vector<TaskGroup> groups =
        group_by_flows(points.size(), [&](std::size_t i) -> const PointSpec& {
          return points[i];
        });
    parallel_for(pool, groups.size(), [&](std::size_t gi) {
      const TaskGroup group = groups[gi];
      if (cancel.load(std::memory_order_relaxed)) {
        for (std::size_t j = 0; j < group.count; ++j) {
          meter.tick(false);  // slots stay kSkipped
        }
        return;
      }
      std::vector<std::size_t> miss;
      std::vector<std::uint64_t> miss_keys;
      for (std::size_t j = 0; j < group.count; ++j) {
        const std::size_t i = group.first + j;
        PointResult& slot = result.points[i];
        const std::uint64_t key =
            store ? point_key(spec, slot.point, slot.seed) : 0;
        CachedPoint cached;
        if (store && store->lookup_point(key, cached)) {
          fill_cached_point(slot, cached);
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          meter.tick(true);
          continue;
        }
        if (store) {
          const ClaimStatus st = store->claim_point(key);
          if (st == ClaimStatus::kBusy) {
            std::lock_guard<std::mutex> lock(deferred_mutex);
            deferred_points.push_back(i);
            continue;
          }
          if (st == ClaimStatus::kDone && store->lookup_point(key, cached)) {
            fill_cached_point(slot, cached);
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            meter.tick(true);
            continue;
          }
        }
        miss.push_back(i);
        miss_keys.push_back(key);
      }
      if (miss.empty()) return;
      try {
        // One topology per group: the derived scenarios differ only in
        // their (unread) seed.
        const ScenarioConfig scenario =
            spec.make_scenario(points[miss.front()]);
        // Unique plans among the misses. Axes-equal points stay adjacent
        // through the cache pass, so one backward comparison suffices.
        std::vector<AttackPlan> plans;
        std::vector<std::size_t> plan_of(miss.size());
        std::vector<std::size_t> plan_first;
        for (std::size_t k = 0; k < miss.size(); ++k) {
          if (!plan_first.empty() &&
              same_point_axes(points[miss[k]],
                              points[miss[plan_first.back()]])) {
            plan_of[k] = plan_first.size() - 1;
            continue;
          }
          plan_first.push_back(k);
          plan_of[k] = plans.size();
          plans.push_back(plan_point_attack(scenario, points[miss[k]]));
        }
        std::vector<RunResult> plan_runs(plans.size());
        for (std::size_t start = 0; start < plans.size();
             start += kFluidBatchWidth) {
          const std::size_t stop =
              std::min(plans.size(), start + kFluidBatchWidth);
          std::vector<std::optional<PulseTrain>> attacks;
          attacks.reserve(stop - start);
          for (std::size_t p = start; p < stop; ++p) {
            attacks.emplace_back(plans[p].train);
          }
          std::vector<RunResult> solved =
              run_fluid_batch(scenario, attacks, spec.control);
          for (std::size_t p = start; p < stop; ++p) {
            plan_runs[p] = std::move(solved[p - start]);
          }
        }
        for (std::size_t k = 0; k < miss.size(); ++k) {
          PointResult& slot = result.points[miss[k]];
          const BaselineSlot& baseline = baselines[baseline_index.at(
              slot.point.flows, slot.point.replicate)];
          if (!baseline.ok) {
            if (store) store->release_point(miss_keys[k]);
            slot.status = PointStatus::kFailed;
            slot.error = "baseline failed: " + baseline.error;
            if (options.cancel_on_failure) {
              cancel.store(true, std::memory_order_relaxed);
            }
            meter.tick(false);
            continue;
          }
          const std::size_t p = plan_of[k];
          const GainMeasurement measured =
              finish_gain(scenario, plans[p].train, slot.point.kappa,
                          baseline.goodput, RunResult(plan_runs[p]));
          fill_plan(slot, plans[p]);
          fill_measured(slot, measured, baseline.goodput);
          if (store) store->store_point(miss_keys[k], to_cached_point(slot));
          simulated.fetch_add(1, std::memory_order_relaxed);
          meter.tick(false);
        }
      } catch (const std::exception& e) {
        // Planning or a batched solve failed: every unresolved replicate
        // inherits the error and gives up its claim.
        for (std::size_t k = 0; k < miss.size(); ++k) {
          PointResult& slot = result.points[miss[k]];
          if (slot.status != PointStatus::kSkipped) continue;
          if (store) store->release_point(miss_keys[k]);
          slot.status = PointStatus::kFailed;
          slot.error = e.what();
          meter.tick(false);
        }
        if (options.cancel_on_failure) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    });
  } else if (!batched) {
    parallel_for(pool, points.size(), [&](std::size_t i) {
      PointResult& slot = result.points[i];
      if (cancel.load(std::memory_order_relaxed)) {
        meter.tick(false);
        return;  // stays kSkipped
      }
      const std::uint64_t key =
          store ? point_key(spec, slot.point, slot.seed) : 0;
      bool hit = false;
      bool claimed = false;
      try {
        // A cached point carries everything, including its baseline — it can
        // complete even when this run's baseline task failed.
        CachedPoint cached;
        if (store && store->lookup_point(key, cached)) {
          fill_cached_point(slot, cached);
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          meter.tick(true);
          return;
        }
        if (store) {
          const ClaimStatus st = store->claim_point(key);
          if (st == ClaimStatus::kBusy) {
            std::lock_guard<std::mutex> lock(deferred_mutex);
            deferred_points.push_back(i);
            return;  // resolved (and ticked) by the drain pass
          }
          if (st == ClaimStatus::kDone && store->lookup_point(key, cached)) {
            fill_cached_point(slot, cached);
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            meter.tick(true);
            return;
          }
          claimed = (st == ClaimStatus::kAcquired);
        }

        const BaselineSlot& baseline = baselines[baseline_index.at(
            slot.point.flows, slot.point.replicate)];
        if (!baseline.ok) {
          throw std::runtime_error("baseline failed: " + baseline.error);
        }
        const ScenarioConfig scenario = spec.make_scenario(slot.point);
        const AttackPlan plan = plan_point_attack(scenario, slot.point);
        fill_plan(slot, plan);

        GainMeasurement measured;
        {
          WorkspaceLease ws(workspaces);
          measured = ws->gain(scenario, plan.train, slot.point.kappa,
                              spec.control, baseline.goodput);
        }
        fill_measured(slot, measured, baseline.goodput);
        if (store) store->store_point(key, to_cached_point(slot));
        simulated.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        if (claimed) store->release_point(key);
        slot.status = PointStatus::kFailed;
        slot.error = e.what();
        if (options.cancel_on_failure) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
      meter.tick(hit);
    });
  } else {
    const std::vector<TaskGroup> groups = group_consecutive(
        points.size(),
        [&](std::size_t i) -> const PointSpec& { return points[i]; });
    parallel_for(pool, groups.size(), [&](std::size_t gi) {
      const TaskGroup group = groups[gi];
      if (cancel.load(std::memory_order_relaxed)) {
        for (std::size_t j = 0; j < group.count; ++j) {
          meter.tick(false);  // slots stay kSkipped
        }
        return;
      }
      // Cached replicates complete individually; replicates leased to a
      // peer process defer to the drain pass; the rest run as one batch.
      std::vector<std::size_t> miss;
      std::vector<std::uint64_t> miss_keys;
      for (std::size_t j = 0; j < group.count; ++j) {
        const std::size_t i = group.first + j;
        PointResult& slot = result.points[i];
        const std::uint64_t key =
            store ? point_key(spec, slot.point, slot.seed) : 0;
        CachedPoint cached;
        if (store && store->lookup_point(key, cached)) {
          fill_cached_point(slot, cached);
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          meter.tick(true);
          continue;
        }
        if (store) {
          const ClaimStatus st = store->claim_point(key);
          if (st == ClaimStatus::kBusy) {
            std::lock_guard<std::mutex> lock(deferred_mutex);
            deferred_points.push_back(i);
            continue;
          }
          if (st == ClaimStatus::kDone && store->lookup_point(key, cached)) {
            fill_cached_point(slot, cached);
            cache_hits.fetch_add(1, std::memory_order_relaxed);
            meter.tick(true);
            continue;
          }
        }
        miss.push_back(i);
        miss_keys.push_back(key);
      }
      if (miss.empty()) return;
      try {
        // Shared immutable per-point work, computed ONCE for the group:
        // the derived scenario and the analytic attack plan are pure
        // functions of the axes (seed excluded), identical across
        // replicates — the sequential path recomputes them per replicate.
        const ScenarioConfig scenario =
            spec.make_scenario(points[miss.front()]);
        const AttackPlan plan =
            plan_point_attack(scenario, points[miss.front()]);
        std::vector<std::size_t> runnable;
        std::vector<std::uint64_t> runnable_keys;
        std::vector<std::uint64_t> seeds;
        std::vector<BitRate> base_goodputs;
        for (std::size_t k = 0; k < miss.size(); ++k) {
          const std::size_t i = miss[k];
          PointResult& slot = result.points[i];
          const BaselineSlot& baseline = baselines[baseline_index.at(
              slot.point.flows, slot.point.replicate)];
          if (!baseline.ok) {
            if (store) store->release_point(miss_keys[k]);
            slot.status = PointStatus::kFailed;
            slot.error = "baseline failed: " + baseline.error;
            if (options.cancel_on_failure) {
              cancel.store(true, std::memory_order_relaxed);
            }
            meter.tick(false);
            continue;
          }
          runnable.push_back(i);
          runnable_keys.push_back(miss_keys[k]);
          seeds.push_back(slot.seed);
          base_goodputs.push_back(baseline.goodput);
        }
        if (!runnable.empty()) {
          std::vector<GainMeasurement> measured;
          {
            Lease<ReplicateBatch> batch(batches);
            measured = batch->gain(scenario, plan.train,
                                   points[runnable.front()].kappa,
                                   spec.control, base_goodputs, seeds);
          }
          for (std::size_t k = 0; k < runnable.size(); ++k) {
            PointResult& slot = result.points[runnable[k]];
            fill_plan(slot, plan);
            fill_measured(slot, measured[k], base_goodputs[k]);
            if (store) {
              store->store_point(runnable_keys[k], to_cached_point(slot));
            }
            simulated.fetch_add(1, std::memory_order_relaxed);
            meter.tick(false);
          }
        }
      } catch (const std::exception& e) {
        // Planning or the batch run failed: every replicate that has not
        // been resolved yet (still kSkipped) inherits the error and gives
        // up its claim so a peer can retry immediately.
        for (std::size_t k = 0; k < miss.size(); ++k) {
          PointResult& slot = result.points[miss[k]];
          if (slot.status != PointStatus::kSkipped) continue;
          if (store) store->release_point(miss_keys[k]);
          slot.status = PointStatus::kFailed;
          slot.error = e.what();
          meter.tick(false);
        }
        if (options.cancel_on_failure) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    });
  }

  // Drain points leased to peer processes (same protocol as the baseline
  // drain above).
  while (store && !deferred_points.empty()) {
    if (cancel.load(std::memory_order_relaxed)) {
      for (std::size_t i : deferred_points) {
        (void)i;
        meter.tick(false);  // slots stay kSkipped
      }
      deferred_points.clear();
      break;
    }
    std::this_thread::sleep_for(poll_interval);
    store->refresh();
    std::vector<std::size_t> still;
    for (std::size_t i : deferred_points) {
      PointResult& slot = result.points[i];
      const std::uint64_t key = point_key(spec, slot.point, slot.seed);
      bool claimed = false;
      try {
        CachedPoint cached;
        if (store->lookup_point(key, cached)) {
          fill_cached_point(slot, cached);
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          meter.tick(true);
          continue;
        }
        const ClaimStatus st = store->claim_point(key);
        if (st == ClaimStatus::kBusy) {
          still.push_back(i);
          continue;
        }
        if (st == ClaimStatus::kDone && store->lookup_point(key, cached)) {
          fill_cached_point(slot, cached);
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          meter.tick(true);
          continue;
        }
        claimed = (st == ClaimStatus::kAcquired);
        const BaselineSlot& baseline = baselines[baseline_index.at(
            slot.point.flows, slot.point.replicate)];
        if (!baseline.ok) {
          throw std::runtime_error("baseline failed: " + baseline.error);
        }
        const ScenarioConfig scenario = spec.make_scenario(slot.point);
        const AttackPlan plan = plan_point_attack(scenario, slot.point);
        fill_plan(slot, plan);
        GainMeasurement measured;
        {
          WorkspaceLease ws(workspaces);
          measured = ws->gain(scenario, plan.train, slot.point.kappa,
                              spec.control, baseline.goodput);
        }
        fill_measured(slot, measured, baseline.goodput);
        store->store_point(key, to_cached_point(slot));
        simulated.fetch_add(1, std::memory_order_relaxed);
        meter.tick(false);
      } catch (const std::exception& e) {
        if (claimed) store->release_point(key);
        slot.status = PointStatus::kFailed;
        slot.error = e.what();
        if (options.cancel_on_failure) {
          cancel.store(true, std::memory_order_relaxed);
        }
        meter.tick(false);
      }
    }
    deferred_points.swap(still);
  }

  result.cache_hits = cache_hits.load(std::memory_order_relaxed);
  result.simulated = simulated.load(std::memory_order_relaxed);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.cancelled = cancel.load(std::memory_order_relaxed);
  return result;
}

std::vector<AggregateRow> aggregate_replicates(const SweepResult& result) {
  const std::vector<TaskGroup> groups = group_consecutive(
      result.points.size(),
      [&](std::size_t i) -> const PointSpec& { return result.points[i].point; });
  std::vector<AggregateRow> rows;
  rows.reserve(groups.size());
  for (const TaskGroup& group : groups) {
    AggregateRow row;
    row.point = result.points[group.first].point;
    row.point.replicate = 0;
    double sum_gain = 0.0;
    double sum_deg = 0.0;
    double sum_goodput = 0.0;
    std::vector<double> gains;
    std::vector<double> degs;
    gains.reserve(group.count);
    for (std::size_t j = 0; j < group.count; ++j) {
      const PointResult& r = result.points[group.first + j];
      if (r.status != PointStatus::kOk) continue;
      gains.push_back(r.measured_gain);
      degs.push_back(r.measured_degradation);
      sum_gain += r.measured_gain;
      sum_deg += r.measured_degradation;
      sum_goodput += r.goodput;
    }
    row.replicates = gains.size();
    if (!gains.empty()) {
      const double n = static_cast<double>(gains.size());
      row.mean_gain = sum_gain / n;
      row.mean_degradation = sum_deg / n;
      row.mean_goodput = sum_goodput / n;
      if (gains.size() > 1) {
        double ss_gain = 0.0;
        double ss_deg = 0.0;
        for (std::size_t k = 0; k < gains.size(); ++k) {
          ss_gain += (gains[k] - row.mean_gain) * (gains[k] - row.mean_gain);
          ss_deg += (degs[k] - row.mean_degradation) *
                    (degs[k] - row.mean_degradation);
        }
        // Sample (n-1) stddev; 95% half-width from the normal z — replicate
        // counts are small but this matches how the figure scripts plotted
        // their error bars.
        row.stddev_gain = std::sqrt(ss_gain / (n - 1.0));
        row.stddev_degradation = std::sqrt(ss_deg / (n - 1.0));
        row.ci95_gain = 1.96 * row.stddev_gain / std::sqrt(n);
        row.ci95_degradation = 1.96 * row.stddev_degradation / std::sqrt(n);
      }
    }
    rows.push_back(row);
  }
  return rows;
}

namespace {

/// Spread statistics (stddev/CI) are undefined below two replicates: the
/// CSV cell is left empty rather than printing a misleading 0 (or a NaN if
/// a caller aggregated rows by hand). JSON, which has no empty-number
/// notion, emits 0 for the same cases.
std::string spread_csv(double value, std::size_t replicates) {
  if (replicates < 2 || !std::isfinite(value)) return "";
  return fmt(value);
}

double spread_json(double value, std::size_t replicates) {
  if (replicates < 2 || !std::isfinite(value)) return 0.0;
  return value;
}

}  // namespace

void write_aggregate_csv(const std::vector<AggregateRow>& rows,
                         std::ostream& out) {
  CsvWriter csv(out, {"scenario_flows", "textent_ms", "rattack_mbps", "gamma",
                      "kappa", "replicates", "mean_gain", "stddev_gain",
                      "ci95_gain", "mean_degradation", "stddev_degradation",
                      "ci95_degradation", "mean_goodput_mbps"});
  for (const AggregateRow& r : rows) {
    csv.row({std::to_string(r.point.flows), fmt(to_ms(r.point.textent)),
             fmt(to_mbps(r.point.rattack)), fmt(r.point.gamma),
             fmt(r.point.kappa),
             fmt(static_cast<std::uint64_t>(r.replicates)), fmt(r.mean_gain),
             spread_csv(r.stddev_gain, r.replicates),
             spread_csv(r.ci95_gain, r.replicates), fmt(r.mean_degradation),
             spread_csv(r.stddev_degradation, r.replicates),
             spread_csv(r.ci95_degradation, r.replicates),
             fmt(to_mbps(r.mean_goodput))});
  }
}

void write_aggregate_json(const std::vector<AggregateRow>& rows,
                          std::ostream& out) {
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AggregateRow& r = rows[i];
    out << "  {\"flows\": " << r.point.flows
        << ", \"textent_ms\": " << fmt(to_ms(r.point.textent))
        << ", \"rattack_mbps\": " << fmt(to_mbps(r.point.rattack))
        << ", \"gamma\": " << fmt(r.point.gamma)
        << ", \"kappa\": " << fmt(r.point.kappa)
        << ", \"replicates\": " << r.replicates
        << ", \"mean_gain\": " << fmt(r.mean_gain)
        << ", \"stddev_gain\": " << fmt(spread_json(r.stddev_gain, r.replicates))
        << ", \"ci95_gain\": " << fmt(spread_json(r.ci95_gain, r.replicates))
        << ", \"mean_degradation\": " << fmt(r.mean_degradation)
        << ", \"stddev_degradation\": "
        << fmt(spread_json(r.stddev_degradation, r.replicates))
        << ", \"ci95_degradation\": "
        << fmt(spread_json(r.ci95_degradation, r.replicates))
        << ", \"mean_goodput_mbps\": " << fmt(to_mbps(r.mean_goodput)) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace pdos::sweep
