#include "sweep/thread_pool.hpp"

#include <exception>
#include <utility>

#include "util/assert.hpp"

namespace pdos::sweep {

namespace {

// Which pool/worker the current thread belongs to, so nested submits can
// target the submitting worker's own deque.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

}  // namespace

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_threads();
  workers_ = std::vector<Worker>(static_cast<std::size_t>(threads));
  threads_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(InlineFn task) {
  PDOS_REQUIRE(static_cast<bool>(task),
               "ThreadPool: cannot submit an empty task");
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    PDOS_REQUIRE(!stopping_, "ThreadPool: submit after shutdown");
    std::size_t target;
    if (tl_pool == this) {
      target = tl_worker;  // nested submit: keep the task local
    } else {
      target = next_worker_;
      next_worker_ = (next_worker_ + 1) % workers_.size();
    }
    workers_[target].tasks.push_back(std::move(task));
    ++pending_;
    ++queued_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop_locked(std::size_t self, InlineFn& task) {
  auto& own = workers_[self].tasks;
  if (!own.empty()) {
    task = own.pop_front();
    return true;
  }
  for (std::size_t off = 1; off < workers_.size(); ++off) {
    auto& victim = workers_[(self + off) % workers_.size()].tasks;
    if (!victim.empty()) {
      task = victim.pop_front();  // steal the oldest (coldest) task
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker = index;
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    InlineFn task;
    if (try_pop_locked(index, task)) {
      --queued_;
      lock.unlock();
      try {
        task();
      } catch (...) {
        // Tasks own their error handling (run_sweep and parallel_for both
        // catch before the pool sees anything); swallowing here only keeps
        // a stray throw from tearing down the process.
      }
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stopping_) break;
    work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
  }
}

void ThreadPool::wait_idle() {
  PDOS_REQUIRE(tl_pool != this,
               "ThreadPool: wait_idle called from a worker thread");
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &fn, &error_mutex, &first_error] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pdos::sweep
