// Parallel parameter-sweep engine.
//
// Every figure reproduction is a loop over the paper's grid — R_attack,
// T_extent, flow counts, γ, seeds — and each grid point is an independent
// `Simulator`. `SweepSpec` describes the grid (Cartesian axes or an
// explicit point list), `run_sweep` executes it across a work-stealing
// thread pool, and `SweepResult` collects per-point Γ/G plus run
// statistics into a stable-ordered table with CSV and JSON writers.
//
// Determinism contract: point `i` of the enumeration runs with seed
// `derive_seed(base_seed, replicate)` and writes into slot `i` of the
// result table, so the output is byte-identical regardless of thread
// count or execution order. Baselines are measured once per unique
// (flows, replicate) pair with the same seed as the attack runs they
// normalize.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/units.hpp"

namespace pdos::sweep {

class PointStore;  // sweep/point_cache.hpp

/// Which paper scenario family the sweep instantiates.
enum class ScenarioKind { kNs2Dumbbell, kTestbed };

const char* scenario_kind_name(ScenarioKind kind);

/// One grid point: the attack/scenario parameters a single simulation
/// runs with. `replicate` selects the seed stream.
struct PointSpec {
  int flows = 15;
  Time textent = ms(50);
  BitRate rattack = mbps(25);
  double gamma = 0.5;
  double kappa = 1.0;
  int replicate = 0;
};

struct SweepSpec {
  ScenarioKind scenario = ScenarioKind::kNs2Dumbbell;
  QueueKind queue = QueueKind::kRed;
  /// Simulation tier every point (and baseline) runs on; spec files select
  /// it with `backend = full|fast|fluid|hybrid`. Cache keys include it, so
  /// switching tiers never replays another tier's points.
  Backend backend = Backend::kFull;
  /// Hybrid tier only: packet-level flows per point (see ScenarioConfig).
  int hybrid_foreground = 4;
  /// Conservative PDES sharding per point (ScenarioConfig::shards); spec
  /// files select it with `shards = K`. Results are bit-identical to
  /// shards = 1 (DESIGN.md §13), so cache keys deliberately EXCLUDE it —
  /// a cache written at one shard count replays at any other. Workers run
  /// the shard rounds inline (they are already one-per-core).
  int shards = 1;
  /// Batched replicate execution (DESIGN.md §14): when replicates > 1, each
  /// worker leases one ReplicateBatch and runs a point's R seed-varied
  /// replicates as co-resident simulations (shared attack plan, warm slots,
  /// time-sliced event loops; the fluid tier solves once per point). Spec
  /// files select it with `batch_replicates = on|off`. Results are
  /// bit-identical to sequential execution — like `shards`, this is an
  /// execution-strategy knob, so cache keys deliberately EXCLUDE it.
  bool batch_replicates = true;

  // Cartesian axes (ignored when `explicit_points` is non-empty).
  std::vector<int> flow_counts = {15};
  std::vector<Time> textents = {ms(50)};
  std::vector<BitRate> rattacks = {mbps(25)};
  /// Explicit γ values. Empty means "auto": an evenly spaced grid of
  /// `gamma_points` values on (max(0.1, C_Ψ + 0.02), 0.95), per
  /// (flows, textent, rattack) combination — the grid Figs. 6-9 sweep.
  std::vector<double> gammas;
  int gamma_points = 7;

  double kappa = 1.0;
  int replicates = 1;
  std::uint64_t base_seed = 1;
  RunControl control;

  /// When non-empty, run exactly these points instead of the grid.
  std::vector<PointSpec> explicit_points;

  /// The scenario config a point runs with (attack parameters excluded).
  ScenarioConfig make_scenario(const PointSpec& point) const;

  /// Expand to the ordered point list. Stable: same spec, same list.
  /// Infeasible γ (outside (0,1) or above C_attack) are skipped, matching
  /// the figure harnesses.
  std::vector<PointSpec> enumerate() const;

  void validate() const;
};

/// Seed for replicate `i`: a SplitMix64 mix of the campaign base seed, so
/// replicate streams are independent and thread-count invariant.
std::uint64_t replicate_seed(std::uint64_t base_seed, int replicate);

/// Flat sorted-vector index from an (int, int) key pair to a slot number.
/// Replaces the std::map that used to assemble the sweep's baseline table:
/// entries live contiguously and lookups are a branch-free binary search
/// over 16-byte records instead of a pointer chase per tree level. Keys are
/// a few dozen (flows, replicate) pairs, so insertion's O(n) shift is
/// cheaper than a node allocation ever was.
class PairIndex {
 public:
  /// Map `(a, b)` to `slot` if the key is absent. Returns the slot the key
  /// maps to and whether this call inserted it.
  std::pair<std::size_t, bool> insert(int a, int b, std::size_t slot);

  /// Slot for `(a, b)`; the key must be present.
  std::size_t at(int a, int b) const;

  bool contains(int a, int b) const;
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t key;
    std::size_t slot;
  };
  static std::uint64_t key_of(int a, int b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
  std::vector<Entry> entries_;  // sorted by key
};

enum class PointStatus { kOk, kFailed, kSkipped };

/// One row of the result table.
struct PointResult {
  std::size_t index = 0;  // position in SweepSpec::enumerate()
  PointSpec point;
  std::uint64_t seed = 0;
  PointStatus status = PointStatus::kSkipped;
  std::string error;  // set when status == kFailed

  // Analytic predictions (Eq. 12/13) and the C_Ψ of the pulse shape.
  double c_psi = 0.0;
  double analytic_degradation = 0.0;
  double analytic_gain = 0.0;
  bool shrew = false;  // plan period collides with a shrew harmonic

  // Measured quantities.
  double baseline_goodput = 0.0;  // bps, no-attack run with the same seed
  double goodput = 0.0;           // bps under attack
  double measured_degradation = 0.0;  // Γ
  double measured_gain = 0.0;         // G
  double utilization = 0.0;
  double fairness = 0.0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_recoveries = 0;
  std::uint64_t attack_packets = 0;
  std::uint64_t events = 0;
};

struct SweepResult {
  std::vector<PointResult> points;  // enumeration order, always full-size
  int threads = 1;
  double wall_seconds = 0.0;
  bool cancelled = false;
  /// Tasks (baselines + points) answered from the point cache instead of
  /// simulation. 0 when no cache was configured.
  std::size_t cache_hits = 0;
  /// Tasks this process simulated itself (as opposed to cache hits and
  /// failures). Campaign workers sum this across processes to verify the
  /// claim protocol deduplicated the grid: a cold K-worker campaign should
  /// sum to ~the unique task count, not K× it.
  std::size_t simulated = 0;

  std::size_t failures() const;
  std::size_t completed() const;

  /// Stable machine-readable table (RFC 4180 via io/csv). Byte-identical
  /// across thread counts for the same spec.
  void write_csv(std::ostream& out) const;
  /// Same table as a JSON array of objects.
  void write_json(std::ostream& out) const;
};

/// Replicate statistics for one grid point: mean, sample stddev, and 95%
/// normal CI half-width of the measured gain (and degradation) across the
/// point's kOk replicate rows. What figure scripts used to post-process by
/// hand; emitted by `pdos_sweep --aggregate`.
struct AggregateRow {
  PointSpec point;             // axes of the group; replicate field unused
  std::size_t replicates = 0;  // kOk rows aggregated (0 = all failed)
  double mean_gain = 0.0;
  double stddev_gain = 0.0;
  double ci95_gain = 0.0;
  double mean_degradation = 0.0;
  double stddev_degradation = 0.0;
  double ci95_degradation = 0.0;
  double mean_goodput = 0.0;  // bps
};

/// Collapse a result table to one row per (flows, textent, rattack, gamma,
/// kappa) point, aggregating over its replicates in enumeration order.
/// Failed/skipped replicates are excluded from the statistics (and counted
/// out of `replicates`).
std::vector<AggregateRow> aggregate_replicates(const SweepResult& result);

void write_aggregate_csv(const std::vector<AggregateRow>& rows,
                         std::ostream& out);
void write_aggregate_json(const std::vector<AggregateRow>& rows,
                          std::ostream& out);

/// Progress snapshot handed to the callback after every finished task.
struct SweepProgress {
  std::size_t done = 0;    // finished tasks (baselines + points)
  std::size_t total = 0;   // total tasks
  std::size_t cached = 0;  // of `done`, answered from the point cache
  double elapsed_seconds = 0.0;
  /// Wall-cost extrapolation of the remaining tasks. Cache hits replay in
  /// microseconds, so they are weighted as zero-cost: the per-task average
  /// comes from the simulated tasks only, and the remaining mix is
  /// predicted at the hit rate observed so far — an all-hit --resume
  /// reports eta 0 instead of extrapolating simulation cost onto replays.
  /// 0 until done > 0.
  double eta_seconds = 0.0;
};

struct SweepOptions {
  int threads = 0;  // <= 0: ThreadPool::default_threads()
  /// Stop dispatching new points after the first failure; undispatched
  /// points are reported as kSkipped and the result as cancelled.
  bool cancel_on_failure = true;
  /// Called with the pool's progress after each task; invocations are
  /// serialized, but may come from any worker thread.
  std::function<void(const SweepProgress&)> on_progress;
  /// Persistent point-cache file (see sweep/point_cache.hpp). Completed
  /// points are looked up before dispatch and appended after simulation,
  /// so re-running a campaign resumes instead of recomputing. Empty
  /// disables caching.
  std::string cache_path;
  /// External result store overriding `cache_path` (not owned; must outlive
  /// the call). With a claiming store (CampaignStore), every cold task is
  /// claimed before simulation: tasks another process holds a live lease on
  /// are deferred and drained after the main pass — resolved from the store
  /// when the other worker's result lands, or simulated locally once its
  /// lease expires. This is what lets K cooperating processes partition one
  /// grid with near-zero duplicated work.
  PointStore* store = nullptr;
  /// Poll interval (seconds) while draining tasks leased to other workers.
  double claim_poll_seconds = 0.05;
};

/// Execute the sweep: baselines first (one per unique (flows, replicate)),
/// then every point, all across the pool.
SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

}  // namespace pdos::sweep
