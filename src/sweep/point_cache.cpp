#include "sweep/point_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace pdos::sweep {

namespace {

/// FNV-1a over the canonical byte encoding of the inputs. Doubles hash by
/// bit pattern: two configs hash alike iff every parameter is bit-equal,
/// which matches the simulator's bit-exact determinism contract.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  Fnv1a& u64(std::uint64_t v) { return bytes(&v, sizeof(v)); }
  Fnv1a& i64(std::int64_t v) { return bytes(&v, sizeof(v)); }
  Fnv1a& f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }
  Fnv1a& str(const char* s) { return bytes(s, std::strlen(s) + 1); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Every ScenarioConfig field that shapes a run (including the TCP stack);
/// field order is part of the schema. Shared by the sweep keys below and
/// by `scenario_digest` (the fluid-surrogate keys of optimizer_cache.hpp).
void hash_scenario(Fnv1a& h, const ScenarioConfig& c) {
  h.i64(c.num_flows).f64(c.bottleneck).f64(c.access).f64(c.bottleneck_delay);
  h.i64(static_cast<std::int64_t>(c.rtts.size()));
  for (double rtt : c.rtts) h.f64(rtt);
  h.i64(static_cast<std::int64_t>(c.queue));
  h.i64(static_cast<std::int64_t>(c.buffer_packets));

  const TcpSenderConfig& t = c.tcp;
  h.i64(static_cast<std::int64_t>(t.variant));
  h.f64(t.aimd.a).f64(t.aimd.b).i64(t.aimd.d);
  h.i64(t.mss).i64(t.header_bytes);
  h.f64(t.initial_cwnd).f64(t.initial_ssthresh).f64(t.max_cwnd);
  h.f64(t.rto_min).f64(t.rto_max).f64(t.initial_rto);
  h.i64(t.dupack_threshold).f64(t.rto_jitter).i64(t.total_segments);

  h.i64(c.attack_packet_bytes).f64(c.attacker_access).i64(c.num_attackers);
  h.f64(c.attacker_phase_spread).f64(c.flow_start_spread);
  h.f64(c.cross_traffic_rate);

  // Simulation tier: the backend (and its tuning knobs) changes what a
  // "result" means, so full/fast/fluid/hybrid points must never alias in a
  // --resume replay.
  h.i64(static_cast<std::int64_t>(c.backend));
  h.i64(c.fast_path ? 1 : 0);
  h.i64(c.hybrid_foreground).f64(c.hybrid_tick);
  h.f64(c.fluid_dt_pulse).f64(c.fluid_dt_idle);
  // ScenarioConfig::shards is DELIBERATELY not hashed: the conservative
  // PDES partition produces bit-identical results at any shard count
  // (DESIGN.md §13; pinned by tests/pdes and the key-invariance test in
  // point_cache_test.cpp), so a cache written at one shard/executor count
  // must replay at any other. Hashing it would fork the cache on a knob
  // that cannot change a result. SweepSpec::batch_replicates is excluded
  // for the same reason: batched replicate execution (DESIGN.md §14) only
  // reschedules WHEN each replicate's events run in wall time — every
  // replicate keeps its own scheduler and seed streams, so the records a
  // batched sweep stores are byte-for-byte the ones a sequential sweep
  // stores (pinned by the batched/sequential invariance test in
  // point_cache_test.cpp), and either mode must resume all-hit from the
  // other's cache. The store BACKING (single file vs sharded campaign
  // directory) and the worker process count are not spec fields at all:
  // the same keys address both stores, which is what lets K campaign
  // processes dedup against each other and against past single-process
  // sweeps.
}

void hash_control(Fnv1a& h, const RunControl& ctl) {
  h.f64(ctl.warmup).f64(ctl.measure).f64(ctl.bin_width);
  h.i64(ctl.traced_flow);
}

/// Everything that parameterizes a sweep run: the derived ScenarioConfig,
/// the measurement windows, and the build fingerprint.
void hash_common(Fnv1a& h, const SweepSpec& spec, const ScenarioConfig& c,
                 std::uint64_t seed) {
  h.i64(kPointCacheSchema);
  h.str(__VERSION__);  // compiler change may legally perturb FP results
  h.i64(static_cast<std::int64_t>(spec.scenario));
  h.i64(static_cast<std::int64_t>(spec.queue));
  hash_scenario(h, c);
  hash_control(h, spec.control);
  h.u64(seed);
}

}  // namespace

std::uint64_t scenario_digest(const char* tag, const ScenarioConfig& config,
                              const RunControl& control, const double* extra,
                              std::size_t n_extra) {
  Fnv1a h;
  h.str(tag);
  h.i64(kPointCacheSchema);
  h.str(__VERSION__);
  hash_scenario(h, config);
  hash_control(h, control);
  for (std::size_t i = 0; i < n_extra; ++i) h.f64(extra[i]);
  return h.value();
}

std::uint64_t point_key(const SweepSpec& spec, const PointSpec& point,
                        std::uint64_t seed) {
  Fnv1a h;
  h.str("point");
  hash_common(h, spec, spec.make_scenario(point), seed);
  h.i64(point.flows).f64(point.textent).f64(point.rattack);
  h.f64(point.gamma).f64(point.kappa).i64(point.replicate);
  return h.value();
}

std::uint64_t baseline_key(const SweepSpec& spec, const PointSpec& probe,
                           std::uint64_t seed) {
  Fnv1a h;
  h.str("baseline");
  hash_common(h, spec, spec.make_scenario(probe), seed);
  // Only the axes the baseline run depends on; textent/rattack/gamma vary
  // freely across the points this baseline normalizes.
  h.i64(probe.flows).i64(probe.replicate);
  return h.value();
}

std::string format_point_record(std::uint64_t key, const CachedPoint& v) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "P %016" PRIx64
      " %.17g %.17g %.17g %d %.17g %.17g %.17g %.17g %.17g %.17g %" PRIu64
      " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
      key, v.c_psi, v.analytic_degradation, v.analytic_gain, v.shrew ? 1 : 0,
      v.baseline_goodput, v.goodput, v.measured_degradation, v.measured_gain,
      v.utilization, v.fairness, v.timeouts, v.fast_recoveries,
      v.attack_packets, v.events);
  return buf;
}

std::string format_baseline_record(std::uint64_t key, double goodput) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "B %016" PRIx64 " %.17g\n", key, goodput);
  return buf;
}

bool parse_point_record(const char* text, std::uint64_t& key, CachedPoint& v) {
  int shrew = 0;
  const int n = std::sscanf(
      text,
      "%" SCNx64 " %lg %lg %lg %d %lg %lg %lg %lg %lg %lg %" SCNu64
      " %" SCNu64 " %" SCNu64 " %" SCNu64,
      &key, &v.c_psi, &v.analytic_degradation, &v.analytic_gain, &shrew,
      &v.baseline_goodput, &v.goodput, &v.measured_degradation,
      &v.measured_gain, &v.utilization, &v.fairness, &v.timeouts,
      &v.fast_recoveries, &v.attack_packets, &v.events);
  v.shrew = shrew != 0;
  return n == 15;
}

bool parse_baseline_record(const char* text, std::uint64_t& key,
                           double& goodput) {
  return std::sscanf(text, "%" SCNx64 " %lg", &key, &goodput) == 2;
}

namespace {

constexpr char kHeader[] = "pdos-point-cache-v1";

}  // namespace

PointCache::PointCache(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  if (!in) return;  // no cache yet: start empty
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    // Foreign or pre-v1 file: ignore it and rewrite from scratch on the
    // first append (appending records after a bad header would make them
    // invisible to the next load).
    rewrite_ = true;
    return;
  }
  while (std::getline(in, line)) {
    if (line.size() < 2 || line[1] != ' ') continue;
    std::uint64_t key = 0;
    if (line[0] == 'P') {
      CachedPoint value;
      if (parse_point_record(line.c_str() + 2, key, value)) {
        points_[key] = value;
      }
    } else if (line[0] == 'B') {
      double goodput = 0.0;
      if (parse_baseline_record(line.c_str() + 2, key, goodput)) {
        baselines_[key] = goodput;
      }
    }
    // Unknown record kinds and malformed lines are skipped, not fatal.
  }
}

PointCache::~PointCache() {
  if (fd_ >= 0) ::close(fd_);
}

bool PointCache::lookup_point(std::uint64_t key, CachedPoint& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(key);
  if (it == points_.end()) return false;
  out = it->second;
  return true;
}

bool PointCache::lookup_baseline(std::uint64_t key, double& goodput) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = baselines_.find(key);
  if (it == baselines_.end()) return false;
  goodput = it->second;
  return true;
}

void PointCache::store_point(std::uint64_t key, const CachedPoint& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!points_.emplace(key, value).second) return;  // already recorded
  append(format_point_record(key, value));
}

void PointCache::store_baseline(std::uint64_t key, double goodput) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!baselines_.emplace(key, goodput).second) return;
  append(format_baseline_record(key, goodput));
}

std::size_t PointCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_.size() + baselines_.size();
}

void PointCache::append(const std::string& line) {
  if (fd_ < 0) {
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);  // best effort
    }
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (rewrite_) flags |= O_TRUNC;  // foreign header: start over
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0) return;  // unwritable cache degrades to in-memory only
    rewrite_ = false;
  }
  // Advisory lock so a concurrent process appending to the same file
  // cannot interleave with this record (or with the header we may need to
  // write first). O_APPEND makes each write(2) land atomically at the
  // current end even without the lock; the lock closes the header race and
  // keeps the header-check + write pair atomic.
  ::flock(fd_, LOCK_EX);
  struct stat st;
  std::string out;
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    out = std::string(kHeader) + "\n";
  }
  out += line;
  const char* data = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n <= 0) break;  // disk full etc.: degrade, records stay in memory
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  ::flock(fd_, LOCK_UN);
}

}  // namespace pdos::sweep
