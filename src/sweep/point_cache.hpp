// Persistent content-addressed cache of completed sweep points.
//
// A sweep point is a pure function of (scenario config, attack axes, seed):
// re-running a campaign recomputes work whose inputs have not changed. The
// cache keys every completed point (and every baseline run) by an FNV-1a
// digest of the canonicalized inputs plus a schema/compiler fingerprint,
// and stores the measured outputs. `run_sweep` consults it before
// dispatching a point and appends after completing one, so an interrupted
// or repeated campaign replays as cache hits (`pdos_sweep --resume`).
//
// Storage is a line-oriented append-only text file: one header line, then
// one record per entry. Doubles are written with %.17g so the reloaded
// value is bit-exact and cached CSV output stays byte-identical to a fresh
// run. Robustness over cleverness: a missing, truncated, or corrupt file —
// including one from an older schema — loads as empty and is rewritten by
// subsequent appends; malformed lines (e.g. a torn tail write) are skipped.
//
// The key covers every *parameter* that shapes the simulation, plus the
// compiler version. It cannot see code changes that alter simulation
// semantics at equal parameters — bump kPointCacheSchema when making one,
// or delete the cache file.
//
// Two result stores implement the `PointStore` interface the sweep engine
// programs against:
//   - `PointCache` (here): one append-only file, the single-process
//     `--resume` path. Appends go through an O_APPEND fd under an advisory
//     flock, so even two processes accidentally pointed at the same file
//     cannot interleave a record.
//   - `CampaignStore` (sweep/campaign_store.hpp): a directory of hash-
//     sharded segment files with the same record format plus lease records
//     for multi-process work claiming — the coordination substrate for
//     `pdos_campaign`.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sweep/sweep.hpp"

namespace pdos::sweep {

/// Bump on any change to the record layout OR to simulation semantics that
/// changes outputs at identical parameters.
/// Schema 2: the key covers the simulation tier (ScenarioConfig::backend,
/// fast_path, and the hybrid/fluid tuning knobs), so points computed on
/// different backends never alias.
/// Schema 3: the vectorized fluid tier (DESIGN.md §16) moved the solver's
/// cross-class reductions onto a fixed-shape block tree — every fluid and
/// hybrid result shifts at ULP level at identical parameters, so schema-2
/// fluid records must not replay.
inline constexpr int kPointCacheSchema = 3;

/// The measured (and analytic) outputs of one completed point — every
/// PointResult field the CSV/JSON writers derive from a run.
struct CachedPoint {
  double c_psi = 0.0;
  double analytic_degradation = 0.0;
  double analytic_gain = 0.0;
  bool shrew = false;
  double baseline_goodput = 0.0;
  double goodput = 0.0;
  double measured_degradation = 0.0;
  double measured_gain = 0.0;
  double utilization = 0.0;
  double fairness = 0.0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_recoveries = 0;
  std::uint64_t attack_packets = 0;
  std::uint64_t events = 0;
};

/// Digest of (point axes + derived ScenarioConfig + seed + control +
/// fingerprint) for an attack point of `spec`.
std::uint64_t point_key(const SweepSpec& spec, const PointSpec& point,
                        std::uint64_t seed);

/// Digest for the no-attack baseline of a (flows, replicate) pair.
std::uint64_t baseline_key(const SweepSpec& spec, const PointSpec& probe,
                           std::uint64_t seed);

/// Digest of (tag + schema/compiler fingerprint + full ScenarioConfig +
/// RunControl + `extra` doubles, in order). The key core of the fluid
/// surrogate-gain cache (sweep/optimizer_cache.hpp), exposed here so every
/// store key shares one hash discipline (and one schema bump). No seed
/// parameter on purpose: the callers cache fluid-tier results, which are
/// seed-invariant.
std::uint64_t scenario_digest(const char* tag, const ScenarioConfig& config,
                              const RunControl& control, const double* extra,
                              std::size_t n_extra);

// Record text codecs shared by PointCache and CampaignStore: one line per
// record, %.17g doubles for bit-exact reload. The returned lines include
// the trailing newline.
std::string format_point_record(std::uint64_t key, const CachedPoint& v);
std::string format_baseline_record(std::uint64_t key, double goodput);
/// Parse the text after the "P " / "B " tag. Returns false on a malformed
/// (e.g. torn) line.
bool parse_point_record(const char* text, std::uint64_t& key, CachedPoint& v);
bool parse_baseline_record(const char* text, std::uint64_t& key,
                           double& goodput);

/// What the sweep engine needs from a result store. `PointCache` is the
/// single-process file implementation; `CampaignStore` adds multi-process
/// work claiming on a sharded directory. All methods are thread-safe.
class PointStore {
 public:
  virtual ~PointStore() = default;

  virtual bool lookup_point(std::uint64_t key, CachedPoint& out) const = 0;
  virtual bool lookup_baseline(std::uint64_t key, double& goodput) const = 0;
  virtual void store_point(std::uint64_t key, const CachedPoint& value) = 0;
  virtual void store_baseline(std::uint64_t key, double goodput) = 0;
  virtual std::size_t size() const = 0;

  /// Work claiming for cooperating processes. A worker claims a task key
  /// before simulating it; the default (single-process) implementation
  /// always acquires, so plain caches run every miss themselves.
  ///   kAcquired — this process owns the task and must simulate it (and
  ///               then store the result, which supersedes the claim).
  ///   kBusy     — another live process holds a lease; defer the task and
  ///               poll for its result (or for lease expiry).
  ///   kDone     — the result appeared in the store since the lookup miss;
  ///               re-lookup instead of simulating.
  enum class ClaimStatus { kAcquired, kBusy, kDone };
  virtual ClaimStatus claim_point(std::uint64_t key) {
    (void)key;
    return ClaimStatus::kAcquired;
  }
  virtual ClaimStatus claim_baseline(std::uint64_t key) {
    (void)key;
    return ClaimStatus::kAcquired;
  }
  /// Give up a claim without a result (simulation failed): lets another
  /// worker retry immediately instead of waiting out the lease.
  virtual void release_point(std::uint64_t key) { (void)key; }
  virtual void release_baseline(std::uint64_t key) { (void)key; }

  /// Pick up records appended by other processes since the last scan.
  /// No-op for single-process stores.
  virtual void refresh() {}
};

class PointCache : public PointStore {
 public:
  /// Load `path` if it exists (tolerating corruption); appends create it,
  /// including missing parent directories.
  explicit PointCache(std::string path);
  ~PointCache() override;

  PointCache(const PointCache&) = delete;
  PointCache& operator=(const PointCache&) = delete;

  bool lookup_point(std::uint64_t key, CachedPoint& out) const override;
  bool lookup_baseline(std::uint64_t key, double& goodput) const override;

  /// Record a completed point/baseline: insert in memory and append to the
  /// cache file. Appends go through an O_APPEND fd with the full record in
  /// one write(2) under an advisory flock(2), so concurrent processes
  /// appending to the same file cannot interleave a record (each sees the
  /// other's lines whole on its next load). Thread-safe.
  void store_point(std::uint64_t key, const CachedPoint& value) override;
  void store_baseline(std::uint64_t key, double goodput) override;

  std::size_t size() const override;
  const std::string& path() const { return path_; }

 private:
  void append(const std::string& line);

  std::string path_;
  bool rewrite_ = false;  // existing file had a foreign header: truncate it
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, CachedPoint> points_;
  std::unordered_map<std::uint64_t, double> baselines_;
  int fd_ = -1;  // opened lazily on first append (O_APPEND)
};

}  // namespace pdos::sweep
