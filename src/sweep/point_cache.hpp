// Persistent content-addressed cache of completed sweep points.
//
// A sweep point is a pure function of (scenario config, attack axes, seed):
// re-running a campaign recomputes work whose inputs have not changed. The
// cache keys every completed point (and every baseline run) by an FNV-1a
// digest of the canonicalized inputs plus a schema/compiler fingerprint,
// and stores the measured outputs. `run_sweep` consults it before
// dispatching a point and appends after completing one, so an interrupted
// or repeated campaign replays as cache hits (`pdos_sweep --resume`).
//
// Storage is a line-oriented append-only text file: one header line, then
// one record per entry. Doubles are written with %.17g so the reloaded
// value is bit-exact and cached CSV output stays byte-identical to a fresh
// run. Robustness over cleverness: a missing, truncated, or corrupt file —
// including one from an older schema — loads as empty and is rewritten by
// subsequent appends; malformed lines (e.g. a torn tail write) are skipped.
//
// The key covers every *parameter* that shapes the simulation, plus the
// compiler version. It cannot see code changes that alter simulation
// semantics at equal parameters — bump kPointCacheSchema when making one,
// or delete the cache file.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sweep/sweep.hpp"

namespace pdos::sweep {

/// Bump on any change to the record layout OR to simulation semantics that
/// changes outputs at identical parameters.
/// Schema 2: the key covers the simulation tier (ScenarioConfig::backend,
/// fast_path, and the hybrid/fluid tuning knobs), so points computed on
/// different backends never alias.
inline constexpr int kPointCacheSchema = 2;

/// The measured (and analytic) outputs of one completed point — every
/// PointResult field the CSV/JSON writers derive from a run.
struct CachedPoint {
  double c_psi = 0.0;
  double analytic_degradation = 0.0;
  double analytic_gain = 0.0;
  bool shrew = false;
  double baseline_goodput = 0.0;
  double goodput = 0.0;
  double measured_degradation = 0.0;
  double measured_gain = 0.0;
  double utilization = 0.0;
  double fairness = 0.0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_recoveries = 0;
  std::uint64_t attack_packets = 0;
  std::uint64_t events = 0;
};

/// Digest of (point axes + derived ScenarioConfig + seed + control +
/// fingerprint) for an attack point of `spec`.
std::uint64_t point_key(const SweepSpec& spec, const PointSpec& point,
                        std::uint64_t seed);

/// Digest for the no-attack baseline of a (flows, replicate) pair.
std::uint64_t baseline_key(const SweepSpec& spec, const PointSpec& probe,
                           std::uint64_t seed);

class PointCache {
 public:
  /// Load `path` if it exists (tolerating corruption); appends create it,
  /// including missing parent directories.
  explicit PointCache(std::string path);

  PointCache(const PointCache&) = delete;
  PointCache& operator=(const PointCache&) = delete;

  bool lookup_point(std::uint64_t key, CachedPoint& out) const;
  bool lookup_baseline(std::uint64_t key, double& goodput) const;

  /// Record a completed point/baseline: insert in memory and append to the
  /// cache file (flushed per record, so a killed sweep loses at most the
  /// torn last line). Thread-safe.
  void store_point(std::uint64_t key, const CachedPoint& value);
  void store_baseline(std::uint64_t key, double goodput);

  std::size_t size() const;
  const std::string& path() const { return path_; }

 private:
  void append(const std::string& line);

  std::string path_;
  bool rewrite_ = false;  // existing file had a foreign header: truncate it
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, CachedPoint> points_;
  std::unordered_map<std::uint64_t, double> baselines_;
  std::ofstream out_;  // opened lazily on first append
};

}  // namespace pdos::sweep
