// Work-stealing thread pool for parameter campaigns.
//
// Simulations are CPU-bound and embarrassingly parallel — every sweep
// point is an independent `Simulator` with its own seed — so the pool is
// optimized for coarse tasks (milliseconds to seconds each), not
// micro-tasks: each worker owns a ring protected by a small mutex, pops
// from the front of its own ring, and steals from the front of a victim's
// ring (the oldest, coldest task) when it runs dry. External submits are
// distributed round-robin; submits from inside a worker go to that
// worker's own ring, so task trees stay mostly local.
//
// Tasks are `InlineFn`s — the same fixed-capacity inline closure as
// scheduler events — so a submitted task is a 48-byte ring slot, not a
// heap-held std::function: once each worker's ring has grown to its
// high-water mark, the submit/pop/steal cycle performs zero allocations.
// A task capturing more than kInlineFnCapacity bytes is a compile error;
// sweep tasks capture a handful of pointers (see parallel_for).
//
// The pool never touches simulation state: determinism is the caller's
// job (seed every task up front; write results into pre-sized slots).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "net/packet_ring.hpp"
#include "sim/event.hpp"
#include "sim/pdes/engine.hpp"

namespace pdos::sweep {

class ThreadPool {
 public:
  /// Spin up `threads` workers; `threads <= 0` means `default_threads()`.
  explicit ThreadPool(int threads = 0);

  /// Runs any still-queued tasks to completion, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task (any callable whose captures fit kInlineFnCapacity).
  /// Thread-safe; callable from worker threads (nested submits land on the
  /// submitting worker's own ring).
  void submit(InlineFn task);

  /// Block until every submitted task (including tasks submitted by other
  /// tasks) has finished. Must not be called from a worker thread.
  void wait_idle();

  /// max(1, std::thread::hardware_concurrency()).
  static int default_threads();

 private:
  // One ring per worker; all guarded by state_mutex_. Tasks are coarse
  // (whole simulations), so a single lock is cheaper than getting lock-free
  // deques right — the *stealing policy* is what matters for balance.
  struct Worker {
    Ring<InlineFn> tasks;
  };

  // Pop from own front, else steal the oldest task from a victim. Caller
  // holds state_mutex_.
  bool try_pop_locked(std::size_t self, InlineFn& task);
  void worker_loop(std::size_t index);

  std::vector<Worker> workers_;
  std::vector<std::thread> threads_;

  std::mutex state_mutex_;
  std::condition_variable work_cv_;   // workers: new task or shutdown
  std::condition_variable idle_cv_;   // wait_idle: pending_ hit zero
  std::size_t pending_ = 0;           // submitted but not yet finished
  std::size_t queued_ = 0;            // submitted but not yet started
  std::size_t next_worker_ = 0;       // round-robin for external submits
  bool stopping_ = false;
};

/// Run `fn(i)` for i in [0, n) on `pool`, blocking until all complete.
/// Iterations must be independent; exceptions propagate out of the first
/// failing iteration (remaining iterations still run).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// A PDES shard executor backed by `pool`: per-round shard tasks fan out
/// across the workers and the round barrier is parallel_for's join. Install
/// with ScenarioWorkspace::set_shard_executor when ONE sharded scenario
/// should use the whole machine (scenario_runner, benches). Sweep workers
/// deliberately do NOT install one — they are already one-per-core, and the
/// engine's inline default keeps nested parallelism out (results are
/// bit-identical either way, DESIGN.md §13). The pool must outlive the
/// returned executor.
inline pdes::ShardExecutor pool_shard_executor(ThreadPool& pool) {
  return [&pool](std::size_t n, const pdes::ShardTask& fn) {
    parallel_for(pool, n, fn);
  };
}

}  // namespace pdos::sweep
