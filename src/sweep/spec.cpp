#include "sweep/spec.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace pdos::sweep {

namespace {

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    item = trim(item);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

double parse_double(const std::string& value, int line) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  PDOS_REQUIRE(end != value.c_str() && *end == '\0',
               "spec line " + std::to_string(line) + ": not a number: '" +
                   value + "'");
  return parsed;
}

std::vector<double> parse_list(const std::string& value, int line) {
  std::vector<double> parsed;
  for (const std::string& item : split_list(value)) {
    parsed.push_back(parse_double(item, line));
  }
  PDOS_REQUIRE(!parsed.empty(),
               "spec line " + std::to_string(line) + ": empty list");
  return parsed;
}

}  // namespace

SpecFile parse_spec(const std::string& text) {
  SpecFile file;
  std::stringstream stream(text);
  std::string raw;
  int line = 0;
  while (std::getline(stream, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    raw = trim(raw);
    if (raw.empty()) continue;
    const auto eq = raw.find('=');
    PDOS_REQUIRE(eq != std::string::npos,
                 "spec line " + std::to_string(line) +
                     ": expected 'key = value', got '" + raw + "'");
    const std::string key = trim(raw.substr(0, eq));
    const std::string value = trim(raw.substr(eq + 1));
    PDOS_REQUIRE(!key.empty() && !value.empty(),
                 "spec line " + std::to_string(line) +
                     ": empty key or value");

    if (key == "scenario") {
      PDOS_REQUIRE(value == "ns2" || value == "testbed",
                   "spec line " + std::to_string(line) +
                       ": scenario must be ns2 or testbed");
      file.spec.scenario = value == "ns2" ? ScenarioKind::kNs2Dumbbell
                                          : ScenarioKind::kTestbed;
    } else if (key == "queue") {
      PDOS_REQUIRE(value == "red" || value == "droptail",
                   "spec line " + std::to_string(line) +
                       ": queue must be red or droptail");
      file.spec.queue =
          value == "red" ? QueueKind::kRed : QueueKind::kDropTail;
    } else if (key == "backend") {
      const auto backend = parse_backend(value);
      PDOS_REQUIRE(backend.has_value(),
                   "spec line " + std::to_string(line) +
                       ": backend must be full, fast, fluid or hybrid");
      file.spec.backend = *backend;
    } else if (key == "hybrid_foreground") {
      file.spec.hybrid_foreground =
          static_cast<int>(parse_double(value, line));
    } else if (key == "shards") {
      file.spec.shards = static_cast<int>(parse_double(value, line));
      PDOS_REQUIRE(file.spec.shards >= 1,
                   "spec line " + std::to_string(line) +
                       ": shards must be >= 1");
    } else if (key == "batch_replicates") {
      if (value == "on" || value == "true" || value == "1") {
        file.spec.batch_replicates = true;
      } else if (value == "off" || value == "false" || value == "0") {
        file.spec.batch_replicates = false;
      } else {
        PDOS_REQUIRE(false, "spec line " + std::to_string(line) +
                                ": batch_replicates must be on or off");
      }
    } else if (key == "flows") {
      file.spec.flow_counts.clear();
      for (double flows : parse_list(value, line)) {
        file.spec.flow_counts.push_back(static_cast<int>(flows));
      }
    } else if (key == "textent_ms") {
      file.spec.textents.clear();
      for (double textent : parse_list(value, line)) {
        file.spec.textents.push_back(ms(textent));
      }
    } else if (key == "rattack_mbps") {
      file.spec.rattacks.clear();
      for (double rattack : parse_list(value, line)) {
        file.spec.rattacks.push_back(mbps(rattack));
      }
    } else if (key == "gamma") {
      file.spec.gammas.clear();
      if (value != "auto") file.spec.gammas = parse_list(value, line);
    } else if (key == "gamma_points") {
      file.spec.gamma_points = static_cast<int>(parse_double(value, line));
    } else if (key == "kappa") {
      file.spec.kappa = parse_double(value, line);
    } else if (key == "replicates") {
      file.spec.replicates = static_cast<int>(parse_double(value, line));
    } else if (key == "base_seed") {
      file.spec.base_seed =
          static_cast<std::uint64_t>(parse_double(value, line));
    } else if (key == "warmup_s") {
      file.spec.control.warmup = sec(parse_double(value, line));
    } else if (key == "measure_s") {
      file.spec.control.measure = sec(parse_double(value, line));
    } else if (key == "threads") {
      file.options.threads = static_cast<int>(parse_double(value, line));
    } else if (key == "csv") {
      file.csv_path = value;
    } else if (key == "json") {
      file.json_path = value;
    } else if (key == "cache") {
      file.options.cache_path = value;
    } else if (key == "store") {
      file.store_dir = value;
    } else {
      throw ParameterError("spec line " + std::to_string(line) +
                           ": unknown key '" + key + "'");
    }
  }
  file.spec.validate();
  return file;
}

SpecFile load_spec_file(const std::string& path) {
  std::ifstream in(path);
  PDOS_REQUIRE(in.good(), "cannot open spec file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace pdos::sweep
