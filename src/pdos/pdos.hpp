// Umbrella header for the PDoS library.
//
// Pull in everything a downstream user needs:
//
//   #include "pdos/pdos.hpp"
//
//   pdos::ScenarioConfig scenario = pdos::ScenarioConfig::ns2_dumbbell(15);
//   pdos::AttackPlanRequest request{.victim = scenario.victim_profile()};
//   pdos::AttackPlan plan = pdos::plan_attack(request);
//   pdos::RunResult result =
//       pdos::run_scenario(scenario, plan.train, pdos::RunControl{});
//
// Layering (each header can also be included individually):
//   util/   — units, RNG, assertions, logging
//   sim/    — discrete-event engine
//   net/    — packets, queues (DropTail/RED), links, nodes
//   tcp/    — AIMD(a,b) TCP: Tahoe/Reno/NewReno senders, receivers
//   attack/ — pulse trains, flooding, shrew helpers
//   stats/  — traffic time series, PAA, peaks, periods, jitter
//   detect/ — rate-anomaly and DTW pulse detectors
//   core/   — the paper's model, optimizer, planner, experiment runner
//   sweep/  — multi-threaded parameter campaigns over the grid
#pragma once

#include "attack/distributed.hpp"
#include "attack/pulse.hpp"
#include "attack/shrew.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "core/params.hpp"
#include "core/planner.hpp"
#include "core/roq.hpp"
#include "core/timeout_model.hpp"
#include "detect/dtw_detector.hpp"
#include "detect/rate_detector.hpp"
#include "io/csv.hpp"
#include "io/gnuplot.hpp"
#include "io/trace.hpp"
#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "net/red.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "stats/fairness.hpp"
#include "stats/jitter.hpp"
#include "stats/timeseries.hpp"
#include "sweep/spec.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"
#include "tcp/aimd.hpp"
#include "traffic/sources.hpp"
#include "tcp/connection.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
