// General AIMD(a, b) congestion-control parameters.
//
// The paper analyses the generalized additive-increase/multiplicative-
// decrease family: on a congestion signal the window drops from W to b*W;
// afterwards it grows by `a` MSS per RTT (a/d with delayed ACKs that cover
// d segments). TCP Tahoe/Reno/NewReno are AIMD(1, 0.5).
#pragma once

#include "util/assert.hpp"

namespace pdos {

struct AimdParams {
  double a = 1.0;  // additive increase, MSS per RTT (> 0)
  double b = 0.5;  // multiplicative decrease factor (0 < b < 1)
  int d = 1;       // delayed-ACK factor: ACK every d full segments (>= 1)

  void validate() const {
    PDOS_REQUIRE(a > 0.0, "AIMD: a must be > 0");
    PDOS_REQUIRE(b > 0.0 && b < 1.0, "AIMD: b must be in (0, 1)");
    PDOS_REQUIRE(d >= 1, "AIMD: d must be >= 1");
  }

  static AimdParams new_reno() { return AimdParams{1.0, 0.5, 1}; }
  static AimdParams new_reno_delack() { return AimdParams{1.0, 0.5, 2}; }
};

}  // namespace pdos
