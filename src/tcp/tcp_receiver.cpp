#include "tcp/tcp_receiver.hpp"

#include <algorithm>
#include <functional>

#include "util/assert.hpp"

namespace pdos {

void TcpReceiverConfig::validate() const {
  PDOS_REQUIRE(delack_factor >= 1, "TcpReceiver: delack_factor must be >= 1");
  PDOS_REQUIRE(delack_timeout > 0.0,
               "TcpReceiver: delack_timeout must be > 0");
  PDOS_REQUIRE(mss > 0, "TcpReceiver: mss must be > 0");
}

TcpReceiver::TcpReceiver(Simulator& sim, FlowId flow, NodeId self, NodeId peer,
                         PacketHandler* out, TcpReceiverConfig config)
    : sim_(sim),
      flow_(flow),
      self_(self),
      peer_(peer),
      out_(out),
      config_(config),
      reorder_buffer_(sim.memory()),
      delack_timer_(sim.scheduler(), [this] {
        if (unacked_segments_ > 0) send_ack(pending_ts_echo_);
      }) {
  PDOS_REQUIRE(out != nullptr, "TcpReceiver: out handler must be non-null");
  config_.validate();
}

void TcpReceiver::handle(Packet pkt) {
  PDOS_CHECK(pkt.type == PacketType::kTcpData);
  ++stats_.segments_received;

  if (pkt.seq == next_expected_) {
    // In-order: deliver it plus any contiguous buffered segments.
    std::int64_t advanced = 1;
    ++next_expected_;
    while (!reorder_buffer_.empty() &&
           reorder_buffer_.back() == next_expected_) {
      reorder_buffer_.pop_back();  // descending order: smallest at the back
      ++next_expected_;
      ++advanced;
    }
    goodput_bytes_ += advanced * config_.mss;
    if (delivery_tracer_) delivery_tracer_(sim_.now(), advanced);

    pending_ts_echo_ = pkt.ts_echo;
    unacked_segments_ += static_cast<int>(advanced);
    const bool filled_gap = !reorder_buffer_.empty() || advanced > 1;
    if (filled_gap || unacked_segments_ >= config_.delack_factor) {
      // RFC 5681: ACK immediately when filling a hole or every d segments.
      send_ack(pkt.ts_echo);
    } else {
      arm_delack();
    }
    return;
  }

  if (pkt.seq > next_expected_) {
    // Gap: buffer (deduplicated) and emit an immediate duplicate ACK.
    ++stats_.out_of_order;
    const auto it =
        std::lower_bound(reorder_buffer_.begin(), reorder_buffer_.end(),
                         pkt.seq, std::greater<std::int64_t>());
    if (it == reorder_buffer_.end() || *it != pkt.seq) {
      reorder_buffer_.insert(it, pkt.seq);
    }
    send_ack(pkt.ts_echo);
    return;
  }

  // Segment below the cumulative point: a spurious retransmission. ACK
  // immediately so the sender can make progress.
  ++stats_.duplicate_segments;
  send_ack(pkt.ts_echo);
}

void TcpReceiver::send_ack(Time ts_echo) {
  disarm_delack();
  unacked_segments_ = 0;
  Packet ack;
  ack.type = PacketType::kTcpAck;
  ack.flow = flow_;
  ack.src = self_;
  ack.dst = peer_;
  ack.size_bytes = config_.ack_bytes;
  ack.ack = next_expected_;
  ack.seq = next_expected_;
  ack.ts_echo = ts_echo;
  ++stats_.acks_sent;
  out_->handle(std::move(ack));
}

void TcpReceiver::arm_delack() {
  if (delack_timer_.pending()) return;  // timer already running
  delack_timer_.schedule_in(config_.delack_timeout);
}

void TcpReceiver::disarm_delack() { delack_timer_.stop(); }

}  // namespace pdos
