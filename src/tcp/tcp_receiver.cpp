#include "tcp/tcp_receiver.hpp"

#include <algorithm>
#include <functional>

#include "util/assert.hpp"

namespace pdos {

void TcpReceiverConfig::validate() const {
  PDOS_REQUIRE(delack_factor >= 1, "TcpReceiver: delack_factor must be >= 1");
  PDOS_REQUIRE(delack_timeout > 0.0,
               "TcpReceiver: delack_timeout must be > 0");
  PDOS_REQUIRE(mss > 0, "TcpReceiver: mss must be > 0");
}

TcpReceiver::TcpReceiver(Simulator& sim, FlowId flow, NodeId self, NodeId peer,
                         PacketHandler* out, TcpReceiverConfig config,
                         TcpReceiverHot* hot)
    : sim_(sim),
      flow_(flow),
      self_(self),
      peer_(peer),
      out_(out),
      config_(config),
      hot_(hot != nullptr ? hot : &fallback_hot_),
      fallback_hot_(sim.memory()) {
  PDOS_REQUIRE(out != nullptr, "TcpReceiver: out handler must be non-null");
  config_.validate();
  // Reset the slot field-by-field: the reorder buffer keeps whatever memory
  // resource it was constructed over (the arena for flat-array slots).
  hot_->next_expected = 0;
  hot_->goodput_bytes = 0;
  hot_->pending_ts_echo = 0.0;
  hot_->delack_event = kInvalidEventId;
  hot_->unacked_segments = 0;
  hot_->reorder_buffer.clear();
}

TcpReceiver::~TcpReceiver() { disarm_delack(); }

void TcpReceiver::handle(Packet pkt) {
  PDOS_CHECK(pkt.type == PacketType::kTcpData);
  ++stats_.segments_received;

  auto& reorder = hot_->reorder_buffer;
  if (pkt.seq == hot_->next_expected) {
    // In-order: deliver it plus any contiguous buffered segments.
    std::int64_t advanced = 1;
    ++hot_->next_expected;
    while (!reorder.empty() && reorder.back() == hot_->next_expected) {
      reorder.pop_back();  // descending order: smallest at the back
      ++hot_->next_expected;
      ++advanced;
    }
    hot_->goodput_bytes += advanced * config_.mss;
    if (delivery_tracer_) delivery_tracer_(sim_.now(), advanced);

    hot_->pending_ts_echo = pkt.ts_echo;
    hot_->unacked_segments += static_cast<std::int32_t>(advanced);
    const bool filled_gap = !reorder.empty() || advanced > 1;
    if (filled_gap || hot_->unacked_segments >= config_.delack_factor) {
      // RFC 5681: ACK immediately when filling a hole or every d segments.
      send_ack(pkt.ts_echo);
    } else {
      arm_delack();
    }
    return;
  }

  if (pkt.seq > hot_->next_expected) {
    // Gap: buffer (deduplicated) and emit an immediate duplicate ACK.
    ++stats_.out_of_order;
    const auto it = std::lower_bound(reorder.begin(), reorder.end(), pkt.seq,
                                     std::greater<std::int64_t>());
    if (it == reorder.end() || *it != pkt.seq) {
      reorder.insert(it, pkt.seq);
    }
    send_ack(pkt.ts_echo);
    return;
  }

  // Segment below the cumulative point: a spurious retransmission. ACK
  // immediately so the sender can make progress.
  ++stats_.duplicate_segments;
  send_ack(pkt.ts_echo);
}

void TcpReceiver::send_ack(Time ts_echo) {
  disarm_delack();
  hot_->unacked_segments = 0;
  Packet ack;
  ack.type = PacketType::kTcpAck;
  ack.flow = flow_;
  ack.src = self_;
  ack.dst = peer_;
  ack.size_bytes = config_.ack_bytes;
  ack.ack = hot_->next_expected;
  ack.seq = hot_->next_expected;
  ack.ts_echo = ts_echo;
  ++stats_.acks_sent;
  out_->handle(std::move(ack));
}

void TcpReceiver::arm_delack() {
  if (hot_->delack_event != kInvalidEventId) return;  // already running
  // Timer inlined onto the hot line: the armed closure marks the slot idle
  // before firing so the callback may re-arm.
  hot_->delack_event =
      sim_.schedule(config_.delack_timeout, [this] {
        hot_->delack_event = kInvalidEventId;
        if (hot_->unacked_segments > 0) send_ack(hot_->pending_ts_echo);
      });
}

void TcpReceiver::disarm_delack() {
  if (hot_->delack_event == kInvalidEventId) return;
  sim_.scheduler().cancel(hot_->delack_event);
  hot_->delack_event = kInvalidEventId;
}

}  // namespace pdos
