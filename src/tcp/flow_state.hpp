// Hot per-flow TCP state, split from the cold sender/receiver objects.
//
// A thousand-flow scenario touches every flow's congestion state on every
// ACK; with the state embedded in full TcpSender/TcpReceiver objects those
// touches are scattered across the arena between config blocks, stats
// counters, node tables and strings. The hot structs below carry exactly
// the fields the per-packet path reads and writes — window state, sequence
// state, RTT estimator, timer handles — and are sized to at most two cache
// lines each (static_assert'd), so `core/experiment` can lay all N of them
// out in flat per-class arrays (`Simulator::make_array`) and the working
// set of the ACK clock becomes N * <=128 contiguous bytes per class.
//
// The cold halves (TcpSenderConfig, stats counters, tracers, node wiring)
// stay in the component objects, which hold a pointer to their hot slot.
// Components built without an external slot (unit tests, hand-built
// topologies) fall back to an embedded slot — behaviour is identical either
// way, layout is not.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "sim/event.hpp"
#include "util/units.hpp"

namespace pdos {

/// Sender-side per-ACK state: one cache line of scalars plus the RTO event
/// handle. `rto_event` replaces a Timer member — the closure lives with the
/// cold sender, only the generation-tagged id rides the hot line.
struct TcpSenderHot {
  double cwnd = 0.0;            // congestion window, segments
  double ssthresh = 0.0;        // slow-start threshold, segments
  std::int64_t snd_una = 0;     // lowest unacknowledged segment
  std::int64_t next_seq = 0;    // next new segment to transmit
  std::int64_t recover = -1;    // highest segment sent at loss detection
  Time srtt = 0.0;              // RFC 6298 smoothed RTT
  Time rttvar = 0.0;            // RFC 6298 RTT variance
  Time rto = 0.0;               // current retransmission timeout
  EventId rto_event = kInvalidEventId;
  std::int32_t dupack_count = 0;
  std::int32_t backoff = 1;     // exponential backoff multiplier
  bool started = false;
  bool in_fast_recovery = false;
  bool have_rtt_sample = false;
};
static_assert(sizeof(TcpSenderHot) <= 128,
              "TcpSenderHot must fit two cache lines");

/// Receiver-side per-segment state: cumulative point, delayed-ACK ledger,
/// and the (usually empty) out-of-order buffer. The reorder vector's
/// inline header rides the hot line; its spill storage comes from the
/// simulator arena and is only touched during loss episodes.
struct TcpReceiverHot {
  explicit TcpReceiverHot(std::pmr::memory_resource* memory =
                              std::pmr::get_default_resource())
      : reorder_buffer(memory) {}

  std::int64_t next_expected = 0;  // next in-order segment index
  Bytes goodput_bytes = 0;         // unique delivered payload bytes
  Time pending_ts_echo = 0.0;      // timestamp to echo on the next ACK
  EventId delack_event = kInvalidEventId;
  std::int32_t unacked_segments = 0;  // in-order segments since last ACK
  // Out-of-order segment numbers, sorted DESCENDING so the smallest — the
  // only one the drain loop inspects — sits at the back.
  std::pmr::vector<std::int64_t> reorder_buffer;
};
static_assert(sizeof(TcpReceiverHot) <= 128,
              "TcpReceiverHot must fit two cache lines");

}  // namespace pdos
