#include "tcp/connection.hpp"

namespace pdos {

TcpConnection make_tcp_connection(Simulator& sim, Node& src, Node& dst,
                                  FlowId flow,
                                  TcpSenderConfig sender_config) {
  TcpReceiverConfig receiver_config;
  receiver_config.delack_factor = sender_config.aimd.d;
  receiver_config.mss = sender_config.mss;
  receiver_config.ack_bytes = sender_config.header_bytes;

  auto* sender = sim.make<TcpSender>(sim, flow, src.id(), dst.id(), &src,
                                     sender_config);
  auto* receiver = sim.make<TcpReceiver>(sim, flow, dst.id(), src.id(), &dst,
                                         receiver_config);
  src.attach(flow, sender);
  dst.attach(flow, receiver);
  return TcpConnection{flow, sender, receiver};
}

}  // namespace pdos
