#include "tcp/connection.hpp"

namespace pdos {

TcpConnection make_tcp_connection(Simulator& sim, Node& src, Node& dst,
                                  FlowId flow, TcpSenderConfig sender_config,
                                  TcpSenderHot* sender_hot,
                                  TcpReceiverHot* receiver_hot,
                                  PacketHandler* sender_out,
                                  PacketHandler* receiver_out) {
  TcpReceiverConfig receiver_config;
  receiver_config.delack_factor = sender_config.aimd.d;
  receiver_config.mss = sender_config.mss;
  receiver_config.ack_bytes = sender_config.header_bytes;

  auto* sender = sim.make<TcpSender>(
      sim, flow, src.id(), dst.id(),
      sender_out != nullptr ? sender_out : static_cast<PacketHandler*>(&src),
      sender_config, sender_hot);
  auto* receiver = sim.make<TcpReceiver>(
      sim, flow, dst.id(), src.id(),
      receiver_out != nullptr ? receiver_out
                              : static_cast<PacketHandler*>(&dst),
      receiver_config, receiver_hot);
  src.attach(flow, sender);
  dst.attach(flow, receiver);
  return TcpConnection{flow, sender, receiver};
}

}  // namespace pdos
