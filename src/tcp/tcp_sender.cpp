#include "tcp/tcp_sender.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace pdos {

namespace {
constexpr double kMinCwnd = 1.0;
constexpr double kMinSsthresh = 2.0;
}  // namespace

const char* tcp_variant_name(TcpVariant variant) {
  switch (variant) {
    case TcpVariant::kTahoe:
      return "Tahoe";
    case TcpVariant::kReno:
      return "Reno";
    case TcpVariant::kNewReno:
      return "NewReno";
  }
  return "?";
}

void TcpSenderConfig::validate() const {
  aimd.validate();
  PDOS_REQUIRE(rto_jitter >= 0.0, "TcpSender: rto_jitter must be >= 0");
  PDOS_REQUIRE(mss > 0, "TcpSender: mss must be > 0");
  PDOS_REQUIRE(header_bytes >= 0, "TcpSender: header_bytes must be >= 0");
  PDOS_REQUIRE(initial_cwnd >= 1.0, "TcpSender: initial_cwnd must be >= 1");
  PDOS_REQUIRE(max_cwnd >= initial_cwnd,
               "TcpSender: max_cwnd must be >= initial_cwnd");
  PDOS_REQUIRE(rto_min > 0.0 && rto_min <= rto_max,
               "TcpSender: need 0 < rto_min <= rto_max");
  PDOS_REQUIRE(dupack_threshold >= 1,
               "TcpSender: dupack_threshold must be >= 1");
}

TcpSender::TcpSender(Simulator& sim, FlowId flow, NodeId self, NodeId peer,
                     PacketHandler* out, TcpSenderConfig config)
    : sim_(sim),
      flow_(flow),
      self_(self),
      peer_(peer),
      out_(out),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      rto_(config.initial_rto),
      rto_timer_(sim.scheduler(), [this] { on_timeout(); }) {
  PDOS_REQUIRE(out != nullptr, "TcpSender: out handler must be non-null");
  config_.validate();
}

void TcpSender::start(Time when) {
  PDOS_CHECK_MSG(!started_, "TcpSender started twice");
  started_ = true;
  sim_.schedule_at(when, [this] { send_available(); });
}

std::int64_t TcpSender::window() const {
  const double w = std::min(cwnd_, config_.max_cwnd);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::floor(w)));
}

void TcpSender::handle(Packet pkt) {
  PDOS_CHECK(pkt.type == PacketType::kTcpAck);
  if (pkt.ack > snd_una_) {
    ++stats_.acks_received;
    on_new_ack(pkt);
  } else if (in_flight() > 0) {
    ++stats_.acks_received;
    ++stats_.dupacks_received;
    on_dup_ack();
  }
  send_available();
}

void TcpSender::on_new_ack(const Packet& pkt) {
  const std::int64_t newly_acked = pkt.ack - snd_una_;
  snd_una_ = pkt.ack;
  sample_rtt(pkt);
  backoff_ = 1;  // forward progress clears exponential backoff

  if (in_fast_recovery_) {
    // Reno deflates on the first new ACK regardless; NewReno stays in
    // recovery until the loss-time window is fully acknowledged (RFC 3782).
    if (config_.variant == TcpVariant::kReno || snd_una_ > recover_) {
      exit_fast_recovery();
    } else {
      on_partial_ack(newly_acked);
      arm_rto();
      return;
    }
  } else {
    dupack_count_ = 0;
  }

  // Window growth: one increase step per new ACK. Delayed ACKs (one ACK per
  // d segments) then yield the paper's a/d MSS-per-RTT growth automatically.
  open_window_per_ack();

  if (in_flight() > 0) {
    arm_rto();
  } else {
    disarm_rto();
  }
}

void TcpSender::open_window_per_ack() {
  if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ + 1.0, config_.max_cwnd);  // slow start
  } else {
    cwnd_ = std::min(cwnd_ + config_.aimd.a / cwnd_, config_.max_cwnd);
  }
  trace_cwnd();
}

void TcpSender::on_dup_ack() {
  ++dupack_count_;
  if (in_fast_recovery_) {
    // Window inflation: each dupack signals a departed segment.
    cwnd_ = std::min(cwnd_ + 1.0, config_.max_cwnd);
    trace_cwnd();
    return;
  }
  if (dupack_count_ == config_.dupack_threshold) {
    enter_fast_recovery();
  }
}

void TcpSender::enter_fast_recovery() {
  ++stats_.fast_recoveries;
  // Multiplicative decrease of the general AIMD(a, b): W -> b * W.
  ssthresh_ = std::max(kMinSsthresh, config_.aimd.b * cwnd_);
  if (config_.variant == TcpVariant::kTahoe) {
    // Tahoe has no fast recovery: retransmit and slow-start from one
    // segment.
    cwnd_ = kMinCwnd;
    dupack_count_ = 0;
    trace_cwnd();
    emit_segment(snd_una_, /*retransmit=*/true);
    arm_rto();
    return;
  }
  in_fast_recovery_ = true;
  recover_ = next_seq_ - 1;
  cwnd_ = ssthresh_ + static_cast<double>(config_.dupack_threshold);
  trace_cwnd();
  emit_segment(snd_una_, /*retransmit=*/true);
  arm_rto();
}

void TcpSender::on_partial_ack(std::int64_t newly_acked) {
  // RFC 3782: retransmit the next hole, deflate the window by the amount of
  // new data acknowledged, then add back one segment.
  emit_segment(snd_una_, /*retransmit=*/true);
  cwnd_ = std::max(kMinCwnd,
                   cwnd_ - static_cast<double>(newly_acked) + 1.0);
  trace_cwnd();
}

void TcpSender::exit_fast_recovery() {
  in_fast_recovery_ = false;
  dupack_count_ = 0;
  cwnd_ = std::max(kMinCwnd, ssthresh_);  // deflate to ssthresh
  trace_cwnd();
}

void TcpSender::on_timeout() {
  if (in_flight() <= 0) return;  // stale timer
  ++stats_.timeouts;
  // Loss of the whole window is assumed: shrink, slow-start from snd_una,
  // and resume go-back-N, as ns-2's TcpAgent does after a timeout.
  ssthresh_ = std::max(kMinSsthresh, config_.aimd.b * cwnd_);
  cwnd_ = kMinCwnd;
  trace_cwnd();
  in_fast_recovery_ = false;
  dupack_count_ = 0;
  next_seq_ = snd_una_;
  backoff_ = std::min(backoff_ * 2, 64);
  emit_segment(snd_una_, /*retransmit=*/true);
  next_seq_ = snd_una_ + 1;
  arm_rto();
}

void TcpSender::send_available() {
  if (!started_) return;
  std::int64_t limit = snd_una_ + window();
  if (config_.total_segments >= 0) {
    limit = std::min(limit, config_.total_segments);
  }
  while (next_seq_ < limit) {
    emit_segment(next_seq_, /*retransmit=*/false);
    ++next_seq_;
  }
  if (in_flight() > 0 && !rto_timer_.pending()) arm_rto();
}

void TcpSender::emit_segment(std::int64_t seq, bool retransmit) {
  Packet pkt;
  pkt.type = PacketType::kTcpData;
  pkt.flow = flow_;
  pkt.src = self_;
  pkt.dst = peer_;
  pkt.size_bytes = config_.mss + config_.header_bytes;
  pkt.seq = seq;
  pkt.ts_echo = sim_.now();
  pkt.retransmit = retransmit;
  ++stats_.segments_sent;
  if (retransmit) ++stats_.retransmits;
  out_->handle(std::move(pkt));
}

void TcpSender::arm_rto() {
  Time timeout = std::min(rto_ * static_cast<double>(backoff_),
                          config_.rto_max);
  if (config_.rto_jitter > 0.0) {
    // Randomized-RTO defense [7]: the effective minimum moves per timer,
    // so a shrew attacker cannot phase-lock pulses to retransmissions.
    const Time jittered_min =
        config_.rto_min + sim_.rng().uniform(0.0, config_.rto_jitter);
    timeout = std::max(timeout, jittered_min);
  }
  // Restart in place: every data segment re-arms this timer, so reusing the
  // heap slot (not cancel + fresh insert) is the engine's hottest win.
  rto_timer_.schedule_in(timeout);
}

void TcpSender::disarm_rto() { rto_timer_.stop(); }

void TcpSender::sample_rtt(const Packet& pkt) {
  // Timestamp echo makes the sample valid even across retransmissions
  // (the receiver echoes the timestamp of the segment that drove the ACK).
  if (pkt.ts_echo <= 0.0) return;
  const Time r = sim_.now() - pkt.ts_echo;
  if (r < 0.0) return;
  if (!have_rtt_sample_) {
    srtt_ = r;
    rttvar_ = r / 2.0;
    have_rtt_sample_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - r);
    srtt_ = 0.875 * srtt_ + 0.125 * r;
  }
  rto_ = std::clamp(srtt_ + std::max(4.0 * rttvar_, ms(10)), config_.rto_min,
                    config_.rto_max);
}

void TcpSender::trace_cwnd() {
  if (cwnd_tracer_) cwnd_tracer_(sim_.now(), cwnd_);
}

}  // namespace pdos
