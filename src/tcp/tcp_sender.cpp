#include "tcp/tcp_sender.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace pdos {

namespace {
constexpr double kMinCwnd = 1.0;
constexpr double kMinSsthresh = 2.0;
}  // namespace

const char* tcp_variant_name(TcpVariant variant) {
  switch (variant) {
    case TcpVariant::kTahoe:
      return "Tahoe";
    case TcpVariant::kReno:
      return "Reno";
    case TcpVariant::kNewReno:
      return "NewReno";
  }
  return "?";
}

void TcpSenderConfig::validate() const {
  aimd.validate();
  PDOS_REQUIRE(rto_jitter >= 0.0, "TcpSender: rto_jitter must be >= 0");
  PDOS_REQUIRE(mss > 0, "TcpSender: mss must be > 0");
  PDOS_REQUIRE(header_bytes >= 0, "TcpSender: header_bytes must be >= 0");
  PDOS_REQUIRE(initial_cwnd >= 1.0, "TcpSender: initial_cwnd must be >= 1");
  PDOS_REQUIRE(max_cwnd >= initial_cwnd,
               "TcpSender: max_cwnd must be >= initial_cwnd");
  PDOS_REQUIRE(rto_min > 0.0 && rto_min <= rto_max,
               "TcpSender: need 0 < rto_min <= rto_max");
  PDOS_REQUIRE(dupack_threshold >= 1,
               "TcpSender: dupack_threshold must be >= 1");
}

TcpSender::TcpSender(Simulator& sim, FlowId flow, NodeId self, NodeId peer,
                     PacketHandler* out, TcpSenderConfig config,
                     TcpSenderHot* hot)
    : sim_(sim),
      flow_(flow),
      self_(self),
      peer_(peer),
      out_(out),
      config_(config),
      hot_(hot != nullptr ? hot : &fallback_hot_) {
  PDOS_REQUIRE(out != nullptr, "TcpSender: out handler must be non-null");
  config_.validate();
  *hot_ = TcpSenderHot{};
  hot_->cwnd = config_.initial_cwnd;
  hot_->ssthresh = config_.initial_ssthresh;
  hot_->rto = config_.initial_rto;
}

TcpSender::~TcpSender() { disarm_rto(); }

void TcpSender::start(Time when) {
  PDOS_CHECK_MSG(!hot_->started, "TcpSender started twice");
  hot_->started = true;
  sim_.schedule_at(when, [this] { send_available(); });
}

std::int64_t TcpSender::window() const {
  const double w = std::min(hot_->cwnd, config_.max_cwnd);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::floor(w)));
}

void TcpSender::handle(Packet pkt) {
  PDOS_CHECK(pkt.type == PacketType::kTcpAck);
  if (pkt.ack > hot_->snd_una) {
    ++stats_.acks_received;
    on_new_ack(pkt);
  } else if (in_flight() > 0) {
    ++stats_.acks_received;
    ++stats_.dupacks_received;
    on_dup_ack();
  }
  send_available();
}

void TcpSender::on_new_ack(const Packet& pkt) {
  const std::int64_t newly_acked = pkt.ack - hot_->snd_una;
  hot_->snd_una = pkt.ack;
  sample_rtt(pkt);
  hot_->backoff = 1;  // forward progress clears exponential backoff

  if (hot_->in_fast_recovery) {
    // Reno deflates on the first new ACK regardless; NewReno stays in
    // recovery until the loss-time window is fully acknowledged (RFC 3782).
    if (config_.variant == TcpVariant::kReno ||
        hot_->snd_una > hot_->recover) {
      exit_fast_recovery();
    } else {
      on_partial_ack(newly_acked);
      arm_rto();
      return;
    }
  } else {
    hot_->dupack_count = 0;
  }

  // Window growth: one increase step per new ACK. Delayed ACKs (one ACK per
  // d segments) then yield the paper's a/d MSS-per-RTT growth automatically.
  open_window_per_ack();

  if (in_flight() > 0) {
    arm_rto();
  } else {
    disarm_rto();
  }
}

void TcpSender::open_window_per_ack() {
  if (hot_->cwnd < hot_->ssthresh) {
    hot_->cwnd = std::min(hot_->cwnd + 1.0, config_.max_cwnd);  // slow start
  } else {
    hot_->cwnd =
        std::min(hot_->cwnd + config_.aimd.a / hot_->cwnd, config_.max_cwnd);
  }
  trace_cwnd();
}

void TcpSender::on_dup_ack() {
  ++hot_->dupack_count;
  if (hot_->in_fast_recovery) {
    // Window inflation: each dupack signals a departed segment.
    hot_->cwnd = std::min(hot_->cwnd + 1.0, config_.max_cwnd);
    trace_cwnd();
    return;
  }
  if (hot_->dupack_count == config_.dupack_threshold) {
    enter_fast_recovery();
  }
}

void TcpSender::enter_fast_recovery() {
  ++stats_.fast_recoveries;
  // Multiplicative decrease of the general AIMD(a, b): W -> b * W.
  hot_->ssthresh = std::max(kMinSsthresh, config_.aimd.b * hot_->cwnd);
  if (config_.variant == TcpVariant::kTahoe) {
    // Tahoe has no fast recovery: retransmit and slow-start from one
    // segment.
    hot_->cwnd = kMinCwnd;
    hot_->dupack_count = 0;
    trace_cwnd();
    emit_segment(hot_->snd_una, /*retransmit=*/true);
    arm_rto();
    return;
  }
  hot_->in_fast_recovery = true;
  hot_->recover = hot_->next_seq - 1;
  hot_->cwnd = hot_->ssthresh + static_cast<double>(config_.dupack_threshold);
  trace_cwnd();
  emit_segment(hot_->snd_una, /*retransmit=*/true);
  arm_rto();
}

void TcpSender::on_partial_ack(std::int64_t newly_acked) {
  // RFC 3782: retransmit the next hole, deflate the window by the amount of
  // new data acknowledged, then add back one segment.
  emit_segment(hot_->snd_una, /*retransmit=*/true);
  hot_->cwnd = std::max(kMinCwnd,
                        hot_->cwnd - static_cast<double>(newly_acked) + 1.0);
  trace_cwnd();
}

void TcpSender::exit_fast_recovery() {
  hot_->in_fast_recovery = false;
  hot_->dupack_count = 0;
  hot_->cwnd = std::max(kMinCwnd, hot_->ssthresh);  // deflate to ssthresh
  trace_cwnd();
}

void TcpSender::on_timeout() {
  if (in_flight() <= 0) return;  // stale timer
  ++stats_.timeouts;
  // Loss of the whole window is assumed: shrink, slow-start from snd_una,
  // and resume go-back-N, as ns-2's TcpAgent does after a timeout.
  hot_->ssthresh = std::max(kMinSsthresh, config_.aimd.b * hot_->cwnd);
  hot_->cwnd = kMinCwnd;
  trace_cwnd();
  hot_->in_fast_recovery = false;
  hot_->dupack_count = 0;
  hot_->next_seq = hot_->snd_una;
  hot_->backoff = std::min(hot_->backoff * 2, 64);
  emit_segment(hot_->snd_una, /*retransmit=*/true);
  hot_->next_seq = hot_->snd_una + 1;
  arm_rto();
}

void TcpSender::send_available() {
  if (!hot_->started) return;
  std::int64_t limit = hot_->snd_una + window();
  if (config_.total_segments >= 0) {
    limit = std::min(limit, config_.total_segments);
  }
  while (hot_->next_seq < limit) {
    emit_segment(hot_->next_seq, /*retransmit=*/false);
    ++hot_->next_seq;
  }
  if (in_flight() > 0 && hot_->rto_event == kInvalidEventId) arm_rto();
}

void TcpSender::emit_segment(std::int64_t seq, bool retransmit) {
  Packet pkt;
  pkt.type = PacketType::kTcpData;
  pkt.flow = flow_;
  pkt.src = self_;
  pkt.dst = peer_;
  pkt.size_bytes = config_.mss + config_.header_bytes;
  pkt.seq = seq;
  pkt.ts_echo = sim_.now();
  pkt.retransmit = retransmit;
  ++stats_.segments_sent;
  if (retransmit) ++stats_.retransmits;
  out_->handle(std::move(pkt));
}

void TcpSender::arm_rto() {
  Time timeout = std::min(hot_->rto * static_cast<double>(hot_->backoff),
                          config_.rto_max);
  if (config_.rto_jitter > 0.0) {
    // Randomized-RTO defense [7]: the effective minimum moves per timer,
    // so a shrew attacker cannot phase-lock pulses to retransmissions.
    const Time jittered_min =
        config_.rto_min + sim_.rng().uniform(0.0, config_.rto_jitter);
    timeout = std::max(timeout, jittered_min);
  }
  // Restart in place: every data segment re-arms this timer, so reusing the
  // heap slot (not cancel + fresh insert) is the engine's hottest win. The
  // id lives on the hot line (Timer's logic inlined); the armed closure
  // marks the slot idle before firing so on_timeout() may re-arm.
  const Time when = sim_.now() + timeout;
  Scheduler& sched = sim_.scheduler();
  if (hot_->rto_event != kInvalidEventId &&
      sched.reschedule_at(hot_->rto_event, when)) {
    return;
  }
  hot_->rto_event = sched.schedule_at(when, [this] {
    hot_->rto_event = kInvalidEventId;
    on_timeout();
  });
}

void TcpSender::disarm_rto() {
  if (hot_->rto_event == kInvalidEventId) return;
  sim_.scheduler().cancel(hot_->rto_event);
  hot_->rto_event = kInvalidEventId;
}

void TcpSender::sample_rtt(const Packet& pkt) {
  // Timestamp echo makes the sample valid even across retransmissions
  // (the receiver echoes the timestamp of the segment that drove the ACK).
  if (pkt.ts_echo <= 0.0) return;
  const Time r = sim_.now() - pkt.ts_echo;
  if (r < 0.0) return;
  if (!hot_->have_rtt_sample) {
    hot_->srtt = r;
    hot_->rttvar = r / 2.0;
    hot_->have_rtt_sample = true;
  } else {
    hot_->rttvar = 0.75 * hot_->rttvar + 0.25 * std::abs(hot_->srtt - r);
    hot_->srtt = 0.875 * hot_->srtt + 0.125 * r;
  }
  hot_->rto = std::clamp(hot_->srtt + std::max(4.0 * hot_->rttvar, ms(10)),
                         config_.rto_min, config_.rto_max);
}

void TcpSender::trace_cwnd() {
  if (cwnd_tracer_) cwnd_tracer_(sim_.now(), hot_->cwnd);
}

}  // namespace pdos
