// TCP receiver: cumulative ACKs with delayed-ACK support.
//
// Mirrors ns-2's TCPSink/DelAck: in-order data is acknowledged every `d`
// segments or when the delayed-ACK timer fires; out-of-order or duplicate
// segments trigger an immediate ACK (which the sender counts as a duplicate
// when it does not advance). Goodput is counted in unique delivered payload
// bytes, which is what the paper's throughput Ψ measures.
//
// Layout: per-segment mutable state (cumulative point, delayed-ACK ledger,
// reorder buffer) lives in a `TcpReceiverHot` slot (tcp/flow_state.hpp);
// scenario builders pass a slot from a flat per-class array, standalone
// construction falls back to the embedded slot.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow_state.hpp"
#include "util/units.hpp"

namespace pdos {

/// In-order-delivery observer: an inline-storage
/// `void(Time, std::int64_t)` callable. Captures must fit
/// kInlineFnCapacity (32 bytes); oversized captures are a compile error, so
/// per-flow instrumentation cannot reintroduce a heap-held std::function on
/// the per-segment path.
using DeliveryTracer = BasicInlineFn<kInlineFnCapacity, Time, std::int64_t>;

struct TcpReceiverConfig {
  int delack_factor = 1;          // ACK every d full segments (d >= 1)
  Time delack_timeout = ms(100);  // max ACK delay (RFC 1122 ceiling 500 ms)
  Bytes mss = 1000;               // payload bytes per segment
  Bytes ack_bytes = 40;           // wire size of a pure ACK

  void validate() const;
};

struct TcpReceiverStats {
  std::uint64_t segments_received = 0;   // all data arrivals
  std::uint64_t duplicate_segments = 0;  // already-delivered seq numbers
  std::uint64_t out_of_order = 0;
  std::uint64_t acks_sent = 0;
};

class TcpReceiver : public PacketHandler {
 public:
  /// `hot`, when non-null, is the externally owned hot-state slot (a flat
  /// array element, constructed over the simulator arena); it is reset here.
  /// Null uses the embedded fallback slot.
  TcpReceiver(Simulator& sim, FlowId flow, NodeId self, NodeId peer,
              PacketHandler* out, TcpReceiverConfig config = {},
              TcpReceiverHot* hot = nullptr);

  ~TcpReceiver();

  void handle(Packet pkt) override;

  /// Unique payload bytes delivered in order to the application.
  Bytes goodput_bytes() const { return hot_->goodput_bytes; }
  /// Next expected segment index (== count of in-order segments delivered).
  std::int64_t next_expected() const { return hot_->next_expected; }
  const TcpReceiverStats& stats() const { return stats_; }

  /// Invoked as (time, new_in_order_segments) on each in-order advance.
  void set_delivery_tracer(DeliveryTracer tracer) {
    delivery_tracer_ = std::move(tracer);
  }

 private:
  void send_ack(Time ts_echo);
  void arm_delack();
  void disarm_delack();

  Simulator& sim_;
  FlowId flow_;
  NodeId self_;
  NodeId peer_;
  PacketHandler* out_;
  TcpReceiverConfig config_;

  TcpReceiverHot* hot_;      // external flat-array slot, or &fallback_hot_
  TcpReceiverHot fallback_hot_;

  TcpReceiverStats stats_;
  DeliveryTracer delivery_tracer_;
};

}  // namespace pdos
