// TCP NewReno sender with generalized AIMD(a, b) congestion control.
//
// Packet-counting semantics as in ns-2: seq/ack numbers index MSS-sized
// segments. The sender models a bulk application with unlimited data (the
// paper's Iperf/FTP victims). Implemented behaviours:
//   - slow start / congestion avoidance with AIMD(a, b) increase/decrease
//   - fast retransmit on 3 duplicate ACKs, NewReno fast recovery with
//     partial-ACK retransmission and window deflation (RFC 3782)
//   - retransmission timeout per RFC 6298 (Karn's rule via timestamp echo,
//     exponential backoff, configurable RTO_min — 1 s for the ns-2 scenario,
//     200 ms for the Linux test-bed scenario)
//   - go-back-N resumption after a timeout, as ns-2's TcpAgent does
//
// Layout: all per-ACK mutable state lives in a `TcpSenderHot` slot (see
// tcp/flow_state.hpp). Scenario builders pass a slot from a flat per-class
// array so N flows' hot state is contiguous; standalone construction falls
// back to the embedded slot with identical behaviour.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/aimd.hpp"
#include "tcp/flow_state.hpp"
#include "util/units.hpp"

namespace pdos {

/// cwnd-change observer: an inline-storage `void(Time, double)` callable.
/// Captures must fit kInlineFnCapacity (32 bytes) — a sink pointer or two;
/// oversized captures are a compile error, so tracing cannot reintroduce a
/// heap-held std::function on the per-ACK path.
using CwndTracer = BasicInlineFn<kInlineFnCapacity, Time, double>;

/// Loss-recovery flavour. All three share the AIMD core; they differ in
/// what happens at and after the third duplicate ACK:
///   Tahoe   — retransmit, then slow-start from cwnd = 1 (no fast recovery)
///   Reno    — fast recovery, exits on the FIRST new ACK (multiple losses
///             in one window usually force a timeout)
///   NewReno — fast recovery with partial-ACK retransmission (RFC 3782)
enum class TcpVariant { kTahoe, kReno, kNewReno };

const char* tcp_variant_name(TcpVariant variant);

struct TcpSenderConfig {
  TcpVariant variant = TcpVariant::kNewReno;
  AimdParams aimd = AimdParams::new_reno();
  Bytes mss = 1000;          // payload bytes per segment
  Bytes header_bytes = 40;   // TCP/IP header overhead on every packet
  double initial_cwnd = 1.0;   // segments
  double initial_ssthresh = 64.0;  // segments
  double max_cwnd = 10000.0;   // receiver-window stand-in, segments
  Time rto_min = sec(1.0);     // ns-2 default; Linux test-bed uses 200 ms
  Time rto_max = sec(64.0);
  Time initial_rto = sec(3.0);  // RFC 6298 before the first RTT sample
  int dupack_threshold = 3;
  /// Randomized-RTO defense (Yang, Gerla & Sanadidi [7]): each timeout's
  /// minimum is drawn uniformly from [rto_min, rto_min + rto_jitter]. The
  /// paper notes this breaks the shrew attack's timing but not the
  /// AIMD-based attack, whose damage does not depend on RTO values.
  Time rto_jitter = 0.0;
  /// Amount of application data in segments; -1 models an unbounded bulk
  /// transfer (the paper's Iperf/FTP victims). Finite values model short
  /// flows; the sender stops once everything is acknowledged.
  std::int64_t total_segments = -1;

  void validate() const;
};

struct TcpSenderStats {
  std::uint64_t segments_sent = 0;        // includes retransmissions
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_recoveries = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t dupacks_received = 0;
};

class TcpSender : public PacketHandler {
 public:
  /// Data segments leave via `out` (typically the sender's access link or
  /// node); ACKs arrive via handle(). `flow` tags every packet. `hot`, when
  /// non-null, is the externally owned hot-state slot (a flat-array element
  /// from the scenario builder); it is (re)initialized here. Null uses the
  /// embedded fallback slot.
  TcpSender(Simulator& sim, FlowId flow, NodeId self, NodeId peer,
            PacketHandler* out, TcpSenderConfig config = {},
            TcpSenderHot* hot = nullptr);

  ~TcpSender();

  /// Begin transmitting at absolute virtual time `when`.
  void start(Time when);

  /// ACK arrival.
  void handle(Packet pkt) override;

  // --- observability ---
  double cwnd() const { return hot_->cwnd; }
  double ssthresh() const { return hot_->ssthresh; }
  bool in_fast_recovery() const { return hot_->in_fast_recovery; }
  Time srtt() const { return hot_->srtt; }
  Time rto() const { return hot_->rto; }
  std::int64_t snd_una() const { return hot_->snd_una; }
  std::int64_t next_seq() const { return hot_->next_seq; }
  const TcpSenderStats& stats() const { return stats_; }
  FlowId flow() const { return flow_; }
  /// True once a finite transfer is fully acknowledged.
  bool complete() const {
    return config_.total_segments >= 0 &&
           hot_->snd_una >= config_.total_segments;
  }
  const TcpSenderConfig& config() const { return config_; }

  /// Invoked as (time, cwnd) whenever cwnd changes; used for Fig. 1 traces.
  void set_cwnd_tracer(CwndTracer tracer) {
    cwnd_tracer_ = std::move(tracer);
  }

 private:
  void on_new_ack(const Packet& pkt);
  void on_dup_ack();
  void enter_fast_recovery();
  void on_partial_ack(std::int64_t newly_acked);
  void exit_fast_recovery();
  void on_timeout();
  void open_window_per_ack();
  void send_available();
  void emit_segment(std::int64_t seq, bool retransmit);
  void arm_rto();
  void disarm_rto();
  void sample_rtt(const Packet& pkt);
  void trace_cwnd();
  std::int64_t window() const;
  std::int64_t in_flight() const { return hot_->next_seq - hot_->snd_una; }

  Simulator& sim_;
  FlowId flow_;
  NodeId self_;
  NodeId peer_;
  PacketHandler* out_;
  TcpSenderConfig config_;

  TcpSenderHot* hot_;       // external flat-array slot, or &fallback_hot_
  TcpSenderHot fallback_hot_;

  TcpSenderStats stats_;
  CwndTracer cwnd_tracer_;
};

}  // namespace pdos
