// Convenience wiring of a TCP sender/receiver pair onto two nodes.
#pragma once

#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace pdos {

/// A fully wired one-way bulk TCP connection. Pointers are owned by the
/// Simulator's component arena.
struct TcpConnection {
  FlowId flow = -1;
  TcpSender* sender = nullptr;
  TcpReceiver* receiver = nullptr;
};

/// Create a bulk TCP connection from `src` to `dst`. The sender/receiver are
/// attached to their nodes under `flow` and route packets via the nodes'
/// forwarding tables. The receiver's delayed-ACK factor is taken from the
/// sender's AIMD `d` so that model and simulation agree.
TcpConnection make_tcp_connection(Simulator& sim, Node& src, Node& dst,
                                  FlowId flow,
                                  TcpSenderConfig sender_config = {});

}  // namespace pdos
