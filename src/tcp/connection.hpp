// Convenience wiring of a TCP sender/receiver pair onto two nodes.
#pragma once

#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace pdos {

/// A fully wired one-way bulk TCP connection. Pointers are owned by the
/// Simulator's component arena.
struct TcpConnection {
  FlowId flow = -1;
  TcpSender* sender = nullptr;
  TcpReceiver* receiver = nullptr;
};

/// Create a bulk TCP connection from `src` to `dst`. The sender/receiver are
/// attached to their nodes under `flow` and route packets via the nodes'
/// forwarding tables. The receiver's delayed-ACK factor is taken from the
/// sender's AIMD `d` so that model and simulation agree. `sender_hot` /
/// `receiver_hot`, when non-null, are externally owned hot-state slots (flat
/// per-class arrays built by the scenario; see tcp/flow_state.hpp).
/// `sender_out` / `receiver_out`, when non-null, replace the node as the
/// agent's egress — fast-path scenarios pass the flow's access link directly
/// so emissions skip the node's route dispatch (a pure call-path shortcut;
/// packets, timings, and events are unchanged).
TcpConnection make_tcp_connection(Simulator& sim, Node& src, Node& dst,
                                  FlowId flow,
                                  TcpSenderConfig sender_config = {},
                                  TcpSenderHot* sender_hot = nullptr,
                                  TcpReceiverHot* receiver_hot = nullptr,
                                  PacketHandler* sender_out = nullptr,
                                  PacketHandler* receiver_out = nullptr);

}  // namespace pdos
