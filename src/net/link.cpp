#include "net/link.hpp"

#include <utility>

#include "util/assert.hpp"

namespace pdos {

Link::Link(Simulator& sim, std::string name, BitRate rate, Time delay,
           std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
           Bytes mean_packet_bytes)
    : sim_(sim),
      name_(std::move(name)),
      rate_(rate),
      delay_(delay),
      queue_(std::move(queue)),
      downstream_(downstream) {
  PDOS_REQUIRE(rate_ > 0.0, "Link: rate must be positive");
  PDOS_REQUIRE(delay_ >= 0.0, "Link: delay must be non-negative");
  PDOS_REQUIRE(queue_ != nullptr, "Link: queue must be non-null");
  PDOS_REQUIRE(downstream_ != nullptr, "Link: downstream must be non-null");
  queue_->bind(&sim_.scheduler(), rate_, mean_packet_bytes);
}

void Link::add_arrival_tap(std::function<void(const Packet&)> tap) {
  arrival_taps_.push_back(std::move(tap));
}

void Link::add_departure_tap(std::function<void(const Packet&)> tap) {
  departure_taps_.push_back(std::move(tap));
}

void Link::handle(Packet pkt) {
  for (const auto& tap : arrival_taps_) tap(pkt);
  pkt.enqueue_time = sim_.now();
  if (!queue_->enqueue(std::move(pkt))) return;  // dropped; stats in queue
  if (!busy_) start_service();
}

void Link::start_service() {
  auto next = queue_->dequeue();
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const Time tx = transmission_time(next->size_bytes, rate_);
  // Move the packet into the completion closure; the queue no longer owns it.
  sim_.schedule(tx, [this, pkt = std::move(*next)]() mutable {
    finish_service(std::move(pkt));
  });
}

void Link::finish_service(Packet pkt) {
  for (const auto& tap : departure_taps_) tap(pkt);
  // Propagation is pipelined: hand off after `delay_`, then immediately
  // serialize the next buffered packet.
  sim_.schedule(delay_, [this, pkt = std::move(pkt)]() mutable {
    downstream_->handle(std::move(pkt));
  });
  start_service();
}

}  // namespace pdos
