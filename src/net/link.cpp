#include "net/link.hpp"

#include <utility>

#include "util/assert.hpp"

namespace pdos {

void Link::PacketRing::push_back(Packet&& pkt) {
  if (size_ == buf_.size()) grow();
  buf_[(head_ + size_) & mask_] = std::move(pkt);
  ++size_;
}

Packet Link::PacketRing::pop_front() {
  PDOS_CHECK(size_ > 0);
  Packet pkt = std::move(buf_[head_]);
  head_ = (head_ + 1) & mask_;
  --size_;
  return pkt;
}

void Link::PacketRing::grow() {
  const std::size_t capacity = buf_.empty() ? 4 : buf_.size() * 2;
  std::vector<Packet> next(capacity);
  for (std::size_t i = 0; i < size_; ++i) {
    next[i] = std::move(buf_[(head_ + i) & mask_]);
  }
  buf_ = std::move(next);
  mask_ = capacity - 1;
  head_ = 0;
}

Link::Link(Simulator& sim, std::string name, BitRate rate, Time delay,
           std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
           Bytes mean_packet_bytes)
    : sim_(sim),
      name_(std::move(name)),
      rate_(rate),
      delay_(delay),
      queue_(std::move(queue)),
      downstream_(downstream),
      service_timer_(sim.scheduler(), [this] { finish_service(); }) {
  PDOS_REQUIRE(rate_ > 0.0, "Link: rate must be positive");
  PDOS_REQUIRE(delay_ >= 0.0, "Link: delay must be non-negative");
  PDOS_REQUIRE(queue_ != nullptr, "Link: queue must be non-null");
  PDOS_REQUIRE(downstream_ != nullptr, "Link: downstream must be non-null");
  queue_->bind(&sim_.scheduler(), rate_, mean_packet_bytes);
}

void Link::add_arrival_tap(std::function<void(const Packet&)> tap) {
  arrival_taps_.push_back(std::move(tap));
}

void Link::add_departure_tap(std::function<void(const Packet&)> tap) {
  departure_taps_.push_back(std::move(tap));
}

void Link::handle(Packet pkt) {
  // Tapless fast path: no observer can see the enqueue stamp, so skip it.
  if (!arrival_taps_.empty() || !departure_taps_.empty()) {
    for (const auto& tap : arrival_taps_) tap(pkt);
    pkt.enqueue_time = sim_.now();
  }
  if (!queue_->enqueue(std::move(pkt))) return;  // dropped; stats in queue
  if (!busy_) start_service();
}

void Link::start_service() {
  auto next = queue_->dequeue();
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // The queue no longer owns the packet; it rides in `in_service_` until the
  // service timer expires, so the event itself captures nothing.
  in_service_ = std::move(*next);
  service_timer_.schedule_in(transmission_time(in_service_.size_bytes, rate_));
}

void Link::finish_service() {
  for (const auto& tap : departure_taps_) tap(in_service_);
  // Propagation is pipelined: hand off after `delay_`, then immediately
  // serialize the next buffered packet. Same delay for every packet means
  // deliveries happen in departure order, so a FIFO ring carries them.
  in_flight_.push_back(std::move(in_service_));
  sim_.schedule(delay_, [this] { deliver(); });
  start_service();
}

void Link::deliver() { downstream_->handle(in_flight_.pop_front()); }

}  // namespace pdos
