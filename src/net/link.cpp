#include "net/link.hpp"

#include <utility>

#include "util/assert.hpp"

namespace pdos {

Link::Link(Simulator& sim, std::string name, BitRate rate, Time delay,
           std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
           Bytes mean_packet_bytes)
    : Link(sim, std::move(name), rate, delay, queue.get(), downstream,
           mean_packet_bytes) {
  owned_queue_ = std::move(queue);
}

Link::Link(Simulator& sim, std::string name, BitRate rate, Time delay,
           QueueDiscipline* queue, PacketHandler* downstream,
           Bytes mean_packet_bytes)
    : sim_(sim),
      name_(std::move(name)),
      rate_(rate),
      delay_(delay),
      queue_(queue),
      downstream_(downstream),
      in_flight_(sim.memory()),
      due_(sim.memory()),
      arrival_taps_(sim.memory()),
      departure_taps_(sim.memory()) {
  PDOS_REQUIRE(rate_ > 0.0, "Link: rate must be positive");
  PDOS_REQUIRE(delay_ >= 0.0, "Link: delay must be non-negative");
  PDOS_REQUIRE(queue_ != nullptr, "Link: queue must be non-null");
  PDOS_REQUIRE(downstream_ != nullptr, "Link: downstream must be non-null");
  queue_->bind(&sim_.scheduler(), rate_, mean_packet_bytes);
}

void Link::add_arrival_tap(PacketTap tap) {
  arrival_taps_.push_back(std::move(tap));
  tapped_ = true;
}

void Link::add_departure_tap(PacketTap tap) {
  departure_taps_.push_back(std::move(tap));
  tapped_ = true;
}

void Link::handle(Packet pkt) {
  // Tapless fast path: no observer can see the enqueue stamp, so skip it.
  if (tapped_) {
    for (auto& tap : arrival_taps_) tap(pkt);
    pkt.enqueue_time = sim_.now();
  }
  if (!queue_->enqueue(std::move(pkt))) return;  // dropped; stats in queue
  ++queued_;
  if (!busy_) start_service();
}

void Link::start_service() {
  if (queued_ == 0) {
    busy_ = false;
    return;
  }
  --queued_;
  busy_ = true;
  // The queue no longer owns the packet; it rides in `in_service_` until the
  // service event fires, so the event itself captures nothing but `this`.
  // Events are scheduled straight on the scheduler — links live as long as
  // the simulation (Simulator arena), so no Timer cancel-on-destroy
  // indirection is needed on this path.
  in_service_ = queue_->dequeue_nonempty();
  sim_.schedule(transmission_time(in_service_.size_bytes, rate_),
                [this] { finish_service(); });
}

void Link::finish_service() {
  for (auto& tap : departure_taps_) tap(in_service_);
  // Propagation is pipelined: hand off after `delay_`, then immediately
  // serialize the next buffered packet. Same delay for every packet means
  // deliveries happen in departure order, so FIFO rings carry them and the
  // delivery timer only ever tracks the head — it is armed here when the
  // pipeline was empty and re-armed in deliver() while packets remain.
  const Due due{sim_.now() + delay_,  // rank claimed NOW: ties at the same
                sim_.scheduler().allocate_seq()};  // timestamp keep firing
                                                   // in departure order
  if (in_flight_.empty()) arm_delivery(due);
  in_flight_.push_back(std::move(in_service_));
  due_.push_back(due);
  start_service();
}

void Link::arm_delivery(const Due& due) {
  sim_.scheduler().schedule_at_sequenced(due.when, due.seq,
                                         [this] { deliver(); });
}

void Link::deliver() {
  Packet pkt = in_flight_.pop_front();
  due_.pop_front();
  if (!in_flight_.empty()) arm_delivery(due_.front());
  downstream_->handle(std::move(pkt));
}

}  // namespace pdos
