#include "net/link.hpp"

#include <utility>

#include "net/node.hpp"
#include "util/assert.hpp"

namespace pdos {

Link::Link(Simulator& sim, std::string name, BitRate rate, Time delay,
           std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
           Bytes mean_packet_bytes)
    : Link(sim, std::move(name), rate, delay, queue.get(), downstream,
           mean_packet_bytes) {
  owned_queue_ = std::move(queue);
}

Link::Link(Simulator& sim, std::string name, BitRate rate, Time delay,
           QueueDiscipline* queue, PacketHandler* downstream,
           Bytes mean_packet_bytes)
    : sim_(sim),
      name_(std::move(name)),
      rate_(rate),
      delay_(delay),
      queue_(queue),
      downstream_(downstream),
      pipe_(sim.memory()),
      arrival_taps_(sim.memory()),
      departure_taps_(sim.memory()),
      chain_cache_(sim.memory()) {
  PDOS_REQUIRE(rate_ > 0.0, "Link: rate must be positive");
  PDOS_REQUIRE(delay_ >= 0.0, "Link: delay must be non-negative");
  PDOS_REQUIRE(queue_ != nullptr, "Link: queue must be non-null");
  PDOS_REQUIRE(downstream_ != nullptr, "Link: downstream must be non-null");
  queue_->bind(&sim_.scheduler(), rate_, mean_packet_bytes);
}

Link::Link(Simulator& sim, std::string name, BitRate rate, Time delay,
           PacketHandler* downstream, Bytes /*mean_packet_bytes*/)
    : sim_(sim),
      name_(std::move(name)),
      rate_(rate),
      delay_(delay),
      queue_(nullptr),
      downstream_(downstream),
      pipe_(sim.memory()),
      arrival_taps_(sim.memory()),
      departure_taps_(sim.memory()),
      chain_cache_(sim.memory()) {
  PDOS_REQUIRE(rate_ > 0.0, "Link: rate must be positive");
  PDOS_REQUIRE(delay_ >= 0.0, "Link: delay must be non-negative");
  PDOS_REQUIRE(downstream_ != nullptr, "Link: downstream must be non-null");
}

const QueueDiscipline& Link::queue() const {
  PDOS_REQUIRE(queue_ != nullptr, "Link: express lane has no queue");
  return *queue_;
}

QueueDiscipline& Link::queue() {
  PDOS_REQUIRE(queue_ != nullptr, "Link: express lane has no queue");
  return *queue_;
}

void Link::add_arrival_tap(PacketTap tap) {
  PDOS_REQUIRE(queue_ != nullptr, "Link: cannot tap an express lane");
  arrival_taps_.push_back(std::move(tap));
  tapped_ = true;
}

void Link::add_departure_tap(PacketTap tap) {
  PDOS_REQUIRE(queue_ != nullptr, "Link: cannot tap an express lane");
  departure_taps_.push_back(std::move(tap));
  tapped_ = true;
  lazy_ = false;  // the tap must observe departures at their exact instants
}

void Link::handle(Packet pkt) {
  if (queue_ == nullptr) {
    // Express lane: unconditional admission, serialization chained off the
    // previous completion. No queue object, no service event, no drop.
    inject_at(std::move(pkt), sim_.now());
    return;
  }
  // Replay services completed STRICTLY before this arrival before offering
  // it to the queue, so the occupancy (and RED's average) the packet is
  // judged against is exactly the eager one. A boundary tied with the
  // arrival instant stays queued for now — the eager schedule enqueues
  // first there (see catch_up) — and is served right after the enqueue via
  // the serve_next() fall-through below.
  if (lazy_ && queued_ != 0) catch_up(sim_.now(), /*include_now=*/false);
  // Tapless fast path: no observer can see the enqueue stamp, so skip it.
  if (tapped_) {
    for (auto& tap : arrival_taps_) tap(pkt);
    pkt.enqueue_time = sim_.now();
  }
  if (!queue_->enqueue(std::move(pkt))) return;  // dropped; stats in queue
  ++queued_;
  if (service_event_pending_) return;  // a service event will drain the queue
  if (sim_.now() < service_done_) {
    // Lazy fused link mid-serialization: leave the packet queued. The wire's
    // current packet is still propagating (its delivery is pending), and
    // that delivery — or the next arrival — runs the catch-up that serves
    // this one at the exact boundary. (Unreachable with lazy() false: the
    // full path always has its service event pending while serializing.)
    return;
  }
  serve_next();
}

void Link::serve_next() {
  // Precondition: queued_ > 0 and the wire is idle (now >= service_done_).
  --queued_;
  // The queue no longer owns the packet; it rides in `in_service_` until the
  // service event fires, so the event itself captures nothing but `this`.
  // Events are scheduled straight on the scheduler — links live as long as
  // the simulation (Simulator arena), so no Timer cancel-on-destroy
  // indirection is needed on this path.
  Packet pkt = queue_->dequeue_nonempty();
  const Time tx = transmission_time(pkt.size_bytes, rate_) * service_scale_;
  const Time fin = sim_.now() + tx;
  service_done_ = fin;
  if (lazy_) {
    // Fusion: serialize synchronously, claim the delivery slot now. The
    // packet reaches downstream at the exact time the full path delivers
    // it; only the event count differs. Any backlog that builds behind it
    // is drained by catch_up() from later visits, never by an event.
    emit(std::move(pkt), fin);
    return;
  }
  in_service_ = std::move(pkt);
  service_event_pending_ = true;
  sim_.schedule(tx, [this] { finish_service(); });
}

void Link::finish_service() {
  service_event_pending_ = false;
  for (auto& tap : departure_taps_) tap(in_service_);
  emit(std::move(in_service_), sim_.now());
  if (queued_ > 0) serve_next();
}

void Link::catch_up(Time now, bool include_now) {
  // Replay, at their exact boundary times, the services an eager boundary
  // event chain would have performed by `now`: every packet still queued
  // arrived while the wire was busy, so its service starts the instant the
  // previous serialization ends. Each emission's due falls strictly after
  // every due already in flight (fin grows monotonically), so the delivery
  // ring stays FIFO and nothing is scheduled in the past; and whenever a
  // backlog survives this loop the packet that set service_done_ is still
  // propagating, so a delivery event is pending to drive the next call.
  //
  // A boundary landing EXACTLY on `now` is the delicate case, because link
  // rates are rationally locked (e.g. five 25 Mbps attack spacings equal
  // three 15 Mbps service times), so float-identical ties do happen. The
  // eager schedule breaks them by event rank: an arrival's delivery event
  // claimed its rank a whole propagation delay ago, a boundary event only
  // one service time ago, so at a tie the ARRIVAL fires first — callers on
  // the arrival path pass include_now = false and serve the tied boundary
  // after the enqueue, while this link's own delivery (whose rank is older
  // than any boundary event's) passes true and drains through it.
  while (queued_ > 0 &&
         (service_done_ < now || (include_now && service_done_ == now))) {
    --queued_;
    Packet pkt = queue_->dequeue_nonempty_at(service_done_);
    const Time fin = service_done_ +
                     transmission_time(pkt.size_bytes, rate_) * service_scale_;
    service_done_ = fin;
    emit(std::move(pkt), fin);
  }
}

void Link::inject_at(Packet pkt, Time arrival) {
  // Express serialization at an explicit arrival instant: now() when called
  // from handle(), the analytic `fin + delay` of the upstream lane when
  // called from a chain handoff. Arrivals reach an express lane in
  // non-decreasing order (single upstream, constant delay), so chaining
  // off service_done_ reproduces FIFO exactly.
  const Time start = arrival < service_done_ ? service_done_ : arrival;
  const Time fin =
      start + transmission_time(pkt.size_bytes, rate_) * service_scale_;
  service_done_ = fin;
  emit(std::move(pkt), fin);
}

void Link::emit(Packet pkt, Time fin) {
  if (remote_egress_ != nullptr) {
    // Cross-shard link: the packet leaves this shard here. The destination
    // shard claims the tie-break rank and schedules the delivery event on
    // its own scheduler when the message is injected (sim/pdes/engine.cpp),
    // so this side consumes no local event and no local rank.
    remote_egress_(remote_ctx_, std::move(pkt), fin);
    return;
  }
  if (chain_hop_ != nullptr) {
    // Chain handoff: the downstream express lane serializes from the
    // analytic arrival time; this link never owns a delivery event.
    chain_target(pkt.dst)->inject_at(std::move(pkt), fin + delay_);
    return;
  }
  // Propagation is pipelined: hand off `delay_` after serialization ends,
  // then the next buffered packet starts. Same delay for every packet means
  // deliveries happen in departure order, so FIFO rings carry them and the
  // delivery timer only ever tracks the head — it is armed here when the
  // pipeline was empty and re-armed in deliver() while packets remain.
  const Time when = fin + delay_;
  // Rank claimed NOW: ties at the same timestamp keep firing in departure
  // order even though the heap node materializes later.
  const std::uint32_t seq = sim_.scheduler().allocate_seq();
  if (pipe_.empty()) arm_delivery(when, seq);
  pipe_.push_back(InFlight{std::move(pkt), when, seq});
}

void Link::chain_via(Node* hop) {
  PDOS_REQUIRE(queue_ == nullptr,
               "Link: chain handoff requires an express lane");
  PDOS_REQUIRE(hop != nullptr, "Link: chain hop must be non-null");
  chain_hop_ = hop;
}

Link* Link::chain_resolve(NodeId dst) {
  auto* next = dynamic_cast<Link*>(chain_hop_->peek_route(dst));
  PDOS_REQUIRE(next != nullptr && next->express(),
               "Link: chain handoff target must be an express link");
  if (dst >= 0) {
    if (static_cast<std::size_t>(dst) >= chain_cache_.size()) {
      chain_cache_.resize(static_cast<std::size_t>(dst) + 1, nullptr);
    }
    chain_cache_[static_cast<std::size_t>(dst)] = next;
  }
  return next;
}

void Link::arm_delivery(Time when, std::uint32_t seq) {
  // The claim instant is the emission time `fin == when - delay_`. On the
  // full service path that is literally when allocate_seq ran (emit() fires
  // inside finish_service at fin); fused and express paths claim their rank
  // at a different wall instant but use the same fin-claim so that delivery
  // ties resolve identically whether the neighbour delivery was scheduled
  // here or injected by the PDES engine, whose messages claim at their
  // source-side emission time.
  sim_.scheduler().schedule_at_sequenced(when, when - delay_, seq,
                                         [this] { deliver(); });
}

void Link::deliver() {
  InFlight head = pipe_.pop_front();
  // Re-arm (head deadline) before any catch-up emission below: emit() arms
  // only when the pipeline is empty, so exactly one delivery event exists
  // either way — catch_up's first emission re-arms an emptied pipeline
  // itself.
  if (!pipe_.empty()) {
    const InFlight& next = pipe_.front();
    arm_delivery(next.when, next.seq);
  }
  if (lazy_ && queued_ != 0) catch_up(sim_.now(), /*include_now=*/true);
  downstream_->handle(std::move(head.pkt));
}

}  // namespace pdos
