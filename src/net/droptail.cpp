#include "net/droptail.hpp"

#include "util/assert.hpp"

namespace pdos {

DropTailQueue::DropTailQueue(std::size_t capacity_packets,
                             std::pmr::memory_resource* memory)
    : capacity_(capacity_packets), buffer_(memory) {
  PDOS_REQUIRE(capacity_packets > 0, "DropTailQueue: capacity must be > 0");
}

bool DropTailQueue::enqueue(Packet pkt) {
  if (buffer_.size() >= capacity_) {
    stats_.note_drop(pkt);
    return false;
  }
  buffer_.push_back(std::move(pkt));
  ++stats_.enqueued;
  return true;
}

Packet DropTailQueue::dequeue_nonempty() {
  Packet pkt = buffer_.pop_front();
  ++stats_.dequeued;
  return pkt;
}

}  // namespace pdos
