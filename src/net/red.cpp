#include "net/red.hpp"

#include <algorithm>
#include <cmath>

#include "sim/scheduler.hpp"
#include "util/assert.hpp"

namespace pdos {

RedParams RedParams::paper_testbed(std::size_t buffer_packets) {
  RedParams p;
  p.capacity = buffer_packets;
  p.min_th = 0.2 * static_cast<double>(buffer_packets);
  p.max_th = 0.8 * static_cast<double>(buffer_packets);
  p.wq = 0.002;
  p.max_p = 0.1;
  p.gentle = true;
  return p;
}

void RedParams::validate() const {
  PDOS_REQUIRE(capacity > 0, "RED: capacity must be > 0");
  PDOS_REQUIRE(min_th > 0.0 && min_th < max_th,
               "RED: need 0 < min_th < max_th");
  PDOS_REQUIRE(wq > 0.0 && wq <= 1.0, "RED: wq must be in (0, 1]");
  PDOS_REQUIRE(max_p > 0.0 && max_p <= 1.0, "RED: max_p must be in (0, 1]");
}

RedQueue::RedQueue(RedParams params, Rng rng,
                   std::pmr::memory_resource* memory)
    : params_(params), rng_(rng), buffer_(memory) {
  params_.validate();
}

void RedQueue::bind(const Scheduler* clock, BitRate service_rate,
                    Bytes mean_packet_bytes) {
  clock_ = clock;
  if (service_rate > 0.0 && mean_packet_bytes > 0) {
    mean_service_time_ =
        static_cast<double>(mean_packet_bytes) * 8.0 / service_rate;
  }
}

void RedQueue::update_avg() {
  // Fluid backlog counts as occupancy: with it at 0.0 (no hybrid source)
  // every expression here is bit-identical to the packet-only queue.
  const double q = static_cast<double>(buffer_.size()) + fluid_backlog_;
  if (!idle_ || q > 0.0) {
    avg_ = (1.0 - params_.wq) * avg_ + params_.wq * q;
    return;
  }
  // Arrival to an idle queue: decay avg as if m average packets had been
  // transmitted during the idle interval (ns-2's estimator).
  double m = 0.0;
  if (clock_ != nullptr && mean_service_time_ > 0.0) {
    m = std::max(0.0, (clock_->now() - idle_start_) / mean_service_time_);
  }
  avg_ *= std::pow(1.0 - params_.wq, m);
  avg_ = (1.0 - params_.wq) * avg_;  // then count this arrival (q == 0)
}

bool RedQueue::should_early_drop() {
  double pb;
  if (avg_ < params_.min_th) {
    count_ = -1;
    return false;
  }
  if (avg_ < params_.max_th) {
    pb = params_.max_p * (avg_ - params_.min_th) /
         (params_.max_th - params_.min_th);
  } else if (params_.gentle && avg_ < 2.0 * params_.max_th) {
    pb = params_.max_p +
         (1.0 - params_.max_p) * (avg_ - params_.max_th) / params_.max_th;
  } else {
    // avg beyond the (gentle) ramp: drop everything.
    count_ = 0;
    return true;
  }
  ++count_;
  // Spread drops uniformly: pa = pb / (1 - count * pb), clamped.
  double pa = pb;
  const double denom = 1.0 - static_cast<double>(count_) * pb;
  if (denom <= 0.0) {
    pa = 1.0;
  } else {
    pa = std::min(1.0, pb / denom);
  }
  if (rng_.bernoulli(pa)) {
    count_ = 0;
    return true;
  }
  return false;
}

bool RedQueue::enqueue(Packet pkt) {
  update_avg();
  idle_ = false;

  if (should_early_drop()) {
    ++early_drops_;
    stats_.note_drop(pkt);
    return false;
  }
  if (static_cast<double>(buffer_.size()) + fluid_backlog_ >=
      static_cast<double>(params_.capacity)) {
    ++forced_drops_;
    count_ = 0;
    stats_.note_drop(pkt);
    return false;
  }
  buffer_.push_back(std::move(pkt));
  ++stats_.enqueued;
  return true;
}

Packet RedQueue::dequeue_nonempty() {
  return dequeue_nonempty_at(clock_ != nullptr ? clock_->now() : 0.0);
}

Packet RedQueue::dequeue_nonempty_at(Time service_start) {
  Packet pkt = buffer_.pop_front();
  ++stats_.dequeued;
  if (buffer_.empty() && fluid_backlog_ == 0.0) {
    // The idle interval the next arrival decays over starts when service of
    // the last buffered packet begins, which is the time the caller hands
    // in — under lazy fusion the wall clock has already moved past it.
    idle_ = true;
    idle_start_ = service_start;
  }
  return pkt;
}

double RedQueue::fluid_arrive(double arrivals, double admitted) {
  PDOS_REQUIRE(arrivals >= 0.0 && admitted >= 0.0 && admitted <= arrivals,
               "RedQueue: need 0 <= admitted <= arrivals");
  if (arrivals > 0.0) {
    // The EWMA sees every arrival (as per-packet RED does, drop or not):
    // n arrivals at occupancy q move avg toward q by (1 - wq)^n.
    const double q = static_cast<double>(buffer_.size()) + fluid_backlog_;
    if (idle_ && q == 0.0 && clock_ != nullptr && mean_service_time_ > 0.0) {
      const double m =
          std::max(0.0, (clock_->now() - idle_start_) / mean_service_time_);
      avg_ *= std::pow(1.0 - params_.wq, m);
    }
    avg_ = q + (avg_ - q) * std::pow(1.0 - params_.wq, arrivals);
    idle_ = false;
  }
  const double space = static_cast<double>(params_.capacity) -
                       static_cast<double>(buffer_.size()) - fluid_backlog_;
  const double taken = std::clamp(admitted, 0.0, std::max(0.0, space));
  fluid_backlog_ += taken;
  return taken;
}

void RedQueue::fluid_drain(double packets) {
  PDOS_REQUIRE(packets >= 0.0, "RedQueue: drain must be >= 0");
  fluid_backlog_ = std::max(0.0, fluid_backlog_ - packets);
  if (fluid_backlog_ == 0.0 && buffer_.empty() && !idle_ &&
      clock_ != nullptr) {
    idle_ = true;
    idle_start_ = clock_->now();
  }
}

}  // namespace pdos
