#include "net/node.hpp"

#include "util/assert.hpp"

namespace pdos {

void Node::add_route(NodeId dst, PacketHandler* via) {
  PDOS_REQUIRE(via != nullptr, "Node::add_route: next hop must be non-null");
  PDOS_REQUIRE(dst >= 0, "Node::add_route: destination must be >= 0");
  if (static_cast<std::size_t>(dst) >= routes_.size()) {
    routes_.resize(static_cast<std::size_t>(dst) + 1, nullptr);
  }
  routes_[static_cast<std::size_t>(dst)] = via;
}

void Node::attach(FlowId flow, PacketHandler* agent) {
  PDOS_REQUIRE(agent != nullptr, "Node::attach: agent must be non-null");
  for (const auto& [attached, unused] : agents_) {
    PDOS_CHECK_MSG(attached != flow, "flow already attached to node " + name_);
  }
  agents_.emplace_back(flow, agent);
}

void Node::detach(FlowId flow) {
  for (auto it = agents_.begin(); it != agents_.end(); ++it) {
    if (it->first == flow) {
      agents_.erase(it);
      return;
    }
  }
}

void Node::handle(Packet pkt) {
  if (pkt.dst == id_) {
    // Local delivery: scan the (tiny) agent table. Raw sinks — e.g. the
    // router attack packets are aimed at — fall straight through.
    for (const auto& [flow, agent] : agents_) {
      if (flow == pkt.flow) {
        agent->handle(std::move(pkt));
        return;
      }
    }
    sink_bytes_ += pkt.size_bytes;
    ++sink_packets_;
    return;
  }
  PacketHandler* via =
      pkt.dst >= 0 && static_cast<std::size_t>(pkt.dst) < routes_.size()
          ? routes_[static_cast<std::size_t>(pkt.dst)]
          : nullptr;
  if (via == nullptr) via = default_route_;
  PDOS_CHECK_MSG(via != nullptr,
                 "node " + name_ + " has no route for destination");
  via->handle(std::move(pkt));
}

}  // namespace pdos
