#include "net/node.hpp"

#include "util/assert.hpp"

namespace pdos {

void Node::add_route(NodeId dst, PacketHandler* via) {
  PDOS_REQUIRE(via != nullptr, "Node::add_route: next hop must be non-null");
  routes_[dst] = via;
}

void Node::attach(FlowId flow, PacketHandler* agent) {
  PDOS_REQUIRE(agent != nullptr, "Node::attach: agent must be non-null");
  PDOS_CHECK_MSG(agents_.find(flow) == agents_.end(),
                 "flow already attached to node " + name_);
  agents_[flow] = agent;
}

void Node::detach(FlowId flow) { agents_.erase(flow); }

void Node::handle(Packet pkt) {
  if (pkt.dst == id_) {
    auto it = agents_.find(pkt.flow);
    if (it != agents_.end()) {
      it->second->handle(std::move(pkt));
    } else {
      sink_bytes_ += pkt.size_bytes;
      ++sink_packets_;
    }
    return;
  }
  auto it = routes_.find(pkt.dst);
  PacketHandler* via = it != routes_.end() ? it->second : default_route_;
  PDOS_CHECK_MSG(via != nullptr,
                 "node " + name_ + " has no route for destination");
  via->handle(std::move(pkt));
}

}  // namespace pdos
