// Point-to-point unidirectional link: queue + serialization + propagation.
//
// Arriving packets pass the arrival taps (instrumentation, e.g. the
// "incoming traffic" series of Figs. 2-3), then the queue discipline decides
// admission. The link serializes one packet at a time at `rate`; each
// serialized packet is delivered to the downstream handler after `delay`.
// Propagation is pipelined: several packets can be in flight concurrently.
//
// Hot-path layout: the packet being serialized sits in `in_service_` and
// packets in propagation sit in a FIFO ring, so the per-packet events — the
// service timer and the delivery events — capture only `this` and stay
// within InlineFn's inline storage. Because the propagation delay is the
// same for every packet, deliveries complete in departure order and the
// ring needs no per-packet bookkeeping. Taps are only consulted when
// registered; the untapped fast path skips the loops and the
// `enqueue_time` stamp entirely.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace pdos {

class Link : public PacketHandler {
 public:
  /// `queue` must be non-null; `downstream` must outlive the link.
  Link(Simulator& sim, std::string name, BitRate rate, Time delay,
       std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
       Bytes mean_packet_bytes = 1040);

  /// Packet arrival from the upstream node.
  void handle(Packet pkt) override;

  /// Observe every arrival (before the queue's drop decision).
  void add_arrival_tap(std::function<void(const Packet&)> tap);
  /// Observe every departure (after serialization completes).
  void add_departure_tap(std::function<void(const Packet&)> tap);

  const QueueDiscipline& queue() const { return *queue_; }
  QueueDiscipline& queue() { return *queue_; }
  BitRate rate() const { return rate_; }
  Time delay() const { return delay_; }
  const std::string& name() const { return name_; }
  bool busy() const { return busy_; }

 private:
  /// Power-of-two circular FIFO for packets in propagation. Grows on demand
  /// and then never reallocates: the in-flight population is bounded by
  /// delay/serialization-time, so steady state is allocation-free.
  class PacketRing {
   public:
    bool empty() const { return size_ == 0; }
    void push_back(Packet&& pkt);
    Packet pop_front();

   private:
    void grow();

    std::vector<Packet> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  void start_service();
  void finish_service();
  void deliver();

  Simulator& sim_;
  std::string name_;
  BitRate rate_;
  Time delay_;
  std::unique_ptr<QueueDiscipline> queue_;
  PacketHandler* downstream_;
  bool busy_ = false;
  Packet in_service_;       // owned by the pending service_timer_ expiry
  PacketRing in_flight_;    // departed, still propagating (FIFO)
  Timer service_timer_;     // fires when in_service_ finishes serializing
  std::vector<std::function<void(const Packet&)>> arrival_taps_;
  std::vector<std::function<void(const Packet&)>> departure_taps_;
};

}  // namespace pdos
