// Point-to-point unidirectional link: queue + serialization + propagation.
//
// Arriving packets pass the arrival taps (instrumentation, e.g. the
// "incoming traffic" series of Figs. 2-3), then the queue discipline decides
// admission. The link serializes one packet at a time at `rate`; each
// serialized packet is delivered to the downstream handler after `delay`.
// Propagation is pipelined: several packets can be in flight concurrently.
//
// Hot-path layout: the packet being serialized sits in `in_service_` and
// packets in propagation sit in a `PacketRing`, so the per-packet events —
// the service timer and the delivery timer — capture only `this` and stay
// within InlineFn's inline storage. Because the propagation delay is the
// same for every packet, deliveries complete in departure order, so the
// propagation pipeline is a pair of rings (packets, due times) drained by a
// single restartable timer: the scheduler holds ONE delivery event per link
// no matter how many packets are in flight, which keeps the event heap —
// the simulator's hottest structure — proportional to the number of links,
// not to the bandwidth-delay product. Taps are `PacketTap`s — the same
// inline-closure machinery as events, one function-pointer call per packet,
// no heap-held std::function state — and are only consulted when
// registered; the untapped fast path skips the loops and the
// `enqueue_time` stamp entirely.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_ring.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace pdos {

/// Per-packet observer: an inline-storage `void(const Packet&)` callable.
/// Captures must fit kInlineFnCapacity (32 bytes) — in practice a sink
/// pointer or two; oversized captures are a compile error, so no tap can
/// silently reintroduce a heap closure on the per-packet path.
using PacketTap = BasicInlineFn<kInlineFnCapacity, const Packet&>;

class Link : public PacketHandler {
 public:
  /// `queue` must be non-null; `downstream` must outlive the link.
  Link(Simulator& sim, std::string name, BitRate rate, Time delay,
       std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
       Bytes mean_packet_bytes = 1040);

  /// Same, with a non-owned queue (typically arena-allocated via
  /// `Simulator::make`, so it shares the link's lifetime and the link's
  /// internal buffers ride the same arena).
  Link(Simulator& sim, std::string name, BitRate rate, Time delay,
       QueueDiscipline* queue, PacketHandler* downstream,
       Bytes mean_packet_bytes = 1040);

  /// Packet arrival from the upstream node.
  void handle(Packet pkt) override;

  /// Observe every arrival (before the queue's drop decision).
  void add_arrival_tap(PacketTap tap);
  /// Observe every departure (after serialization completes).
  void add_departure_tap(PacketTap tap);

  const QueueDiscipline& queue() const { return *queue_; }
  QueueDiscipline& queue() { return *queue_; }
  BitRate rate() const { return rate_; }
  Time delay() const { return delay_; }
  const std::string& name() const { return name_; }
  bool busy() const { return busy_; }

 private:
  struct Due;

  void start_service();
  void finish_service();
  void arm_delivery(const Due& due);
  void deliver();

  Simulator& sim_;
  std::string name_;
  BitRate rate_;
  Time delay_;
  std::unique_ptr<QueueDiscipline> owned_queue_;  // legacy ctor only
  QueueDiscipline* queue_;
  PacketHandler* downstream_;
  bool busy_ = false;
  bool tapped_ = false;     // any tap registered; gates the slow arrival path
  // Accepted-minus-dequeued mirror of queue_->length(), kept here so the
  // after-each-service "anything left?" test is a register compare instead
  // of a virtual dequeue that usually comes back empty.
  std::uint32_t queued_ = 0;
  // Delivery deadline of an in-flight packet plus the tie-break rank it
  // claimed when it departed, so materializing its heap node late cannot
  // reorder it against other events at the same timestamp.
  struct Due {
    Time when = 0.0;
    std::uint32_t seq = 0;
  };

  Packet in_service_;       // owned by the pending service event
  PacketRing in_flight_;    // departed, still propagating (FIFO)
  Ring<Due> due_;           // deadline of each in_flight_ packet
  std::pmr::vector<PacketTap> arrival_taps_;
  std::pmr::vector<PacketTap> departure_taps_;
};

}  // namespace pdos
