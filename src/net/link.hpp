// Point-to-point unidirectional link: queue + serialization + propagation.
//
// Arriving packets pass the arrival taps (instrumentation, e.g. the
// "incoming traffic" series of Figs. 2-3), then the queue discipline decides
// admission. The link serializes one packet at a time at `rate`; each
// serialized packet is delivered to the downstream handler after `delay`.
// Propagation is pipelined: several packets can be in flight concurrently.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace pdos {

class Link : public PacketHandler {
 public:
  /// `queue` must be non-null; `downstream` must outlive the link.
  Link(Simulator& sim, std::string name, BitRate rate, Time delay,
       std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
       Bytes mean_packet_bytes = 1040);

  /// Packet arrival from the upstream node.
  void handle(Packet pkt) override;

  /// Observe every arrival (before the queue's drop decision).
  void add_arrival_tap(std::function<void(const Packet&)> tap);
  /// Observe every departure (after serialization completes).
  void add_departure_tap(std::function<void(const Packet&)> tap);

  const QueueDiscipline& queue() const { return *queue_; }
  QueueDiscipline& queue() { return *queue_; }
  BitRate rate() const { return rate_; }
  Time delay() const { return delay_; }
  const std::string& name() const { return name_; }
  bool busy() const { return busy_; }

 private:
  void start_service();
  void finish_service(Packet pkt);

  Simulator& sim_;
  std::string name_;
  BitRate rate_;
  Time delay_;
  std::unique_ptr<QueueDiscipline> queue_;
  PacketHandler* downstream_;
  bool busy_ = false;
  std::vector<std::function<void(const Packet&)>> arrival_taps_;
  std::vector<std::function<void(const Packet&)>> departure_taps_;
};

}  // namespace pdos
