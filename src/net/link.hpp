// Point-to-point unidirectional link: queue + serialization + propagation.
//
// Arriving packets pass the arrival taps (instrumentation, e.g. the
// "incoming traffic" series of Figs. 2-3), then the queue discipline decides
// admission. The link serializes one packet at a time at `rate`; each
// serialized packet is delivered to the downstream handler after `delay`.
// Propagation is pipelined: several packets can be in flight concurrently.
//
// Hot-path layout: the packet being serialized sits in `in_service_` and
// packets in propagation sit in a `PacketRing`, so the per-packet events —
// the service timer and the delivery timer — capture only `this` and stay
// within InlineFn's inline storage. Because the propagation delay is the
// same for every packet, deliveries complete in departure order, so the
// propagation pipeline is one ring of cache-line-sized (packet, deadline,
// rank) slots drained by a single restartable timer: the scheduler holds
// ONE delivery event per link
// no matter how many packets are in flight, which keeps the event heap —
// the simulator's hottest structure — proportional to the number of links,
// not to the bandwidth-delay product. Taps are `PacketTap`s — the same
// inline-closure machinery as events, one function-pointer call per packet,
// no heap-held std::function state — and are only consulted when
// registered; the untapped fast path skips the loops and the
// `enqueue_time` stamp entirely.
//
// Large-scale modes (see DESIGN.md §11):
//
//   Fused (`set_fused(true)`): when the link is idle, enqueue -> service ->
//   transmit collapses into zero service events — handle() serializes the
//   packet synchronously and claims its delivery slot directly, so an
//   uncongested link costs one scheduler event per packet (the shared
//   delivery event) instead of two. Under contention the queue drains
//   *lazily*: no event sits at the serialization boundary at all. Instead,
//   every visit to the link (an arrival, a delivery from its own pipeline,
//   or an explicit settle()) first replays — analytically, at their exact
//   boundary times — all the services that would have completed by now, so
//   a congested link costs zero service/pump events no matter how deep the
//   backlog. The replay is safe because whenever a backlog exists the
//   packet that set `service_done_` is still propagating, so a delivery
//   event is always pending to drive the next catch-up, and every replayed
//   emission falls strictly after every due already in flight. Queue
//   semantics are preserved exactly: every packet passes the same
//   enqueue/dequeue sequence with the same queue occupancy (catch-up runs
//   before the arrival is offered to the queue, mirroring the eager
//   boundary-before-arrival order), so RED's RNG draws and EWMA updates
//   are untouched — RED learns the true dequeue instant through
//   `dequeue_nonempty_at`. Packet timings are bit-identical to the full
//   path; only the scheduler's event count and tie-break rank stream
//   differ, which is why fusion is opt-in — the golden figure digests pin
//   event counts on the default path. Departure taps force the full
//   service-event path (the tap must observe the packet at its departure
//   instant). Samplers that read queue state between packets must call
//   settle() first — RunResult's occupancy sampler does.
//
//   Express (queue-less constructor): no queue object at all — admission is
//   unconditional, serialization chains analytically off the previous
//   completion time, and no service or pump event ever exists. This is the
//   reverse-path ACK lane: constant delay, never congested, one sequenced
//   delivery event per link. Taps are rejected (PDOS_REQUIRE) — a scenario
//   that needs to observe or queue the reverse path must build a full link.
//
//   Chain handoff (`chain_via(hop)`, express only): instead of scheduling
//   its own delivery event, the link resolves `hop`'s next-hop for each
//   emitted packet and — when that hop is itself an express link — injects
//   the packet there with the analytic arrival time `fin + delay`. The
//   intermediate router's delivery event disappears; only the last express
//   hop before a real node schedules one. Valid because an express link's
//   completion times are non-decreasing and constant delay preserves that
//   order at the target, which must have no other upstream (the dumbbell's
//   reverse bottleneck fans out to per-flow sender lanes, each fed only by
//   it).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_ring.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace pdos {

class Node;

/// Per-packet observer: an inline-storage `void(const Packet&)` callable.
/// Captures must fit kInlineFnCapacity (32 bytes) — in practice a sink
/// pointer or two; oversized captures are a compile error, so no tap can
/// silently reintroduce a heap closure on the per-packet path.
using PacketTap = BasicInlineFn<kInlineFnCapacity, const Packet&>;

class Link : public PacketHandler {
 public:
  /// `queue` must be non-null; `downstream` must outlive the link.
  Link(Simulator& sim, std::string name, BitRate rate, Time delay,
       std::unique_ptr<QueueDiscipline> queue, PacketHandler* downstream,
       Bytes mean_packet_bytes = 1040);

  /// Same, with a non-owned queue (typically arena-allocated via
  /// `Simulator::make`, so it shares the link's lifetime and the link's
  /// internal buffers ride the same arena).
  Link(Simulator& sim, std::string name, BitRate rate, Time delay,
       QueueDiscipline* queue, PacketHandler* downstream,
       Bytes mean_packet_bytes = 1040);

  /// Express lane: no queue discipline — every packet is admitted, FIFO
  /// serialization chains analytically, and the only scheduler event the
  /// link ever owns is the shared delivery event. For paths that are never
  /// congested (the dumbbell reverse/ACK direction); taps cannot be
  /// installed on an express link.
  Link(Simulator& sim, std::string name, BitRate rate, Time delay,
       PacketHandler* downstream, Bytes mean_packet_bytes = 1040);

  /// Packet arrival from the upstream node.
  void handle(Packet pkt) override;

  /// Rewire the delivery target. Fast-path scenarios use this to skip
  /// per-hop Node dispatch on links whose every packet resolves to the same
  /// next handler anyway (a per-flow access link carries exactly one flow),
  /// which changes the call path but no packet timing, event, queue
  /// decision, or RNG draw (DESIGN.md §11). `downstream` must be non-null
  /// and outlive the link.
  void set_downstream(PacketHandler* downstream) {
    PDOS_REQUIRE(downstream != nullptr, "Link: downstream must be non-null");
    downstream_ = downstream;
  }

  /// Observe every arrival (before the queue's drop decision).
  void add_arrival_tap(PacketTap tap);
  /// Observe every departure (after serialization completes).
  void add_departure_tap(PacketTap tap);

  /// Opt in to event fusion (idle-link serialization without a service
  /// event). Packet timings are unchanged; the scheduler's event count and
  /// tie-break ranks are not, so scenarios pinned by golden digests leave
  /// this off. No-op on an express link (always fused by construction).
  void set_fused(bool fused) {
    fused_ = fused;
    lazy_ = queue_ != nullptr && fused_ && departure_taps_.empty() &&
            remote_egress_ == nullptr;
  }

  /// True for the queue-less express lane.
  bool express() const { return queue_ == nullptr; }

  /// Hybrid fluid coupling (DESIGN.md §12): scale every subsequent service
  /// time by `scale` (>= 1), modelling the link capacity claimed by a fluid
  /// background aggregate — the packets this link serves drain at the
  /// residual rate `rate / scale`. The default 1.0 multiplies exactly, so
  /// an unscaled link stays bit-identical to the pre-hook service path.
  void set_service_scale(double scale) {
    PDOS_REQUIRE(scale >= 1.0, "Link: service scale must be >= 1");
    service_scale_ = scale;
  }
  double service_scale() const { return service_scale_; }

  /// Express only: hand emitted packets straight to the express link that
  /// `hop` routes them to, with the analytic arrival time, instead of
  /// scheduling this link's own delivery event. The target is resolved per
  /// destination once and cached. PDOS_REQUIREs that this link is express
  /// and (lazily, per destination) that the resolved hop is express too.
  void chain_via(Node* hop);

  /// Callback for a cross-shard link (sim/pdes): invoked with each emitted
  /// packet and its serialization-finish instant instead of arming this
  /// link's own delivery event.
  using RemoteEgress = void (*)(void* ctx, Packet&& pkt, Time fin);

  /// Turn this link into a cross-shard channel mouth (DESIGN.md §13): every
  /// emission — full-path service completion, lazy replay, or express
  /// injection — is handed to `fn(ctx, pkt, fin)` in place of the local
  /// pipeline, and the destination shard schedules the delivery at
  /// `fin + delay()` on ITS scheduler. Queue admission, RED draws, and
  /// serialization timing are untouched; only where the departed packet
  /// goes changes. Mutually exclusive with chain handoff, and forbidden on
  /// a FUSED queued link: a lazy link emits during catch-up replay at visit
  /// time, when the computed arrival may already lie in the destination
  /// shard's executing round — a conservative-order violation — and its
  /// backlog drain is driven by its own delivery event, which a remote link
  /// does not have. (Express links are safe: they emit eagerly, inside the
  /// upstream event that produced the packet.)
  void set_remote_egress(RemoteEgress fn, void* ctx) {
    PDOS_REQUIRE(fn != nullptr && ctx != nullptr,
                 "Link: remote egress hook must be non-null");
    PDOS_REQUIRE(chain_hop_ == nullptr,
                 "Link: remote egress excludes chain handoff");
    PDOS_REQUIRE(!lazy_, "Link: remote egress requires an unfused link");
    remote_egress_ = fn;
    remote_ctx_ = ctx;
  }

  /// Flush lazy catch-up: replay every service a fused link would have
  /// completed by now, so queue().length()/stats() reflect the true state
  /// mid-run. Instrumentation that samples queue state between packets
  /// (e.g. the occupancy sampler) calls this first; no-op on express,
  /// unfused, or departure-tapped links. Strictly-before-now, like an
  /// arrival: an eager boundary event tied with the sampler's timer would
  /// fire after it (the timer's rank is a full sample period old), so the
  /// sample must not include a tied dequeue.
  void settle() {
    if (lazy_ && queued_ != 0) catch_up(sim_.now(), /*include_now=*/false);
  }

  /// Express only: serialize a packet whose arrival instant the caller
  /// knows analytically — `arrival` must be >= now() and non-decreasing
  /// across calls (the express FIFO chains off it). This is how a chained
  /// upstream lane and the pulse attacker's batched bursts feed packets in
  /// without one scheduler event per packet; handle() is the arrival==now
  /// special case.
  void inject_at(Packet pkt, Time arrival);

  const QueueDiscipline& queue() const;
  QueueDiscipline& queue();
  BitRate rate() const { return rate_; }
  Time delay() const { return delay_; }
  const std::string& name() const { return name_; }
  bool busy() const {
    return service_event_pending_ || sim_.now() < service_done_;
  }

 private:
  // A departed, still-propagating packet with its delivery deadline and the
  // tie-break rank it claimed when it departed, so materializing its heap
  // node late cannot reorder it against other events at the same timestamp.
  // One cache line, so the propagation pipeline is a single ring touched
  // once per departure and once per delivery.
  struct InFlight {
    Packet pkt;
    Time when = 0.0;
    std::uint32_t seq = 0;
  };
  static_assert(sizeof(InFlight) <= 64, "InFlight must stay one cache line");

  void serve_next();
  void finish_service();
  void catch_up(Time now, bool include_now);
  Link* chain_resolve(NodeId dst);
  void emit(Packet pkt, Time fin);
  void arm_delivery(Time when, std::uint32_t seq);
  void deliver();

  /// Per-packet chain handoff: one bounds check + array load on the cache
  /// hit; the first packet per destination takes the route-walk slow path.
  Link* chain_target(NodeId dst) {
    if (static_cast<std::size_t>(dst) < chain_cache_.size()) {
      if (Link* hit = chain_cache_[static_cast<std::size_t>(dst)];
          hit != nullptr) {
        return hit;
      }
    }
    return chain_resolve(dst);
  }

  Simulator& sim_;
  std::string name_;
  BitRate rate_;
  Time delay_;
  RemoteEgress remote_egress_ = nullptr;  // cross-shard mouth, or null
  void* remote_ctx_ = nullptr;
  double service_scale_ = 1.0;  // hybrid residual-capacity governor
  std::unique_ptr<QueueDiscipline> owned_queue_;  // legacy ctor only
  QueueDiscipline* queue_;  // null on the express lane
  PacketHandler* downstream_;
  Node* chain_hop_ = nullptr;  // express chain handoff router, or null
  bool tapped_ = false;     // any tap registered; gates the slow arrival path
  bool fused_ = false;      // idle serves skip the service event
  // Cached `queue_ != nullptr && fused_ && departure_taps_.empty()`: fused
  // links drain their queue analytically (no boundary event exists), and the
  // per-packet visit sites test this bit plus `queued_` instead of walking
  // the tap vector. Maintained by set_fused()/add_departure_tap().
  bool lazy_ = false;
  // True while a finish_service event is in the scheduler (the full
  // service path only; fused links never own a service event).
  bool service_event_pending_ = false;
  // Accepted-minus-dequeued mirror of queue_->length(), kept here so the
  // after-each-service "anything left?" test is a register compare instead
  // of a virtual dequeue that usually comes back empty.
  std::uint32_t queued_ = 0;
  // Virtual time the in-progress serialization completes; <= now() when the
  // wire is idle. Fused/express serves chain off this instead of an event.
  Time service_done_ = 0.0;

  Packet in_service_;       // owned by the pending service event
  Ring<InFlight> pipe_;     // departed, still propagating (FIFO)
  std::pmr::vector<PacketTap> arrival_taps_;
  std::pmr::vector<PacketTap> departure_taps_;
  // chain_via: resolved express next hop per destination, so the per-packet
  // handoff is an array load, not a route walk plus dynamic_cast.
  std::pmr::vector<Link*> chain_cache_;
};

}  // namespace pdos
