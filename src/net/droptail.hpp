// Tail-drop FIFO queue.
#pragma once

#include <deque>

#include "net/queue.hpp"

namespace pdos {

class DropTailQueue : public QueueDiscipline {
 public:
  /// `capacity_packets` is the buffer size in packets (> 0).
  explicit DropTailQueue(std::size_t capacity_packets);

  bool enqueue(Packet pkt) override;
  std::optional<Packet> dequeue() override;
  std::size_t length() const override { return buffer_.size(); }
  std::size_t capacity() const override { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<Packet> buffer_;
};

}  // namespace pdos
