// Tail-drop FIFO queue.
#pragma once

#include <memory_resource>

#include "net/packet_ring.hpp"
#include "net/queue.hpp"

namespace pdos {

class DropTailQueue : public QueueDiscipline {
 public:
  /// `capacity_packets` is the buffer size in packets (> 0). The packet
  /// buffer allocates from `memory` (default: the global heap; pass the
  /// Simulator's arena for warm-reuse scenarios).
  explicit DropTailQueue(std::size_t capacity_packets,
                         std::pmr::memory_resource* memory =
                             std::pmr::get_default_resource());

  bool enqueue(Packet pkt) override;
  Packet dequeue_nonempty() override;
  std::size_t length() const override { return buffer_.size(); }
  std::size_t capacity() const override { return capacity_; }

 private:
  std::size_t capacity_;
  // Grows on demand up to `capacity_` and never shrinks: once the queue has
  // filled once, enqueue/dequeue are allocation-free. Starting small keeps
  // construction cheap for sweeps that build thousands of queues.
  PacketRing buffer_;
};

}  // namespace pdos
