// Packet representation.
//
// Like ns-2, TCP is packet-counting: sequence and ACK numbers count MSS-sized
// segments, not bytes. Wire size still carries real byte counts so link
// serialization and rate accounting are exact.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pdos {

enum class PacketType : std::uint8_t {
  kTcpData,  // TCP segment carrying payload
  kTcpAck,   // pure acknowledgment
  kAttack,   // PDoS / flooding attack packet (UDP-like, no feedback)
  kUdp,      // generic background datagram
};

/// Node address within a topology. Assigned densely from 0 by the topology
/// builder.
using NodeId = std::int32_t;

/// Connection/flow identifier; doubles as the demux "port" at end hosts.
using FlowId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

struct Packet {
  PacketType type = PacketType::kTcpData;
  FlowId flow = -1;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bytes size_bytes = 0;  // wire size including headers

  // --- TCP fields (segment-counting, as in ns-2) ---
  std::int64_t seq = 0;   // data: segment index; ack: echoed highest seq
  std::int64_t ack = 0;   // cumulative: all segments < ack received
  Time ts_echo = 0.0;     // sender timestamp echoed by the receiver (RTTM)
  bool retransmit = false;  // marks retransmitted segments (Karn's rule)

  // --- instrumentation ---
  Time enqueue_time = 0.0;  // set by queues for delay accounting

  bool is_attack() const { return type == PacketType::kAttack; }
  bool is_tcp() const {
    return type == PacketType::kTcpData || type == PacketType::kTcpAck;
  }
};

/// Anything that can accept a packet: links, nodes, agents, sinks, taps.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(Packet pkt) = 0;
};

}  // namespace pdos
