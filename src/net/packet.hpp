// Packet representation.
//
// Like ns-2, TCP is packet-counting: sequence and ACK numbers count MSS-sized
// segments, not bytes. Wire size still carries real byte counts so link
// serialization and rate accounting are exact.
//
// Layout matters: a simulated packet is copied through queue rings, the
// link's in-service slot, and the propagation ring several times per hop,
// so the struct is packed to 48 bytes (three quarters of a cache line, down
// from 64) — doubles first, then the 32-bit lane, then the byte-wide flags.
// Segment counters are 32-bit on the wire: the packet-counting model tops
// out at cwnd * simulated-seconds / RTT segments per flow, orders of
// magnitude below 2^31 for any horizon this library runs, while the TCP
// agents keep 64-bit internal counters so arithmetic like `ack - snd_una`
// never narrows.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pdos {

enum class PacketType : std::uint8_t {
  kTcpData,  // TCP segment carrying payload
  kTcpAck,   // pure acknowledgment
  kAttack,   // PDoS / flooding attack packet (UDP-like, no feedback)
  kUdp,      // generic background datagram
};

/// Node address within a topology. Assigned densely from 0 by the topology
/// builder.
using NodeId = std::int32_t;

/// Connection/flow identifier; doubles as the demux "port" at end hosts.
using FlowId = std::int32_t;

/// On-wire segment counter (see the layout note above).
using SeqNum = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

struct Packet {
  // --- 64-bit lane ---
  Time ts_echo = 0.0;       // sender timestamp echoed by the receiver (RTTM)
  Time enqueue_time = 0.0;  // set on tapped links for delay accounting

  // --- 32-bit lane ---
  SeqNum seq = 0;  // data: segment index; ack: echoed highest seq
  SeqNum ack = 0;  // cumulative: all segments < ack received
  FlowId flow = -1;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t size_bytes = 0;  // wire size including headers

  // --- flags ---
  PacketType type = PacketType::kTcpData;
  bool retransmit = false;  // marks retransmitted segments (Karn's rule)

  bool is_attack() const { return type == PacketType::kAttack; }
  bool is_tcp() const {
    return type == PacketType::kTcpData || type == PacketType::kTcpAck;
  }
};

static_assert(sizeof(Packet) == 48,
              "Packet is copied per hop through rings and service slots — "
              "keep it packed (see layout note)");
static_assert(alignof(Packet) == 8, "Packet should align to its Time lane");

/// Anything that can accept a packet: links, nodes, agents, sinks, taps.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(Packet pkt) = 0;
};

}  // namespace pdos
