// Queue discipline interface.
//
// A `QueueDiscipline` decides admission (and hence loss) for a link's buffer.
// Queues count in packets, matching ns-2's default and the paper's RED
// configuration. Drop statistics are kept per traffic class so experiments
// can separate legitimate losses from attack-packet losses.
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace pdos {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t dropped_tcp = 0;
  std::uint64_t dropped_attack = 0;
  std::uint64_t bytes_dropped = 0;

  void note_drop(const Packet& pkt) {
    ++dropped;
    bytes_dropped += pkt.size_bytes;
    if (pkt.is_attack()) {
      ++dropped_attack;
    } else {
      ++dropped_tcp;
    }
  }
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  /// Offer a packet. Returns true if accepted; on false the packet is
  /// dropped (stats updated internally).
  virtual bool enqueue(Packet pkt) = 0;

  /// Remove and return the head-of-line packet. Precondition: length() > 0.
  /// The link's service loop tracks occupancy itself and only calls in here
  /// when a packet is buffered, so the hot path never pays for an optional.
  virtual Packet dequeue_nonempty() = 0;

  /// Same, but the caller names the virtual time the service begins. Lazy
  /// fused links (DESIGN.md §11) replay queued services after the fact, so
  /// the wall clock at the call is later than the serialization boundary
  /// the dequeue logically happens at; disciplines whose state depends on
  /// the dequeue instant (RED's idle-decay origin) override this and use
  /// `service_start` instead of the clock. Time-free disciplines inherit
  /// the plain dequeue.
  virtual Packet dequeue_nonempty_at(Time service_start) {
    (void)service_start;
    return dequeue_nonempty();
  }

  /// Remove and return the head-of-line packet, or nullopt when empty.
  std::optional<Packet> dequeue() {
    if (length() == 0) return std::nullopt;
    return dequeue_nonempty();
  }

  /// Packets currently buffered.
  virtual std::size_t length() const = 0;

  /// Buffer capacity in packets.
  virtual std::size_t capacity() const = 0;

  const QueueStats& stats() const { return stats_; }

  /// Supplies the wall-clock and service-rate context some disciplines need
  /// (RED's idle-decay uses both). Called once by the owning Link.
  virtual void bind(const class Scheduler* clock, BitRate service_rate,
                    Bytes mean_packet_bytes) {
    (void)clock;
    (void)service_rate;
    (void)mean_packet_bytes;
  }

 protected:
  QueueStats stats_;
};

}  // namespace pdos
