// Network node with static routing and local agent demux.
//
// Topologies in this library are small and fixed (dumbbell, single
// bottleneck), so routing is a static next-hop table keyed by destination
// node, with an optional default route. Node ids are assigned densely from
// 0 by the topology builder, so the table is a flat vector indexed by
// destination — the per-hop lookup every forwarded packet pays is an array
// load, not a hash probe. Packets addressed to the node itself are
// demultiplexed to an attached agent by flow id via a flat (flow, agent)
// vector — a node hosts at most a handful of agents, so a linear scan beats
// any hash machinery. Deliveries with no matching agent (e.g. attack
// packets aimed at a raw sink) are counted, not errors.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace pdos {

class Node : public PacketHandler {
 public:
  /// The route/agent tables allocate from `memory` (default: the global
  /// heap; pass the Simulator's arena for warm-reuse scenarios).
  Node(NodeId id, std::string name,
       std::pmr::memory_resource* memory = std::pmr::get_default_resource())
      : id_(id), name_(std::move(name)), routes_(memory), agents_(memory) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Install `via` as the next hop toward `dst`.
  void add_route(NodeId dst, PacketHandler* via);
  /// Fallback next hop for destinations with no explicit route.
  void set_default_route(PacketHandler* via) { default_route_ = via; }

  /// The hop handle() would forward a packet for `dst` to, without touching
  /// the packet: the explicit route, else the default route, else null —
  /// and null for the node itself (local delivery is not a hop). Express
  /// chain handoff (Link::chain_via, DESIGN.md §11) uses this to skip the
  /// router's delivery event when the next hop is another express lane.
  PacketHandler* peek_route(NodeId dst) const {
    if (dst == id_) return nullptr;
    PacketHandler* via =
        dst >= 0 && static_cast<std::size_t>(dst) < routes_.size()
            ? routes_[static_cast<std::size_t>(dst)]
            : nullptr;
    return via != nullptr ? via : default_route_;
  }

  /// Attach a local agent for packets addressed to this node on `flow`.
  void attach(FlowId flow, PacketHandler* agent);
  void detach(FlowId flow);

  void handle(Packet pkt) override;

  /// Bytes/packets delivered to this node with no attached agent.
  Bytes sink_bytes() const { return sink_bytes_; }
  std::uint64_t sink_packets() const { return sink_packets_; }

 private:
  NodeId id_;
  std::string name_;
  // Dense next-hop table: routes_[dst] is null for destinations with no
  // explicit route (fall through to default_route_).
  std::pmr::vector<PacketHandler*> routes_;
  PacketHandler* default_route_ = nullptr;
  std::pmr::vector<std::pair<FlowId, PacketHandler*>> agents_;
  Bytes sink_bytes_ = 0;
  std::uint64_t sink_packets_ = 0;
};

}  // namespace pdos
