// Power-of-two circular FIFO.
//
// The shared buffer primitive of the packet data path: queue disciplines
// (RED, DropTail) buffer admitted packets in one, and Link keeps departed,
// still-propagating packets (plus their delivery deadlines) in another.
// Compared to std::deque — the previous buffer in both places — a ring
// indexes with a mask instead of a block map, stays in one contiguous
// allocation, and never allocates after reaching its high-water capacity:
// `reserve` (or organic growth) is grow-once, so the steady-state
// enqueue/dequeue path touches no allocator.
//
// FIFO only: push_back / pop_front. Capacity is always a power of two so
// the wrap is a single AND. `T` must be default-constructible and movable;
// `PacketRing` is the packet instantiation the data path is built on.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "util/assert.hpp"

namespace pdos {

template <typename T>
class Ring {
 public:
  /// Buffer storage comes from `memory` (default: the global heap). An
  /// arena-backed ring participates in the owning Simulator's rewind
  /// discipline: cleared, its next growth re-traces the same arena bytes.
  explicit Ring(std::pmr::memory_resource* memory =
                    std::pmr::get_default_resource())
      : buf_(memory) {}
  /// Pre-size for `capacity` elements (rounded up to a power of two).
  explicit Ring(std::size_t capacity,
                std::pmr::memory_resource* memory =
                    std::pmr::get_default_resource())
      : buf_(memory) {
    reserve(capacity);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }

  /// Ensure room for `n` elements with no further allocation.
  void reserve(std::size_t n) {
    if (n > buf_.size()) rebuild(round_up_pow2(n));
  }

  void push_back(T&& value) {
    if (size_ == buf_.size()) {
      rebuild(buf_.empty() ? kInitialCapacity : buf_.size() * 2);
    }
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }
  void push_back(const T& value) { push_back(T(value)); }

  const T& front() const {
    PDOS_CHECK(size_ > 0);
    return buf_[head_];
  }

  T pop_front() {
    PDOS_CHECK(size_ > 0);
    T value = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return value;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 4;

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = kInitialCapacity;
    while (p < n) p *= 2;
    return p;
  }

  /// Reallocate to `capacity` (a power of two), compacting to head_ == 0.
  void rebuild(std::size_t capacity) {
    std::pmr::vector<T> next(capacity, buf_.get_allocator());
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    mask_ = capacity - 1;
    head_ = 0;
  }

  std::pmr::vector<T> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

using PacketRing = Ring<Packet>;

}  // namespace pdos
