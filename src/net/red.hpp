// Random Early Detection (RED) queue, ns-2 semantics.
//
// Implements classic RED (Floyd & Jacobson) with the `gentle_` extension used
// by the paper's test-bed: the drop probability ramps from max_p at max_th to
// 1 at 2*max_th instead of jumping to 1. The average queue estimate decays
// during idle periods as if `m` average-size packets had been serviced, as in
// ns-2.
//
// The paper's test-bed configures RED with min_th = 0.2B, max_th = 0.8B,
// w_q = 0.002, max_p = 0.1, gentle = true, B = RTT * R_bottle; the helper
// `RedParams::paper_testbed` reproduces that.
#pragma once

#include <memory_resource>

#include "net/packet_ring.hpp"
#include "net/queue.hpp"
#include "util/rng.hpp"

namespace pdos {

class Scheduler;

struct RedParams {
  double min_th = 5;      // packets
  double max_th = 15;     // packets
  double wq = 0.002;      // EWMA weight for the average queue size
  double max_p = 0.1;     // drop probability at max_th
  bool gentle = true;     // ramp max_p -> 1 over [max_th, 2*max_th]
  std::size_t capacity = 60;  // physical buffer, packets

  /// RED configuration from §4.2: thresholds at 20% / 80% of a buffer sized
  /// by the bandwidth-delay rule of thumb B = RTT * R_bottle.
  static RedParams paper_testbed(std::size_t buffer_packets);

  void validate() const;
};

class RedQueue : public QueueDiscipline {
 public:
  /// The packet buffer allocates from `memory` (default: the global heap;
  /// pass the Simulator's arena for warm-reuse scenarios).
  RedQueue(RedParams params, Rng rng,
           std::pmr::memory_resource* memory =
               std::pmr::get_default_resource());

  bool enqueue(Packet pkt) override;
  Packet dequeue_nonempty() override;
  Packet dequeue_nonempty_at(Time service_start) override;
  std::size_t length() const override { return buffer_.size(); }
  std::size_t capacity() const override { return params_.capacity; }

  void bind(const Scheduler* clock, BitRate service_rate,
            Bytes mean_packet_bytes) override;

  /// Current EWMA queue-size estimate (packets); exposed for tests.
  double avg() const { return avg_; }

  const RedParams& params() const { return params_; }

  std::uint64_t early_drops() const { return early_drops_; }
  std::uint64_t forced_drops() const { return forced_drops_; }

  // --- Fluid coupling (hybrid tier, DESIGN.md §12) ----------------------
  //
  // A FluidBackgroundSource models a mass of background flows as a fluid
  // aggregate sharing this queue. Its packets are a real-valued *virtual
  // backlog*: they occupy buffer space (the forced-drop check sees real +
  // virtual occupancy), they feed the EWMA average, and they drain at the
  // share of the service rate the source grants them. With the backlog at
  // its default 0.0 every arithmetic below is exact, so a queue that never
  // sees fluid behaves bit-identically to one built before this hook
  // existed — the golden digests pin that.

  /// Virtual fluid occupancy, packets (real-valued).
  double fluid_backlog() const { return fluid_backlog_; }

  /// Offer fluid to the queue: `arrivals` packets update the EWMA average
  /// (dropped-or-not, as per-packet RED would), and up to `admitted` of
  /// them claim buffer space. Returns the mass actually buffered — the
  /// shortfall is the aggregate's forced-drop share.
  double fluid_arrive(double arrivals, double admitted);

  /// Serve `packets` of the virtual backlog.
  void fluid_drain(double packets);

 private:
  void update_avg();
  bool should_early_drop();

  RedParams params_;
  Rng rng_;
  // Grows on demand up to `params_.capacity` and never shrinks; once the
  // queue has filled once, enqueue/dequeue are allocation-free.
  PacketRing buffer_;

  const Scheduler* clock_ = nullptr;  // may be null in unit tests
  double mean_service_time_ = 0.0;    // seconds per average packet
  double avg_ = 0.0;
  double fluid_backlog_ = 0.0;  // virtual fluid occupancy, packets
  int count_ = -1;        // packets since last drop while avg in [min_th, ...)
  bool idle_ = true;      // queue empty, awaiting next arrival
  Time idle_start_ = 0.0;
  std::uint64_t early_drops_ = 0;
  std::uint64_t forced_drops_ = 0;
};

}  // namespace pdos
