// Monotonic bump allocator with high-water rewind.
//
// One sweep point's object graph — nodes, links, queues, TCP endpoints,
// sources — lives for exactly one run and dies together, which is the
// textbook arena lifetime. `MonotonicArena` carves objects out of a small
// list of large blocks with a bump pointer; `rewind()` returns the cursor
// to the first block while *retaining* every block, so a warm simulator
// that rebuilds the same scenario re-traces the same layout without
// touching the system allocator at all. Deallocation is a no-op by design:
// individual objects are never freed, the whole epoch is.
//
// The arena is a `std::pmr::memory_resource`, so component-internal
// containers (`std::pmr::vector` route tables, ring buffers, reorder
// queues) ride the same blocks as the components themselves — one point's
// working set is a few contiguous megabytes instead of a few thousand
// scattered heap nodes. Not thread-safe: each sweep worker owns one arena.
#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace pdos {

class MonotonicArena final : public std::pmr::memory_resource {
 public:
  /// `first_block_bytes` sizes the first block; later blocks double up to
  /// a cap, and oversized requests get a block of their own.
  explicit MonotonicArena(std::size_t first_block_bytes = kDefaultBlockBytes);
  ~MonotonicArena() override = default;

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Reset the cursor to the start of the first block. Every block is
  /// retained, so re-allocating the same (or a smaller) sequence of
  /// objects performs no system allocation. Objects handed out before the
  /// rewind must already be destroyed — their storage is reused.
  void rewind();

  /// Free every block. Mostly for tests; destruction does this implicitly.
  void release();

  /// Bytes handed out since construction or the last rewind (excluding
  /// alignment padding and block slack).
  std::size_t bytes_in_use() const { return in_use_; }
  /// Total bytes held in blocks (the arena's memory footprint).
  std::size_t bytes_reserved() const;
  std::size_t block_count() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr std::size_t kMaxBlockBytes = 4 * 1024 * 1024;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void* /*p*/, std::size_t /*bytes*/,
                     std::size_t /*alignment*/) override {
    // Monotonic: storage is reclaimed wholesale by rewind()/release().
  }
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  /// Append a block of at least `min_bytes` and make it current.
  void add_block(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // index into blocks_ (one past none when empty)
  std::size_t offset_ = 0;   // bump cursor within blocks_[current_]
  std::size_t next_block_bytes_;
  std::size_t in_use_ = 0;
};

}  // namespace pdos
