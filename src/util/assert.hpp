// Always-on invariant checks for the PDoS library.
//
// Simulation bugs silently corrupt results, so internal invariants stay
// enabled in release builds. Violations throw `pdos::InvariantError` rather
// than abort, so tests can assert on them and long experiment sweeps can
// report which scenario failed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pdos {

/// Thrown when an internal invariant is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a user-supplied parameter is out of its documented domain.
class ParameterError : public std::invalid_argument {
 public:
  explicit ParameterError(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void invariant_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace pdos

#define PDOS_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::pdos::detail::invariant_failure(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define PDOS_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr))                                                           \
      ::pdos::detail::invariant_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define PDOS_REQUIRE(expr, msg)                  \
  do {                                           \
    if (!(expr)) throw ::pdos::ParameterError(msg); \
  } while (false)
