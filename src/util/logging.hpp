// Minimal leveled logging.
//
// The simulator is hot-path sensitive, so logging is a free function behind
// a global level check; disabled levels cost one branch. Output goes to
// stderr so bench harnesses can emit clean CSV on stdout.
#pragma once

#include <sstream>
#include <string>

namespace pdos {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_line(level, os.str());
}

template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}

template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}

}  // namespace pdos
