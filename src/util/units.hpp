// Unit helpers for the PDoS library.
//
// The simulator works internally in SI base units: seconds for time, bits
// per second for rates, bytes for sizes. These helpers exist so that call
// sites can say `ms(50)` or `mbps(15)` instead of sprinkling conversion
// factors, and so that intent survives code review.
#pragma once

#include <cstdint>

namespace pdos {

/// Simulated time, in seconds. Virtual time is a double: at nanosecond
/// granularity a double keeps exact integer semantics far beyond any
/// simulation horizon we use.
using Time = double;

/// Link or sending rate, in bits per second.
using BitRate = double;

/// Payload or wire size, in bytes.
using Bytes = std::int64_t;

constexpr Time sec(double s) { return s; }
constexpr Time ms(double v) { return v * 1e-3; }
constexpr Time us(double v) { return v * 1e-6; }

constexpr BitRate bps(double v) { return v; }
constexpr BitRate kbps(double v) { return v * 1e3; }
constexpr BitRate mbps(double v) { return v * 1e6; }
constexpr BitRate gbps(double v) { return v * 1e9; }

constexpr double to_ms(Time t) { return t * 1e3; }
constexpr double to_mbps(BitRate r) { return r * 1e-6; }

/// Time to serialize `size` bytes onto a link of rate `rate`.
constexpr Time transmission_time(Bytes size, BitRate rate) {
  return static_cast<double>(size) * 8.0 / rate;
}

/// Bytes deliverable in `duration` at `rate` (floor).
constexpr Bytes bytes_at_rate(BitRate rate, Time duration) {
  return static_cast<Bytes>(rate * duration / 8.0);
}

}  // namespace pdos
