// Deterministic random number generation.
//
// Every stochastic component (RED drop decisions, RTT jitter, flow start
// staggering) draws from an `Rng` owned by the `Simulator`, so a scenario
// replays bit-identically from its seed. Components that need independent
// streams fork a child generator with `fork()`.
#pragma once

#include <cstdint>
#include <random>

namespace pdos {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child generator. Children created in the same
  /// order from the same parent are identical across runs.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Stateless seed derivation: mix `base` and `stream` into an independent
/// seed (SplitMix64 finalizer over both words). Unlike `Rng::fork()` this
/// does not consume generator state, so a component seeded with
/// `derive_seed(run_seed, tag)` gets the same stream no matter how many
/// other components were built before it — the determinism contract the
/// sweep engine and multi-attacker scenarios rely on.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace pdos
