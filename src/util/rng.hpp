// Deterministic random number generation.
//
// Every stochastic component (RED drop decisions, RTT jitter, flow start
// staggering) draws from an `Rng` owned by the `Simulator`, so a scenario
// replays bit-identically from its seed. Components that need independent
// streams fork a child generator with `fork()`.
//
// The distribution objects are members, not per-draw temporaries: libstdc++
// distributions carry no draw-relevant state (every draw is a pure function
// of the engine and the parameter pack), so passing an explicit
// `param_type` per call produces the exact bit sequence the old
// construct-per-draw code did — pinned by RngTest.DrawSequenceMatches
// ReferenceImplementation — without re-running the constructor and its
// parameter validation on every draw of the hot RED/enqueue path.
#pragma once

#include <cstdint>
#include <random>

namespace pdos {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child generator. Children created in the same
  /// order from the same parent are identical across runs.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_dist_{0.0, 1.0};
  std::uniform_real_distribution<double> real_dist_;
  std::uniform_int_distribution<std::int64_t> int_dist_;
  std::exponential_distribution<double> exp_dist_;
};

/// Stateless seed derivation: mix `base` and `stream` into an independent
/// seed (SplitMix64 finalizer over both words). Unlike `Rng::fork()` this
/// does not consume generator state, so a component seeded with
/// `derive_seed(run_seed, tag)` gets the same stream no matter how many
/// other components were built before it — the determinism contract the
/// sweep engine and multi-attacker scenarios rely on.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace pdos
