#include "util/arena.hpp"

#include <algorithm>
#include <cstdint>

namespace pdos {

MonotonicArena::MonotonicArena(std::size_t first_block_bytes)
    : next_block_bytes_(std::max<std::size_t>(first_block_bytes, 256)) {}

void MonotonicArena::rewind() {
  current_ = 0;
  offset_ = 0;
  in_use_ = 0;
}

void MonotonicArena::release() {
  blocks_.clear();
  rewind();
}

std::size_t MonotonicArena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

void MonotonicArena::add_block(std::size_t min_bytes) {
  const std::size_t size = std::max(next_block_bytes_, min_bytes);
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;
  if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
}

void* MonotonicArena::do_allocate(std::size_t bytes, std::size_t alignment) {
  // Walk forward through retained blocks until one fits. After a rewind the
  // same allocation sequence re-traces the same walk, so a warm epoch never
  // reaches the add_block fallback. Slack left in a skipped block is wasted
  // only until the next rewind.
  for (;;) {
    if (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
      const std::uintptr_t aligned =
          (base + offset_ + (alignment - 1)) & ~(alignment - 1);
      const std::size_t start = static_cast<std::size_t>(aligned - base);
      if (start + bytes <= block.size) {
        offset_ = start + bytes;
        in_use_ += bytes;
        return block.data.get() + start;
      }
      if (current_ + 1 < blocks_.size()) {
        ++current_;
        offset_ = 0;
        continue;
      }
    }
    add_block(bytes + alignment);
  }
}

}  // namespace pdos
