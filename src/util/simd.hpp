// Portable fixed-width SIMD lane abstraction for the fluid tier
// (DESIGN.md §16).
//
// One type — `simd::DVec`, a vector of exactly kLanes = 4 doubles — with
// three interchangeable backends selected at compile time:
//
//   AVX2    one __m256d                 (x86-64, -mavx2)
//   NEON    two float64x2_t             (aarch64)
//   scalar  double[4]                   (everything else, or PDOS_SIMD=OFF)
//
// The width is fixed at 4 in *all* backends on purpose: every reduction in
// the fluid kernels is written as a 4-accumulator block tree
// (acc[i & 3] += term_i, then (a0+a1)+(a2+a3)), so switching backend or
// lane hardware never reassociates a sum — results are bit-identical
// across scalar/AVX2/NEON builds as long as per-lane operations round
// identically, which they do: every op below maps to a single IEEE-754
// binary64 operation per lane and nothing here (or in the TUs that
// include this header — see src/fluid/CMakeLists.txt, -ffp-contract=off)
// is allowed to contract mul+add into fma.
//
// Masks are DVecs whose lanes are all-ones (true) or all-zeros (false) bit
// patterns, as produced by the cmp_* functions; blend() selects whole
// lanes bitwise, so the chosen value's bit pattern survives untouched.
//
// The PDOS_SIMD CMake option (default ON) controls whether the fluid
// targets are built with native vector flags; PDOS_SIMD=OFF defines
// PDOS_SIMD_DISABLE, which forces the scalar backend even when the
// ambient flags would enable AVX2/NEON.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(PDOS_SIMD_DISABLE) && defined(__AVX2__)
#define PDOS_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(PDOS_SIMD_DISABLE) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define PDOS_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define PDOS_SIMD_BACKEND_SCALAR 1
#endif

namespace pdos::simd {

/// Fixed vector width shared by all backends; also the block-tree fan-in
/// of every cross-class reduction in the fluid tier.
inline constexpr std::size_t kLanes = 4;

#if defined(PDOS_SIMD_BACKEND_AVX2)

inline constexpr const char* kBackendName = "avx2";

struct DVec {
  __m256d v;
};

inline DVec splat(double x) { return {_mm256_set1_pd(x)}; }
inline DVec zero() { return {_mm256_setzero_pd()}; }
inline DVec load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void store(double* p, DVec a) { _mm256_storeu_pd(p, a.v); }

inline DVec operator+(DVec a, DVec b) { return {_mm256_add_pd(a.v, b.v)}; }
inline DVec operator-(DVec a, DVec b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline DVec operator*(DVec a, DVec b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline DVec operator/(DVec a, DVec b) { return {_mm256_div_pd(a.v, b.v)}; }
inline DVec vmin(DVec a, DVec b) { return {_mm256_min_pd(a.v, b.v)}; }
inline DVec vmax(DVec a, DVec b) { return {_mm256_max_pd(a.v, b.v)}; }

inline DVec cmp_lt(DVec a, DVec b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline DVec cmp_ge(DVec a, DVec b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
inline DVec cmp_gt(DVec a, DVec b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}

inline DVec vand(DVec a, DVec b) { return {_mm256_and_pd(a.v, b.v)}; }
inline DVec vor(DVec a, DVec b) { return {_mm256_or_pd(a.v, b.v)}; }
/// Lanes of `a` where mask is false; zero where mask is true.
inline DVec vandnot(DVec mask, DVec a) {
  return {_mm256_andnot_pd(mask.v, a.v)};
}
/// Per lane: mask ? a : b (bitwise whole-lane select).
inline DVec blend(DVec mask, DVec a, DVec b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}
/// 4-bit sign mask, lane 0 in bit 0.
inline unsigned mask_bits(DVec mask) {
  return static_cast<unsigned>(_mm256_movemask_pd(mask.v));
}
inline double lane(DVec a, std::size_t i) {
  alignas(32) double tmp[kLanes];
  _mm256_store_pd(tmp, a.v);
  return tmp[i];
}

#elif defined(PDOS_SIMD_BACKEND_NEON)

inline constexpr const char* kBackendName = "neon";

struct DVec {
  float64x2_t lo;
  float64x2_t hi;
};

inline DVec splat(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
inline DVec zero() { return splat(0.0); }
inline DVec load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
inline void store(double* p, DVec a) {
  vst1q_f64(p, a.lo);
  vst1q_f64(p + 2, a.hi);
}

inline DVec operator+(DVec a, DVec b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline DVec operator-(DVec a, DVec b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline DVec operator*(DVec a, DVec b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline DVec operator/(DVec a, DVec b) {
  return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}
inline DVec vmin(DVec a, DVec b) {
  return {vminq_f64(a.lo, b.lo), vminq_f64(a.hi, b.hi)};
}
inline DVec vmax(DVec a, DVec b) {
  return {vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi)};
}

inline DVec cmp_lt(DVec a, DVec b) {
  return {vreinterpretq_f64_u64(vcltq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcltq_f64(a.hi, b.hi))};
}
inline DVec cmp_ge(DVec a, DVec b) {
  return {vreinterpretq_f64_u64(vcgeq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcgeq_f64(a.hi, b.hi))};
}
inline DVec cmp_gt(DVec a, DVec b) {
  return {vreinterpretq_f64_u64(vcgtq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcgtq_f64(a.hi, b.hi))};
}

inline DVec vand(DVec a, DVec b) {
  return {vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(b.lo))),
          vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(b.hi)))};
}
inline DVec vor(DVec a, DVec b) {
  return {vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(b.lo))),
          vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(b.hi)))};
}
inline DVec vandnot(DVec mask, DVec a) {
  return {vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(mask.lo))),
          vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(mask.hi)))};
}
inline DVec blend(DVec mask, DVec a, DVec b) {
  return {vbslq_f64(vreinterpretq_u64_f64(mask.lo), a.lo, b.lo),
          vbslq_f64(vreinterpretq_u64_f64(mask.hi), a.hi, b.hi)};
}
inline unsigned mask_bits(DVec mask) {
  const uint64x2_t lo = vreinterpretq_u64_f64(mask.lo);
  const uint64x2_t hi = vreinterpretq_u64_f64(mask.hi);
  return static_cast<unsigned>((vgetq_lane_u64(lo, 0) >> 63) |
                               ((vgetq_lane_u64(lo, 1) >> 63) << 1) |
                               ((vgetq_lane_u64(hi, 0) >> 63) << 2) |
                               ((vgetq_lane_u64(hi, 1) >> 63) << 3));
}
inline double lane(DVec a, std::size_t i) {
  double tmp[kLanes];
  store(tmp, a);
  return tmp[i];
}

#else  // PDOS_SIMD_BACKEND_SCALAR

inline constexpr const char* kBackendName = "scalar";

struct DVec {
  double v[kLanes];
};

namespace detail {
inline std::uint64_t bits(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}
inline double from_bits(std::uint64_t b) {
  double x;
  std::memcpy(&x, &b, sizeof(x));
  return x;
}
}  // namespace detail

inline DVec splat(double x) { return {{x, x, x, x}}; }
inline DVec zero() { return splat(0.0); }
inline DVec load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void store(double* p, DVec a) {
  for (std::size_t i = 0; i < kLanes; ++i) p[i] = a.v[i];
}

inline DVec operator+(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline DVec operator-(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline DVec operator*(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
inline DVec operator/(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}
// min/max mirror the SSE/AVX semantics (second operand wins on equality or
// NaN), which for the fluid kernels' finite inputs is plain min/max.
inline DVec vmin(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  }
  return r;
}
inline DVec vmax(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  }
  return r;
}

inline DVec cmp_lt(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = detail::from_bits(a.v[i] < b.v[i] ? ~0ull : 0ull);
  }
  return r;
}
inline DVec cmp_ge(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = detail::from_bits(a.v[i] >= b.v[i] ? ~0ull : 0ull);
  }
  return r;
}
inline DVec cmp_gt(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = detail::from_bits(a.v[i] > b.v[i] ? ~0ull : 0ull);
  }
  return r;
}

inline DVec vand(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = detail::from_bits(detail::bits(a.v[i]) & detail::bits(b.v[i]));
  }
  return r;
}
inline DVec vor(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = detail::from_bits(detail::bits(a.v[i]) | detail::bits(b.v[i]));
  }
  return r;
}
inline DVec vandnot(DVec mask, DVec a) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = detail::from_bits(~detail::bits(mask.v[i]) &
                               detail::bits(a.v[i]));
  }
  return r;
}
inline DVec blend(DVec mask, DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    // blendv semantics: the mask's sign bit picks the lane.
    r.v[i] = (detail::bits(mask.v[i]) >> 63) != 0 ? a.v[i] : b.v[i];
  }
  return r;
}
inline unsigned mask_bits(DVec mask) {
  unsigned bits = 0;
  for (std::size_t i = 0; i < kLanes; ++i) {
    bits |= static_cast<unsigned>(detail::bits(mask.v[i]) >> 63) << i;
  }
  return bits;
}
inline double lane(DVec a, std::size_t i) { return a.v[i]; }

#endif

/// Double whose bit pattern is all-ones — the per-lane "true" value for
/// caller-built mask arrays (cmp_* produce the same pattern). The full
/// 64-bit pattern matters: vandnot/vand operate on every bit, not just
/// the sign.
inline double mask_true() {
  const std::uint64_t bits = ~0ull;
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}
/// The per-lane "false" mask value (all-zeros).
inline constexpr double mask_false() { return 0.0; }

/// Population count of a mask_bits() result: how many lanes are true.
inline unsigned mask_count(unsigned bits) {
  unsigned n = 0;
  for (; bits != 0; bits &= bits - 1) ++n;
  return n;
}

}  // namespace pdos::simd
