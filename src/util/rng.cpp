#include "util/rng.hpp"

#include "util/assert.hpp"

namespace pdos {

double Rng::uniform() { return unit_dist_(engine_); }

double Rng::uniform(double lo, double hi) {
  PDOS_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
  using Dist = std::uniform_real_distribution<double>;
  return real_dist_(engine_, Dist::param_type(lo, hi));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PDOS_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
  using Dist = std::uniform_int_distribution<std::int64_t>;
  return int_dist_(engine_, Dist::param_type(lo, hi));
}

double Rng::exponential(double mean) {
  PDOS_REQUIRE(mean > 0.0, "exponential: mean must be positive");
  using Dist = std::exponential_distribution<double>;
  return exp_dist_(engine_, Dist::param_type(1.0 / mean));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() {
  // Mix the parent stream into a fresh seed; consuming from the parent keeps
  // successive forks independent.
  const std::uint64_t seed = engine_() ^ 0x9e3779b97f4a7c15ULL;
  return Rng(seed);
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Finalize both words so nearby (base, stream) pairs land far apart, and
  // combine asymmetrically so derive_seed(a, b) != derive_seed(b, a).
  return splitmix64(splitmix64(base) + 0x632be59bd9b4e019ULL * stream);
}

}  // namespace pdos
