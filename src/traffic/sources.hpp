// Background / cross-traffic sources.
//
// The paper's scenarios carry only bulk TCP plus the attack, but any
// deployment of the model needs to know how robust the gain curves are to
// unresponsive cross traffic. Two open-loop sources are provided:
//
//   CbrSource   — constant bit rate datagrams (e.g. media streams)
//   OnOffSource — exponential ON/OFF bursts of CBR traffic (aggregated
//                 web-like background), mean rate = rate * E[on]/(E[on]+E[off])
//
// Both emit PacketType::kUdp packets toward a sink node; they never react
// to loss.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdos {

struct SourceStats {
  std::int64_t packets_sent = 0;
  Bytes bytes_sent = 0;
};

/// Constant-bit-rate datagram source.
class CbrSource {
 public:
  CbrSource(Simulator& sim, BitRate rate, Bytes packet_bytes, NodeId self,
            NodeId sink, PacketHandler* out, FlowId flow = -2000);

  void start(Time when);
  void stop() { stopped_ = true; }
  const SourceStats& stats() const { return stats_; }

 private:
  void emit();

  Simulator& sim_;
  Time spacing_;
  Bytes packet_bytes_;
  NodeId self_;
  NodeId sink_;
  PacketHandler* out_;
  FlowId flow_;
  bool stopped_ = false;
  Timer emit_timer_;  // drives the fixed-spacing emission cycle
  SourceStats stats_;
};

/// Exponential ON/OFF source: CBR at `peak_rate` during ON periods.
class OnOffSource {
 public:
  OnOffSource(Simulator& sim, BitRate peak_rate, Time mean_on, Time mean_off,
              Bytes packet_bytes, NodeId self, NodeId sink,
              PacketHandler* out, FlowId flow = -3000);

  void start(Time when);
  void stop() { stopped_ = true; }
  const SourceStats& stats() const { return stats_; }
  /// Long-run average rate peak * E[on]/(E[on]+E[off]).
  BitRate average_rate() const;

 private:
  void begin_on();
  void emit(Time on_end);

  Simulator& sim_;
  BitRate peak_rate_;
  Time mean_on_;
  Time mean_off_;
  Time spacing_;
  Bytes packet_bytes_;
  NodeId self_;
  NodeId sink_;
  PacketHandler* out_;
  FlowId flow_;
  Rng rng_;
  bool stopped_ = false;
  Timer burst_timer_;  // drives the ON/OFF cycle
  SourceStats stats_;
};

}  // namespace pdos
