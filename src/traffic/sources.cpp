#include "traffic/sources.hpp"

#include "util/assert.hpp"

namespace pdos {

namespace {

Packet make_udp(FlowId flow, NodeId self, NodeId sink, Bytes size) {
  Packet pkt;
  pkt.type = PacketType::kUdp;
  pkt.flow = flow;
  pkt.src = self;
  pkt.dst = sink;
  pkt.size_bytes = size;
  return pkt;
}

}  // namespace

CbrSource::CbrSource(Simulator& sim, BitRate rate, Bytes packet_bytes,
                     NodeId self, NodeId sink, PacketHandler* out,
                     FlowId flow)
    : sim_(sim),
      spacing_(transmission_time(packet_bytes, rate)),
      packet_bytes_(packet_bytes),
      self_(self),
      sink_(sink),
      out_(out),
      flow_(flow),
      emit_timer_(sim.scheduler(), [this] { emit(); }) {
  PDOS_REQUIRE(rate > 0.0, "CbrSource: rate must be > 0");
  PDOS_REQUIRE(packet_bytes > 0, "CbrSource: packet_bytes must be > 0");
  PDOS_REQUIRE(out != nullptr, "CbrSource: out must be non-null");
}

void CbrSource::start(Time when) { emit_timer_.schedule_at(when); }

void CbrSource::emit() {
  if (stopped_) return;
  ++stats_.packets_sent;
  stats_.bytes_sent += packet_bytes_;
  out_->handle(make_udp(flow_, self_, sink_, packet_bytes_));
  emit_timer_.schedule_in(spacing_);
}

OnOffSource::OnOffSource(Simulator& sim, BitRate peak_rate, Time mean_on,
                         Time mean_off, Bytes packet_bytes, NodeId self,
                         NodeId sink, PacketHandler* out, FlowId flow)
    : sim_(sim),
      peak_rate_(peak_rate),
      mean_on_(mean_on),
      mean_off_(mean_off),
      spacing_(transmission_time(packet_bytes, peak_rate)),
      packet_bytes_(packet_bytes),
      self_(self),
      sink_(sink),
      out_(out),
      flow_(flow),
      // Seed-derived stream keyed by the source's node id: the burst
      // pattern is a function of (run seed, self) only, not of how many
      // components forked the root stream before this one.
      rng_(sim.stream(0x6f6e6f66'66000000ULL +
                      static_cast<std::uint64_t>(self))),
      burst_timer_(sim.scheduler(), [this] { begin_on(); }) {
  PDOS_REQUIRE(peak_rate > 0.0, "OnOffSource: peak_rate must be > 0");
  PDOS_REQUIRE(mean_on > 0.0 && mean_off > 0.0,
               "OnOffSource: mean_on/mean_off must be > 0");
  PDOS_REQUIRE(packet_bytes > 0, "OnOffSource: packet_bytes must be > 0");
  PDOS_REQUIRE(out != nullptr, "OnOffSource: out must be non-null");
}

BitRate OnOffSource::average_rate() const {
  return peak_rate_ * mean_on_ / (mean_on_ + mean_off_);
}

void OnOffSource::start(Time when) { burst_timer_.schedule_at(when); }

void OnOffSource::begin_on() {
  if (stopped_) return;
  const Time on_duration = rng_.exponential(mean_on_);
  const Time on_end = sim_.now() + on_duration;
  emit(on_end);
  const Time off_duration = rng_.exponential(mean_off_);
  burst_timer_.schedule_in(on_duration + off_duration);
}

// The emission chain stays on plain per-event schedules: a burst's trailing
// event can still be pending when the next burst begins (short OFF period),
// and the captured `on_end` is what makes that stale event die instead of
// adopting the new burst's deadline.
void OnOffSource::emit(Time on_end) {
  if (stopped_ || sim_.now() >= on_end) return;
  ++stats_.packets_sent;
  stats_.bytes_sent += packet_bytes_;
  out_->handle(make_udp(flow_, self_, sink_, packet_bytes_));
  sim_.schedule(spacing_, [this, on_end] { emit(on_end); });
}

}  // namespace pdos
