// Interarrival jitter estimation.
//
// §2.3 notes that the quasi-global synchronization "has a severe impact on
// the TCP performance, e.g. decrease in throughput and increase in
// jitter". This meter quantifies the second effect with the RFC 3550
// smoothed estimator J += (|D| − J)/16 over interarrival deltas, plus the
// raw standard deviation for tests.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pdos {

class JitterMeter {
 public:
  /// Record an arrival at absolute time `t` (non-decreasing).
  void observe(Time t);

  /// RFC 3550-style smoothed jitter of interarrival gaps, seconds.
  Time smoothed_jitter() const { return smoothed_; }

  /// Mean and population stddev of the interarrival gaps, seconds.
  Time mean_gap() const;
  Time gap_stddev() const;

  std::uint64_t samples() const { return count_; }

 private:
  Time last_arrival_ = -1.0;
  Time last_gap_ = -1.0;
  Time smoothed_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::uint64_t count_ = 0;  // number of gaps observed
};

}  // namespace pdos
