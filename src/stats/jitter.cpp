#include "stats/jitter.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pdos {

void JitterMeter::observe(Time t) {
  PDOS_REQUIRE(last_arrival_ < 0.0 || t >= last_arrival_,
               "JitterMeter: arrivals must be non-decreasing");
  if (last_arrival_ >= 0.0) {
    const Time gap = t - last_arrival_;
    if (last_gap_ >= 0.0) {
      const Time d = std::abs(gap - last_gap_);
      smoothed_ += (d - smoothed_) / 16.0;
    }
    last_gap_ = gap;
    sum_ += gap;
    sum_sq_ += gap * gap;
    ++count_;
  }
  last_arrival_ = t;
}

Time JitterMeter::mean_gap() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

Time JitterMeter::gap_stddev() const {
  if (count_ < 2) return 0.0;
  const double m = mean_gap();
  const double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace pdos
