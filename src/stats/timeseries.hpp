// Time-series tooling for traffic analysis.
//
// The paper visualizes the quasi-global synchronization (Fig. 3) by binning
// the bottleneck's incoming traffic, normalizing it to zero mean, and
// applying a piecewise aggregate approximation (PAA, Keogh et al.). The
// period of the oscillation is then read off the evenly spaced peaks. This
// module provides exactly those primitives, plus an autocorrelation-based
// period estimator used by the tests and benches to verify period == T_AIMD.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace pdos {

/// Accumulates a value (e.g. bytes) into fixed-width time bins.
class BinnedSeries {
 public:
  explicit BinnedSeries(Time bin_width);

  /// Add `value` to the bin containing time `t` (t >= 0).
  void add(Time t, double value);

  /// Pre-size the bin storage to cover [0, horizon) so subsequent add()
  /// calls never reallocate. Capacity only: bins() still ends at the last
  /// recorded bin, and bins_until() still materializes trailing zeros.
  void reserve_until(Time horizon);

  /// Bin values from t=0 up to the last recorded bin (or `until` if given a
  /// later horizon — trailing empty bins are materialized as zeros).
  const std::vector<double>& bins() const { return bins_; }
  std::vector<double> bins_until(Time until) const;

  Time bin_width() const { return bin_width_; }

  /// Per-bin average rate in value-units per second.
  std::vector<double> rates() const;

 private:
  Time bin_width_;
  std::vector<double> bins_;
};

/// Arithmetic mean; 0 for an empty series.
double mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than 2 points.
double stddev(const std::vector<double>& v);

/// Subtract the mean (the paper's "normalized so that the mean value is
/// zero").
std::vector<double> normalize_zero_mean(const std::vector<double>& v);

/// Zero mean and unit variance (no-op scaling when stddev is 0).
std::vector<double> normalize_zscore(const std::vector<double>& v);

/// Piecewise aggregate approximation: average `v` over `segments` equal
/// frames (the final frame absorbs the remainder). Requires
/// 1 <= segments <= v.size().
std::vector<double> paa(const std::vector<double>& v, std::size_t segments);

/// Count peaks: bins strictly above `threshold` count once per excursion
/// (consecutive above-threshold bins merge), and excursions closer than
/// `min_separation` bins apart merge into one peak.
std::size_t count_peaks(const std::vector<double>& v, double threshold,
                        std::size_t min_separation = 1);

/// Normalized autocorrelation of `v` at integer `lag` (biased estimator).
double autocorrelation(const std::vector<double>& v, std::size_t lag);

/// Dominant period: lag in [min_lag, max_lag] maximizing autocorrelation,
/// converted to seconds via `bin_width`. Returns 0 if the series is too
/// short or flat.
Time estimate_period(const std::vector<double>& v, Time bin_width,
                     std::size_t min_lag, std::size_t max_lag);

}  // namespace pdos
