// Fairness metrics over per-flow allocations.
//
// A PDoS attack does not degrade flows evenly: converged windows scale as
// 1/RTT (Eq. 1), so large-RTT victims starve first and the bandwidth share
// skews. Jain's fairness index J = (Σx)² / (n·Σx²) quantifies that: 1 for
// equal shares, 1/n when a single flow holds everything.
#pragma once

#include <vector>

namespace pdos {

/// Jain's fairness index over non-negative allocations; 0 for an empty or
/// all-zero vector.
double jain_fairness_index(const std::vector<double>& allocations);

/// Fraction of flows whose allocation is below `fraction` of the mean —
/// the "starved" flows an operator would field complaints about.
double starved_fraction(const std::vector<double>& allocations,
                        double fraction = 0.1);

}  // namespace pdos
