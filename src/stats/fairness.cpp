#include "stats/fairness.hpp"

#include "util/assert.hpp"

namespace pdos {

double jain_fairness_index(const std::vector<double>& allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    PDOS_REQUIRE(x >= 0.0, "jain_fairness_index: allocations must be >= 0");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

double starved_fraction(const std::vector<double>& allocations,
                        double fraction) {
  PDOS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
               "starved_fraction: fraction must be in [0, 1]");
  if (allocations.empty()) return 0.0;
  double sum = 0.0;
  for (double x : allocations) sum += x;
  const double mean = sum / static_cast<double>(allocations.size());
  if (mean <= 0.0) return 1.0;
  int starved = 0;
  for (double x : allocations) {
    if (x < fraction * mean) ++starved;
  }
  return static_cast<double>(starved) /
         static_cast<double>(allocations.size());
}

}  // namespace pdos
