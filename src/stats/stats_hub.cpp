#include "stats/stats_hub.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pdos {

StatsHub::StatsHub(Time bin_width, Time horizon) : bin_width_(bin_width) {
  PDOS_REQUIRE(bin_width > 0.0, "StatsHub: bin_width must be > 0");
  PDOS_REQUIRE(horizon >= 0.0, "StatsHub: horizon must be >= 0");
  if (horizon > 0.0) {
    const auto needed =
        static_cast<std::size_t>(std::ceil(horizon / bin_width_)) + 1;
    incoming_.bins.reserve(needed);
    attack_.bins.reserve(needed);
  }
}

void StatsHub::Channel::roll(std::size_t idx) {
  if (bin != kNoBin) {
    PDOS_CHECK_MSG(idx > bin, "StatsHub: timestamps must be non-decreasing");
    if (bins.size() <= bin) bins.resize(bin + 1, 0.0);
    bins[bin] += pending;
    pending = 0.0;
  }
  bin = idx;
}

std::vector<double> StatsHub::Channel::bins_until(Time until,
                                                  Time bin_width) const {
  std::vector<double> out = bins;
  if (bin != kNoBin) {
    if (out.size() <= bin) out.resize(bin + 1, 0.0);
    out[bin] += pending;
  }
  const auto needed = static_cast<std::size_t>(std::ceil(until / bin_width));
  if (needed > out.size()) out.resize(needed, 0.0);
  return out;
}

std::vector<double> StatsHub::incoming_bins_until(Time until) const {
  return incoming_.bins_until(until, bin_width_);
}

std::vector<double> StatsHub::attack_bins_until(Time until) const {
  return attack_.bins_until(until, bin_width_);
}

Time StatsHub::mean_smoothed_jitter() const {
  if (meters_.empty()) return 0.0;
  Time total = 0.0;
  for (const auto& meter : meters_) total += meter.smoothed_jitter();
  return total / static_cast<double>(meters_.size());
}

}  // namespace pdos
