// Batched per-packet statistics sink for link taps.
//
// The paper's incoming-traffic series (Figs. 2-3) used to be collected by a
// std::function arrival tap doing two BinnedSeries::add calls per packet —
// each one a division, a bounds check, a possible vector grow, and an
// indexed read-modify-write into heap storage. StatsHub is the batched
// replacement: it rides a `PacketTap` (inline closure, function-pointer
// dispatch), computes the bin index once per packet, and accumulates the
// current bin's sums in member doubles, spilling to the bins vector only
// when simulation time crosses a bin boundary. Bins vectors are reserved to
// the simulation horizon up front, so the per-packet path performs zero
// allocations.
//
// Determinism contract: for non-decreasing timestamps, the materialized
// bins are bit-identical to per-packet BinnedSeries::add — the same values
// are added in the same order, just staged in a register-resident sum
// before the single store per bin.
#pragma once

#include <cstddef>
#include <vector>

#include "net/packet.hpp"
#include "stats/jitter.hpp"
#include "util/units.hpp"

namespace pdos {

class StatsHub {
 public:
  /// `horizon`, when known, pre-sizes the bins so the hot path never grows
  /// them; 0 means size on demand.
  explicit StatsHub(Time bin_width, Time horizon = 0.0);

  /// Hot path, called from a link arrival tap. `now` must be non-decreasing
  /// across calls (simulation time is).
  void on_arrival(Time now, const Packet& pkt) {
    const auto idx = static_cast<std::size_t>(now / bin_width_);
    const double bytes = static_cast<double>(pkt.size_bytes);
    incoming_.add(idx, bytes);
    if (pkt.is_attack()) attack_.add(idx, bytes);
  }

  /// Bin sums from t=0 to `until` (trailing empty bins materialized as
  /// zeros), flushing pending batches; same semantics as
  /// BinnedSeries::bins_until.
  std::vector<double> incoming_bins_until(Time until) const;
  std::vector<double> attack_bins_until(Time until) const;

  /// Size the per-flow delivery meters; flow indices are [0, n). Called
  /// once at run setup — the only allocation the per-flow path ever makes.
  void register_flows(std::size_t n) { meters_.assign(n, JitterMeter{}); }

  /// Hot path, called from a receiver's delivery tracer: one O(1)
  /// JitterMeter update into the flat meter table, no allocation, no
  /// bounds growth. `flow` must be < the registered count.
  void on_delivery(std::size_t flow, Time t) { meters_[flow].observe(t); }

  /// Mean over registered flows of the RFC 3550 smoothed delivery jitter
  /// (0 when no flows are registered).
  Time mean_smoothed_jitter() const;

  const JitterMeter& flow_meter(std::size_t flow) const {
    return meters_[flow];
  }
  std::size_t registered_flows() const { return meters_.size(); }

  Time bin_width() const { return bin_width_; }

 private:
  /// One batched series: the current bin's running sum stays in `pending`
  /// until an add lands in a later bin.
  struct Channel {
    static constexpr std::size_t kNoBin = static_cast<std::size_t>(-1);

    std::size_t bin = kNoBin;
    double pending = 0.0;
    std::vector<double> bins;

    void add(std::size_t idx, double value) {
      if (idx != bin) roll(idx);
      pending += value;
    }
    void roll(std::size_t idx);  // cold: spill + advance to `idx`
    std::vector<double> bins_until(Time until, Time bin_width) const;
  };

  Time bin_width_;
  Channel incoming_;
  Channel attack_;
  std::vector<JitterMeter> meters_;  // one per registered flow
};

}  // namespace pdos
