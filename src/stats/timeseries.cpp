#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pdos {

BinnedSeries::BinnedSeries(Time bin_width) : bin_width_(bin_width) {
  PDOS_REQUIRE(bin_width > 0.0, "BinnedSeries: bin_width must be > 0");
}

void BinnedSeries::reserve_until(Time horizon) {
  PDOS_REQUIRE(horizon >= 0.0, "BinnedSeries: horizon must be >= 0");
  bins_.reserve(static_cast<std::size_t>(std::ceil(horizon / bin_width_)) + 1);
}

void BinnedSeries::add(Time t, double value) {
  PDOS_REQUIRE(t >= 0.0, "BinnedSeries: time must be >= 0");
  const auto idx = static_cast<std::size_t>(t / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += value;
}

std::vector<double> BinnedSeries::bins_until(Time until) const {
  std::vector<double> out = bins_;
  const auto needed = static_cast<std::size_t>(std::ceil(until / bin_width_));
  if (needed > out.size()) out.resize(needed, 0.0);
  return out;
}

std::vector<double> BinnedSeries::rates() const {
  std::vector<double> out(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) out[i] = bins_[i] / bin_width_;
  return out;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

std::vector<double> normalize_zero_mean(const std::vector<double>& v) {
  const double m = mean(v);
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] - m;
  return out;
}

std::vector<double> normalize_zscore(const std::vector<double>& v) {
  const double m = mean(v);
  const double s = stddev(v);
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = s > 0.0 ? (v[i] - m) / s : v[i] - m;
  }
  return out;
}

std::vector<double> paa(const std::vector<double>& v, std::size_t segments) {
  PDOS_REQUIRE(segments >= 1, "paa: segments must be >= 1");
  PDOS_REQUIRE(segments <= v.size(), "paa: more segments than points");
  std::vector<double> out(segments, 0.0);
  const std::size_t frame = v.size() / segments;
  for (std::size_t s = 0; s < segments; ++s) {
    const std::size_t begin = s * frame;
    const std::size_t end = (s + 1 == segments) ? v.size() : begin + frame;
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += v[i];
    out[s] = sum / static_cast<double>(end - begin);
  }
  return out;
}

std::size_t count_peaks(const std::vector<double>& v, double threshold,
                        std::size_t min_separation) {
  std::size_t peaks = 0;
  bool above = false;
  std::size_t last_end = 0;
  bool have_last = false;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] > threshold) {
      if (!above) {
        const bool merged =
            have_last && (i - last_end) < std::max<std::size_t>(1,
                                                                min_separation);
        if (!merged) ++peaks;
        above = true;
      }
    } else if (above) {
      above = false;
      last_end = i;
      have_last = true;
    }
  }
  return peaks;
}

double autocorrelation(const std::vector<double>& v, std::size_t lag) {
  if (lag >= v.size()) return 0.0;
  const double m = mean(v);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double c = v[i] - m;
    den += c * c;
    if (i + lag < v.size()) num += c * (v[i + lag] - m);
  }
  return den > 0.0 ? num / den : 0.0;
}

Time estimate_period(const std::vector<double>& v, Time bin_width,
                     std::size_t min_lag, std::size_t max_lag) {
  PDOS_REQUIRE(min_lag >= 1 && min_lag <= max_lag,
               "estimate_period: need 1 <= min_lag <= max_lag");
  if (v.size() < min_lag + 2) return 0.0;
  const std::size_t hi = std::min(max_lag, v.size() - 1);
  double best = -2.0;
  std::size_t best_lag = 0;
  for (std::size_t lag = min_lag; lag <= hi; ++lag) {
    const double r = autocorrelation(v, lag);
    if (r > best) {
      best = r;
      best_lag = lag;
    }
  }
  if (best_lag == 0 || best <= 0.0) return 0.0;
  return static_cast<double>(best_lag) * bin_width;
}

}  // namespace pdos
