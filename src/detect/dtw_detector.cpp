#include "detect/dtw_detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/timeseries.hpp"
#include "util/assert.hpp"

namespace pdos {

double dtw_distance(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Rolling two-row DP over the (n+1) x (m+1) cost matrix.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = kInf;
    for (std::size_t j = 1; j <= m; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      curr[j] = cost + std::min({prev[j], curr[j - 1], prev[j - 1]});
    }
    std::swap(prev, curr);
  }
  return prev[m] / static_cast<double>(n + m);
}

void DtwDetectorConfig::validate() const {
  PDOS_REQUIRE(sampling_period > 0.0, "DtwDetector: sampling_period > 0");
  PDOS_REQUIRE(threshold > 0.0, "DtwDetector: threshold > 0");
  PDOS_REQUIRE(min_samples >= 4, "DtwDetector: min_samples >= 4");
  PDOS_REQUIRE(max_period_bins >= 2, "DtwDetector: max_period_bins >= 2");
}

DtwPulseDetector::DtwPulseDetector(DtwDetectorConfig config)
    : config_(config) {
  config_.validate();
}

DtwDetectionResult DtwPulseDetector::analyze(
    const std::vector<double>& samples) const {
  DtwDetectionResult result;
  if (samples.size() < config_.min_samples) return result;

  const std::vector<double> z = normalize_zscore(samples);
  if (stddev(samples) <= 0.0) return result;  // flat traffic: nothing pulsed

  // Estimate the candidate pulse period from the autocorrelation.
  const std::size_t max_lag =
      std::min(config_.max_period_bins, samples.size() / 2);
  if (max_lag < 2) return result;
  const Time period_s =
      estimate_period(z, config_.sampling_period, 2, max_lag);
  if (period_s <= 0.0) return result;
  const auto period_bins =
      static_cast<std::size_t>(std::round(period_s / config_.sampling_period));
  if (period_bins < 2) return result;

  // Duty cycle from the fraction of above-mean samples (mean of z is 0).
  std::size_t above = 0;
  for (double x : z) {
    if (x > 0.0) ++above;
  }
  const double duty =
      std::clamp(static_cast<double>(above) / static_cast<double>(z.size()),
                 1.0 / static_cast<double>(period_bins), 1.0);

  // Ideal rectangular train with that period and duty cycle, z-scored so the
  // DTW distance compares shapes, not magnitudes.
  std::vector<double> tmpl(z.size(), 0.0);
  const auto high_bins = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(duty *
                                             static_cast<double>(period_bins))));
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    tmpl[i] = (i % period_bins) < high_bins ? 1.0 : 0.0;
  }
  const std::vector<double> ztmpl = normalize_zscore(tmpl);

  result.score = dtw_distance(z, ztmpl);
  result.estimated_period = period_s;
  result.duty_cycle = duty;
  result.detected = result.score < config_.threshold;
  return result;
}

}  // namespace pdos
