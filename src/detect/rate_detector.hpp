// Windowed traffic-rate anomaly detector.
//
// Stands in for the flooding-oriented defenses the paper's attacker evades
// (e.g. Wang et al. [9], Mahajan et al. [19]): it averages arrivals over a
// measurement window and raises an alarm when the window's rate exceeds a
// fraction of the link capacity. A PDoS train with average rate
// γ·R_bottle < threshold·R_bottle slips under it whenever the window spans
// at least one full attack period — this is the quantitative content of the
// paper's risk term (1 − γ)^κ.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace pdos {

struct RateDetectorConfig {
  Time window = sec(1.0);          // measurement window length
  double threshold_fraction = 0.9;  // alarm when rate > fraction * capacity
  BitRate capacity = mbps(15);      // monitored link capacity

  void validate() const;
};

class RateAnomalyDetector {
 public:
  explicit RateAnomalyDetector(RateDetectorConfig config);

  /// Record `bytes` arriving at time `t`. Times must be non-decreasing.
  void observe(Time t, Bytes bytes);

  /// Close the window containing `horizon` (exclusive) so trailing traffic
  /// is evaluated; idempotent.
  void finish(Time horizon);

  std::uint64_t alarm_count() const { return alarm_count_; }
  bool triggered() const { return alarm_count_ > 0; }
  const std::vector<Time>& alarm_times() const { return alarm_times_; }
  std::uint64_t windows_evaluated() const { return windows_evaluated_; }

  /// Highest windowed rate seen so far, bps.
  BitRate peak_window_rate() const { return peak_window_rate_; }

 private:
  void evaluate_window(std::int64_t index, double bytes);

  RateDetectorConfig config_;
  std::int64_t current_window_ = 0;
  double current_bytes_ = 0.0;
  Time last_time_ = 0.0;
  std::uint64_t alarm_count_ = 0;
  std::uint64_t windows_evaluated_ = 0;
  std::vector<Time> alarm_times_;
  BitRate peak_window_rate_ = 0.0;
};

}  // namespace pdos
