#include "detect/rate_detector.hpp"

#include "util/assert.hpp"

namespace pdos {

void RateDetectorConfig::validate() const {
  PDOS_REQUIRE(window > 0.0, "RateDetector: window must be > 0");
  PDOS_REQUIRE(threshold_fraction > 0.0,
               "RateDetector: threshold_fraction must be > 0");
  PDOS_REQUIRE(capacity > 0.0, "RateDetector: capacity must be > 0");
}

RateAnomalyDetector::RateAnomalyDetector(RateDetectorConfig config)
    : config_(config) {
  config_.validate();
}

void RateAnomalyDetector::observe(Time t, Bytes bytes) {
  PDOS_REQUIRE(t >= last_time_, "RateDetector: time went backwards");
  last_time_ = t;
  const auto idx = static_cast<std::int64_t>(t / config_.window);
  while (idx > current_window_) {
    evaluate_window(current_window_, current_bytes_);
    current_bytes_ = 0.0;
    ++current_window_;
  }
  current_bytes_ += static_cast<double>(bytes);
}

void RateAnomalyDetector::finish(Time horizon) {
  const auto idx = static_cast<std::int64_t>(horizon / config_.window);
  while (current_window_ < idx) {
    evaluate_window(current_window_, current_bytes_);
    current_bytes_ = 0.0;
    ++current_window_;
  }
}

void RateAnomalyDetector::evaluate_window(std::int64_t index, double bytes) {
  ++windows_evaluated_;
  const BitRate rate = bytes * 8.0 / config_.window;
  if (rate > peak_window_rate_) peak_window_rate_ = rate;
  if (rate > config_.threshold_fraction * config_.capacity) {
    ++alarm_count_;
    alarm_times_.push_back(static_cast<double>(index) * config_.window);
  }
}

}  // namespace pdos
