// Dynamic-time-warping pulse detector (after Sun, Lui & Yau, ICNP 2004).
//
// The defense samples the aggregate traffic with period Ts, normalizes it,
// and measures the DTW distance to an ideal rectangular pulse train; a small
// distance means the traffic contains shrew/PDoS-style square pulses. The
// paper notes its blind spot: when T_extent is shorter than the sampling
// period the pulse is averaged away and the detector misses — our tests
// reproduce exactly that.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace pdos {

/// Classic O(n*m) dynamic-time-warping distance with unit steps and absolute
/// difference cost, normalized by the warping-path length (n + m).
double dtw_distance(const std::vector<double>& a, const std::vector<double>& b);

struct DtwDetectorConfig {
  Time sampling_period = ms(100);  // Ts
  double threshold = 0.3;          // alarm when normalized distance is below
  std::size_t min_samples = 20;    // below this, no decision
  std::size_t max_period_bins = 100;  // autocorrelation search bound

  void validate() const;
};

struct DtwDetectionResult {
  bool detected = false;
  // Normalized DTW distance to the pulse template; 1.0 when the series has
  // no periodic structure at all (nothing to match against).
  double score = 1.0;
  Time estimated_period = 0.0;
  double duty_cycle = 0.0;  // fraction of above-mean samples
};

class DtwPulseDetector {
 public:
  explicit DtwPulseDetector(DtwDetectorConfig config);

  /// Analyze a traffic series sampled at `config.sampling_period` (byte
  /// counts or rates per bin — scale-invariant after normalization).
  DtwDetectionResult analyze(const std::vector<double>& samples) const;

  const DtwDetectorConfig& config() const { return config_; }

 private:
  DtwDetectorConfig config_;
};

}  // namespace pdos
