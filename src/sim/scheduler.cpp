#include "sim/scheduler.hpp"

#include <utility>

#include "util/assert.hpp"

namespace pdos {

EventId Scheduler::schedule(Time delay, EventFn fn) {
  PDOS_REQUIRE(delay >= 0.0, "Scheduler::schedule: delay must be >= 0");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Scheduler::schedule_at(Time when, EventFn fn) {
  PDOS_REQUIRE(when >= now_, "Scheduler::schedule_at: time is in the past");
  PDOS_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool Scheduler::cancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  live_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Scheduler::pending(EventId id) const { return live_.count(id) > 0; }

bool Scheduler::pop_next(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the Entry must be moved out before
    // pop, so copy the POD fields and move the closure via const_cast — the
    // entry is popped immediately after, so the moved-from state never
    // re-enters the heap ordering.
    Entry& top = const_cast<Entry&>(queue_.top());
    const bool was_cancelled = cancelled_.erase(top.id) > 0;
    if (was_cancelled) {
      queue_.pop();
      continue;
    }
    out.when = top.when;
    out.seq = top.seq;
    out.id = top.id;
    out.fn = std::move(top.fn);
    queue_.pop();
    live_.erase(out.id);
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(Time horizon) {
  std::uint64_t count = 0;
  Entry entry;
  while (!queue_.empty()) {
    // Peek for the horizon check without popping live entries early.
    if (queue_.top().when > horizon) break;
    if (!pop_next(entry)) break;
    if (entry.when > horizon) {
      // Raced with cancellations: re-queue and stop.
      queue_.push(Entry{entry.when, entry.seq, entry.id, std::move(entry.fn)});
      live_.insert(entry.id);
      break;
    }
    now_ = entry.when;
    entry.fn();
    ++count;
  }
  if (now_ < horizon) now_ = horizon;
  executed_ += count;
  return count;
}

std::uint64_t Scheduler::run() {
  std::uint64_t count = 0;
  Entry entry;
  while (pop_next(entry)) {
    now_ = entry.when;
    entry.fn();
    ++count;
  }
  executed_ += count;
  return count;
}

bool Scheduler::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  now_ = entry.when;
  entry.fn();
  ++executed_;
  return true;
}

}  // namespace pdos
