#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace pdos {

bool Scheduler::cancel(EventId id) {
  Slot* s = live_slot(id);
  if (s == nullptr) return false;
  detach(static_cast<std::size_t>(s->heap_pos));
  s->fn.reset();
  release_slot(static_cast<std::uint32_t>(id) - 1);
  return true;
}

bool Scheduler::reschedule_at(EventId id, Time when) {
  PDOS_REQUIRE(when >= now_, "Scheduler::reschedule_at: time is in the past");
  Slot* s = live_slot(id);
  if (s == nullptr) return false;
  const std::size_t pos = static_cast<std::size_t>(s->heap_pos);
  heap_[pos].when = when;
  heap_[pos].seq = next_seq_++;  // re-sequence: ties fire as if re-scheduled
  sift_down(pos);
  sift_up(pos);
  return true;
}

bool Scheduler::reschedule(EventId id, Time delay) {
  PDOS_REQUIRE(delay >= 0.0, "Scheduler::reschedule: delay must be >= 0");
  return reschedule_at(id, now_ + delay);
}

void Scheduler::reserve(std::size_t n) {
  heap_.reserve(n);
  while (slabs_.size() * kSlabSize < n) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
  }
}

void Scheduler::sift_down(std::size_t pos) {
  const HeapNode node = heap_[pos];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * 4 + 1;
    if (first_child >= size) break;
    const std::size_t best = min_child(first_child, size);
    if (!before(heap_[best], node)) break;
    heap_[pos] = heap_[best];
    slot_ptr(heap_[pos].slot)->heap_pos = static_cast<std::int32_t>(pos);
    pos = best;
  }
  heap_[pos] = node;
  slot_ptr(node.slot)->heap_pos = static_cast<std::int32_t>(pos);
}

void Scheduler::detach(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slot_ptr(heap_[pos].slot)->heap_pos = static_cast<std::int32_t>(pos);
    heap_.pop_back();
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot* s = slot_ptr(slot);
  ++s->gen;  // outstanding ids to this slot are now detectably stale
  s->heap_pos = -1;
  s->next_free = free_head_;
  free_head_ = slot;
}

std::uint32_t Scheduler::pop_min() {
  const HeapNode top = heap_[0];
  Slot* s = slot_ptr(top.slot);
  ++s->gen;  // outstanding ids are now stale; recycled after the invoke
  s->heap_pos = -1;
  const std::size_t size = heap_.size() - 1;
  if (size > 0) {
    const HeapNode moved = heap_[size];
    heap_.pop_back();
    // Floyd's hole descent: walk the root hole down the min-child path
    // without comparing against `moved` (it came from the bottom, so it
    // almost always belongs near a leaf), then drop it in and sift up the
    // usually-zero distance back.
    std::size_t pos = 0;
    for (;;) {
      const std::size_t first_child = pos * 4 + 1;
      if (first_child >= size) break;
      const std::size_t best = min_child(first_child, size);
      heap_[pos] = heap_[best];
      slot_ptr(heap_[pos].slot)->heap_pos = static_cast<std::int32_t>(pos);
      pos = best;
    }
    heap_[pos] = moved;
    slot_ptr(moved.slot)->heap_pos = static_cast<std::int32_t>(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
  now_ = top.when;
  return top.slot;
}

std::uint64_t Scheduler::run_until(Time horizon) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_[0].when <= horizon) {
    const std::uint32_t slot = pop_min();
    slot_ptr(slot)->fn();  // in place: the slot cannot be re-acquired yet
    recycle_slot(slot);
    ++count;
  }
  if (now_ < horizon) now_ = horizon;
  executed_ += count;
  return count;
}

std::uint64_t Scheduler::run() {
  std::uint64_t count = 0;
  while (!heap_.empty()) {
    const std::uint32_t slot = pop_min();
    slot_ptr(slot)->fn();  // in place: the slot cannot be re-acquired yet
    recycle_slot(slot);
    ++count;
  }
  executed_ += count;
  return count;
}

bool Scheduler::step() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = pop_min();
  slot_ptr(slot)->fn();
  recycle_slot(slot);
  ++executed_;
  return true;
}

}  // namespace pdos
