#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace pdos {

bool Scheduler::cancel(EventId id) {
  Slot* s = live_slot(id);
  if (s == nullptr) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id) - 1;
  const std::int32_t p = pos_[slot];
  if (p <= kShelfBase) {
    shelf_remove(static_cast<std::size_t>(kShelfBase - p));
  } else {
    detach(static_cast<std::size_t>(p));
  }
  s->fn.reset();
  release_slot(slot);
  return true;
}

bool Scheduler::reschedule_at(EventId id, Time when) {
  PDOS_REQUIRE(when >= now_, "Scheduler::reschedule_at: time is in the past");
  if (live_slot(id) == nullptr) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id) - 1;
  const std::int32_t p = pos_[slot];
  const std::uint32_t seq = next_seq();  // re-sequence: ties fire as if
                                         // freshly scheduled
  slot_ptr(slot)->claim = now_;          // the rank's new claim instant
  if (p <= kShelfBase) {
    const std::size_t idx = static_cast<std::size_t>(kShelfBase - p);
    if (when > far_horizon_) {
      // Far timer pushed to another far deadline — the common TCP RTO
      // re-arm. Two stores, no heap traffic.
      shelf_[idx].when = when;
      shelf_[idx].seq = seq;
    } else {
      shelf_remove(idx);
      insert_node(HeapNode{when, seq, slot});
    }
    return true;
  }
  const std::size_t pos = static_cast<std::size_t>(p);
  if (when > far_horizon_) {
    detach(pos);
    insert_node(HeapNode{when, seq, slot});  // lands on the shelf
    return true;
  }
  heap_[pos].when = when;
  heap_[pos].seq = seq;
  sift_down(pos);
  sift_up(pos);
  return true;
}

bool Scheduler::reschedule(EventId id, Time delay) {
  PDOS_REQUIRE(delay >= 0.0, "Scheduler::reschedule: delay must be >= 0");
  return reschedule_at(id, now_ + delay);
}

void Scheduler::reserve(std::size_t n) {
  heap_.reserve(n);
  shelf_.reserve(n);
  pos_.reserve(n);
  while (slabs_.size() * kSlabSize < n) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
  }
}

void Scheduler::reset() {
  for (std::uint32_t slot = 0; slot < slot_count_; ++slot) {
    Slot* s = slot_ptr(slot);
    if (pos_[slot] != kFreePos) s->fn.reset();  // armed closure: destroy it
    ++s->gen;  // every pre-reset id is now detectably stale
    pos_[slot] = kFreePos;
    s->next_free = slot + 1;
  }
  if (slot_count_ > 0) {
    slot_ptr(slot_count_ - 1)->next_free = kNoFreeSlot;
    free_head_ = 0;
  } else {
    free_head_ = kNoFreeSlot;
  }
  heap_.clear();
  shelf_.clear();
  now_ = 0.0;
  far_horizon_ = 0.0;
  far_window_ = kFarWindow;
  next_seq_ = kSeqBandBase;
  front_seq_ = 0;
  executed_ = 0;
}

void Scheduler::sift_down(std::size_t pos) {
  const HeapNode node = heap_[pos];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * 4 + 1;
    if (first_child >= size) break;
    const std::size_t best = min_child(first_child, size);
    if (!before(heap_[best], node)) break;
    heap_[pos] = heap_[best];
    pos_[heap_[pos].slot] = static_cast<std::int32_t>(pos);
    pos = best;
  }
  heap_[pos] = node;
  pos_[node.slot] = static_cast<std::int32_t>(pos);
}

void Scheduler::detach(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    pos_[heap_[pos].slot] = static_cast<std::int32_t>(pos);
    heap_.pop_back();
    sift_down(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot* s = slot_ptr(slot);
  ++s->gen;  // outstanding ids to this slot are now detectably stale
  pos_[slot] = -1;
  s->next_free = free_head_;
  free_head_ = slot;
}

std::uint32_t Scheduler::pop_min() {
  const HeapNode top = heap_[0];
  ++slot_ptr(top.slot)->gen;  // ids are now stale; recycled after the invoke
  pos_[top.slot] = -1;
  const std::size_t size = heap_.size() - 1;
  if (size > 0) {
    const HeapNode moved = heap_[size];
    heap_.pop_back();
    // Floyd's hole descent: walk the root hole down the min-child path
    // without comparing against `moved` (it came from the bottom, so it
    // almost always belongs near a leaf), then drop it in and sift up the
    // usually-zero distance back.
    std::size_t pos = 0;
    for (;;) {
      const std::size_t first_child = pos * 4 + 1;
      if (first_child >= size) break;
      const std::size_t best = min_child(first_child, size);
      heap_[pos] = heap_[best];
      pos_[heap_[pos].slot] = static_cast<std::int32_t>(pos);
      pos = best;
    }
    heap_[pos] = moved;
    pos_[moved.slot] = static_cast<std::int32_t>(pos);
    sift_up(pos);
  } else {
    heap_.pop_back();
  }
  now_ = top.when;
  // The clock can only pass the frontier when the shelf is empty (the run
  // loops pull first otherwise); sliding it forward keeps subsequent
  // schedule() calls routing near events into the heap.
  if (now_ > far_horizon_) far_horizon_ = now_;
  return top.slot;
}

void Scheduler::pull_shelf() {
  // Advance the frontier one window past the earliest pending event and
  // migrate every shelf entry that falls inside it, with original
  // (when, seq) keys — pop order is a pure function of the keys, so batch
  // migration cannot reorder anything. One pass always restores the pop
  // invariant (heap top <= frontier, or shelf empty); the loop is belt and
  // braces.
  while (!shelf_.empty() && (heap_.empty() || heap_[0].when > far_horizon_)) {
    Time next = shelf_[0].when;
    for (std::size_t i = 1; i < shelf_.size(); ++i) {
      next = std::min(next, shelf_[i].when);
    }
    if (!heap_.empty()) next = std::min(next, heap_[0].when);
    far_horizon_ = std::max(far_horizon_, next) + far_window_;
    const std::size_t scanned = shelf_.size();
    std::size_t migrated = 0;
    std::size_t i = 0;
    while (i < shelf_.size()) {
      if (shelf_[i].when <= far_horizon_) {
        const HeapNode node = shelf_[i];
        shelf_remove(i);  // swap-remove: re-examine index i
        insert_node(node);
        ++migrated;
      } else {
        ++i;
      }
    }
    // Adapt the window to the shelf's density in time. A pull that scans
    // many entries but moves few means the population is spread over far
    // more than one window (bulk-scheduled far-future events); doubling
    // makes the repeated scans geometric instead of quadratic. A pull that
    // moves most of what it scans can afford to narrow back toward the
    // cadence-matched default.
    if (migrated * 4 < scanned) {
      far_window_ *= 2.0;
    } else if (far_window_ > kFarWindow) {
      far_window_ *= 0.5;
    }
  }
}

std::uint64_t Scheduler::run_until(Time horizon) {
  std::uint64_t count = 0;
  for (;;) {
    if (!shelf_.empty() && (heap_.empty() || heap_[0].when > far_horizon_)) {
      pull_shelf();
    }
    if (heap_.empty() || heap_[0].when > horizon) break;
    const std::uint32_t slot = pop_min();
    slot_ptr(slot)->fn();  // in place: the slot cannot be re-acquired yet
    recycle_slot(slot);
    ++count;
  }
  if (now_ < horizon) now_ = horizon;
  executed_ += count;
  return count;
}

std::uint64_t Scheduler::run_before(Time bound) {
  std::uint64_t count = 0;
  for (;;) {
    if (!shelf_.empty() && (heap_.empty() || heap_[0].when > far_horizon_)) {
      pull_shelf();
    }
    if (heap_.empty() || heap_[0].when >= bound) break;
    const std::uint32_t slot = pop_min();
    slot_ptr(slot)->fn();  // in place: the slot cannot be re-acquired yet
    recycle_slot(slot);
    ++count;
  }
  if (now_ < bound) now_ = bound;
  executed_ += count;
  return count;
}

std::uint64_t Scheduler::run() {
  std::uint64_t count = 0;
  for (;;) {
    if (!shelf_.empty() && (heap_.empty() || heap_[0].when > far_horizon_)) {
      pull_shelf();
    }
    if (heap_.empty()) break;
    const std::uint32_t slot = pop_min();
    slot_ptr(slot)->fn();  // in place: the slot cannot be re-acquired yet
    recycle_slot(slot);
    ++count;
  }
  executed_ += count;
  return count;
}

bool Scheduler::step() {
  if (!shelf_.empty() && (heap_.empty() || heap_[0].when > far_horizon_)) {
    pull_shelf();
  }
  if (heap_.empty()) return false;
  const std::uint32_t slot = pop_min();
  slot_ptr(slot)->fn();
  recycle_slot(slot);
  ++executed_;
  return true;
}

}  // namespace pdos
