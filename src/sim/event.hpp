// Event primitives for the discrete-event scheduler.
//
// `InlineFn` replaces the previous `std::function<void()>` event closure.
// Every closure in the simulation tree is a handful of pointers, so paying a
// heap allocation per event (hundreds of millions per sweep campaign) bought
// nothing. `InlineFn` stores the closure in a fixed inline buffer — a
// too-large closure is a compile error, never a silent heap fallback — so
// scheduling an event touches only the scheduler's own arrays.
//
// The machinery is shared: `BasicInlineFn<Capacity, Args...>` is the same
// inline-storage callable for any argument list. The event loop uses the
// nullary `InlineFn`; the packet data path instantiates it with
// `const Packet&` for link taps (see net/link.hpp's `PacketTap`), replacing
// the `std::function` observers that used to cost a heap closure and a
// double indirection per packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/units.hpp"

namespace pdos {

/// Inline storage for event closures. Sized for the largest closure in the
/// tree (tests capture up to four references; 32 bytes keeps a scheduler
/// slot at exactly 64 bytes). Growing it is cheap — each heap slot just
/// gets bigger — so bump it if the static_assert below fires.
inline constexpr std::size_t kInlineFnCapacity = 32;

/// Inline-storage callable `void(Args...)`. Closures live in a fixed
/// `Capacity`-byte buffer; a too-large closure is a compile error, never a
/// silent heap fallback. Invocation is one indirect call through a stored
/// function pointer — no virtual dispatch, no allocation, no double
/// indirection through a heap-held closure.
///
/// Move-only: moving relocates the closure into the destination buffer and
/// empties the source. Copy is deliberately unsupported — copyability is
/// what forced std::function's allocation semantics.
template <std::size_t Capacity, typename... Args>
class BasicInlineFn {
 public:
  BasicInlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicInlineFn>>>
  BasicInlineFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
    construct(std::forward<F>(fn));
  }

  /// Destroy any stored closure and construct `fn` directly in the inline
  /// buffer — the allocation-free analogue of assignment, used by the
  /// scheduler to build closures straight into their heap slot with no
  /// intermediate moves.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicInlineFn>>>
  void emplace(F&& fn) {
    reset();
    construct(std::forward<F>(fn));
  }

  BasicInlineFn(BasicInlineFn&& other) noexcept { move_from(other); }

  BasicInlineFn& operator=(BasicInlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  BasicInlineFn(const BasicInlineFn&) = delete;
  BasicInlineFn& operator=(const BasicInlineFn&) = delete;

  ~BasicInlineFn() { reset(); }

  /// Invoke the stored closure. Precondition: non-empty.
  void operator()(Args... args) {
    invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroy the stored closure (if any) and become empty.
  void reset() {
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  enum class Op { kRelocate, kDestroy };
  using Invoke = void (*)(void*, Args...);
  using Manage = void (*)(Op, void* self, void* other);

  template <typename F>
  void construct(F&& fn) {
    using Closure = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Closure&, Args...>,
                  "BasicInlineFn requires a void(Args...) callable");
    static_assert(sizeof(Closure) <= Capacity,
                  "closure too large for inline storage — capture less, or "
                  "grow the Capacity parameter (kInlineFnCapacity for "
                  "events) in sim/event.hpp");
    static_assert(alignof(Closure) <= alignof(std::max_align_t),
                  "closure over-aligned for inline storage");
    static_assert(std::is_nothrow_move_constructible_v<Closure>,
                  "inline closures must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) Closure(std::forward<F>(fn));
    invoke_ = [](void* s, Args... args) {
      (*std::launder(reinterpret_cast<Closure*>(s)))(
          std::forward<Args>(args)...);
    };
    if constexpr (std::is_trivially_copyable_v<Closure> &&
                  std::is_trivially_destructible_v<Closure>) {
      // Trivially relocatable closures (the overwhelmingly common case:
      // captures are pointers and scalars) move by memcpy and need no
      // destruction — a null manager marks the fast path.
      manage_ = nullptr;
    } else {
      manage_ = [](Op op, void* self, void* other) {
        auto* closure = std::launder(reinterpret_cast<Closure*>(self));
        if (op == Op::kRelocate) {
          ::new (other) Closure(std::move(*closure));
        }
        closure->~Closure();
      };
    }
  }

  void move_from(BasicInlineFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      if (other.manage_ == nullptr) {
        // Whole-buffer copy: the closure's true size is unknown here, and
        // copying indeterminate tail bytes of an unsigned-char buffer that
        // are never interpreted is harmless — tell GCC so.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(storage_, other.storage_, Capacity);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      } else {
        other.manage_(Op::kRelocate, other.storage_, storage_);
      }
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

/// Action executed when an event fires. Events run to completion; they may
/// schedule further events but must not block.
using InlineFn = BasicInlineFn<kInlineFnCapacity>;

/// Event closures are InlineFn; the alias survives from the std::function
/// era so call sites read the same.
using EventFn = InlineFn;

/// Opaque handle identifying a scheduled event, used for cancellation.
/// Packs a heap-slot index with a generation counter: the slot is reused
/// after the event fires or is cancelled, and the bumped generation makes
/// every stale handle detectably dead (`pending`/`cancel` on it are exact
/// no-ops, never aliases of the slot's new occupant). Value 0 is reserved
/// and never issued.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

}  // namespace pdos
