// Event primitives for the discrete-event scheduler.
#pragma once

#include <cstdint>
#include <functional>

#include "util/units.hpp"

namespace pdos {

/// Action executed when an event fires. Events run to completion; they may
/// schedule further events but must not block.
using EventFn = std::function<void()>;

/// Opaque handle identifying a scheduled event, used for cancellation.
/// Value 0 is reserved and never issued.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

}  // namespace pdos
