// Event primitives for the discrete-event scheduler.
//
// `InlineFn` replaces the previous `std::function<void()>` event closure.
// Every closure in the simulation tree is a handful of pointers, so paying a
// heap allocation per event (hundreds of millions per sweep campaign) bought
// nothing. `InlineFn` stores the closure in a fixed inline buffer — a
// too-large closure is a compile error, never a silent heap fallback — so
// scheduling an event touches only the scheduler's own arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/units.hpp"

namespace pdos {

/// Inline storage for event closures. Sized for the largest closure in the
/// tree (tests capture up to four references; 32 bytes keeps a scheduler
/// slot at exactly 64 bytes). Growing it is cheap — each heap slot just
/// gets bigger — so bump it if the static_assert below fires.
inline constexpr std::size_t kInlineFnCapacity = 32;

/// Action executed when an event fires. Events run to completion; they may
/// schedule further events but must not block.
///
/// Move-only: moving relocates the closure into the destination buffer and
/// empties the source. Copy is deliberately unsupported — events fire once,
/// and copyability is what forced std::function's allocation semantics.
class InlineFn {
 public:
  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
    construct(std::forward<F>(fn));
  }

  /// Destroy any stored closure and construct `fn` directly in the inline
  /// buffer — the allocation-free analogue of assignment, used by the
  /// scheduler to build closures straight into their heap slot with no
  /// intermediate moves.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  void emplace(F&& fn) {
    reset();
    construct(std::forward<F>(fn));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Invoke the stored closure. Precondition: non-empty.
  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroy the stored closure (if any) and become empty.
  void reset() {
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  enum class Op { kRelocate, kDestroy };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Op, void* self, void* other);

  template <typename F>
  void construct(F&& fn) {
    using Closure = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Closure&>,
                  "InlineFn requires a void() callable");
    static_assert(sizeof(Closure) <= kInlineFnCapacity,
                  "closure too large for InlineFn inline storage — capture "
                  "less, or grow kInlineFnCapacity in sim/event.hpp");
    static_assert(alignof(Closure) <= alignof(std::max_align_t),
                  "closure over-aligned for InlineFn inline storage");
    static_assert(std::is_nothrow_move_constructible_v<Closure>,
                  "InlineFn closures must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) Closure(std::forward<F>(fn));
    invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Closure*>(s)))(); };
    if constexpr (std::is_trivially_copyable_v<Closure> &&
                  std::is_trivially_destructible_v<Closure>) {
      // Trivially relocatable closures (the overwhelmingly common case:
      // captures are pointers and scalars) move by memcpy and need no
      // destruction — a null manager marks the fast path.
      manage_ = nullptr;
    } else {
      manage_ = [](Op op, void* self, void* other) {
        auto* closure = std::launder(reinterpret_cast<Closure*>(self));
        if (op == Op::kRelocate) {
          ::new (other) Closure(std::move(*closure));
        }
        closure->~Closure();
      };
    }
  }

  void move_from(InlineFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      if (other.manage_ == nullptr) {
        // Whole-buffer copy: the closure's true size is unknown here, and
        // copying indeterminate tail bytes of an unsigned-char buffer that
        // are never interpreted is harmless — tell GCC so.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(storage_, other.storage_, kInlineFnCapacity);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      } else {
        other.manage_(Op::kRelocate, other.storage_, storage_);
      }
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineFnCapacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

/// Event closures are InlineFn; the alias survives from the std::function
/// era so call sites read the same.
using EventFn = InlineFn;

/// Opaque handle identifying a scheduled event, used for cancellation.
/// Packs a heap-slot index with a generation counter: the slot is reused
/// after the event fires or is cancelled, and the bumped generation makes
/// every stale handle detectably dead (`pending`/`cancel` on it are exact
/// no-ops, never aliases of the slot's new occupant). Value 0 is reserved
/// and never issued.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

}  // namespace pdos
