// Cross-shard packet messages for the conservative PDES engine.
//
// When a scenario is partitioned into logical processes (DESIGN.md §13),
// every link whose endpoints live on different shards stops scheduling its
// own delivery event. Instead its `emit()` is intercepted by a remote-egress
// hook (Link::set_remote_egress) that appends a timestamped `Message` to the
// `Channel` connecting the two shards. Channels are single-producer /
// single-consumer by construction: only the owning shard's round task
// appends, and only the engine's coordinator drains — between rounds, on the
// far side of a barrier — so no slot is ever touched concurrently and the
// buffers need no atomics (the executor's task join provides the
// happens-before edge).
//
// Determinism: the destination shard merges pending messages in the total
// order (arrival, emit, stamp, lane). `stamp` is the channel's append
// serial — messages from one source shard carry stamps in that shard's
// execution order, so two emissions that tie exactly on (arrival, emit)
// (equal-RTT topologies phase-lock access links into float-identical
// service completions) are delivered in the order their service
// completions actually ran, which is the single-scheduler order. `lane` is
// a per-link serial assigned by the partitioner at build time; it makes
// the order strict for messages of different channels, whose stamps are
// only deterministic, not meaningful, against each other. Every key is a
// pure function of the simulation state, never of executor scheduling, so
// the merge is identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace pdos::pdes {

/// One packet crossing a shard boundary, stamped with the times that order
/// it on the destination scheduler.
struct Message {
  Packet pkt;
  PacketHandler* handler = nullptr;  // destination-shard delivery target
  Time arrival = 0.0;                // emit + link propagation delay
  Time emit = 0.0;                   // source-side serialization finish
  std::uint64_t stamp = 0;           // channel append serial: source order
  std::uint32_t lane = 0;            // per-link serial: makes order strict
};

/// Canonical merge order for messages bound to one shard. Strict weak
/// ordering; unique because (arrival, lane) never repeats.
inline bool message_before(const Message& a, const Message& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  if (a.emit != b.emit) return a.emit < b.emit;
  if (a.stamp != b.stamp) return a.stamp < b.stamp;
  return a.lane < b.lane;
}

/// One direction of traffic between a pair of shards. Appended by the
/// source shard's round task, drained by the engine between rounds.
struct Channel {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t next_stamp = 0;  // append serial, monotone across rounds
  std::vector<Message> buffer;
};

/// Remote-egress context for a cross-shard `Link`: translates the link's
/// emissions into channel messages. Allocate one per cross link (typically
/// in the source shard's arena) and install with
/// `link->set_remote_egress(&RemoteLink::egress, ctx)`. The `handler` is
/// the downstream the link would have delivered to — an object owned by
/// the destination shard, only ever dereferenced there.
struct RemoteLink {
  Channel* channel = nullptr;
  PacketHandler* handler = nullptr;
  Time delay = 0.0;  // the link's propagation delay
  std::uint32_t lane = 0;

  static void egress(void* self, Packet&& pkt, Time fin) {
    auto* rl = static_cast<RemoteLink*>(self);
    rl->channel->buffer.push_back(Message{std::move(pkt), rl->handler,
                                          fin + rl->delay, fin,
                                          rl->channel->next_stamp++,
                                          rl->lane});
  }
};

}  // namespace pdos::pdes
