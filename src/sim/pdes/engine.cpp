#include "sim/pdes/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pdos::pdes {

namespace {

/// std::*_heap comparator for a MIN-heap in message_before order.
inline bool heap_later(const Message& a, const Message& b) {
  return message_before(b, a);
}

}  // namespace

void PdesEngine::configure(std::vector<Simulator*> shards, Time lookahead) {
  PDOS_REQUIRE(shards.size() >= 2, "PdesEngine: need at least two shards");
  PDOS_REQUIRE(lookahead > 0.0, "PdesEngine: lookahead must be positive");
  for (Simulator* sim : shards) {
    PDOS_REQUIRE(sim != nullptr, "PdesEngine: shard simulator is null");
  }
  if (shards_.size() != shards.size()) shards_.resize(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    Shard& sh = shards_[i];
    sh.sim = shards[i];
    sh.staging.clear();
    sh.lane.clear();
    sh.activity = 0;
    sh.injected = 0;
  }
  // Channels to shards that no longer exist are dropped; the rest keep
  // their buffers (capacity) and, crucially, their addresses — RemoteLink
  // contexts rebuilt for the next run fetch the same pointers.
  std::erase_if(channels_, [&](const std::unique_ptr<Channel>& ch) {
    return ch->src >= shards.size() || ch->dst >= shards.size();
  });
  for (auto& ch : channels_) {
    ch->buffer.clear();
    ch->next_stamp = 0;
  }
  now_ = 0.0;
  lookahead_ = lookahead;
  rounds_ = 0;
  messages_ = 0;
}

Channel* PdesEngine::channel(std::uint32_t src, std::uint32_t dst) {
  PDOS_REQUIRE(src < shards_.size() && dst < shards_.size() && src != dst,
               "PdesEngine: channel endpoints out of range");
  for (auto& ch : channels_) {
    if (ch->src == src && ch->dst == dst) return ch.get();
  }
  channels_.push_back(std::make_unique<Channel>());
  channels_.back()->src = src;
  channels_.back()->dst = dst;
  return channels_.back().get();
}

void PdesEngine::round(std::size_t index, Time bound, bool inclusive) {
  Shard& sh = shards_[index];
  Scheduler& sched = sh.sim->scheduler();
  std::uint64_t activity = 0;
  // Inject every staged message due inside this round, in canonical order.
  // Each delivery is scheduled with claim instant = its source-side
  // emission time: the single-scheduler run claimed the delivery's rank
  // inside the event that emitted the packet, so ordering ties by claim
  // (Scheduler::before) reproduces that schedule exactly — a delivery
  // beats local events claimed after the emission (per-packet events, whose
  // claim distance is a service time or router hop) and loses to events
  // claimed before it (a sampler tick or retransmit timer armed long ago).
  // The rank itself comes from the reserved FRONT band, which settles only
  // exact claim ties in the delivery's favour and keeps two messages
  // landing at the same (arrival, emit) firing in canonical lane order no
  // matter which channel carried them. Each message costs exactly one
  // scheduler event.
  while (!sh.staging.empty()) {
    const Message& head = sh.staging.front();
    if (inclusive ? head.arrival > bound : head.arrival >= bound) break;
    PDOS_CHECK(head.arrival >= sched.now());  // conservative invariant
    std::pop_heap(sh.staging.begin(), sh.staging.end(), heap_later);
    Message msg = std::move(sh.staging.back());
    sh.staging.pop_back();
    const std::uint32_t seq = sched.allocate_front_seq();
    Ring<Delivery>* lane = &sh.lane;
    lane->push_back(Delivery{std::move(msg.pkt), msg.handler});
    sched.schedule_at_sequenced(msg.arrival, msg.emit, seq, [lane] {
      Delivery d = lane->pop_front();
      d.handler->handle(std::move(d.pkt));
    });
    ++activity;
  }
  sh.injected += activity;
  activity += inclusive ? sched.run_until(bound) : sched.run_before(bound);
  sh.activity = activity;
}

void PdesEngine::run_rounds(Time bound, bool inclusive,
                            const ShardExecutor& executor) {
  const std::size_t n = shards_.size();
  if (executor) {
    executor(n, [this, bound, inclusive](std::size_t s) {
      round(s, bound, inclusive);
    });
  } else {
    for (std::size_t s = 0; s < n; ++s) round(s, bound, inclusive);
  }
  ++rounds_;
}

void PdesEngine::drain_channels() {
  for (auto& ch : channels_) {
    if (ch->buffer.empty()) continue;
    auto& staging = shards_[ch->dst].staging;
    for (Message& msg : ch->buffer) {
      staging.push_back(std::move(msg));
      std::push_heap(staging.begin(), staging.end(), heap_later);
    }
    ch->buffer.clear();
  }
}

void PdesEngine::run_until(Time stop, const ShardExecutor& executor) {
  PDOS_REQUIRE(!shards_.empty(), "PdesEngine: configure() before running");
  PDOS_REQUIRE(stop >= now_, "PdesEngine: stop is in the past");
  while (now_ < stop) {
    const Time bound = std::min(now_ + lookahead_, stop);
    run_rounds(bound, /*inclusive=*/false, executor);
    drain_channels();
    now_ = bound;
  }
  // Inclusive fixpoint at `stop`: events AT the stop instant run, and any
  // message they (or earlier rounds) put on a channel with arrival <= stop
  // is delivered and processed before returning — exactly the state a
  // single scheduler's run_until(stop) leaves behind. Terminates because a
  // message emitted at t gains at least one link delay per generation, so
  // only finitely many generations can stay <= stop (and in practice the
  // loop runs twice: lookahead <= every link delay puts post-stop arrivals
  // strictly after stop).
  for (;;) {
    run_rounds(stop, /*inclusive=*/true, executor);
    drain_channels();
    bool quiescent = true;
    for (const Shard& sh : shards_) {
      if (sh.activity != 0) quiescent = false;
      if (!sh.staging.empty() && sh.staging.front().arrival <= stop) {
        quiescent = false;
      }
    }
    if (quiescent) break;
  }
  messages_ = 0;
  for (const Shard& sh : shards_) messages_ += sh.injected;
}

}  // namespace pdos::pdes
