// Conservative parallel discrete-event engine (DESIGN.md §13).
//
// A partitioned scenario gives every logical process (shard) its own
// `Simulator` — scheduler, arena, RNG streams — and registers the channels
// that carry packets between them. The engine advances all shards in
// lockstep *rounds* bounded by the lookahead window W, the minimum
// propagation delay over every cross-shard link:
//
//   round k executes, on every shard in parallel, all events with
//   timestamp in [T, T + W), where T = k·W. A message emitted at time
//   t >= T arrives at t + delay >= T + W, i.e. never inside the round that
//   produced it — so when a round starts, every message that can arrive
//   inside it is already staged, and no shard can ever receive an event in
//   its past. This is an LBTS barrier specialized to a static channel
//   graph with uniform lookahead: with the dumbbell's access-link delays
//   (4.5-37 ms halves of 9-230 ms one-way paths) dwarfing per-packet
//   service times, each round carries thousands of events per shard and
//   the barrier cost vanishes.
//
// Rounds are half-open (`Scheduler::run_before`), so a boundary event runs
// exactly once, in the round that owns it. Run stops (`run_until(stop)`)
// finish with an inclusive fixpoint: inject due messages, run events at
// `stop` itself, drain, repeat until quiescent — mirroring the inclusive
// semantics of a single scheduler's `run_until`, which callers rely on to
// read warmup marks at exact instants. Termination is guaranteed because
// every fixpoint generation advances message timestamps by at least one
// link delay.
//
// Determinism: message injection at a round start claims consecutive
// tie-break ranks in the canonical (arrival, emit, lane) order — see
// message.hpp — and channels are drained at barriers in registration
// order, so the merged event order is a pure function of the partition,
// independent of the executor (inline, or any thread count). Each staged
// message becomes exactly ONE destination-shard scheduler event popping a
// FIFO delivery ring, matching the one-delivery-event-per-packet cost of
// the single-scheduler link path — which is what keeps total
// `events_executed` (a golden-digest field) identical between shards=1 and
// shards=K on the full backend.
//
// Threading: the engine itself runs on the caller's thread; per-round
// shard tasks are handed to an optional `ShardExecutor` (sweeps inject a
// ThreadPool-backed one; null runs them inline with identical results).
// During a round a shard task touches only its own simulator, its own
// staging heap, and the buffers of channels it is the source of; the
// coordinator touches them only between rounds. Task submission/join is
// the happens-before edge — no atomics anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet_ring.hpp"
#include "sim/pdes/message.hpp"
#include "sim/simulator.hpp"

namespace pdos::pdes {

/// Runs `fn(s)` for every shard index s in [0, n), returning when all have
/// finished. A null executor means "run inline on the calling thread";
/// sweeps and CLIs hand in a ThreadPool-backed one (`pool_executor` in
/// sweep/sweep.hpp). Results are bit-identical either way.
using ShardTask = std::function<void(std::size_t)>;
using ShardExecutor = std::function<void(std::size_t n, const ShardTask& fn)>;

class PdesEngine {
 public:
  PdesEngine() = default;
  PdesEngine(const PdesEngine&) = delete;
  PdesEngine& operator=(const PdesEngine&) = delete;

  /// (Re)bind the engine to a shard set. Clears clocks, staging, and
  /// channel buffers but keeps their capacity, so a warm workspace reuses
  /// the same allocations run after run. `lookahead` must be positive and
  /// no larger than any cross-shard link delay.
  void configure(std::vector<Simulator*> shards, Time lookahead);

  /// The channel carrying messages src -> dst, created on first use and
  /// kept (warm) across configure() calls with the same shard count.
  Channel* channel(std::uint32_t src, std::uint32_t dst);

  /// Advance every shard to virtual time `stop` (inclusive, like
  /// Scheduler::run_until). Callable repeatedly with increasing stops.
  void run_until(Time stop, const ShardExecutor& executor);

  Time now() const { return now_; }
  Time lookahead() const { return lookahead_; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Barrier count (round + fixpoint iterations), for telemetry/tests.
  std::uint64_t rounds() const { return rounds_; }
  /// Total cross-shard messages injected so far, for telemetry/tests.
  std::uint64_t messages_delivered() const { return messages_; }

 private:
  /// A staged cross-shard delivery: the scheduler event that consumes it
  /// captures only the ring pointer (InlineFn budget), and events are
  /// scheduled in the exact order slots are pushed, so FIFO pops match.
  struct Delivery {
    Packet pkt;
    PacketHandler* handler = nullptr;
  };

  /// Per-shard state, cache-line aligned so two shard tasks never share a
  /// line through adjacent elements.
  struct alignas(64) Shard {
    Simulator* sim = nullptr;
    std::vector<Message> staging;  // binary min-heap in message_before order
    Ring<Delivery> lane;           // FIFO behind the per-message events
    std::uint64_t activity = 0;    // events + injections in the last round
    std::uint64_t injected = 0;    // lifetime messages injected
  };

  void round(std::size_t index, Time bound, bool inclusive);
  void run_rounds(Time bound, bool inclusive, const ShardExecutor& executor);
  void drain_channels();

  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Channel>> channels_;
  Time now_ = 0.0;
  Time lookahead_ = 0.0;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace pdos::pdes
