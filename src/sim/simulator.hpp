// Simulation context: scheduler + seeded RNG + lifetime anchor.
//
// A `Simulator` owns the virtual clock and the root random stream. Network
// components (nodes, links, agents) are created through `make<T>()` so their
// lifetime is tied to the run — events capture raw pointers into this arena,
// which is safe because nothing is destroyed until the Simulator is.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdos {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  Rng& rng() { return rng_; }

  /// The seed this run was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// An independent random stream derived from the run seed and `tag`.
  /// Unlike `rng().fork()`, the stream does not depend on construction
  /// order or on how many draws other components have made — two runs with
  /// the same seed give every tagged component bit-identical randomness.
  Rng stream(std::uint64_t tag) const { return Rng(derive_seed(seed_, tag)); }

  Time now() const { return scheduler_.now(); }

  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    return scheduler_.schedule(delay, std::forward<F>(fn));
  }
  template <typename F>
  EventId schedule_at(Time when, F&& fn) {
    return scheduler_.schedule_at(when, std::forward<F>(fn));
  }
  bool cancel(EventId id) { return scheduler_.cancel(id); }

  /// Pre-size the event queue; see Scheduler::reserve.
  void reserve_events(std::size_t n) { scheduler_.reserve(n); }

  /// Run the simulation until `horizon` seconds of virtual time.
  std::uint64_t run_until(Time horizon) { return scheduler_.run_until(horizon); }
  /// Drain every pending event.
  std::uint64_t run() { return scheduler_.run(); }

  /// Construct a component whose lifetime matches the simulation.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    components_.push_back(
        std::unique_ptr<void, void (*)(void*)>(owned.release(), [](void* p) {
          delete static_cast<T*>(p);
        }));
    return raw;
  }

 private:
  std::uint64_t seed_;
  Scheduler scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<void, void (*)(void*)>> components_;
};

}  // namespace pdos
