// Simulation context: scheduler + seeded RNG + arena lifetime anchor.
//
// A `Simulator` owns the virtual clock, the root random stream, and a
// `MonotonicArena` that holds every component created through `make<T>()`.
// Events capture raw pointers into the arena, which is safe because nothing
// is destroyed until the Simulator is — or until `reset()`, which tears the
// whole object graph down at once (destructors in reverse creation order),
// rewinds the arena, and clears the scheduler while retaining all of their
// capacity. A reset simulator rebuilds the same scenario without touching
// the system allocator and behaves bit-identically to a freshly constructed
// one: same `stream(tag)` derivation, same slot/sequence assignment.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdos {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  ~Simulator() { destroy_components(); }

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  Rng& rng() { return rng_; }

  /// The seed this run was constructed (or last reset) with.
  std::uint64_t seed() const { return seed_; }

  /// An independent random stream derived from the run seed and `tag`.
  /// Unlike `rng().fork()`, the stream does not depend on construction
  /// order or on how many draws other components have made — two runs with
  /// the same seed give every tagged component bit-identical randomness.
  Rng stream(std::uint64_t tag) const { return Rng(derive_seed(seed_, tag)); }

  Time now() const { return scheduler_.now(); }

  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    return scheduler_.schedule(delay, std::forward<F>(fn));
  }
  template <typename F>
  EventId schedule_at(Time when, F&& fn) {
    return scheduler_.schedule_at(when, std::forward<F>(fn));
  }
  bool cancel(EventId id) { return scheduler_.cancel(id); }

  /// Pre-size the event queue; see Scheduler::reserve.
  void reserve_events(std::size_t n) { scheduler_.reserve(n); }

  /// Run the simulation until `horizon` seconds of virtual time.
  std::uint64_t run_until(Time horizon) { return scheduler_.run_until(horizon); }
  /// Drain every pending event.
  std::uint64_t run() { return scheduler_.run(); }

  /// Construct a component whose lifetime matches the simulation (until
  /// destruction or the next `reset()`). Storage comes from the arena.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* storage = arena_.allocate(sizeof(T), alignof(T));
    T* raw = ::new (storage) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back(Dtor{[](void* p) { static_cast<T*>(p)->~T(); }, raw});
    }
    return raw;
  }

  /// Construct a contiguous array of `n` components in one arena block —
  /// the flat hot-state tables (`TcpSenderHot` et al.) the large-scale
  /// scenarios iterate. Every element is constructed from the same `args`;
  /// lifetime matches `make<T>` (destroyed, in reverse order, by the next
  /// `reset()` or the destructor).
  template <typename T, typename... Args>
  T* make_array(std::size_t n, const Args&... args) {
    PDOS_REQUIRE(n > 0, "Simulator::make_array: need n > 0");
    void* storage = arena_.allocate(n * sizeof(T), alignof(T));
    T* base = static_cast<T*>(storage);
    for (std::size_t i = 0; i < n; ++i) {
      T* raw = ::new (static_cast<void*>(base + i)) T(args...);
      if constexpr (!std::is_trivially_destructible_v<T>) {
        dtors_.push_back(
            Dtor{[](void* p) { static_cast<T*>(p)->~T(); }, raw});
      }
    }
    return base;
  }

  /// The arena components and their internal containers live in. Pass to
  /// pmr-aware members (`Ring`, route tables, reorder buffers) so a
  /// component's working set shares the component's own blocks.
  std::pmr::memory_resource* memory() { return &arena_; }
  const MonotonicArena& arena() const { return arena_; }

  /// Tear down this run and become a fresh simulator seeded with `seed`:
  /// components are destroyed in reverse creation order, the scheduler is
  /// cleared, and the arena is rewound — all capacity (slabs, heap arrays,
  /// arena blocks) is retained, so rebuilding the same scenario performs no
  /// system allocation. Everything observable afterwards (streams, event
  /// order, slot assignment) matches a newly constructed Simulator(seed).
  void reset(std::uint64_t seed) {
    destroy_components();   // Timer members cancel into the live scheduler
    scheduler_.reset();     // ... so the scheduler must be cleared after
    arena_.rewind();
    seed_ = seed;
    rng_ = Rng(seed);
  }

 private:
  struct Dtor {
    void (*fn)(void*);
    void* obj;
  };

  void destroy_components() {
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->fn(it->obj);
    }
    dtors_.clear();
  }

  std::uint64_t seed_;
  Scheduler scheduler_;
  Rng rng_;
  MonotonicArena arena_;
  std::vector<Dtor> dtors_;  // creation order; capacity survives reset
};

}  // namespace pdos
