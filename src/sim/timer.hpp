// Restartable one-shot timer over the scheduler.
//
// The classic timer pattern — TCP's RTO, delayed-ACK timers, periodic pulse
// generators — repeatedly cancels and re-arms one logical event. A `Timer`
// owns the closure once (stored at construction, never re-captured) and
// restarts in place via `Scheduler::reschedule_at`, so re-arming a pending
// timer moves a 24-byte heap node instead of freeing and refilling a slot.
// The generation-tagged `EventId` makes staleness exact: after the timer
// fires, the retained id is detectably dead, and the next `schedule_*` call
// falls through to a fresh slot.
#pragma once

#include <utility>

#include "sim/scheduler.hpp"

namespace pdos {

class Timer {
 public:
  /// `callback` is invoked each time the timer expires. It runs after the
  /// timer is marked idle, so it may re-arm (periodic patterns) or leave the
  /// timer stopped.
  template <typename F>
  Timer(Scheduler& sched, F&& callback)
      : sched_(&sched), fn_(std::forward<F>(callback)) {}

  // Non-movable: the scheduled trampoline captures `this`.
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { stop(); }

  /// Arm (or restart) the timer to expire at absolute virtual time `when`.
  /// A pending timer is moved in place; tie-breaking matches a fresh
  /// schedule, so restart-vs-cancel-and-schedule is behaviourally identical.
  void schedule_at(Time when) {
    if (id_ != kInvalidEventId && sched_->reschedule_at(id_, when)) return;
    id_ = sched_->schedule_at(when, [this] { fire(); });
  }

  /// Arm (or restart) the timer to expire `delay` seconds from now.
  void schedule_in(Time delay) { schedule_at(sched_->now() + delay); }

  /// Disarm. Returns true if the timer was pending. Safe on an idle timer.
  bool stop() {
    if (id_ == kInvalidEventId) return false;
    const bool was_pending = sched_->cancel(id_);
    id_ = kInvalidEventId;
    return was_pending;
  }

  /// True while armed and not yet fired.
  bool pending() const {
    return id_ != kInvalidEventId && sched_->pending(id_);
  }

  Scheduler& scheduler() { return *sched_; }

 private:
  void fire() {
    id_ = kInvalidEventId;  // idle before the callback so it can re-arm
    fn_();
  }

  Scheduler* sched_;
  InlineFn fn_;
  EventId id_ = kInvalidEventId;
};

}  // namespace pdos
