// Discrete-event scheduler.
//
// A binary-heap event queue over virtual time. Ties are broken by insertion
// order so runs are deterministic regardless of heap internals. Cancellation
// is lazy: cancelled ids go into a set and are skipped on pop, which keeps
// schedule/cancel O(log n) without an indexed heap — TCP retransmission
// timers cancel constantly, so this path matters.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"
#include "util/units.hpp"

namespace pdos {

class Scheduler {
 public:
  Scheduler() = default;

  // Non-copyable: events capture component pointers tied to one run.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time. Starts at 0 and only moves forward.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Time delay, EventFn fn);

  /// Schedule `fn` at absolute virtual time `when` (when >= now()).
  EventId schedule_at(Time when, EventFn fn);

  /// Cancel a pending event. Returns true if the event was still pending.
  /// Cancelling an already-fired or unknown id is a harmless no-op.
  bool cancel(EventId id);

  /// True if `id` is scheduled and not cancelled.
  bool pending(EventId id) const;

  /// Run events until the queue empties or `horizon` is passed. Events at
  /// exactly `horizon` still run; `now()` ends at `horizon` if events remain.
  /// Returns the number of events executed.
  std::uint64_t run_until(Time horizon);

  /// Run until the queue is empty. Returns the number of events executed.
  std::uint64_t run();

  /// Execute only the next pending event (if any). Returns true if one ran.
  bool step();

  std::size_t queue_size() const { return live_.size(); }
  bool empty() const { return queue_size() == 0; }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // tie-breaker: FIFO among simultaneous events
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pop the next live (non-cancelled) entry; false if none remain.
  bool pop_next(Entry& out);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> live_;       // scheduled, not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  // lazily removed on pop
};

}  // namespace pdos
