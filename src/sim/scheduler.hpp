// Discrete-event scheduler.
//
// An indexed 4-ary min-heap over virtual time. Ties are broken by the
// instant each event's rank was claimed, then by insertion order, so runs
// are deterministic regardless of heap internals — and so the PDES engine
// (sim/pdes) can interleave cross-shard deliveries into ties exactly where
// a single scheduler would have put them. For purely local scheduling the
// claim instant is redundant (claims happen in insertion order) and lives
// out of line in the slot, loaded only on an exact timestamp tie. Each event
// lives in a reusable slot; its `EventId` packs the slot index with a
// generation counter, so `pending` is an O(1) array lookup and `cancel`
// removes the entry from the heap eagerly — no dead entries are retained,
// which matters because TCP retransmission timers cancel constantly.
// `reschedule_at` moves a pending event in place (fresh tie-break sequence,
// same slot), the primitive behind `Timer`'s restart-without-realloc path.
//
// Layout: the heap array holds only 16-byte (when, seq, slot) keys — four
// nodes per cache line — so sifting never touches a closure buffer. Heap
// positions live in a flat dense array indexed by slot, not in the slots
// themselves, so the per-move bookkeeping write lands in a small hot int
// array instead of dragging a closure-bearing slot line through the slab
// indirection. Slots live in fixed-size slabs with stable addresses —
// growing the slot population never relocates a pending closure — and
// freed slots recycle through a LIFO free list, so the steady-state event
// loop performs no allocations at all.
//
// Two tiers: events due within the far horizon live in the heap; events
// beyond it (TCP retransmit timers, delayed ACKs, pulse periods — the bulk
// of the resident population, but a sliver of the firing rate) sit in an
// unsorted shelf and migrate heap-ward in batches as the clock approaches.
// Every pop therefore sifts a heap of the handful of imminent events, not
// of every armed timer in the simulation, and rescheduling a shelved timer
// is two stores instead of two sifts. Ordering is unaffected: the heap
// holds every event at or before the horizon, the shelf is strictly
// beyond it, and migration re-inserts nodes with their original
// (when, seq) keys.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace pdos {

class Scheduler {
 public:
  Scheduler() = default;

  // Non-copyable: events capture component pointers tied to one run.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time. Starts at 0 and only moves forward.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0). Accepts
  /// any void() callable; the closure is constructed directly into its
  /// heap slot (no intermediate EventFn moves on the hot path).
  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    PDOS_REQUIRE(delay >= 0.0, "Scheduler::schedule: delay must be >= 0");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` at absolute virtual time `when` (when >= now()).
  template <typename F>
  EventId schedule_at(Time when, F&& fn) {
    return schedule_at_sequenced(when, now_, next_seq(), std::forward<F>(fn));
  }

  /// Claim the next tie-break sequence number without scheduling anything.
  /// Pair with `schedule_at_sequenced`: a component that batches future
  /// events outside the heap (Link's delivery lane) claims the rank at the
  /// moment the work is logically emitted, then materializes the heap node
  /// later — same-timestamp events still fire in emission order, exactly as
  /// if each had been scheduled eagerly.
  std::uint32_t allocate_seq() { return next_seq(); }

  /// Claim `n` consecutive tie-break ranks at once (returns the first).
  /// Equivalent to `n` calls to `allocate_seq` — a burst emitter claims the
  /// ranks of its whole batch up front, then materializes the events one at
  /// a time as the batch drains.
  std::uint32_t allocate_seq_range(std::uint32_t n) {
    PDOS_CHECK_MSG(0xffffffffu - next_seq_ > n,
                   "event sequence space exhausted");
    const std::uint32_t base = next_seq_;
    next_seq_ += n;
    return base;
  }

  /// Claim a tie-break rank from the reserved FRONT band: it orders before
  /// every rank `allocate_seq`/`schedule*` ever hand out AT THE SAME CLAIM
  /// INSTANT. Used by the conservative PDES engine (sim/pdes) for
  /// cross-shard deliveries, whose claim instants (the source-side emission
  /// times) interleave arbitrarily with this scheduler's own claim stream —
  /// same-timestamp ties resolve by claim instant first (see `before`), and
  /// the front band settles the remaining exact-claim-tie in the
  /// delivery's favour, matching the unsharded schedule where the emitting
  /// link claimed its rank inside the event that produced the packet.
  /// Front ranks order among themselves by claim order, which the engine
  /// makes canonical.
  std::uint32_t allocate_front_seq() {
    PDOS_CHECK_MSG(front_seq_ != kSeqBandBase - 1,
                   "front sequence space exhausted");
    return front_seq_++;
  }

  /// `schedule_at` with a caller-provided tie-break rank from
  /// `allocate_seq` plus the virtual time the rank was claimed (the value
  /// `now()` had at the `allocate_seq`/`allocate_seq_range` call). Ranks
  /// must be claimed in non-decreasing event-emission order; reusing one
  /// across two live events is undefined. The claim instant is the primary
  /// same-timestamp tie-break (see `before`): for locally claimed ranks it
  /// is redundant with the rank itself — claims happen in rank order as the
  /// clock advances — but it lets the PDES engine slot a cross-shard
  /// delivery into a tie exactly where the single-scheduler run would have,
  /// by claiming at the source-side emission instant.
  template <typename F>
  EventId schedule_at_sequenced(Time when, Time claim, std::uint32_t seq,
                                F&& fn) {
    PDOS_REQUIRE(when >= now_, "Scheduler::schedule_at: time is in the past");
    const std::uint32_t slot = acquire_slot();
    Slot& s = *slot_ptr(slot);
    s.claim = claim;
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      PDOS_CHECK(static_cast<bool>(fn));
      s.fn = std::forward<F>(fn);
    } else {
      s.fn.emplace(std::forward<F>(fn));
    }
    insert_node(HeapNode{when, seq, slot});
    return (static_cast<EventId>(s.gen) << 32) | (slot + 1);
  }

  /// Cancel a pending event. Returns true if the event was still pending.
  /// Cancelling an already-fired or unknown id is a harmless no-op.
  bool cancel(EventId id);

  /// Move a pending event to absolute time `when` (>= now()), keeping its
  /// heap slot and id. The event is re-sequenced as if freshly scheduled, so
  /// FIFO tie-breaking matches a cancel-plus-schedule exactly. Returns false
  /// (and does nothing) if `id` already fired or was cancelled.
  bool reschedule_at(EventId id, Time when);

  /// `reschedule_at(id, now() + delay)` with delay >= 0.
  bool reschedule(EventId id, Time delay);

  /// True if `id` is scheduled and not cancelled.
  bool pending(EventId id) const { return live_slot(id) != nullptr; }

  /// Pre-size the slot slabs and heap array for `n` simultaneous events so
  /// even the warm-up phase of the event loop performs no allocations.
  void reserve(std::size_t n);

  /// Return to the just-constructed state — clock at 0, no pending events,
  /// fresh tie-break sequence — while RETAINING every slab and array
  /// capacity, so a rebuilt scenario schedules without allocating. Armed
  /// closures are destroyed; every outstanding EventId goes stale. The free
  /// list is rebuilt in ascending slot order, so a reset scheduler hands
  /// out slots 0, 1, 2, ... exactly like a fresh one — behaviour after a
  /// reset is bit-identical to a new Scheduler.
  void reset();

  /// Run events until the queue empties or `horizon` is passed. Events at
  /// exactly `horizon` still run; `now()` ends at `horizon` if events remain.
  /// Returns the number of events executed.
  std::uint64_t run_until(Time horizon);

  /// Half-open variant: run events with `when < bound`; events at exactly
  /// `bound` stay pending and `now()` ends at `bound` either way. The
  /// conservative PDES round loop (sim/pdes) advances every shard through
  /// [T, T + lookahead) with this, so an event landing exactly on a round
  /// boundary executes once — in the round that OWNS the boundary — never
  /// twice. Returns the number of events executed.
  std::uint64_t run_before(Time bound);

  /// Run until the queue is empty. Returns the number of events executed.
  std::uint64_t run();

  /// Execute only the next pending event (if any). Returns true if one ran.
  bool step();

  std::size_t queue_size() const { return heap_.size() + shelf_.size(); }
  bool empty() const { return heap_.empty() && shelf_.empty(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  /// Heap node: ordering key plus the slot holding the closure. Kept apart
  /// from the slots so sifting moves 16 bytes, never a closure buffer. The
  /// sequence tie-breaker is 32-bit: it only has to stay unique within one
  /// scheduler's lifetime, and a run would need ~4.3 billion schedules to
  /// wrap — `next_seq()` checks and fails loudly long before silent reorder.
  struct HeapNode {
    Time when;
    std::uint32_t seq;  // tie-breaker: FIFO among simultaneous events
    std::uint32_t slot;
  };
  static_assert(sizeof(HeapNode) == 16, "heap keys should be 16 bytes");

  struct Slot {
    std::uint32_t gen = 0;  // bumped on release; stale ids never match
    std::uint32_t next_free = 0;
    Time claim = 0.0;  // virtual time the event's tie-break rank was claimed
    InlineFn fn;
  };

  // 1024 slots per slab: large enough that slab allocation is rare, small
  // enough that a mostly-idle scheduler stays compact.
  static constexpr std::uint32_t kSlabBits = 10;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  // Far-shelf migration window, in virtual seconds. Anything due more than
  // one advance beyond the current frontier parks on the shelf; 50 ms sits
  // above the propagation delays that drive the per-packet event cadence
  // and below the retransmit/delayed-ACK timeouts that dominate the armed
  // population. The live window adapts upward from here when the shelf
  // population turns out to be sparse in time (see pull_shelf). A mistuned
  // window costs only constant factors — ordering never depends on it.
  static constexpr Time kFarWindow = 0.050;

  // pos_[slot] encoding: >= 0 is an index into heap_; kFreePos means free,
  // invoked, or never armed; anything <= kShelfBase encodes an index into
  // shelf_ as (kShelfBase - pos).
  static constexpr std::int32_t kFreePos = -1;
  static constexpr std::int32_t kShelfBase = -2;

  bool before(const HeapNode& a, const HeapNode& b) const {
    // The due-time compare stays the whole story for almost every pair, and
    // the branch below predicts "distinct" essentially always — event keys
    // are effectively random, exact double ties are the rare rationally
    // locked case. Only a genuine tie pays the slot loads for the claim
    // instants: claim order is rank order for locally scheduled events (so
    // this is exactly the old FIFO-by-seq rule), but it also slots PDES
    // cross-shard deliveries — whose ranks come from the front band and
    // whose claims happened on another scheduler's clock — into the
    // position the single-scheduler run gave them. Exact claim ties fall
    // through to the rank compare, where the front band orders first.
    if (a.when != b.when) return a.when < b.when;
    const Time ca = slot_ptr(a.slot)->claim;
    const Time cb = slot_ptr(b.slot)->claim;
    return (ca < cb) | ((ca == cb) & (a.seq < b.seq));
  }

  /// Index of the smallest of the up-to-four children of `pos`; `first`
  /// is `pos * 4 + 1` (< size). Tournament order keeps the comparisons
  /// independent so they pipeline instead of chaining.
  std::size_t min_child(std::size_t first, std::size_t size) const {
    if (first + 4 <= size) {
      const std::size_t a =
          before(heap_[first + 1], heap_[first]) ? first + 1 : first;
      const std::size_t b =
          before(heap_[first + 3], heap_[first + 2]) ? first + 3 : first + 2;
      return before(heap_[b], heap_[a]) ? b : a;
    }
    std::size_t best = first;
    for (std::size_t c = first + 1; c < size; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    return best;
  }

  Slot* slot_ptr(std::uint32_t slot) const {
    return &slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoFreeSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slot_ptr(slot)->next_free;
      return slot;
    }
    if (slot_count_ == slabs_.size() * kSlabSize) {
      PDOS_CHECK_MSG(slot_count_ < 0xfffffc00u, "event slot space exhausted");
      slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    }
    pos_.push_back(-1);
    return slot_count_++;
  }

  // The normal tie-break band starts at kSeqBandBase; [0, kSeqBandBase) is
  // reserved for allocate_front_seq. Relative order within the normal band
  // is unchanged, and the band only decides exact (when, claim) ties, so
  // single-scheduler runs are bit-identical to the pre-band scheduler (the
  // digest suites pin this).
  static constexpr std::uint32_t kSeqBandBase = 0x80000000u;

  std::uint32_t next_seq() {
    PDOS_CHECK_MSG(next_seq_ != 0xffffffffu, "event sequence space exhausted");
    return next_seq_++;
  }

  /// Decode `id`; returns the slot if it names a live event, else null.
  Slot* live_slot(EventId id) const {
    const std::uint32_t low = static_cast<std::uint32_t>(id);
    if (low == 0 || low > slot_count_) return nullptr;
    Slot* s = slot_ptr(low - 1);
    if (s->gen != static_cast<std::uint32_t>(id >> 32)) return nullptr;
    if (pos_[low - 1] == kFreePos) return nullptr;
    return s;
  }

  /// Route a fresh node to the heap or the far shelf by due time.
  void insert_node(const HeapNode& node) {
    if (node.when > far_horizon_) {
      pos_[node.slot] = kShelfBase - static_cast<std::int32_t>(shelf_.size());
      shelf_.push_back(node);
    } else {
      pos_[node.slot] = static_cast<std::int32_t>(heap_.size());
      heap_.push_back(node);
      sift_up(heap_.size() - 1);
    }
  }

  /// Swap-remove shelf entry `idx`, fixing the displaced node's position.
  void shelf_remove(std::size_t idx) {
    const std::size_t last = shelf_.size() - 1;
    if (idx != last) {
      shelf_[idx] = shelf_[last];
      pos_[shelf_[idx].slot] = kShelfBase - static_cast<std::int32_t>(idx);
    }
    shelf_.pop_back();
  }

  /// Advance the far horizon and migrate newly imminent shelf entries into
  /// the heap, so the heap top becomes the global minimum. Called when the
  /// heap has run dry relative to the shelf.
  void pull_shelf();

  void sift_up(std::size_t pos) {
    const HeapNode node = heap_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 4;
      if (!before(node, heap_[parent])) break;
      heap_[pos] = heap_[parent];
      pos_[heap_[pos].slot] = static_cast<std::int32_t>(pos);
      pos = parent;
    }
    heap_[pos] = node;
    pos_[node.slot] = static_cast<std::int32_t>(pos);
  }

  void sift_down(std::size_t pos);
  /// Detach the heap node at `pos`, restoring the heap property. The node's
  /// slot is left untouched.
  void detach(std::size_t pos);
  /// Return a slot to the free list and invalidate outstanding ids to it.
  void release_slot(std::uint32_t slot);
  /// Pop the minimum event and advance the clock. The slot is made stale
  /// (ids to it are dead) but NOT yet recycled, so the caller can invoke
  /// the closure in place — even a callback that schedules new events
  /// cannot be handed this slot. The caller must run `recycle_slot` on the
  /// returned slot afterwards. Precondition: heap non-empty.
  std::uint32_t pop_min();
  /// Destroy an invoked closure and return its (already stale) slot to the
  /// free list. Second half of the pop_min contract.
  void recycle_slot(std::uint32_t slot) {
    Slot* s = slot_ptr(slot);
    s->fn.reset();
    s->next_free = free_head_;
    free_head_ = slot;
  }

  Time now_ = 0.0;
  Time far_horizon_ = 0.0;  // heap holds everything due at or before this
  Time far_window_ = kFarWindow;  // adaptive; see pull_shelf
  std::uint32_t next_seq_ = kSeqBandBase;
  std::uint32_t front_seq_ = 0;  // reserved band; see allocate_front_seq
  std::uint64_t executed_ = 0;
  std::vector<HeapNode> heap_;
  std::vector<HeapNode> shelf_;  // unsorted; strictly beyond far_horizon_
  // pos_[slot] is the slot's index into heap_, -1 while the slot is free or
  // its event is being invoked. Parallel to the slabs, always slot_count_
  // entries long.
  std::vector<std::int32_t> pos_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t slot_count_ = 0;  // slots ever created (all tail slabs full)
  std::uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace pdos
