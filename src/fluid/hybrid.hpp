// Hybrid fluid/packet coupling (DESIGN.md §12).
//
// In a hybrid run a handful of foreground flows stay packet-level — full
// TCP state machines, real packets through the real RED bottleneck — while
// the background mass of flows is a fluid aggregate advanced by a
// FluidBackgroundSource. The coupling is bidirectional and runs through
// the shared RedQueue:
//
//   fluid -> packet: each tick injects the aggregate's admitted arrival
//     mass into the queue as a *virtual backlog* (RedQueue::fluid_arrive).
//     The virtual packets occupy buffer space, raise RED's EWMA average,
//     and count toward the forced-drop capacity check, so foreground
//     packets experience the congestion the background creates. The
//     foreground link's service times are scaled by the background's
//     bandwidth share (Link::set_service_scale), so foreground packets
//     also drain at the residual capacity a FIFO would give them.
//
//   packet -> fluid: the aggregate reads RED's live average (fed by both
//     real and virtual arrivals) for its early-drop probability, the
//     combined backlog for its queueing delay, and the queue's free space
//     for forced drops — so an attack pulse that fills the real queue
//     throttles the fluid windows exactly as it throttles packet flows.
//
// With no FluidBackgroundSource attached, every hook this file relies on
// is inert (zero virtual backlog, unit service scale): the packet path's
// behaviour and its golden digests are untouched.
#pragma once

#include <vector>

#include "fluid/fluid.hpp"
#include "net/link.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace pdos::fluid {

class FluidBackgroundSource {
 public:
  /// `config.classes` holds the background classes only. `bottleneck` and
  /// `red` must be the same link/queue pair and outlive the source; the
  /// source assumes `red` is the bottleneck's queue discipline.
  FluidBackgroundSource(Simulator& sim, Link* bottleneck, RedQueue* red,
                        FluidConfig config, Time tick = ms(1.0));

  /// Begin ticking at absolute virtual time `when`.
  void start(Time when);

  /// Background window/delivery state (snapshot `bank().delivered_packets()`
  /// to measure a window of delivered background fluid).
  const AimdBank& bank() const { return bank_; }

  Bytes spacket() const { return config_.spacket; }
  double backlog_packets() const { return red_->fluid_backlog(); }
  std::uint64_t ticks() const { return ticks_; }

 private:
  void on_tick();

  Simulator& sim_;
  Link* bottleneck_;
  RedQueue* red_;
  FluidConfig config_;
  Time tick_;
  AimdBank bank_;
  Time last_ = 0.0;
  std::uint64_t ticks_ = 0;
  Timer timer_;
};

}  // namespace pdos::fluid
