// Fluid AIMD surrogate tier (DESIGN.md §12).
//
// Evolves the dumbbell's congestion dynamics as a deterministic fluid
// system instead of a packet-level discrete-event simulation: one window
// ODE per RTT class, a shared bottleneck queue level, and a continuous
// analog of RED's EWMA estimator, integrated with an adaptive step that
// snaps to the discontinuities that drive a pulsing attack — pulse onsets
// and offsets, loss episodes (multiplicative decrease), and RTO freezes.
// The state is a handful of doubles per class, so evaluating a fig06 grid
// point costs microseconds where the packet path costs tens of
// milliseconds — this is the inner-loop surrogate the optimizer's
// search-then-confirm loop (core/optimizer) searches over, and the model
// behind the `fluid` backend of core/experiment.
//
// Dynamics (Misra/Gong/Towsley-style, specialized to the paper's set-up):
//
//   RTT_i(t)  = rtt_i + q(t)/C                 (propagation + queueing)
//   x_i(t)    = min(W_i/RTT_i, access) * n_i   (class arrival rate, pkts/s)
//   dq/dt     = (1-p) * (Σ x_i + A(t)) - C     (clamped to [0, B])
//   avg       <- q + (avg - q)(1-w_q)^n        (RED EWMA, n arrivals/step)
//   dW_i/dt   = a / (d * RTT_i)                (congestion avoidance)
//             = W_i ln(1 + 1/d) / RTT_i        (slow start, W < ssthresh)
//
// where A(t) is the attack pulse rate and p the RED early-drop probability
// implied by `avg` (forced drops add the queue-overflow excess). Losses
// integrate into a per-class pressure ∫λ_i dt; when it crosses one packet
// the class takes a discrete multiplicative decrease — or, when its window
// is too small to raise dupacks, an RTO freeze — mirroring NewReno's
// episode semantics rather than smearing the decrease continuously.
//
// Everything here is deterministic pure arithmetic: same config, same
// trajectory, bit-for-bit, no RNG.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/red.hpp"
#include "tcp/aimd.hpp"
#include "util/units.hpp"

namespace pdos::fluid {

/// One aggregated flow class: `count` identical flows at this RTT. The pure
/// backend uses one class per flow; million-flow scenarios can bin with
/// `bin_classes`.
struct FluidClass {
  Time rtt = ms(100);   // two-way propagation, seconds
  double count = 1.0;   // flows aggregated into this class
};

/// Opt-in class binning for very large flow populations: merge classes
/// with bit-equal RTTs exactly (their ODEs are identical, so summing the
/// counts is lossless), then, if more than `max_classes` distinct RTTs
/// remain, quantize them onto `max_classes` equal-width RTT bins and
/// collapse each occupied bin to one class at its count-weighted mean RTT.
/// Output is sorted by RTT. The solver never bins on its own — callers
/// with N ~ 1e6 flows shrink `FluidConfig::classes` through this before
/// `solve`, trading an RTT-quantization error (bounded by the bin width)
/// for a per-step cost that no longer scales with N. The total count mass
/// Σcount is preserved exactly (asserted internally): binning only moves
/// counts between buckets, and a drifted total would silently rescale
/// goodput normalization at the million-flow scale.
std::vector<FluidClass> bin_classes(std::vector<FluidClass> classes,
                                    std::size_t max_classes);

/// The fluid system: victim transport, bottleneck, AQM, and flow classes.
struct FluidConfig {
  AimdParams aimd = AimdParams::new_reno();
  Bytes spacket = 1040;            // MSS + headers, bytes on the wire
  BitRate bottleneck = mbps(15);
  BitRate access = mbps(50);       // per-flow rate cap
  RedParams red;                   // thresholds/capacity in packets
  bool droptail = false;           // true: no early drops, overflow only
  std::vector<FluidClass> classes;
  double initial_ssthresh = 64.0;  // slow-start/avoidance boundary, segments
  double max_cwnd = 10000.0;       // receiver-window stand-in, segments
  Time rto_min = sec(1.0);

  // Integration control: base step inside a pulse (where the queue and RED
  // average move fast) and between pulses (smooth drain/growth). The solver
  // additionally clips every step to the next discontinuity, so boundaries
  // are hit exactly regardless of step size.
  Time dt_pulse = ms(10.0);
  Time dt_idle = ms(20.0);

  /// Bottleneck service rate in packets/second.
  double capacity_pps() const {
    return bottleneck / (8.0 * static_cast<double>(spacket));
  }

  void validate() const;
};

/// The attack process, fluid view: a square wave of `rattack` for `textent`
/// every `textent + tspace` seconds, starting at t = 0.
struct FluidAttack {
  Time textent = ms(50);
  BitRate rattack = mbps(25);
  Time tspace = ms(1950);
  Bytes packet_bytes = 1040;

  Time period() const { return textent + tspace; }
};

/// Measurement window, mirroring core/experiment's RunControl.
struct FluidControl {
  Time warmup = sec(5.0);
  Time measure = sec(15.0);
  Time bin_width = ms(100);
  int traced_class = -1;  // >= 0: record (t, W) for that class
  Time horizon() const { return warmup + measure; }
};

struct FluidResult {
  // Delivered TCP fluid over the measurement window only.
  double goodput_bytes = 0.0;
  BitRate goodput_rate = 0.0;
  double utilization = 0.0;
  std::vector<double> per_class_goodput_bytes;  // per class, not per flow

  // Whole-run series at bin_width resolution, like RunResult's.
  std::vector<double> incoming_bins;  // TCP + attack arrivals, bytes/bin
  std::vector<double> attack_bins;    // attack-only arrivals, bytes/bin
  std::vector<double> queue_occupancy;
  std::vector<double> red_avg_samples;
  Time bin_width = 0.0;

  double early_dropped_packets = 0.0;   // fluid early-drop mass
  double forced_dropped_packets = 0.0;  // fluid overflow mass
  std::uint64_t loss_events = 0;        // multiplicative decreases taken
  std::uint64_t timeouts = 0;           // RTO freezes entered
  std::uint64_t steps = 0;              // integrator steps executed

  std::vector<std::pair<Time, double>> cwnd_trace;  // if traced_class >= 0
};

/// RED early-drop probability for an average queue of `avg` packets, with
/// ns-2's count-based spreading folded in as its expectation: the marking
/// ramp gives p_b, uniformized inter-drop gaps make the realized drop rate
/// 2 p_b / (1 + p_b). Shared by the pure solver and the hybrid background
/// source (which reads `avg` from the live RedQueue instead).
double red_drop_probability(const RedParams& params, double avg);

/// A bank of fluid AIMD classes: the per-class window state and its
/// response to loss pressure, factored out so the pure solver and the
/// hybrid FluidBackgroundSource integrate identical dynamics.
class AimdBank {
 public:
  AimdBank() = default;
  AimdBank(const FluidConfig& config);

  /// Advance every window by `dt` under early-drop probability `p_early`,
  /// overflow fraction `forced_frac` (both applied to this bank's own
  /// arrivals), and queueing delay `queue_delay`. Returns the bank's
  /// aggregate *offered* arrival rate in packets/second over the step.
  double step(Time now, Time dt, double p_early, double forced_frac,
              Time queue_delay);

  /// Aggregate offered rate at the current state (no time advance); used to
  /// drive the queue balance before committing a step. The per-class rates
  /// are cached against (now, queue_delay), so the `step` that follows with
  /// the same arguments reuses them instead of recomputing.
  double offered_rate(Time now, Time queue_delay) const;

  /// Aggregate delivered-fluid tally, per class, in packets (real classes
  /// only — the SIMD padding tail is trimmed). `step` adds
  /// (1 - p_total) * x_i * dt each call.
  std::vector<double> delivered_packets() const;
  /// Snapshot used to measure a window: delivered minus a mark.
  std::vector<double> delivered_since(const std::vector<double>& mark) const;

  double window(std::size_t i) const { return w_[i]; }
  std::size_t size() const { return n_; }
  /// Earliest pending RTO expiry, or +inf; a discontinuity the caller's
  /// step must not straddle.
  Time next_rto_expiry() const;

  std::uint64_t loss_events = 0;
  std::uint64_t timeouts = 0;

 private:
  // Config mirror (kept by value: the bank outlives no config).
  AimdParams aimd_;
  double access_pps_ = 0.0;   // per-flow rate cap, pkts/s
  double ssthresh0_ = 64.0;
  double max_cwnd_ = 10000.0;
  Time rto_min_ = sec(1.0);
  double ss_log_ = 0.0;       // ln(1 + 1/d): slow-start growth constant

  /// Fill `x_` with per-class arrival rates for (now, queue_delay) unless
  /// the cache already holds them; returns the aggregate offered rate.
  double refresh_rates(Time now, Time queue_delay) const;

  // The SoA state below is padded from n_ real classes to n_pad_ (the
  // next multiple of the SIMD block width). Pad classes carry rtt = +inf
  // and count = 0, which makes them arithmetically invisible: zero
  // arrival rate, bit-frozen windows, exact +0.0 reduction terms (see
  // src/fluid/kernels.hpp). Only the first n_ entries are observable
  // through the public API.
  std::size_t n_ = 0;             // real classes
  std::size_t n_pad_ = 0;         // padded SoA length
  std::vector<double> rtt_;       // propagation RTT per class
  std::vector<double> count_;     // flows per class
  std::vector<double> w_;         // window, segments
  std::vector<double> ssthresh_;  // slow-start threshold, segments
  std::vector<double> accum_;     // integrated loss pressure, packets
  std::vector<double> md_gate_;   // earliest next multiplicative decrease
  std::vector<double> rto_until_; // > now: frozen in timeout
  std::vector<double> delivered_; // delivered fluid, packets

  // Arrival-rate cache: x_ holds per-class rates and inv_ the matching
  // 1/(rtt + queue_delay) reciprocals, valid for (x_now_, x_delay_);
  // step() invalidates both after mutating the windows. Caching the
  // reciprocal makes the rate pass the only division per chunk-step.
  mutable std::vector<double> x_;
  mutable std::vector<double> cx_;   // count * x, the reduction terms
  mutable std::vector<double> inv_;
  mutable double x_offered_ = 0.0;
  mutable Time x_now_ = -1.0;
  mutable Time x_delay_ = -1.0;
};

/// Run the pure-fluid backend: warmup + measurement under an optional pulse
/// train, returning the same observables the packet path reports.
FluidResult solve(const FluidConfig& config,
                  const std::optional<FluidAttack>& attack,
                  const FluidControl& control);

/// Name of the SIMD backend the fluid kernels were compiled against:
/// "avx2", "neon", or "scalar" (portable fallback, also what
/// PDOS_SIMD=OFF forces). Results are bit-identical across backends by
/// construction (fixed 4-wide block-tree reductions, no FMA contraction
/// — DESIGN.md §16); this is for bench gating and test skip messages.
const char* simd_backend();

// --- Committed fluid-vs-packet agreement tolerances ---------------------
//
// Measured on the fig06-fig09 quick grids (ns-2 dumbbell, 15-45 flows,
// T_extent 50-100 ms, R_attack 25-40 Mbps, auto-γ grids, seed 1, the
// default dt_pulse/dt_idle above; see
// tests/fluid/fluid_agreement_test.cpp): per-point |Γ_fluid − Γ_packet|
// peaks at 0.157 (fig07-09 slice) / 0.091 (fig06), grid means at 0.050 /
// 0.037. The committed bounds below add modest headroom over those
// measurements; they are what the agreement tests enforce per grid and
// what the optimizer's search-then-confirm loop relies on.
inline constexpr double kDegradationAbsTol = 0.20;   // per-point |ΓF - ΓP|
inline constexpr double kDegradationMeanTol = 0.08;  // grid mean |ΓF - ΓP|

}  // namespace pdos::fluid
