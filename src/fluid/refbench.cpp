// Frozen pre-vectorization fluid solver (see refbench.hpp). Verbatim
// snapshot of fluid.cpp's AimdBank + solve from before the SIMD kernel
// refactor; keep byte-stable so the bench A/B arm stays meaningful.

#include "fluid/refbench.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace pdos::fluid::refbench {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDupackFloor = 4.0;
constexpr double kTimeEps = 1e-9;

class RefAimdBank {
 public:
  explicit RefAimdBank(const FluidConfig& config)
      : aimd_(config.aimd),
        access_pps_(config.access /
                    (8.0 * static_cast<double>(config.spacket))),
        ssthresh0_(config.initial_ssthresh),
        max_cwnd_(config.max_cwnd),
        rto_min_(config.rto_min),
        ss_log_(std::log(1.0 + 1.0 / static_cast<double>(config.aimd.d))) {
    const std::size_t n = config.classes.size();
    rtt_.reserve(n);
    count_.reserve(n);
    for (const FluidClass& c : config.classes) {
      rtt_.push_back(c.rtt);
      count_.push_back(c.count);
    }
    w_.assign(n, 1.0);
    ssthresh_.assign(n, ssthresh0_);
    accum_.assign(n, 0.0);
    md_gate_.assign(n, 0.0);
    rto_until_.assign(n, 0.0);
    delivered_.assign(n, 0.0);
    x_.assign(n, 0.0);
  }

  double refresh_rates(Time now, Time queue_delay) const {
    if (now == x_now_ && queue_delay == x_delay_) return x_offered_;
    double offered = 0.0;
    for (std::size_t i = 0; i < w_.size(); ++i) {
      const double active = now < rto_until_[i] ? 0.0 : 1.0;
      const double x =
          active * std::min(w_[i] / (rtt_[i] + queue_delay), access_pps_);
      x_[i] = x;
      offered += count_[i] * x;
    }
    x_offered_ = offered;
    x_now_ = now;
    x_delay_ = queue_delay;
    return offered;
  }

  double offered_rate(Time now, Time queue_delay) const {
    return refresh_rates(now, queue_delay);
  }

  double step(Time now, Time dt, double p_early, double forced_frac,
              Time queue_delay) {
    const double p_total = p_early + (1.0 - p_early) * forced_frac;
    const double offered = refresh_rates(now, queue_delay);
    for (std::size_t i = 0; i < w_.size(); ++i) {
      if (now < rto_until_[i]) continue;
      const double rtt = rtt_[i] + queue_delay;
      const double dt_rtts = dt / rtt;
      const double x = x_[i];
      delivered_[i] += count_[i] * x * (1.0 - p_total) * dt;
      if (p_total > 0.0) {
        accum_[i] += p_total * x * dt;
      } else if (accum_[i] > 0.0) {
        accum_[i] *= 1.0 - std::min(1.0, 0.5 * dt_rtts);
      }
      if (accum_[i] >= 1.0 && now >= md_gate_[i]) {
        accum_[i] = 0.0;
        if (w_[i] < kDupackFloor) {
          ++timeouts;
          ssthresh_[i] = std::max(2.0, 0.5 * w_[i]);
          w_[i] = 1.0;
          rto_until_[i] = now + std::max(rto_min_, 2.0 * rtt);
          md_gate_[i] = rto_until_[i];
        } else {
          ++loss_events;
          ssthresh_[i] = std::max(2.0, aimd_.b * w_[i]);
          w_[i] = std::max(1.0, aimd_.b * w_[i]);
          md_gate_[i] = now + rtt;
        }
        continue;
      }
      if (w_[i] < ssthresh_[i]) {
        w_[i] += w_[i] * ss_log_ * dt_rtts;
      } else {
        w_[i] += aimd_.a * dt_rtts / static_cast<double>(aimd_.d);
      }
      if (w_[i] > max_cwnd_) w_[i] = max_cwnd_;
    }
    x_now_ = -1.0;
    return offered;
  }

  std::vector<double> delivered_packets() const { return delivered_; }

  std::vector<double> delivered_since(const std::vector<double>& mark) const {
    PDOS_CHECK(mark.size() == delivered_.size());
    std::vector<double> window(delivered_.size());
    for (std::size_t i = 0; i < delivered_.size(); ++i) {
      window[i] = delivered_[i] - mark[i];
    }
    return window;
  }

  double window(std::size_t i) const { return w_[i]; }

  Time next_rto_expiry() const {
    Time next = kInf;
    for (double until : rto_until_) {
      if (until > 0.0 && until < next) next = until;
    }
    return next;
  }

  std::uint64_t loss_events = 0;
  std::uint64_t timeouts = 0;

 private:
  AimdParams aimd_;
  double access_pps_ = 0.0;
  double ssthresh0_ = 64.0;
  double max_cwnd_ = 10000.0;
  Time rto_min_ = sec(1.0);
  double ss_log_ = 0.0;

  std::vector<double> rtt_;
  std::vector<double> count_;
  std::vector<double> w_;
  std::vector<double> ssthresh_;
  std::vector<double> accum_;
  std::vector<double> md_gate_;
  std::vector<double> rto_until_;
  std::vector<double> delivered_;

  mutable std::vector<double> x_;
  mutable double x_offered_ = 0.0;
  mutable Time x_now_ = -1.0;
  mutable Time x_delay_ = -1.0;
};

}  // namespace

FluidResult solve(const FluidConfig& config,
                  const std::optional<FluidAttack>& attack,
                  const FluidControl& control) {
  config.validate();
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "FluidControl: need warmup >= 0 and measure > 0");
  if (attack) {
    PDOS_REQUIRE(attack->textent > 0.0 && attack->rattack > 0.0 &&
                     attack->tspace >= 0.0 && attack->packet_bytes > 0,
                 "FluidAttack: invalid pulse train");
  }
  if (control.traced_class >= 0) {
    PDOS_REQUIRE(static_cast<std::size_t>(control.traced_class) <
                     config.classes.size(),
                 "FluidControl: traced_class out of range");
  }

  RefAimdBank bank(config);
  const double capacity = config.capacity_pps();
  const double buffer = static_cast<double>(config.red.capacity);
  const double atk_pps =
      attack ? attack->rattack /
                   (8.0 * static_cast<double>(attack->packet_bytes))
             : 0.0;
  const double atk_bytes =
      attack ? static_cast<double>(attack->packet_bytes) : 0.0;
  const double tcp_bytes = static_cast<double>(config.spacket);
  const Time horizon = control.horizon();
  const double ewma_log_keep =
      config.droptail ? 0.0 : std::log(1.0 - config.red.wq);

  FluidResult result;
  result.bin_width = control.bin_width;
  const std::size_t num_bins = static_cast<std::size_t>(
      std::ceil(horizon / control.bin_width - kTimeEps));
  result.incoming_bins.assign(num_bins, 0.0);
  result.attack_bins.assign(num_bins, 0.0);
  result.queue_occupancy.reserve(num_bins + 2);
  result.red_avg_samples.reserve(num_bins + 2);

  double q = 0.0;
  double avg = 0.0;
  Time t = 0.0;
  Time next_sample = 0.0;
  std::vector<double> warmup_mark;
  bool marked = control.warmup == 0.0;
  if (marked) warmup_mark.assign(config.classes.size(), 0.0);

  while (t < horizon - kTimeEps) {
    while (next_sample <= t + kTimeEps) {
      result.queue_occupancy.push_back(q);
      result.red_avg_samples.push_back(config.droptail ? 0.0 : avg);
      next_sample += control.bin_width;
    }
    if (!marked && t >= control.warmup - kTimeEps) {
      warmup_mark = bank.delivered_packets();
      marked = true;
    }

    bool in_pulse = false;
    Time next_boundary = kInf;
    if (attack) {
      const Time period = attack->period();
      const double k = std::floor((t + kTimeEps) / period);
      const Time pulse_start = k * period;
      if (t < pulse_start + attack->textent - kTimeEps) {
        in_pulse = true;
        next_boundary = pulse_start + attack->textent;
      } else {
        next_boundary = (k + 1.0) * period;
      }
    }

    Time dt = in_pulse ? config.dt_pulse : config.dt_idle;
    dt = std::min(dt, horizon - t);
    dt = std::min(dt, next_boundary - t);
    dt = std::min(dt, next_sample - t);
    const Time rto_expiry = bank.next_rto_expiry();
    if (rto_expiry > t + kTimeEps) dt = std::min(dt, rto_expiry - t);
    if (!marked) dt = std::min(dt, control.warmup - t);
    const Time next_edge =
        (std::floor(t / control.bin_width + kTimeEps) + 1.0) *
        control.bin_width;
    dt = std::min(dt, next_edge - t);
    if (dt < kTimeEps) dt = kTimeEps;

    const Time queue_delay = q / capacity;
    const double offered = bank.offered_rate(t, queue_delay);
    const double atk_rate = in_pulse ? atk_pps : 0.0;
    const double total_in = offered + atk_rate;

    if (!config.droptail && total_in > 0.0) {
      avg = q + (avg - q) * std::exp(total_in * dt * ewma_log_keep);
    }
    const double p_early =
        config.droptail ? 0.0 : red_drop_probability(config.red, avg);

    const double admitted = (1.0 - p_early) * total_in;
    double q_next = q + (admitted - capacity) * dt;
    double forced_frac = 0.0;
    if (q_next > buffer) {
      const double inflow = admitted * dt;
      if (inflow > 0.0) {
        forced_frac = std::min(1.0, (q_next - buffer) / inflow);
      }
      q_next = buffer;
    }
    if (q_next < 0.0) q_next = 0.0;

    result.early_dropped_packets += p_early * total_in * dt;
    result.forced_dropped_packets += forced_frac * admitted * dt;

    const std::size_t bin = std::min(
        num_bins - 1,
        static_cast<std::size_t>((t + 0.5 * dt) / control.bin_width));
    result.incoming_bins[bin] +=
        offered * dt * tcp_bytes + atk_rate * dt * atk_bytes;
    result.attack_bins[bin] += atk_rate * dt * atk_bytes;

    bank.step(t, dt, p_early, forced_frac, queue_delay);
    if (control.traced_class >= 0) {
      result.cwnd_trace.emplace_back(
          t + dt, bank.window(static_cast<std::size_t>(control.traced_class)));
    }

    q = q_next;
    t += dt;
    ++result.steps;
  }
  while (next_sample <= horizon + kTimeEps) {
    result.queue_occupancy.push_back(q);
    result.red_avg_samples.push_back(config.droptail ? 0.0 : avg);
    next_sample += control.bin_width;
  }
  if (!marked) warmup_mark = bank.delivered_packets();

  const std::vector<double> window = bank.delivered_since(warmup_mark);
  result.per_class_goodput_bytes.reserve(window.size());
  for (double packets : window) {
    const double bytes = packets * tcp_bytes;
    result.per_class_goodput_bytes.push_back(bytes);
    result.goodput_bytes += bytes;
  }
  result.goodput_rate = result.goodput_bytes * 8.0 / control.measure;
  result.utilization = result.goodput_rate / config.bottleneck;
  result.loss_events = bank.loss_events;
  result.timeouts = bank.timeouts;
  return result;
}

}  // namespace pdos::fluid::refbench
