#include "fluid/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fluid/kernels.hpp"
#include "fluid/solve_detail.hpp"
#include "util/assert.hpp"

namespace pdos::fluid {

using detail::kDupackFloor;
using detail::kInf;
using detail::kTimeEps;

const char* simd_backend() { return simd::kBackendName; }

void FluidConfig::validate() const {
  aimd.validate();
  PDOS_REQUIRE(spacket > 0, "FluidConfig: spacket must be > 0");
  PDOS_REQUIRE(bottleneck > 0.0 && access > 0.0,
               "FluidConfig: link rates must be > 0");
  PDOS_REQUIRE(red.capacity > 0, "FluidConfig: buffer must be > 0");
  if (!droptail) red.validate();
  PDOS_REQUIRE(!classes.empty(), "FluidConfig: need at least one class");
  for (const FluidClass& c : classes) {
    PDOS_REQUIRE(c.rtt > 0.0, "FluidConfig: class RTT must be > 0");
    PDOS_REQUIRE(c.count > 0.0, "FluidConfig: class count must be > 0");
  }
  PDOS_REQUIRE(initial_ssthresh >= 2.0,
               "FluidConfig: initial_ssthresh must be >= 2");
  PDOS_REQUIRE(max_cwnd >= 1.0, "FluidConfig: max_cwnd must be >= 1");
  PDOS_REQUIRE(rto_min > 0.0, "FluidConfig: rto_min must be > 0");
  PDOS_REQUIRE(dt_pulse > 0.0 && dt_idle > 0.0,
               "FluidConfig: integration steps must be > 0");
}

std::vector<FluidClass> bin_classes(std::vector<FluidClass> classes,
                                    std::size_t max_classes) {
  PDOS_REQUIRE(max_classes >= 1, "bin_classes: max_classes must be >= 1");
  // Total count mass in, tracked with Neumaier compensation so the exact
  // Σcount invariant below is meaningful even for adversarial magnitudes.
  // (Integer flow counts below 2^53 sum exactly either way.)
  double total_in = 0.0;
  double comp_in = 0.0;
  for (const FluidClass& c : classes) {
    const double t = total_in + c.count;
    if (std::abs(total_in) >= std::abs(c.count)) {
      comp_in += (total_in - t) + c.count;
    } else {
      comp_in += (c.count - t) + total_in;
    }
    total_in = t;
  }
  // Exact phase: classes at bit-equal RTTs obey identical ODEs from
  // identical initial state, so summing their counts changes nothing but
  // the bookkeeping. Sorting first makes equal RTTs adjacent and the
  // output order canonical.
  std::sort(classes.begin(), classes.end(),
            [](const FluidClass& a, const FluidClass& b) {
              return a.rtt < b.rtt;
            });
  std::vector<FluidClass> merged;
  for (const FluidClass& c : classes) {
    if (!merged.empty() && merged.back().rtt == c.rtt) {
      merged.back().count += c.count;
    } else {
      merged.push_back(c);
    }
  }
  std::vector<FluidClass> binned;
  if (merged.size() <= max_classes) {
    binned = std::move(merged);
  } else {
    // Lossy phase: quantize the surviving RTTs onto max_classes
    // equal-width bins over [min, max] and collapse each occupied bin to
    // one class at its count-weighted mean RTT — the aggregate W/RTT
    // arrival rate of a bin is preserved to first order in the RTT
    // spread, which is what the queue balance integrates.
    const Time lo = merged.front().rtt;
    const Time hi = merged.back().rtt;
    const double span = hi - lo;  // > 0: equal RTTs all merged above
    std::vector<double> count(max_classes, 0.0);
    std::vector<double> rtt_mass(max_classes, 0.0);
    for (const FluidClass& c : merged) {
      std::size_t bin = static_cast<std::size_t>(
          static_cast<double>(max_classes) * (c.rtt - lo) / span);
      if (bin >= max_classes) bin = max_classes - 1;
      count[bin] += c.count;
      rtt_mass[bin] += c.count * c.rtt;
    }
    for (std::size_t b = 0; b < max_classes; ++b) {
      if (count[b] <= 0.0) continue;
      binned.push_back(FluidClass{rtt_mass[b] / count[b], count[b]});
    }
  }
  // Σcount invariant: binning only ever *adds* counts into buckets, so
  // the total flow mass must survive exactly up to summation rounding —
  // a drifted total would silently rescale goodput normalization in
  // million-flow runs. Compare compensated totals with a 1-ulp-per-term
  // relative guard; for integer counts both sums are exact and the check
  // amounts to equality.
  double total_out = 0.0;
  double comp_out = 0.0;
  for (const FluidClass& c : binned) {
    const double t = total_out + c.count;
    if (std::abs(total_out) >= std::abs(c.count)) {
      comp_out += (total_out - t) + c.count;
    } else {
      comp_out += (c.count - t) + total_out;
    }
    total_out = t;
  }
  const double in = total_in + comp_in;
  const double out = total_out + comp_out;
  PDOS_CHECK_MSG(std::abs(out - in) <=
                     1e-12 * std::max(1.0, std::abs(in)),
                 "bin_classes: total count mass drifted under binning");
  return binned;
}

double red_drop_probability(const RedParams& params, double avg) {
  double pb;
  if (avg < params.min_th) return 0.0;
  if (avg < params.max_th) {
    pb = params.max_p * (avg - params.min_th) /
         (params.max_th - params.min_th);
  } else if (params.gentle && avg < 2.0 * params.max_th) {
    pb = params.max_p +
         (1.0 - params.max_p) * (avg - params.max_th) / params.max_th;
  } else {
    return 1.0;
  }
  // Expectation of ns-2's count-spread drops: uniformized gaps of mean
  // (1 + 1/p_b)/2 packets realize 2 p_b / (1 + p_b) drops per arrival.
  return std::min(1.0, 2.0 * pb / (1.0 + pb));
}

AimdBank::AimdBank(const FluidConfig& config)
    : aimd_(config.aimd),
      access_pps_(config.access / (8.0 * static_cast<double>(config.spacket))),
      ssthresh0_(config.initial_ssthresh),
      max_cwnd_(config.max_cwnd),
      rto_min_(config.rto_min),
      ss_log_(std::log(1.0 + 1.0 / static_cast<double>(config.aimd.d))) {
  n_ = config.classes.size();
  // Pad the SoA state to the SIMD block width. Pad classes carry
  // rtt = +inf and count = 0: their arrival rate is w/inf = +0, their
  // windows never move (dt_rtts = 0), their loss pressure stays zero,
  // and their reduction terms are exact +0.0 — so the padded tail is
  // arithmetically invisible (see kernels.hpp).
  n_pad_ = (n_ + simd::kLanes - 1) & ~(simd::kLanes - 1);
  rtt_.assign(n_pad_, kInf);
  count_.assign(n_pad_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    rtt_[i] = config.classes[i].rtt;
    count_[i] = config.classes[i].count;
  }
  w_.assign(n_pad_, 1.0);
  ssthresh_.assign(n_pad_, ssthresh0_);
  accum_.assign(n_pad_, 0.0);
  md_gate_.assign(n_pad_, 0.0);
  rto_until_.assign(n_pad_, 0.0);
  delivered_.assign(n_pad_, 0.0);
  x_.assign(n_pad_, 0.0);
  cx_.assign(n_pad_, 0.0);
  inv_.assign(n_pad_, 0.0);
  // Belt and braces: a pad class can never accumulate a packet of loss
  // pressure, but gate it out of episodes regardless.
  for (std::size_t i = n_; i < n_pad_; ++i) md_gate_[i] = kInf;
}

double AimdBank::refresh_rates(Time now, Time queue_delay) const {
  if (now == x_now_ && queue_delay == x_delay_) return x_offered_;
  using simd::DVec;
  const DVec vnow = simd::splat(now);
  const DVec vqd = simd::splat(queue_delay);
  const DVec vaccess = simd::splat(access_pps_);
  // Fixed-shape block tree: accumulator lane j holds classes ≡ j (mod 4)
  // in class order, combined (a0+a1)+(a2+a3) — the identical tree the
  // lane-batched path builds per lane, so offered rates never depend on
  // the vectorization axis.
  DVec acc = simd::zero();
  for (std::size_t k = 0; k < n_pad_; k += simd::kLanes) {
    const kernels::RateOut r = kernels::rate_kernel(
        simd::load(w_.data() + k), simd::load(rto_until_.data() + k), vnow,
        simd::load(rtt_.data() + k), vqd, vaccess);
    simd::store(x_.data() + k, r.x);
    simd::store(inv_.data() + k, r.inv_rtt);
    const DVec cx = simd::load(count_.data() + k) * r.x;
    simd::store(cx_.data() + k, cx);
    acc = acc + cx;
  }
  x_offered_ = kernels::tree_total(acc);
  x_now_ = now;
  x_delay_ = queue_delay;
  return x_offered_;
}

double AimdBank::offered_rate(Time now, Time queue_delay) const {
  return refresh_rates(now, queue_delay);
}

double AimdBank::step(Time now, Time dt, double p_early, double forced_frac,
                      Time queue_delay) {
  const double p_total = p_early + (1.0 - p_early) * forced_frac;
  const double offered = refresh_rates(now, queue_delay);
  kernels::AimdConsts c;
  c.access_pps = access_pps_;
  c.a = aimd_.a;
  c.b = aimd_.b;
  c.d = static_cast<double>(aimd_.d);
  c.a_over_d = aimd_.a / static_cast<double>(aimd_.d);
  c.ss_log = ss_log_;
  c.max_cwnd = max_cwnd_;
  c.rto_min = rto_min_;
  c.dupack_floor = kDupackFloor;
  kernels::StepIn in;
  in.now = simd::splat(now);
  in.dt = simd::splat(dt);
  in.p_total = simd::splat(p_total);
  in.queue_delay = simd::splat(queue_delay);
  in.inactive = simd::zero();
  in.omp_dt = simd::splat((1.0 - p_total) * dt);
  for (std::size_t k = 0; k < n_pad_; k += simd::kLanes) {
    kernels::BankChunk s;
    s.w = simd::load(w_.data() + k);
    s.ssthresh = simd::load(ssthresh_.data() + k);
    s.accum = simd::load(accum_.data() + k);
    s.md_gate = simd::load(md_gate_.data() + k);
    s.rto_until = simd::load(rto_until_.data() + k);
    s.delivered = simd::load(delivered_.data() + k);
    in.rtt = simd::load(rtt_.data() + k);
    in.x = simd::load(x_.data() + k);
    in.cx = simd::load(cx_.data() + k);
    in.inv_rtt = simd::load(inv_.data() + k);
    const kernels::StepOut out = kernels::step_kernel(s, in, c);
    simd::store(w_.data() + k, s.w);
    simd::store(ssthresh_.data() + k, s.ssthresh);
    simd::store(accum_.data() + k, s.accum);
    simd::store(md_gate_.data() + k, s.md_gate);
    simd::store(rto_until_.data() + k, s.rto_until);
    simd::store(delivered_.data() + k, s.delivered);
    timeouts += simd::mask_count(out.timeout_bits);
    loss_events += simd::mask_count(out.loss_bits);
  }
  x_now_ = -1.0;  // the windows moved: cached rates are stale
  return offered;
}

std::vector<double> AimdBank::delivered_packets() const {
  return std::vector<double>(delivered_.begin(),
                             delivered_.begin() +
                                 static_cast<std::ptrdiff_t>(n_));
}

std::vector<double> AimdBank::delivered_since(
    const std::vector<double>& mark) const {
  PDOS_CHECK(mark.size() == n_);
  std::vector<double> window(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    window[i] = delivered_[i] - mark[i];
  }
  return window;
}

Time AimdBank::next_rto_expiry() const {
  // Vectorized min over positive rto_until entries. Min is
  // order-independent, so this matches the scalar scan bitwise; pad
  // classes hold rto_until = 0 and blend to +inf like real idle ones.
  const simd::DVec vinf = simd::splat(kInf);
  simd::DVec next = vinf;
  for (std::size_t k = 0; k < n_pad_; k += simd::kLanes) {
    const simd::DVec r = simd::load(rto_until_.data() + k);
    next = simd::vmin(next,
                      simd::blend(simd::cmp_gt(r, simd::zero()), r, vinf));
  }
  Time best = kInf;
  for (std::size_t l = 0; l < simd::kLanes; ++l) {
    best = std::min(best, simd::lane(next, l));
  }
  return best;
}

FluidResult solve(const FluidConfig& config,
                  const std::optional<FluidAttack>& attack,
                  const FluidControl& control) {
  config.validate();
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "FluidControl: need warmup >= 0 and measure > 0");
  if (attack) {
    PDOS_REQUIRE(attack->textent > 0.0 && attack->rattack > 0.0 &&
                     attack->tspace >= 0.0 && attack->packet_bytes > 0,
                 "FluidAttack: invalid pulse train");
  }
  if (control.traced_class >= 0) {
    PDOS_REQUIRE(static_cast<std::size_t>(control.traced_class) <
                     config.classes.size(),
                 "FluidControl: traced_class out of range");
  }

  AimdBank bank(config);
  const double capacity = config.capacity_pps();
  const double buffer = static_cast<double>(config.red.capacity);
  const double atk_pps =
      attack ? attack->rattack / (8.0 * static_cast<double>(
                                            attack->packet_bytes))
             : 0.0;
  const double atk_bytes = attack ? static_cast<double>(attack->packet_bytes)
                                  : 0.0;
  const double tcp_bytes = static_cast<double>(config.spacket);
  const Time horizon = control.horizon();
  // (1 - w_q)^n per arrival batch, via exp(n log(1 - w_q)) with the log
  // hoisted out of the step loop; pow() would redo it every step.
  const double ewma_log_keep =
      config.droptail ? 0.0 : std::log(1.0 - config.red.wq);

  FluidResult result;
  result.bin_width = control.bin_width;
  const std::size_t num_bins = static_cast<std::size_t>(
      std::ceil(horizon / control.bin_width - kTimeEps));
  result.incoming_bins.assign(num_bins, 0.0);
  result.attack_bins.assign(num_bins, 0.0);
  result.queue_occupancy.reserve(num_bins + 2);
  result.red_avg_samples.reserve(num_bins + 2);

  double q = 0.0;    // queue level, packets
  double avg = 0.0;  // RED EWMA estimate
  Time t = 0.0;
  Time next_sample = 0.0;
  std::vector<double> warmup_mark;
  bool marked = control.warmup == 0.0;
  if (marked) warmup_mark.assign(config.classes.size(), 0.0);

  while (t < horizon - kTimeEps) {
    // Sample occupancy/EWMA at bin boundaries (mirrors the packet path's
    // occupancy sampler, which fires at t = 0, bw, 2bw, ...).
    while (next_sample <= t + kTimeEps) {
      result.queue_occupancy.push_back(q);
      result.red_avg_samples.push_back(config.droptail ? 0.0 : avg);
      next_sample += control.bin_width;
    }
    if (!marked && t >= control.warmup - kTimeEps) {
      warmup_mark = bank.delivered_packets();
      marked = true;
    }

    const detail::PulsePhase phase =
        detail::pulse_phase(attack ? &*attack : nullptr, t);
    const Time dt = detail::clip_step(
        t, config, phase.in_pulse, horizon, phase.next_boundary, next_sample,
        bank.next_rto_expiry(), marked, control.warmup, control.bin_width);

    const Time queue_delay = q / capacity;
    const double offered = bank.offered_rate(t, queue_delay);
    const double atk_rate = phase.in_pulse ? atk_pps : 0.0;
    const double total_in = offered + atk_rate;

    const detail::QueueStep qs = detail::queue_step(
        config, ewma_log_keep, capacity, buffer, q, avg, total_in, dt);
    avg = qs.avg;

    result.early_dropped_packets += qs.p_early * total_in * dt;
    result.forced_dropped_packets += qs.forced_frac * qs.admitted * dt;

    const std::size_t bin = std::min(
        num_bins - 1, static_cast<std::size_t>((t + 0.5 * dt) /
                                               control.bin_width));
    result.incoming_bins[bin] +=
        offered * dt * tcp_bytes + atk_rate * dt * atk_bytes;
    result.attack_bins[bin] += atk_rate * dt * atk_bytes;

    bank.step(t, dt, qs.p_early, qs.forced_frac, queue_delay);
    if (control.traced_class >= 0) {
      result.cwnd_trace.emplace_back(
          t + dt, bank.window(static_cast<std::size_t>(control.traced_class)));
    }

    q = qs.q_next;
    t += dt;
    ++result.steps;
  }
  while (next_sample <= horizon + kTimeEps) {
    result.queue_occupancy.push_back(q);
    result.red_avg_samples.push_back(config.droptail ? 0.0 : avg);
    next_sample += control.bin_width;
  }
  if (!marked) warmup_mark = bank.delivered_packets();

  const std::vector<double> window = bank.delivered_since(warmup_mark);
  result.per_class_goodput_bytes.reserve(window.size());
  for (double packets : window) {
    const double bytes = packets * tcp_bytes;
    result.per_class_goodput_bytes.push_back(bytes);
    result.goodput_bytes += bytes;
  }
  result.goodput_rate = result.goodput_bytes * 8.0 / control.measure;
  result.utilization = result.goodput_rate / config.bottleneck;
  result.loss_events = bank.loss_events;
  result.timeouts = bank.timeouts;
  return result;
}

}  // namespace pdos::fluid
