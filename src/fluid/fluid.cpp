#include "fluid/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace pdos::fluid {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Below this window NewReno cannot raise three dupacks, so a loss episode
// costs a retransmission timeout instead of a fast recovery.
constexpr double kDupackFloor = 4.0;
// Boundary snap tolerance: steps shorter than this are merged into the
// discontinuity they precede.
constexpr double kTimeEps = 1e-9;
}  // namespace

void FluidConfig::validate() const {
  aimd.validate();
  PDOS_REQUIRE(spacket > 0, "FluidConfig: spacket must be > 0");
  PDOS_REQUIRE(bottleneck > 0.0 && access > 0.0,
               "FluidConfig: link rates must be > 0");
  PDOS_REQUIRE(red.capacity > 0, "FluidConfig: buffer must be > 0");
  if (!droptail) red.validate();
  PDOS_REQUIRE(!classes.empty(), "FluidConfig: need at least one class");
  for (const FluidClass& c : classes) {
    PDOS_REQUIRE(c.rtt > 0.0, "FluidConfig: class RTT must be > 0");
    PDOS_REQUIRE(c.count > 0.0, "FluidConfig: class count must be > 0");
  }
  PDOS_REQUIRE(initial_ssthresh >= 2.0,
               "FluidConfig: initial_ssthresh must be >= 2");
  PDOS_REQUIRE(max_cwnd >= 1.0, "FluidConfig: max_cwnd must be >= 1");
  PDOS_REQUIRE(rto_min > 0.0, "FluidConfig: rto_min must be > 0");
  PDOS_REQUIRE(dt_pulse > 0.0 && dt_idle > 0.0,
               "FluidConfig: integration steps must be > 0");
}

std::vector<FluidClass> bin_classes(std::vector<FluidClass> classes,
                                    std::size_t max_classes) {
  PDOS_REQUIRE(max_classes >= 1, "bin_classes: max_classes must be >= 1");
  // Exact phase: classes at bit-equal RTTs obey identical ODEs from
  // identical initial state, so summing their counts changes nothing but
  // the bookkeeping. Sorting first makes equal RTTs adjacent and the
  // output order canonical.
  std::sort(classes.begin(), classes.end(),
            [](const FluidClass& a, const FluidClass& b) {
              return a.rtt < b.rtt;
            });
  std::vector<FluidClass> merged;
  for (const FluidClass& c : classes) {
    if (!merged.empty() && merged.back().rtt == c.rtt) {
      merged.back().count += c.count;
    } else {
      merged.push_back(c);
    }
  }
  if (merged.size() <= max_classes) return merged;
  // Lossy phase: quantize the surviving RTTs onto max_classes equal-width
  // bins over [min, max] and collapse each occupied bin to one class at
  // its count-weighted mean RTT — the aggregate W/RTT arrival rate of a
  // bin is preserved to first order in the RTT spread, which is what the
  // queue balance integrates.
  const Time lo = merged.front().rtt;
  const Time hi = merged.back().rtt;
  const double span = hi - lo;  // > 0: equal RTTs all merged above
  std::vector<double> count(max_classes, 0.0);
  std::vector<double> rtt_mass(max_classes, 0.0);
  for (const FluidClass& c : merged) {
    std::size_t bin = static_cast<std::size_t>(
        static_cast<double>(max_classes) * (c.rtt - lo) / span);
    if (bin >= max_classes) bin = max_classes - 1;
    count[bin] += c.count;
    rtt_mass[bin] += c.count * c.rtt;
  }
  std::vector<FluidClass> binned;
  for (std::size_t b = 0; b < max_classes; ++b) {
    if (count[b] <= 0.0) continue;
    binned.push_back(FluidClass{rtt_mass[b] / count[b], count[b]});
  }
  return binned;
}

double red_drop_probability(const RedParams& params, double avg) {
  double pb;
  if (avg < params.min_th) return 0.0;
  if (avg < params.max_th) {
    pb = params.max_p * (avg - params.min_th) /
         (params.max_th - params.min_th);
  } else if (params.gentle && avg < 2.0 * params.max_th) {
    pb = params.max_p +
         (1.0 - params.max_p) * (avg - params.max_th) / params.max_th;
  } else {
    return 1.0;
  }
  // Expectation of ns-2's count-spread drops: uniformized gaps of mean
  // (1 + 1/p_b)/2 packets realize 2 p_b / (1 + p_b) drops per arrival.
  return std::min(1.0, 2.0 * pb / (1.0 + pb));
}

AimdBank::AimdBank(const FluidConfig& config)
    : aimd_(config.aimd),
      access_pps_(config.access / (8.0 * static_cast<double>(config.spacket))),
      ssthresh0_(config.initial_ssthresh),
      max_cwnd_(config.max_cwnd),
      rto_min_(config.rto_min),
      ss_log_(std::log(1.0 + 1.0 / static_cast<double>(config.aimd.d))) {
  const std::size_t n = config.classes.size();
  rtt_.reserve(n);
  count_.reserve(n);
  for (const FluidClass& c : config.classes) {
    rtt_.push_back(c.rtt);
    count_.push_back(c.count);
  }
  w_.assign(n, 1.0);
  ssthresh_.assign(n, ssthresh0_);
  accum_.assign(n, 0.0);
  md_gate_.assign(n, 0.0);
  rto_until_.assign(n, 0.0);
  delivered_.assign(n, 0.0);
  x_.assign(n, 0.0);
}

double AimdBank::refresh_rates(Time now, Time queue_delay) const {
  if (now == x_now_ && queue_delay == x_delay_) return x_offered_;
  double offered = 0.0;
  // Branchless over the frozen mask so the divide chain vectorizes: the
  // inner loop is the solver's single hottest statement.
  for (std::size_t i = 0; i < w_.size(); ++i) {
    const double active = now < rto_until_[i] ? 0.0 : 1.0;
    const double x =
        active * std::min(w_[i] / (rtt_[i] + queue_delay), access_pps_);
    x_[i] = x;
    offered += count_[i] * x;
  }
  x_offered_ = offered;
  x_now_ = now;
  x_delay_ = queue_delay;
  return offered;
}

double AimdBank::offered_rate(Time now, Time queue_delay) const {
  return refresh_rates(now, queue_delay);
}

double AimdBank::step(Time now, Time dt, double p_early, double forced_frac,
                      Time queue_delay) {
  const double p_total = p_early + (1.0 - p_early) * forced_frac;
  const double offered = refresh_rates(now, queue_delay);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    if (now < rto_until_[i]) continue;  // frozen: no arrivals, no growth
    const double rtt = rtt_[i] + queue_delay;
    const double dt_rtts = dt / rtt;  // the step in units of this class's RTT
    const double x = x_[i];
    delivered_[i] += count_[i] * x * (1.0 - p_total) * dt;

    // Loss pressure: expected drops per flow integrate until they amount
    // to a whole packet, then the class takes one NewReno episode. The
    // pressure decays over ~2 RTTs when the path runs clean, so isolated
    // sub-packet residue from an old pulse cannot trigger a phantom
    // episode much later.
    if (p_total > 0.0) {
      accum_[i] += p_total * x * dt;
    } else if (accum_[i] > 0.0) {
      accum_[i] *= 1.0 - std::min(1.0, 0.5 * dt_rtts);
    }
    if (accum_[i] >= 1.0 && now >= md_gate_[i]) {
      accum_[i] = 0.0;
      if (w_[i] < kDupackFloor) {
        // Too few in-flight segments for three dupacks: RTO. The window
        // restarts from one in slow start when the freeze expires.
        ++timeouts;
        ssthresh_[i] = std::max(2.0, 0.5 * w_[i]);
        w_[i] = 1.0;
        rto_until_[i] = now + std::max(rto_min_, 2.0 * rtt);
        md_gate_[i] = rto_until_[i];
      } else {
        ++loss_events;
        ssthresh_[i] = std::max(2.0, aimd_.b * w_[i]);
        w_[i] = std::max(1.0, aimd_.b * w_[i]);
        // One decrease per window's worth of feedback: NewReno ignores
        // further losses of the same flight.
        md_gate_[i] = now + rtt;
      }
      continue;  // no growth on the episode step
    }

    if (w_[i] < ssthresh_[i]) {
      w_[i] += w_[i] * ss_log_ * dt_rtts;  // slow start: doubling per d-RTT
    } else {
      w_[i] += aimd_.a * dt_rtts / static_cast<double>(aimd_.d);
    }
    if (w_[i] > max_cwnd_) w_[i] = max_cwnd_;
  }
  x_now_ = -1.0;  // the windows moved: cached rates are stale
  return offered;
}

std::vector<double> AimdBank::delivered_since(
    const std::vector<double>& mark) const {
  PDOS_CHECK(mark.size() == delivered_.size());
  std::vector<double> window(delivered_.size());
  for (std::size_t i = 0; i < delivered_.size(); ++i) {
    window[i] = delivered_[i] - mark[i];
  }
  return window;
}

Time AimdBank::next_rto_expiry() const {
  Time next = kInf;
  for (double until : rto_until_) {
    if (until > 0.0 && until < next) next = until;
  }
  return next;
}

FluidResult solve(const FluidConfig& config,
                  const std::optional<FluidAttack>& attack,
                  const FluidControl& control) {
  config.validate();
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "FluidControl: need warmup >= 0 and measure > 0");
  if (attack) {
    PDOS_REQUIRE(attack->textent > 0.0 && attack->rattack > 0.0 &&
                     attack->tspace >= 0.0 && attack->packet_bytes > 0,
                 "FluidAttack: invalid pulse train");
  }
  if (control.traced_class >= 0) {
    PDOS_REQUIRE(static_cast<std::size_t>(control.traced_class) <
                     config.classes.size(),
                 "FluidControl: traced_class out of range");
  }

  AimdBank bank(config);
  const double capacity = config.capacity_pps();
  const double buffer = static_cast<double>(config.red.capacity);
  const double atk_pps =
      attack ? attack->rattack / (8.0 * static_cast<double>(
                                            attack->packet_bytes))
             : 0.0;
  const double atk_bytes = attack ? static_cast<double>(attack->packet_bytes)
                                  : 0.0;
  const double tcp_bytes = static_cast<double>(config.spacket);
  const Time horizon = control.horizon();
  // (1 - w_q)^n per arrival batch, via exp(n log(1 - w_q)) with the log
  // hoisted out of the step loop; pow() would redo it every step.
  const double ewma_log_keep =
      config.droptail ? 0.0 : std::log(1.0 - config.red.wq);

  FluidResult result;
  result.bin_width = control.bin_width;
  const std::size_t num_bins = static_cast<std::size_t>(
      std::ceil(horizon / control.bin_width - kTimeEps));
  result.incoming_bins.assign(num_bins, 0.0);
  result.attack_bins.assign(num_bins, 0.0);
  result.queue_occupancy.reserve(num_bins + 2);
  result.red_avg_samples.reserve(num_bins + 2);

  double q = 0.0;    // queue level, packets
  double avg = 0.0;  // RED EWMA estimate
  Time t = 0.0;
  Time next_sample = 0.0;
  std::vector<double> warmup_mark;
  bool marked = control.warmup == 0.0;
  if (marked) warmup_mark.assign(config.classes.size(), 0.0);

  while (t < horizon - kTimeEps) {
    // Sample occupancy/EWMA at bin boundaries (mirrors the packet path's
    // occupancy sampler, which fires at t = 0, bw, 2bw, ...).
    while (next_sample <= t + kTimeEps) {
      result.queue_occupancy.push_back(q);
      result.red_avg_samples.push_back(config.droptail ? 0.0 : avg);
      next_sample += control.bin_width;
    }
    if (!marked && t >= control.warmup - kTimeEps) {
      warmup_mark = bank.delivered_packets();
      marked = true;
    }

    // Pulse phase and the next square-wave discontinuity.
    bool in_pulse = false;
    Time next_boundary = kInf;
    if (attack) {
      const Time period = attack->period();
      const double k = std::floor((t + kTimeEps) / period);
      const Time pulse_start = k * period;
      if (t < pulse_start + attack->textent - kTimeEps) {
        in_pulse = true;
        next_boundary = pulse_start + attack->textent;
      } else {
        next_boundary = (k + 1.0) * period;
      }
    }

    // Step size: the base resolution for the current phase, clipped so no
    // step straddles a pulse edge, an RTO expiry, a sample instant, a bin
    // edge, the warmup mark, or the horizon.
    Time dt = in_pulse ? config.dt_pulse : config.dt_idle;
    dt = std::min(dt, horizon - t);
    dt = std::min(dt, next_boundary - t);
    dt = std::min(dt, next_sample - t);
    const Time rto_expiry = bank.next_rto_expiry();
    if (rto_expiry > t + kTimeEps) dt = std::min(dt, rto_expiry - t);
    if (!marked) dt = std::min(dt, control.warmup - t);
    const Time next_edge =
        (std::floor(t / control.bin_width + kTimeEps) + 1.0) *
        control.bin_width;
    dt = std::min(dt, next_edge - t);
    if (dt < kTimeEps) dt = kTimeEps;

    const Time queue_delay = q / capacity;
    const double offered = bank.offered_rate(t, queue_delay);
    const double atk_rate = in_pulse ? atk_pps : 0.0;
    const double total_in = offered + atk_rate;

    // RED's estimator sees every arrival at the current backlog: n
    // arrivals move avg toward q by (1 - w_q)^n.
    if (!config.droptail && total_in > 0.0) {
      avg = q + (avg - q) * std::exp(total_in * dt * ewma_log_keep);
    }
    const double p_early =
        config.droptail ? 0.0 : red_drop_probability(config.red, avg);

    // Queue balance over the step; overflow converts into a forced-drop
    // fraction applied uniformly to the step's admitted fluid.
    const double admitted = (1.0 - p_early) * total_in;
    double q_next = q + (admitted - capacity) * dt;
    double forced_frac = 0.0;
    if (q_next > buffer) {
      const double inflow = admitted * dt;
      if (inflow > 0.0) {
        forced_frac = std::min(1.0, (q_next - buffer) / inflow);
      }
      q_next = buffer;
    }
    if (q_next < 0.0) q_next = 0.0;

    result.early_dropped_packets += p_early * total_in * dt;
    result.forced_dropped_packets += forced_frac * admitted * dt;

    const std::size_t bin = std::min(
        num_bins - 1, static_cast<std::size_t>((t + 0.5 * dt) /
                                               control.bin_width));
    result.incoming_bins[bin] +=
        offered * dt * tcp_bytes + atk_rate * dt * atk_bytes;
    result.attack_bins[bin] += atk_rate * dt * atk_bytes;

    bank.step(t, dt, p_early, forced_frac, queue_delay);
    if (control.traced_class >= 0) {
      result.cwnd_trace.emplace_back(
          t + dt, bank.window(static_cast<std::size_t>(control.traced_class)));
    }

    q = q_next;
    t += dt;
    ++result.steps;
  }
  while (next_sample <= horizon + kTimeEps) {
    result.queue_occupancy.push_back(q);
    result.red_avg_samples.push_back(config.droptail ? 0.0 : avg);
    next_sample += control.bin_width;
  }
  if (!marked) warmup_mark = bank.delivered_packets();

  const std::vector<double> window = bank.delivered_since(warmup_mark);
  result.per_class_goodput_bytes.reserve(window.size());
  for (double packets : window) {
    const double bytes = packets * tcp_bytes;
    result.per_class_goodput_bytes.push_back(bytes);
    result.goodput_bytes += bytes;
  }
  result.goodput_rate = result.goodput_bytes * 8.0 / control.measure;
  result.utilization = result.goodput_rate / config.bottleneck;
  result.loss_events = bank.loss_events;
  result.timeouts = bank.timeouts;
  return result;
}

}  // namespace pdos::fluid
