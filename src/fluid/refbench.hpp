// Frozen scalar reference solver for benchmark A/B ratios only.
//
// This is a verbatim snapshot of the fluid solver as it stood before the
// vectorized kernels landed (DESIGN.md §16): branchy per-class loops,
// linear (non-tree) offered-rate reduction, no lane padding. It is
// compiled without any SIMD arch flags (see src/fluid/CMakeLists.txt) so
// bench_report and micro_fluid can measure an honest same-machine
// "pre-PR scalar" arm against the vectorized paths — the ≥3x binned and
// ≥4x batched γ-grid floors in bench-smoke are in-run ratios against
// this solver, not cross-host wall-clock comparisons.
//
// Nothing outside bench/ and tools/ may depend on this header. The
// snapshot is intentionally NOT kept semantically in sync with
// fluid::solve: its results agree only to the reassociation error of the
// offered-rate reduction (~1 ulp per class), which is irrelevant for
// timing and asserted loosely where the benches sanity-check outputs.
#pragma once

#include "fluid/fluid.hpp"

namespace pdos::fluid::refbench {

/// Pre-PR scalar solve: identical inputs/outputs to fluid::solve, legacy
/// per-class scalar loops inside.
FluidResult solve(const FluidConfig& config,
                  const std::optional<FluidAttack>& attack,
                  const FluidControl& control);

}  // namespace pdos::fluid::refbench
