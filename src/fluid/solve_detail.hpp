// Shared scalar per-step driver pieces of the fluid solver, factored out
// so the single-point driver (fluid.cpp solve) and the lane-batched
// driver (batch.cpp solve_batch) execute bit-identical arithmetic for
// one lane's step schedule: pulse phase, step clipping, and the RED
// EWMA / queue-balance update. Internal to src/fluid — each function is
// inline and compiled with the same flags in both TUs, which is what
// makes "each lane keeps its exact single-point step schedule" a bitwise
// statement rather than an approximation (DESIGN.md §16).
#pragma once

#include <cmath>
#include <limits>

#include "fluid/fluid.hpp"

namespace pdos::fluid::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();
// Below this window NewReno cannot raise three dupacks, so a loss episode
// costs a retransmission timeout instead of a fast recovery.
inline constexpr double kDupackFloor = 4.0;
// Boundary snap tolerance: steps shorter than this are merged into the
// discontinuity they precede.
inline constexpr double kTimeEps = 1e-9;

/// Square-wave phase at time t: inside a pulse or not, and the next
/// discontinuity the step must not straddle.
struct PulsePhase {
  bool in_pulse = false;
  Time next_boundary = kInf;
};

inline PulsePhase pulse_phase(const FluidAttack* attack, Time t) {
  PulsePhase ph;
  if (attack != nullptr) {
    const Time period = attack->period();
    const double k = std::floor((t + kTimeEps) / period);
    const Time pulse_start = k * period;
    if (t < pulse_start + attack->textent - kTimeEps) {
      ph.in_pulse = true;
      ph.next_boundary = pulse_start + attack->textent;
    } else {
      ph.next_boundary = (k + 1.0) * period;
    }
  }
  return ph;
}

/// Step size for the current phase, clipped so no step straddles a pulse
/// edge, an RTO expiry, a sample instant, a bin edge, the warmup mark, or
/// the horizon.
inline Time clip_step(Time t, const FluidConfig& config, bool in_pulse,
                      Time horizon, Time next_boundary, Time next_sample,
                      Time rto_expiry, bool marked, Time warmup,
                      Time bin_width) {
  Time dt = in_pulse ? config.dt_pulse : config.dt_idle;
  dt = std::min(dt, horizon - t);
  dt = std::min(dt, next_boundary - t);
  dt = std::min(dt, next_sample - t);
  if (rto_expiry > t + kTimeEps) dt = std::min(dt, rto_expiry - t);
  if (!marked) dt = std::min(dt, warmup - t);
  const Time next_edge =
      (std::floor(t / bin_width + kTimeEps) + 1.0) * bin_width;
  dt = std::min(dt, next_edge - t);
  if (dt < kTimeEps) dt = kTimeEps;
  return dt;
}

/// RED EWMA + queue balance over one step: updated average, early-drop
/// probability, admitted rate, next queue level, and the forced-drop
/// fraction the overflow converts into.
struct QueueStep {
  double avg = 0.0;
  double p_early = 0.0;
  double admitted = 0.0;
  double q_next = 0.0;
  double forced_frac = 0.0;
};

inline QueueStep queue_step(const FluidConfig& config, double ewma_log_keep,
                            double capacity, double buffer, double q,
                            double avg, double total_in, Time dt) {
  QueueStep s;
  // RED's estimator sees every arrival at the current backlog: n arrivals
  // move avg toward q by (1 - w_q)^n.
  if (!config.droptail && total_in > 0.0) {
    avg = q + (avg - q) * std::exp(total_in * dt * ewma_log_keep);
  }
  s.avg = avg;
  s.p_early =
      config.droptail ? 0.0 : red_drop_probability(config.red, avg);
  // Queue balance over the step; overflow converts into a forced-drop
  // fraction applied uniformly to the step's admitted fluid.
  s.admitted = (1.0 - s.p_early) * total_in;
  double q_next = q + (s.admitted - capacity) * dt;
  double forced_frac = 0.0;
  if (q_next > buffer) {
    const double inflow = s.admitted * dt;
    if (inflow > 0.0) {
      forced_frac = std::min(1.0, (q_next - buffer) / inflow);
    }
    q_next = buffer;
  }
  if (q_next < 0.0) q_next = 0.0;
  s.q_next = q_next;
  s.forced_frac = forced_frac;
  return s;
}

}  // namespace pdos::fluid::detail
