// Lane-batched fluid evaluation (DESIGN.md §16): solve W independent
// grid points that share one topology (FluidConfig classes, links, AQM)
// and one measurement window, in lockstep, with class-major × lane-minor
// SIMD state.
//
// Each lane is one (attack plan) grid point — per-lane γ/T_extent/
// R_attack via its own FluidAttack, or an unattacked baseline lane — and
// keeps its EXACT single-point step schedule: its own pulse-edge/RTO/
// bin-edge dt snaps, its own RED EWMA and queue balance, its own
// termination step count. Lanes that finish early are masked off and
// bit-frozen while the rest run on. The per-lane arithmetic sequence is
// IEEE-identical to a standalone fluid::solve of the same lane, so
//
//     solve_batch(cfg, {a, b, c}, ctl)[i] ≡ solve(cfg, lanes[i], ctl)
//
// bit for bit, on every backend (pinned by tests/fluid/batch_test.cpp).
// The win is throughput: the per-class kernel work of all W lanes runs
// through the same 4-wide SIMD kernels the single-point path uses for
// its classes (kernels.hpp), amortizing the scalar driver across the
// batch — this is what `search_confirm_gamma`'s fluid phase, run_sweep's
// fluid tier, and bench_report's gain-surface emitter batch through.
#pragma once

#include <optional>
#include <vector>

#include "fluid/fluid.hpp"

namespace pdos::fluid {

/// One grid point of a batched solve: the attack plan to evaluate on the
/// shared topology (nullopt = unattacked baseline lane).
struct BatchLane {
  std::optional<FluidAttack> attack;
};

/// Evaluate every lane against the shared (config, control), returning
/// one FluidResult per lane in input order, each bit-identical to the
/// corresponding single-point `solve`. Any W >= 1 is accepted; state is
/// padded internally to the SIMD block width, so ragged tails (grid size
/// not a multiple of the batch width) cost only the pad lanes' arithmetic.
std::vector<FluidResult> solve_batch(const FluidConfig& config,
                                     const std::vector<BatchLane>& lanes,
                                     const FluidControl& control);

}  // namespace pdos::fluid
