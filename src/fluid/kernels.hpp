// Width-agnostic SIMD kernels for the fluid AIMD bank (DESIGN.md §16).
//
// The per-element arithmetic of AimdBank::refresh_rates / AimdBank::step
// lives here as 4-wide masked kernels over simd::DVec, consumed by two
// callers with orthogonal vectorization axes:
//
//   * AimdBank (fluid.cpp): vectorizes ACROSS CLASSES of one solve —
//     step parameters (now, dt, p_total, queue_delay) are broadcast,
//     rtt/count vary per lane.
//   * solve_batch (batch.cpp): vectorizes ACROSS LANES (independent grid
//     points) — rtt/count are broadcast per class, step parameters vary
//     per lane.
//
// Both instantiate the exact same expression graph, so any element's
// arithmetic sequence is IEEE-identical whichever axis it was vectorized
// along; that is the whole bit-identity contract between single-point
// and batched fluid solves. Branches of the original scalar loops become
// whole-lane masks and blends: a blend picks one operand's unmodified
// bit pattern, so masked-off elements keep bit-frozen state exactly as
// the scalar `continue` did.
//
// This header must only be included from TUs of the pdos_fluid target
// that are compiled with the fluid SIMD flags (fluid.cpp, batch.cpp):
// the DVec backend is chosen per-TU by simd.hpp, and mixing TUs with
// different backends would be an ODR violation.
#pragma once

#include "util/simd.hpp"

namespace pdos::fluid::kernels {

using simd::blend;
using simd::cmp_ge;
using simd::cmp_gt;
using simd::cmp_lt;
using simd::DVec;
using simd::mask_bits;
using simd::splat;
using simd::vand;
using simd::vandnot;
using simd::vmax;
using simd::vmin;
using simd::vor;
using simd::zero;

/// Scalar AIMD constants shared by every element of a bank.
struct AimdConsts {
  double access_pps = 0.0;   // per-flow rate cap, pkts/s
  double a = 1.0;            // AIMD additive increase, segments per d RTTs
  double b = 0.5;            // AIMD multiplicative decrease factor
  double d = 1.0;            // RTTs per congestion-avoidance round
  double a_over_d = 1.0;     // a / d, divided once at setup (hot path)
  double ss_log = 0.0;       // ln(1 + 1/d): slow-start growth constant
  double max_cwnd = 10000.0;
  double rto_min = 1.0;
  double dupack_floor = 4.0;
};

/// One 4-wide chunk of mutable bank state, loaded by the caller.
struct BankChunk {
  DVec w;
  DVec ssthresh;
  DVec accum;
  DVec md_gate;
  DVec rto_until;
  DVec delivered;
};

/// Per-element step inputs. `inactive` is an extra caller-supplied skip
/// mask (all-ones lanes are bit-frozen); the kernel ors it with the RTO
/// freeze mask it derives itself.
struct StepIn {
  DVec now;
  DVec dt;
  DVec p_total;
  DVec queue_delay;
  DVec inactive;
  DVec omp_dt;   // (1 - p_total) * dt, precomputed once per step
  DVec rtt;      // propagation RTT per element
  DVec x;        // arrival rate per element, from rate_kernel
  DVec cx;       // count * x, the rate pass's reduction term, reused here
  DVec inv_rtt;  // 1 / (rtt + queue_delay), from the same rate_kernel call
};

/// Episode masks raised by one step_kernel call (simd::mask_bits layout).
struct StepOut {
  unsigned timeout_bits = 0;
  unsigned loss_bits = 0;
};

/// Arrival rate plus the effective-RTT reciprocal it divides by.
struct RateOut {
  DVec x;        // [now >= rto_until] * min(w * inv_rtt, access)
  DVec inv_rtt;  // 1 / (rtt + queue_delay)
};

/// Arrival rate x_i = [now >= rto_until] * min(w / (rtt + qd), access),
/// computed as w * (1/(rtt + qd)) so the one reciprocal per chunk also
/// serves step_kernel's dt/RTT conversion — the only division in the
/// whole chunk-step. The andnot realizes the scalar path's
/// `active * min(...)` exactly: both produce +0.0 for frozen elements
/// (x is never negative). Pad elements carry rtt = +inf, so
/// inv_rtt = +0.0 and their rate and window motion stay exactly zero.
inline RateOut rate_kernel(DVec w, DVec rto_until, DVec now, DVec rtt,
                           DVec queue_delay, DVec access) {
  const DVec frozen = cmp_lt(now, rto_until);
  RateOut out;
  out.inv_rtt = splat(1.0) / (rtt + queue_delay);
  out.x = vandnot(frozen, vmin(w * out.inv_rtt, access));
  return out;
}

/// Advance one 4-wide chunk by its per-element dt: delivered accounting,
/// loss-pressure integration/decay, NewReno episode (RTO freeze below the
/// dupack floor, multiplicative decrease above it), and slow-start/AIMD
/// growth — a masked transcription of the scalar per-class loop, same
/// operation order per element.
inline StepOut step_kernel(BankChunk& s, const StepIn& in,
                           const AimdConsts& c) {
  const DVec one = splat(1.0);
  const DVec frozen = cmp_lt(in.now, s.rto_until);
  const DVec skip = vor(frozen, in.inactive);
  const DVec dt_rtts = in.dt * in.inv_rtt;

  // delivered += (count * x) * ((1 - p_total) * dt); adding a masked
  // +0.0 leaves skipped elements bit-identical (delivered is never
  // -0.0). Both factors arrive precomputed: cx from the rate pass's
  // reduction term, omp_dt once per step.
  s.delivered = s.delivered + vandnot(skip, in.cx * in.omp_dt);

  // Loss pressure: integrate while the path drops, decay over ~2 RTTs
  // when it runs clean. When the chunk carries no drop probability and
  // no residual pressure the blend chain resolves to s.accum in every
  // lane, so skip the integration arithmetic outright — the episode
  // masks below are then all-false too (accum < 1 everywhere), which is
  // the common idle-phase case.
  const DVec pressure =
      vor(cmp_gt(in.p_total, zero()), cmp_gt(s.accum, zero()));
  DVec accum_next = s.accum;
  unsigned episode_bits = 0;
  DVec episode = zero();
  if (mask_bits(pressure) != 0) {
    const DVec grow_acc = s.accum + (in.p_total * in.x) * in.dt;
    const DVec decay_acc =
        s.accum * (one - vmin(one, splat(0.5) * dt_rtts));
    accum_next = blend(cmp_gt(in.p_total, zero()), grow_acc,
                       blend(cmp_gt(s.accum, zero()), decay_acc,
                             s.accum));
    accum_next = blend(skip, s.accum, accum_next);

    // Episode: a whole packet of pressure past the decrease gate.
    episode = vandnot(skip, vand(cmp_ge(accum_next, one),
                                 cmp_ge(in.now, s.md_gate)));
    episode_bits = mask_bits(episode);
  }

  // Growth on non-episode steps: slow start below ssthresh, linear AIMD
  // increase above, clamped to max_cwnd. The blend picks the slope
  // factor, not the summed result, so each element's arithmetic is
  // exactly w + slope*dt_rtts either way — same bits as computing both
  // branches in full.
  const DVec slope = blend(cmp_lt(s.w, s.ssthresh),
                           s.w * splat(c.ss_log), splat(c.a_over_d));
  const DVec capped = vmin(s.w + slope * dt_rtts, splat(c.max_cwnd));

  StepOut out;
  if (episode_bits == 0) {
    // No episode anywhere in the chunk: every episode-conditional blend
    // below would pick its fallback operand bit-for-bit, so commit the
    // growth result directly and leave ssthresh/md_gate/rto_until
    // untouched — identical state, none of the episode-target math.
    s.w = blend(skip, s.w, capped);
    s.accum = accum_next;
    return out;
  }

  // Below the dupack floor the episode is an RTO freeze; otherwise one
  // NewReno multiplicative decrease.
  const DVec to = vand(episode, cmp_lt(s.w, splat(c.dupack_floor)));
  const DVec md = vandnot(to, episode);

  const DVec rtt_eff = in.rtt + in.queue_delay;
  const DVec ssthresh_to = vmax(splat(2.0), splat(0.5) * s.w);
  const DVec rto_to =
      in.now + vmax(splat(c.rto_min), splat(2.0) * rtt_eff);
  const DVec ssthresh_md = vmax(splat(2.0), splat(c.b) * s.w);
  const DVec w_md = vmax(one, splat(c.b) * s.w);
  const DVec gate_md = in.now + rtt_eff;

  s.w = blend(skip, s.w,
              blend(episode, blend(to, one, w_md), capped));
  s.ssthresh = blend(episode, blend(to, ssthresh_to, ssthresh_md),
                     s.ssthresh);
  s.md_gate = blend(episode, blend(to, rto_to, gate_md), s.md_gate);
  s.rto_until = blend(to, rto_to, s.rto_until);
  s.accum = blend(episode, zero(), accum_next);

  out.timeout_bits = mask_bits(to);
  out.loss_bits = mask_bits(md);
  return out;
}

/// Final combine of a 4-accumulator block-tree sum: (a0+a1)+(a2+a3).
/// Every cross-class reduction uses accumulators indexed i & 3 and this
/// combine, in the class-vectorized and lane-vectorized paths alike, so
/// the summation tree never depends on how the loop was vectorized.
inline double tree_total(DVec acc) {
  return (simd::lane(acc, 0) + simd::lane(acc, 1)) +
         (simd::lane(acc, 2) + simd::lane(acc, 3));
}

}  // namespace pdos::fluid::kernels
