#include "fluid/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "fluid/kernels.hpp"
#include "fluid/solve_detail.hpp"
#include "util/assert.hpp"

namespace pdos::fluid {

namespace {

using detail::kInf;
using detail::kTimeEps;
using simd::DVec;

/// The scalar per-lane driver state: everything fluid::solve keeps in
/// locals, one copy per lane, advanced on each lane's own schedule.
struct LaneDriver {
  const FluidAttack* attack = nullptr;  // null: unattacked baseline lane
  double atk_pps = 0.0;
  double atk_bytes = 0.0;
  bool active = false;
  bool marked = false;
  double q = 0.0;    // queue level, packets
  double avg = 0.0;  // RED EWMA estimate
  Time t = 0.0;
  Time next_sample = 0.0;
  std::vector<double> warmup_mark;
  std::uint64_t loss_events = 0;
  std::uint64_t timeouts = 0;
  FluidResult result;
};

}  // namespace

std::vector<FluidResult> solve_batch(const FluidConfig& config,
                                     const std::vector<BatchLane>& lanes,
                                     const FluidControl& control) {
  config.validate();
  PDOS_REQUIRE(!lanes.empty(), "solve_batch: need at least one lane");
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "FluidControl: need warmup >= 0 and measure > 0");
  for (const BatchLane& lane : lanes) {
    if (lane.attack) {
      PDOS_REQUIRE(lane.attack->textent > 0.0 && lane.attack->rattack > 0.0 &&
                       lane.attack->tspace >= 0.0 &&
                       lane.attack->packet_bytes > 0,
                   "FluidAttack: invalid pulse train");
    }
  }
  if (control.traced_class >= 0) {
    PDOS_REQUIRE(static_cast<std::size_t>(control.traced_class) <
                     config.classes.size(),
                 "FluidControl: traced_class out of range");
  }

  const std::size_t n = config.classes.size();
  const std::size_t width = lanes.size();
  const std::size_t wpad =
      (width + simd::kLanes - 1) & ~(simd::kLanes - 1);
  const std::size_t chunks = wpad / simd::kLanes;

  // Class-major × lane-minor SIMD state: element (class i, lane l) lives
  // at i * wpad + l, so one 4-wide chunk is four lanes of one class. Pad
  // lanes (l >= width) are inactive from the start and bit-frozen by the
  // kernels' skip mask; unlike the single-point path no pad *classes* are
  // needed — the lane axis provides the vector width, and the reduction
  // tree (accumulator i & 3, combine (a0+a1)+(a2+a3)) matches the
  // class-vectorized one term for term because pad classes contribute
  // exact +0.0 there.
  std::vector<double> w_s(n * wpad, 1.0);
  std::vector<double> ssthresh_s(n * wpad, config.initial_ssthresh);
  std::vector<double> accum_s(n * wpad, 0.0);
  std::vector<double> md_gate_s(n * wpad, 0.0);
  std::vector<double> rto_until_s(n * wpad, 0.0);
  std::vector<double> delivered_s(n * wpad, 0.0);
  std::vector<double> x_s(n * wpad, 0.0);
  std::vector<double> cx_s(n * wpad, 0.0);
  std::vector<double> inv_s(n * wpad, 0.0);

  std::vector<double> rtt_c(n), count_c(n);
  for (std::size_t i = 0; i < n; ++i) {
    rtt_c[i] = config.classes[i].rtt;
    count_c[i] = config.classes[i].count;
  }

  // Per-lane step parameters consumed by the kernel passes.
  std::vector<double> now_a(wpad, 0.0);
  std::vector<double> dt_a(wpad, 0.0);
  std::vector<double> qd_a(wpad, 0.0);
  std::vector<double> p_total_a(wpad, 0.0);
  std::vector<double> inactive_a(wpad, simd::mask_true());
  std::vector<double> offered_a(wpad, 0.0);
  std::vector<double> rto_expiry_a(wpad, 0.0);
  std::vector<double> q_next_a(wpad, 0.0);
  std::vector<bool> in_pulse_a(wpad, false);
  std::vector<std::size_t> chunk_active(chunks, 0);

  kernels::AimdConsts consts;
  consts.access_pps =
      config.access / (8.0 * static_cast<double>(config.spacket));
  consts.a = config.aimd.a;
  consts.b = config.aimd.b;
  consts.d = static_cast<double>(config.aimd.d);
  consts.a_over_d = config.aimd.a / static_cast<double>(config.aimd.d);
  consts.ss_log =
      std::log(1.0 + 1.0 / static_cast<double>(config.aimd.d));
  consts.max_cwnd = config.max_cwnd;
  consts.rto_min = config.rto_min;
  consts.dupack_floor = detail::kDupackFloor;

  const double capacity = config.capacity_pps();
  const double buffer = static_cast<double>(config.red.capacity);
  const double tcp_bytes = static_cast<double>(config.spacket);
  const Time horizon = control.horizon();
  const double ewma_log_keep =
      config.droptail ? 0.0 : std::log(1.0 - config.red.wq);
  const std::size_t num_bins = static_cast<std::size_t>(
      std::ceil(horizon / control.bin_width - kTimeEps));

  std::vector<LaneDriver> drivers(width);
  std::size_t active_count = 0;

  const auto gather_mark = [&](std::size_t l) {
    std::vector<double> mark(n);
    for (std::size_t i = 0; i < n; ++i) mark[i] = delivered_s[i * wpad + l];
    return mark;
  };
  const auto finish_lane = [&](std::size_t l) {
    LaneDriver& lane = drivers[l];
    while (lane.next_sample <= horizon + kTimeEps) {
      lane.result.queue_occupancy.push_back(lane.q);
      lane.result.red_avg_samples.push_back(config.droptail ? 0.0
                                                            : lane.avg);
      lane.next_sample += control.bin_width;
    }
    if (!lane.marked) {
      lane.warmup_mark = gather_mark(l);
      lane.marked = true;
    }
    lane.active = false;
    dt_a[l] = 0.0;
    p_total_a[l] = 0.0;
    inactive_a[l] = simd::mask_true();
    --active_count;
    --chunk_active[l / simd::kLanes];
  };

  for (std::size_t l = 0; l < width; ++l) {
    LaneDriver& lane = drivers[l];
    lane.attack = lanes[l].attack ? &*lanes[l].attack : nullptr;
    if (lane.attack != nullptr) {
      lane.atk_pps =
          lane.attack->rattack /
          (8.0 * static_cast<double>(lane.attack->packet_bytes));
      lane.atk_bytes = static_cast<double>(lane.attack->packet_bytes);
    }
    lane.result.bin_width = control.bin_width;
    lane.result.incoming_bins.assign(num_bins, 0.0);
    lane.result.attack_bins.assign(num_bins, 0.0);
    lane.result.queue_occupancy.reserve(num_bins + 2);
    lane.result.red_avg_samples.reserve(num_bins + 2);
    lane.marked = control.warmup == 0.0;
    if (lane.marked) lane.warmup_mark.assign(n, 0.0);
    lane.active = true;
    inactive_a[l] = 0.0;
    ++active_count;
    ++chunk_active[l / simd::kLanes];
    if (!(lane.t < horizon - kTimeEps)) finish_lane(l);
  }

  const DVec vaccess = simd::splat(consts.access_pps);
  const DVec vinf = simd::splat(kInf);

  while (active_count > 0) {
    // --- Per-lane RTO horizon (lane-vectorized min over classes; min is
    // order-independent, so this matches the scalar scan bitwise).
    for (std::size_t cb = 0; cb < chunks; ++cb) {
      if (chunk_active[cb] == 0) continue;
      const std::size_t lb = cb * simd::kLanes;
      DVec next = vinf;
      for (std::size_t i = 0; i < n; ++i) {
        const DVec r = simd::load(rto_until_s.data() + i * wpad + lb);
        next = simd::vmin(
            next, simd::blend(simd::cmp_gt(r, simd::zero()), r, vinf));
      }
      simd::store(rto_expiry_a.data() + lb, next);
    }

    // --- Scalar pre-step driver, one lane at a time: sampling, warmup
    // mark, pulse phase, dt clipping — the exact head of fluid::solve's
    // iteration for this lane's (t, q, avg).
    for (std::size_t l = 0; l < width; ++l) {
      LaneDriver& lane = drivers[l];
      if (!lane.active) continue;
      while (lane.next_sample <= lane.t + kTimeEps) {
        lane.result.queue_occupancy.push_back(lane.q);
        lane.result.red_avg_samples.push_back(config.droptail ? 0.0
                                                              : lane.avg);
        lane.next_sample += control.bin_width;
      }
      if (!lane.marked && lane.t >= control.warmup - kTimeEps) {
        lane.warmup_mark = gather_mark(l);
        lane.marked = true;
      }
      const detail::PulsePhase phase = detail::pulse_phase(lane.attack,
                                                           lane.t);
      in_pulse_a[l] = phase.in_pulse;
      const Time dt = detail::clip_step(
          lane.t, config, phase.in_pulse, horizon, phase.next_boundary,
          lane.next_sample, rto_expiry_a[l], lane.marked, control.warmup,
          control.bin_width);
      now_a[l] = lane.t;
      dt_a[l] = dt;
      qd_a[l] = lane.q / capacity;
    }

    // --- Rate kernels + offered-rate block tree, lanes vectorized.
    for (std::size_t cb = 0; cb < chunks; ++cb) {
      if (chunk_active[cb] == 0) continue;
      const std::size_t lb = cb * simd::kLanes;
      const DVec vnow = simd::load(now_a.data() + lb);
      const DVec vqd = simd::load(qd_a.data() + lb);
      DVec acc0 = simd::zero();
      DVec acc1 = simd::zero();
      DVec acc2 = simd::zero();
      DVec acc3 = simd::zero();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t base = i * wpad + lb;
        const kernels::RateOut r = kernels::rate_kernel(
            simd::load(w_s.data() + base),
            simd::load(rto_until_s.data() + base), vnow,
            simd::splat(rtt_c[i]), vqd, vaccess);
        simd::store(x_s.data() + base, r.x);
        simd::store(inv_s.data() + base, r.inv_rtt);
        const DVec term = simd::splat(count_c[i]) * r.x;
        simd::store(cx_s.data() + base, term);
        switch (i & 3) {
          case 0: acc0 = acc0 + term; break;
          case 1: acc1 = acc1 + term; break;
          case 2: acc2 = acc2 + term; break;
          default: acc3 = acc3 + term; break;
        }
      }
      simd::store(offered_a.data() + lb,
                  (acc0 + acc1) + (acc2 + acc3));
    }

    // --- Scalar queue/RED balance and series accounting per lane.
    for (std::size_t l = 0; l < width; ++l) {
      LaneDriver& lane = drivers[l];
      if (!lane.active) continue;
      const Time dt = dt_a[l];
      const double offered = offered_a[l];
      const double atk_rate = in_pulse_a[l] ? lane.atk_pps : 0.0;
      const double total_in = offered + atk_rate;
      const detail::QueueStep qs =
          detail::queue_step(config, ewma_log_keep, capacity, buffer,
                             lane.q, lane.avg, total_in, dt);
      lane.avg = qs.avg;
      lane.result.early_dropped_packets += qs.p_early * total_in * dt;
      lane.result.forced_dropped_packets +=
          qs.forced_frac * qs.admitted * dt;
      const std::size_t bin = std::min(
          num_bins - 1, static_cast<std::size_t>((lane.t + 0.5 * dt) /
                                                 control.bin_width));
      lane.result.incoming_bins[bin] +=
          offered * dt * tcp_bytes + atk_rate * dt * lane.atk_bytes;
      lane.result.attack_bins[bin] += atk_rate * dt * lane.atk_bytes;
      // Matches AimdBank::step's p_total composition exactly.
      p_total_a[l] = qs.p_early + (1.0 - qs.p_early) * qs.forced_frac;
      q_next_a[l] = qs.q_next;
    }

    // --- Step kernels, lanes vectorized, per-lane dt/p/qd vectors.
    for (std::size_t cb = 0; cb < chunks; ++cb) {
      if (chunk_active[cb] == 0) continue;
      const std::size_t lb = cb * simd::kLanes;
      kernels::StepIn in;
      in.now = simd::load(now_a.data() + lb);
      in.dt = simd::load(dt_a.data() + lb);
      in.p_total = simd::load(p_total_a.data() + lb);
      in.queue_delay = simd::load(qd_a.data() + lb);
      in.inactive = simd::load(inactive_a.data() + lb);
      in.omp_dt = (simd::splat(1.0) - in.p_total) * in.dt;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t base = i * wpad + lb;
        kernels::BankChunk s;
        s.w = simd::load(w_s.data() + base);
        s.ssthresh = simd::load(ssthresh_s.data() + base);
        s.accum = simd::load(accum_s.data() + base);
        s.md_gate = simd::load(md_gate_s.data() + base);
        s.rto_until = simd::load(rto_until_s.data() + base);
        s.delivered = simd::load(delivered_s.data() + base);
        in.rtt = simd::splat(rtt_c[i]);
        in.x = simd::load(x_s.data() + base);
        in.cx = simd::load(cx_s.data() + base);
        in.inv_rtt = simd::load(inv_s.data() + base);
        const kernels::StepOut out = kernels::step_kernel(s, in, consts);
        simd::store(w_s.data() + base, s.w);
        simd::store(ssthresh_s.data() + base, s.ssthresh);
        simd::store(accum_s.data() + base, s.accum);
        simd::store(md_gate_s.data() + base, s.md_gate);
        simd::store(rto_until_s.data() + base, s.rto_until);
        simd::store(delivered_s.data() + base, s.delivered);
        for (unsigned bits = out.timeout_bits; bits != 0;
             bits &= bits - 1) {
          const unsigned b =
              static_cast<unsigned>(__builtin_ctz(bits));
          ++drivers[lb + b].timeouts;
        }
        for (unsigned bits = out.loss_bits; bits != 0; bits &= bits - 1) {
          const unsigned b =
              static_cast<unsigned>(__builtin_ctz(bits));
          ++drivers[lb + b].loss_events;
        }
      }
    }

    // --- Commit the step per lane, finishing lanes that hit the horizon.
    for (std::size_t l = 0; l < width; ++l) {
      LaneDriver& lane = drivers[l];
      if (!lane.active) continue;
      if (control.traced_class >= 0) {
        const std::size_t tc =
            static_cast<std::size_t>(control.traced_class);
        lane.result.cwnd_trace.emplace_back(lane.t + dt_a[l],
                                            w_s[tc * wpad + l]);
      }
      lane.q = q_next_a[l];
      lane.t += dt_a[l];
      ++lane.result.steps;
      if (!(lane.t < horizon - kTimeEps)) finish_lane(l);
    }
  }

  std::vector<FluidResult> results;
  results.reserve(width);
  for (std::size_t l = 0; l < width; ++l) {
    LaneDriver& lane = drivers[l];
    FluidResult& result = lane.result;
    result.per_class_goodput_bytes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double packets =
          delivered_s[i * wpad + l] - lane.warmup_mark[i];
      const double bytes = packets * tcp_bytes;
      result.per_class_goodput_bytes.push_back(bytes);
      result.goodput_bytes += bytes;
    }
    result.goodput_rate = result.goodput_bytes * 8.0 / control.measure;
    result.utilization = result.goodput_rate / config.bottleneck;
    result.loss_events = lane.loss_events;
    result.timeouts = lane.timeouts;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace pdos::fluid
