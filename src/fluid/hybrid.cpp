#include "fluid/hybrid.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pdos::fluid {

namespace {
// The background aggregate never claims the whole link: the foreground
// packets must keep draining, however slowly, or the service-time scale
// diverges.
constexpr double kMaxBackgroundShare = 0.98;
}  // namespace

FluidBackgroundSource::FluidBackgroundSource(Simulator& sim, Link* bottleneck,
                                             RedQueue* red, FluidConfig config,
                                             Time tick)
    : sim_(sim),
      bottleneck_(bottleneck),
      red_(red),
      config_(std::move(config)),
      tick_(tick),
      bank_(config_),
      timer_(sim.scheduler(), [this] { on_tick(); }) {
  PDOS_REQUIRE(bottleneck_ != nullptr && red_ != nullptr,
               "FluidBackgroundSource: need a bottleneck link and RED queue");
  PDOS_REQUIRE(tick_ > 0.0, "FluidBackgroundSource: tick must be > 0");
  config_.validate();
}

void FluidBackgroundSource::start(Time when) {
  last_ = when;
  timer_.schedule_at(when + tick_);
}

void FluidBackgroundSource::on_tick() {
  const Time now = sim_.now();
  const Time dt = now - last_;
  last_ = now;
  ++ticks_;
  timer_.schedule_at(now + tick_);
  if (dt <= 0.0) return;

  const double capacity = config_.capacity_pps();

  // Flush any lazily-fused services so the composition we read is current.
  bottleneck_->settle();

  // 1) Drain: the FIFO serves real and virtual packets in proportion to
  // their share of the combined backlog over the elapsed tick.
  const double real_len = static_cast<double>(red_->length());
  double backlog = red_->fluid_backlog();
  const double combined = real_len + backlog;
  double share = 0.0;
  if (combined > 0.0) {
    share = std::min(kMaxBackgroundShare, backlog / combined);
    const double served = std::min(backlog, share * capacity * dt);
    red_->fluid_drain(served);
    backlog -= served;
  }
  // Foreground service runs at the residual capacity for the next tick.
  bottleneck_->set_service_scale(1.0 / (1.0 - share));

  // 2) Arrivals: offer the aggregate's fluid to RED. Early drops come from
  // the live EWMA average (fed by real and virtual arrivals alike); the
  // remainder lands in the virtual backlog up to the buffer's free space,
  // the excess is a forced drop.
  const Time queue_delay = (static_cast<double>(red_->length()) + backlog) /
                           capacity;
  const double p_early =
      config_.droptail ? 0.0
                       : red_drop_probability(red_->params(), red_->avg());
  const double offered = bank_.offered_rate(now, queue_delay);
  const double arrivals = offered * dt;
  const double requested = arrivals * (1.0 - p_early);
  const double admitted = red_->fluid_arrive(arrivals, requested);
  const double forced_frac =
      requested > 0.0 ? 1.0 - admitted / requested : 0.0;

  // 3) Advance the background windows under the loss they just saw.
  bank_.step(now, dt, p_early, std::clamp(forced_frac, 0.0, 1.0),
             queue_delay);
}

}  // namespace pdos::fluid
