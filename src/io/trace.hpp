// Per-packet event tracing (ns-2 style trace lines).
//
// A `TraceLogger` subscribes to link taps and records one line per event:
//
//     <time> <event> <link> <type> <flow> <seq> <size>
//
// with event '+' (arrival at the queue) or '-' (departure after
// serialization), mirroring ns-2's trace format closely enough that
// existing trace-analysis habits carry over. Tracing is opt-in and filters
// by traffic class to keep files manageable.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pdos {

struct TraceFilter {
  bool tcp_data = true;
  bool tcp_ack = false;
  bool attack = true;
  bool udp = true;

  bool accepts(const Packet& pkt) const {
    switch (pkt.type) {
      case PacketType::kTcpData:
        return tcp_data;
      case PacketType::kTcpAck:
        return tcp_ack;
      case PacketType::kAttack:
        return attack;
      case PacketType::kUdp:
        return udp;
    }
    return false;
  }
};

class TraceLogger {
 public:
  /// The stream must outlive the logger; events stream as they happen.
  TraceLogger(Simulator& sim, std::ostream& out, TraceFilter filter = {});

  /// Subscribe to a link's arrival ('+') and departure ('-') events.
  /// The link must outlive the simulation run.
  void attach(Link& link);

  std::uint64_t lines_written() const { return lines_; }

 private:
  void write(char event, const std::string& link_name, const Packet& pkt);
  static const char* type_name(PacketType type);

  Simulator& sim_;
  std::ostream& out_;
  TraceFilter filter_;
  std::uint64_t lines_ = 0;
};

}  // namespace pdos
