// Per-packet event tracing (ns-2 style trace lines).
//
// A `TraceLogger` subscribes to link taps and records one line per event:
//
//     <time> <event> <link> <type> <flow> <seq> <size>
//
// with event '+' (arrival at the queue) or '-' (departure after
// serialization), mirroring ns-2's trace format closely enough that
// existing trace-analysis habits carry over. Tracing is opt-in and filters
// by traffic class to keep files manageable.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pdos {

struct TraceFilter {
  bool tcp_data = true;
  bool tcp_ack = false;
  bool attack = true;
  bool udp = true;

  bool accepts(const Packet& pkt) const {
    switch (pkt.type) {
      case PacketType::kTcpData:
        return tcp_data;
      case PacketType::kTcpAck:
        return tcp_ack;
      case PacketType::kAttack:
        return attack;
      case PacketType::kUdp:
        return udp;
    }
    return false;
  }
};

class TraceLogger {
 public:
  /// The stream must outlive the logger. Lines accumulate in an in-memory
  /// buffer and reach the stream in large writes — on `flush()`, at the
  /// high-water mark, and from the destructor — instead of paying the
  /// ostream formatting/virtual-call machinery per packet event.
  TraceLogger(Simulator& sim, std::ostream& out, TraceFilter filter = {});
  ~TraceLogger();

  TraceLogger(const TraceLogger&) = delete;
  TraceLogger& operator=(const TraceLogger&) = delete;

  /// Subscribe to a link's arrival ('+') and departure ('-') events.
  /// The link must outlive the simulation run.
  void attach(Link& link);

  /// Push all buffered lines to the stream. Call before reading the
  /// stream while the logger is still alive.
  void flush();

  std::uint64_t lines_written() const { return lines_; }

 private:
  void write(char event, const std::string& link_name, const Packet& pkt);
  static const char* type_name(PacketType type);

  // Flush once the buffer crosses this; it grows once to about this size
  // and is then recycled for the rest of the run.
  static constexpr std::size_t kFlushBytes = 1 << 20;

  Simulator& sim_;
  std::ostream& out_;
  TraceFilter filter_;
  std::string buffer_;
  std::uint64_t lines_ = 0;
};

}  // namespace pdos
