// Minimal CSV writing (RFC 4180 quoting).
//
// The bench harnesses print human-readable tables to stdout; CsvWriter is
// the machine-readable sibling for piping figures into plotting tools.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace pdos {

class CsvWriter {
 public:
  /// Writes the header immediately. The stream must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  /// Append one row; must match the column count.
  void row(const std::vector<std::string>& cells);

  /// Convenience: numeric row (formatted with %.6g).
  void row(std::initializer_list<double> cells);

  std::size_t rows_written() const { return rows_; }
  std::size_t columns() const { return columns_; }

  /// RFC 4180 escaping: quote fields containing comma, quote or newline.
  static std::string escape(const std::string& field);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace pdos
