#include "io/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace pdos {

TraceLogger::TraceLogger(Simulator& sim, std::ostream& out,
                         TraceFilter filter)
    : sim_(sim), out_(out), filter_(filter) {}

TraceLogger::~TraceLogger() { flush(); }

void TraceLogger::attach(Link& link) {
  // Taps are inline closures: capture the link (whose name outlives the
  // run) rather than a std::string copy that would not fit the tap's
  // inline storage.
  link.add_arrival_tap([this, ln = &link](const Packet& pkt) {
    if (filter_.accepts(pkt)) write('+', ln->name(), pkt);
  });
  link.add_departure_tap([this, ln = &link](const Packet& pkt) {
    if (filter_.accepts(pkt)) write('-', ln->name(), pkt);
  });
}

void TraceLogger::flush() {
  if (buffer_.empty()) return;
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();  // capacity retained for the next batch
}

const char* TraceLogger::type_name(PacketType type) {
  switch (type) {
    case PacketType::kTcpData:
      return "tcp";
    case PacketType::kTcpAck:
      return "ack";
    case PacketType::kAttack:
      return "atk";
    case PacketType::kUdp:
      return "udp";
  }
  return "?";
}

void TraceLogger::write(char event, const std::string& link_name,
                        const Packet& pkt) {
  // Same line format the streaming version produced: fixed 6-decimal time,
  // then space-separated fields.
  char line[192];
  const int n = std::snprintf(
      line, sizeof(line), "%.6f %c %s %s %" PRId32 " %" PRId32 " %" PRIu32 "\n",
      sim_.now(), event, link_name.c_str(), type_name(pkt.type), pkt.flow,
      pkt.seq, pkt.size_bytes);
  if (n > 0) {
    buffer_.append(line, static_cast<std::size_t>(
                             n < static_cast<int>(sizeof(line))
                                 ? n
                                 : static_cast<int>(sizeof(line)) - 1));
  }
  ++lines_;
  if (buffer_.size() >= kFlushBytes) flush();
}

}  // namespace pdos
