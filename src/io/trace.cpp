#include "io/trace.hpp"

#include <iomanip>

namespace pdos {

TraceLogger::TraceLogger(Simulator& sim, std::ostream& out,
                         TraceFilter filter)
    : sim_(sim), out_(out), filter_(filter) {}

void TraceLogger::attach(Link& link) {
  // Taps are inline closures: capture the link (whose name outlives the
  // run) rather than a std::string copy that would not fit the tap's
  // inline storage.
  link.add_arrival_tap([this, ln = &link](const Packet& pkt) {
    if (filter_.accepts(pkt)) write('+', ln->name(), pkt);
  });
  link.add_departure_tap([this, ln = &link](const Packet& pkt) {
    if (filter_.accepts(pkt)) write('-', ln->name(), pkt);
  });
}

const char* TraceLogger::type_name(PacketType type) {
  switch (type) {
    case PacketType::kTcpData:
      return "tcp";
    case PacketType::kTcpAck:
      return "ack";
    case PacketType::kAttack:
      return "atk";
    case PacketType::kUdp:
      return "udp";
  }
  return "?";
}

void TraceLogger::write(char event, const std::string& link_name,
                        const Packet& pkt) {
  out_ << std::fixed << std::setprecision(6) << sim_.now() << ' ' << event
       << ' ' << link_name << ' ' << type_name(pkt.type) << ' ' << pkt.flow
       << ' ' << pkt.seq << ' ' << pkt.size_bytes << '\n';
  ++lines_;
}

}  // namespace pdos
