#include "io/gnuplot.hpp"

#include <fstream>

#include "util/assert.hpp"

namespace pdos {

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  PDOS_REQUIRE(out.good(), "gnuplot: cannot open " + path + " for writing");
  return out;
}

}  // namespace

std::string write_gain_figure(const std::string& directory,
                              const std::string& stem,
                              const std::string& title,
                              const std::vector<GainCurveData>& curves) {
  PDOS_REQUIRE(!curves.empty(), "write_gain_figure: no curves");
  for (const auto& curve : curves) {
    PDOS_REQUIRE(curve.gamma.size() == curve.analytic.size() &&
                     curve.gamma.size() == curve.simulated.size(),
                 "write_gain_figure: ragged curve " + curve.label);
    PDOS_REQUIRE(!curve.gamma.empty(),
                 "write_gain_figure: empty curve " + curve.label);
  }
  const std::string dat_path = directory + "/" + stem + ".dat";
  const std::string gp_path = directory + "/" + stem + ".gp";

  // Data file: one block per curve (gnuplot `index`).
  auto dat = open_or_throw(dat_path);
  for (const auto& curve : curves) {
    dat << "# " << curve.label << "\n# gamma analytic simulated\n";
    for (std::size_t i = 0; i < curve.gamma.size(); ++i) {
      dat << curve.gamma[i] << ' ' << curve.analytic[i] << ' '
          << curve.simulated[i] << '\n';
    }
    dat << "\n\n";
  }

  auto gp = open_or_throw(gp_path);
  gp << "set title '" << title << "'\n"
     << "set xlabel 'gamma'\nset ylabel 'G_{attack}'\n"
     << "set xrange [0:1]\nset key top right\nset grid\n"
     << "plot ";
  for (std::size_t i = 0; i < curves.size(); ++i) {
    if (i > 0) gp << ", \\\n     ";
    gp << "'" << stem << ".dat' index " << i
       << " using 1:2 with lines title '" << curves[i].label
       << " (analytic)', \\\n     '" << stem << ".dat' index " << i
       << " using 1:3 with points pt " << (i + 4) << " title '"
       << curves[i].label << " (sim)'";
  }
  gp << '\n';
  return gp_path;
}

std::string write_timeseries_figure(const std::string& directory,
                                    const std::string& stem,
                                    const std::string& title,
                                    const std::vector<double>& values,
                                    Time bin_width) {
  PDOS_REQUIRE(!values.empty(), "write_timeseries_figure: empty series");
  PDOS_REQUIRE(bin_width > 0.0, "write_timeseries_figure: bin_width > 0");
  const std::string dat_path = directory + "/" + stem + ".dat";
  const std::string gp_path = directory + "/" + stem + ".gp";

  auto dat = open_or_throw(dat_path);
  dat << "# time value\n";
  for (std::size_t i = 0; i < values.size(); ++i) {
    dat << (static_cast<double>(i) + 0.5) * bin_width << ' ' << values[i]
        << '\n';
  }

  auto gp = open_or_throw(gp_path);
  gp << "set title '" << title << "'\n"
     << "set xlabel 'time (s)'\nset ylabel 'normalized incoming traffic'\n"
     << "set grid\n"
     << "plot '" << stem << ".dat' using 1:2 with impulses notitle\n";
  return gp_path;
}

}  // namespace pdos
