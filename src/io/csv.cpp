#include "io/csv.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace pdos {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size()) {
  PDOS_REQUIRE(!columns.empty(), "CsvWriter: need at least one column");
  write_row(columns);
  rows_ = 0;  // the header does not count
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  PDOS_REQUIRE(cells.size() == columns_,
               "CsvWriter: row width does not match header");
  write_row(cells);
  ++rows_;
}

void CsvWriter::row(std::initializer_list<double> cells) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double x : cells) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", x);
    out.emplace_back(buf);
  }
  row(out);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace pdos
