// Gnuplot artifact emission for the figure harnesses.
//
// Each reproduced figure can be exported as a data file plus a ready-to-run
// gnuplot script, so `gnuplot figNN.gp` regenerates a plot with the same
// layout as the paper: analytical curves as lines, simulated points as
// symbols (Figs. 6-10, 12), or a single normalized time series (Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace pdos {

/// One (gamma, analytic, simulated) curve of a gain figure.
struct GainCurveData {
  std::string label;  // e.g. "T_extent = 50 ms"
  std::vector<double> gamma;
  std::vector<double> analytic;
  std::vector<double> simulated;
};

/// Writes `<stem>.dat` and `<stem>.gp` into `directory`. Returns the script
/// path. Throws ParameterError on empty input or unwritable paths.
std::string write_gain_figure(const std::string& directory,
                              const std::string& stem,
                              const std::string& title,
                              const std::vector<GainCurveData>& curves);

/// Writes a normalized time-series figure (Fig. 3 style): one value per
/// bin of width `bin_width` seconds.
std::string write_timeseries_figure(const std::string& directory,
                                    const std::string& stem,
                                    const std::string& title,
                                    const std::vector<double>& values,
                                    Time bin_width);

}  // namespace pdos
