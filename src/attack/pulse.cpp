#include "attack/pulse.hpp"

#include <cmath>

#include "net/link.hpp"
#include "util/assert.hpp"

namespace pdos {

void PulseTrain::validate() const {
  PDOS_REQUIRE(textent > 0.0, "PulseTrain: textent must be > 0");
  PDOS_REQUIRE(rattack > 0.0, "PulseTrain: rattack must be > 0");
  PDOS_REQUIRE(tspace >= 0.0, "PulseTrain: tspace must be >= 0");
  PDOS_REQUIRE(n >= 1, "PulseTrain: n must be >= 1");
  PDOS_REQUIRE(packet_bytes > 0, "PulseTrain: packet_bytes must be > 0");
}

PulseTrain PulseTrain::from_gamma(Time textent, BitRate rattack, double gamma,
                                  BitRate rbottle, Bytes packet_bytes) {
  PDOS_REQUIRE(gamma > 0.0 && gamma <= 1.0,
               "PulseTrain::from_gamma: gamma must be in (0, 1]");
  PDOS_REQUIRE(rbottle > 0.0, "PulseTrain::from_gamma: rbottle must be > 0");
  // Eq. (4): gamma = rattack * textent / (rbottle * period).
  const Time period = rattack * textent / (rbottle * gamma);
  PDOS_REQUIRE(period >= textent,
               "PulseTrain::from_gamma: gamma implies tspace < 0 "
               "(rattack/rbottle < gamma)");
  PulseTrain train;
  train.textent = textent;
  train.rattack = rattack;
  train.tspace = period - textent;
  train.packet_bytes = packet_bytes;
  return train;
}

PulseTrain PulseTrain::flooding(BitRate rate, Bytes packet_bytes) {
  PulseTrain train;
  train.textent = sec(1.0);  // arbitrary slice; back-to-back pulses
  train.rattack = rate;
  train.tspace = 0.0;
  train.packet_bytes = packet_bytes;
  return train;
}

PulseAttacker::PulseAttacker(Simulator& sim, PulseTrain train, NodeId self,
                             NodeId sink, PacketHandler* out, FlowId flow)
    : sim_(sim),
      train_(train),
      self_(self),
      sink_(sink),
      out_(out),
      flow_(flow),
      pulse_timer_(sim.scheduler(), [this] { fire_pulse(); }) {
  PDOS_REQUIRE(out != nullptr, "PulseAttacker: out must be non-null");
  train_.validate();
  packet_spacing_ = transmission_time(train_.packet_bytes, train_.rattack);
  // Emit packets whose spacing fits fully inside the pulse window, at least
  // one per pulse.
  packets_per_pulse_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(train_.textent /
                                              packet_spacing_)));
}

void PulseAttacker::start(Time when) { pulse_timer_.schedule_at(when); }

void PulseAttacker::set_express_lane(Link* lane) {
  PDOS_REQUIRE(lane != nullptr && lane->express(),
               "PulseAttacker: burst lane must be an express link");
  express_lane_ = lane;
}

void PulseAttacker::fire_pulse() {
  if (stopped_ || stats_.pulses_started >= train_.n) return;
  ++stats_.pulses_started;
  // Emissions within the pulse chain through one pending event: each one
  // schedules its successor, so a burst occupies a single heap entry
  // instead of ballooning the event queue by packets_per_pulse_. Claiming
  // the burst's rank range here keeps same-timestamp ordering identical to
  // scheduling every emission eagerly; a started burst always runs to
  // completion (stop() only suppresses future pulses), exactly as the
  // eagerly scheduled events would have.
  burst_start_ = sim_.now();
  if (express_lane_ != nullptr) {
    // Batched fast path: the whole burst is injected now, each packet at
    // its analytic send time. The lane serializes them exactly as the
    // event-driven emissions would (it is never busy when a packet lands —
    // its rate is at least twice R_attack), so only the event count and
    // tie ranks change, never a packet timing. A fired burst runs to
    // completion either way, so stop() semantics are unchanged.
    for (std::int64_t j = 0; j < packets_per_pulse_; ++j) {
      express_lane_->inject_at(
          make_attack_packet(),
          burst_start_ + static_cast<double>(j) * packet_spacing_);
    }
  } else {
    burst_seq_ = sim_.scheduler().allocate_seq_range(
        static_cast<std::uint32_t>(packets_per_pulse_));
    burst_next_ = 0;
    sim_.scheduler().schedule_at_sequenced(burst_start_, burst_start_,
                                           burst_seq_,
                                           [this] { emit_packet(); });
  }
  if (stats_.pulses_started < train_.n) {
    pulse_timer_.schedule_in(train_.period());
  }
}

Packet PulseAttacker::make_attack_packet() {
  Packet pkt;
  pkt.type = PacketType::kAttack;
  pkt.flow = flow_;
  pkt.src = self_;
  pkt.dst = sink_;
  pkt.size_bytes = train_.packet_bytes;
  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.size_bytes;
  return pkt;
}

void PulseAttacker::emit_packet() {
  Packet pkt = make_attack_packet();
  if (++burst_next_ < packets_per_pulse_) {
    // Emission times are computed from the burst origin, not accumulated,
    // so the chain reproduces the eager schedule's timestamps bit-for-bit.
    // The whole burst's ranks were claimed at the pulse origin, so every
    // chained emission carries burst_start_ as its claim instant.
    sim_.scheduler().schedule_at_sequenced(
        burst_start_ + static_cast<double>(burst_next_) * packet_spacing_,
        burst_start_, burst_seq_ + static_cast<std::uint32_t>(burst_next_),
        [this] { emit_packet(); });
  }
  out_->handle(std::move(pkt));
}

}  // namespace pdos
