#include "attack/shrew.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pdos {

Time shrew_period(Time min_rto, int n) {
  PDOS_REQUIRE(min_rto > 0.0, "shrew_period: min_rto must be > 0");
  PDOS_REQUIRE(n >= 1, "shrew_period: harmonic must be >= 1");
  return min_rto / static_cast<double>(n);
}

std::vector<Time> shrew_periods(Time min_rto, int max_harmonic, Time floor) {
  std::vector<Time> periods;
  for (int n = 1; n <= max_harmonic; ++n) {
    const Time p = shrew_period(min_rto, n);
    if (p < floor) break;
    periods.push_back(p);
  }
  return periods;
}

std::optional<int> matching_shrew_harmonic(Time period, Time min_rto,
                                           int max_harmonic,
                                           double tolerance) {
  PDOS_REQUIRE(period > 0.0, "matching_shrew_harmonic: period must be > 0");
  for (int n = 1; n <= max_harmonic; ++n) {
    const Time p = shrew_period(min_rto, n);
    if (std::abs(period - p) / p <= tolerance) return n;
  }
  return std::nullopt;
}

}  // namespace pdos
