// Distributed PDoS coordination.
//
// A botnet launching the attack splits the pulse among k sources: each
// zombie sends at R_attack/k during the same T_extent windows, so the
// aggregate at the bottleneck reproduces the single-attacker train while
// each source's average rate shrinks by k — pushing every per-link
// detector threshold k times further away. `split_train` produces the
// per-source trains; `spread_phases` optionally staggers source start
// times *within* the pulse so the aggregate edge is softened (a knob the
// attacker can use against edge-detection defenses at a small damage
// cost).
#pragma once

#include <vector>

#include "attack/pulse.hpp"
#include "util/rng.hpp"

namespace pdos {

/// Split `train` into `k` identical sub-trains of rate R_attack/k.
/// The aggregate of the k sub-trains equals the original train.
std::vector<PulseTrain> split_train(const PulseTrain& train, int k);

/// Start offsets for `k` sources spread uniformly over [0, spread].
/// spread = 0 (fully synchronized) reproduces the sharp pulse edge.
std::vector<Time> spread_phases(int k, Time spread, Rng& rng);

/// Same, but each source's offset comes from its own stream derived from
/// `base_seed` and the source index — source `a`'s phase is identical
/// across runs regardless of how many other components drew randomness
/// first (see `derive_seed`).
std::vector<Time> spread_phases_seeded(int k, Time spread,
                                       std::uint64_t base_seed);

/// Per-source normalized average rate after an even k-way split:
/// gamma_source = gamma_aggregate / k.
double per_source_gamma(const PulseTrain& train, int k, BitRate rbottle);

}  // namespace pdos
