#include "attack/distributed.hpp"

#include "util/assert.hpp"

namespace pdos {

std::vector<PulseTrain> split_train(const PulseTrain& train, int k) {
  train.validate();
  PDOS_REQUIRE(k >= 1, "split_train: need at least one source");
  PulseTrain sub = train;
  sub.rattack = train.rattack / static_cast<double>(k);
  PDOS_REQUIRE(transmission_time(sub.packet_bytes, sub.rattack) <=
                   sub.textent,
               "split_train: too many sources — a sub-train could not fit "
               "one packet per pulse");
  return std::vector<PulseTrain>(static_cast<std::size_t>(k), sub);
}

std::vector<Time> spread_phases(int k, Time spread, Rng& rng) {
  PDOS_REQUIRE(k >= 1, "spread_phases: need at least one source");
  PDOS_REQUIRE(spread >= 0.0, "spread_phases: spread must be >= 0");
  std::vector<Time> phases(static_cast<std::size_t>(k), 0.0);
  if (spread > 0.0) {
    for (Time& phase : phases) phase = rng.uniform(0.0, spread);
  }
  return phases;
}

std::vector<Time> spread_phases_seeded(int k, Time spread,
                                       std::uint64_t base_seed) {
  PDOS_REQUIRE(k >= 1, "spread_phases: need at least one source");
  PDOS_REQUIRE(spread >= 0.0, "spread_phases: spread must be >= 0");
  // Stream tag for attacker phase draws; per-source streams keep source a's
  // phase independent of every other draw in the run.
  constexpr std::uint64_t kPhaseStream = 0x70686173'65000000ULL;  // "phase"
  std::vector<Time> phases(static_cast<std::size_t>(k), 0.0);
  if (spread > 0.0) {
    for (int a = 0; a < k; ++a) {
      Rng rng(derive_seed(base_seed, kPhaseStream + static_cast<std::uint64_t>(a)));
      phases[static_cast<std::size_t>(a)] = rng.uniform(0.0, spread);
    }
  }
  return phases;
}

double per_source_gamma(const PulseTrain& train, int k, BitRate rbottle) {
  PDOS_REQUIRE(k >= 1, "per_source_gamma: need at least one source");
  return train.gamma(rbottle) / static_cast<double>(k);
}

}  // namespace pdos
