// PDoS pulse-train attacker.
//
// Implements the paper's attack process A(T_extent, R_attack, T_space, N):
// N pulses, each emitting packets back-to-back at rate R_attack for
// T_extent seconds, separated by T_space seconds of silence. T_space = 0
// degenerates into the traditional flooding attack; pacing the period to
// minRTO/n yields the shrew (timeout-based) attack. Attack packets are
// UDP-like: no feedback, addressed to a sink behind the bottleneck.
#pragma once

#include <cstdint>
#include <limits>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace pdos {

struct PulseTrain {
  Time textent = ms(50);        // pulse width, seconds (> 0)
  BitRate rattack = mbps(25);   // in-pulse sending rate, bps (> 0)
  Time tspace = ms(1950);       // inter-pulse gap, seconds (>= 0)
  std::int64_t n = std::numeric_limits<std::int64_t>::max();  // pulse count
  Bytes packet_bytes = 1040;    // wire size of each attack packet

  /// Attack period T_AIMD = T_space + T_extent.
  Time period() const { return tspace + textent; }

  /// Duty-cycle reciprocal μ = T_space / T_extent.
  double mu() const { return tspace / textent; }

  /// Long-run average rate R_attack * T_extent / T_AIMD, in bps.
  BitRate average_rate() const { return rattack * textent / period(); }

  /// Normalized average attack rate γ (Eq. 4) for a bottleneck of
  /// `rbottle` bps.
  double gamma(BitRate rbottle) const { return average_rate() / rbottle; }

  /// Construct the train the paper parameterizes by (T_extent, R_attack, γ):
  /// γ fixes the period via Eq. (4), hence T_space.
  static PulseTrain from_gamma(Time textent, BitRate rattack, double gamma,
                               BitRate rbottle, Bytes packet_bytes = 1040);

  /// Flooding baseline: continuous transmission at `rate`.
  static PulseTrain flooding(BitRate rate, Bytes packet_bytes = 1040);

  void validate() const;
};

struct AttackerStats {
  std::int64_t pulses_started = 0;
  std::int64_t packets_sent = 0;
  Bytes bytes_sent = 0;
};

/// Emits the pulse train into `out` (typically the attacker's access link).
class PulseAttacker {
 public:
  PulseAttacker(Simulator& sim, PulseTrain train, NodeId self, NodeId sink,
                PacketHandler* out, FlowId flow = -1000);

  /// Begin the first pulse at absolute virtual time `when`.
  void start(Time when);

  /// Stop after the current pulse; no further pulses are scheduled.
  void stop() { stopped_ = true; }

  /// Fast path (DESIGN.md §11): emit bursts straight into an express access
  /// link in one pass — each packet injected at its analytic send time
  /// `burst_start + j * spacing` — so a pulse costs ONE scheduler event
  /// instead of one per packet. Valid only because the attacker's access
  /// link never congests (its rate is at least twice R_attack), so the
  /// express lane serializes each packet exactly as the queued link would;
  /// packet timings are bit-identical, only event counts and tie ranks
  /// differ. `lane` must be express and must outlive the attacker.
  void set_express_lane(class Link* lane);

  const PulseTrain& train() const { return train_; }
  const AttackerStats& stats() const { return stats_; }

 private:
  void fire_pulse();
  void emit_packet();
  Packet make_attack_packet();

  Simulator& sim_;
  PulseTrain train_;
  NodeId self_;
  NodeId sink_;
  PacketHandler* out_;
  class Link* express_lane_ = nullptr;  // batched-burst fast path, or null
  FlowId flow_;
  Time packet_spacing_;
  std::int64_t packets_per_pulse_;
  bool stopped_ = false;
  Timer pulse_timer_;  // drives the periodic pulse cycle
  // In-pulse emission chain: one pending event walks the burst instead of
  // packets_per_pulse_ events sitting in the heap at once. The whole
  // burst's tie-break ranks are claimed when the pulse fires, so each
  // emission keeps the rank it would have had as an eager schedule.
  Time burst_start_ = 0.0;         // fire_pulse() time of the current burst
  std::uint32_t burst_seq_ = 0;    // rank of emission 0
  std::int64_t burst_next_ = 0;    // emissions already sent this burst
  AttackerStats stats_;
};

}  // namespace pdos
