// Shrew (timeout-based) attack helpers.
//
// A pulse train whose period T_AIMD is close to minRTO/n, n = 1..minRTO/RTT,
// re-hits retransmissions after each timeout and pins senders in the TO
// state — the Kuzmanovic-Knightly shrew attack. The paper's analytical model
// deliberately ignores timeouts, so these periods are where simulation gain
// exceeds the analytical prediction (Fig. 10); this header provides the
// period arithmetic used to mark those points.
#pragma once

#include <optional>
#include <vector>

#include "util/units.hpp"

namespace pdos {

/// The n-th shrew period minRTO / n.
Time shrew_period(Time min_rto, int n);

/// All shrew periods >= `floor` for harmonics n = 1..max_harmonic.
std::vector<Time> shrew_periods(Time min_rto, int max_harmonic,
                                Time floor = ms(100));

/// If `period` lies within `tolerance` (relative) of minRTO/n for some
/// n in [1, max_harmonic], returns that n.
std::optional<int> matching_shrew_harmonic(Time period, Time min_rto,
                                           int max_harmonic,
                                           double tolerance = 0.1);

}  // namespace pdos
