// Reduction-of-Quality (RoQ) potency metrics, after Guirguis, Bestavros &
// Matta (ICNP 2004) — the related-work attack the paper contrasts with
// (§1.1).
//
// Where the PDoS gain G = Γ(1−γ)^κ prices risk multiplicatively, the RoQ
// literature evaluates attacks by *potency*: damage per unit of attack
// cost, Π = damage / cost^Ω. Both objectives act on the same pulse trains,
// so this header lets the two be compared directly: the RoQ-optimal
// operating point sits at lower γ (cheap, low-damage needling of the AQM
// transient) than the gain-optimal γ*.
#pragma once

#include "core/params.hpp"
#include "util/units.hpp"

namespace pdos {

/// Π = damage / cost^Ω. `damage` is the victim throughput destroyed (bps),
/// `cost` the attacker's average rate (bps); Ω > 0 weighs the attacker's
/// aversion to spending traffic (Ω = 1 in the RoQ paper's definition).
double roq_potency(double damage_bps, double cost_bps, double omega = 1.0);

/// Potency of a PDoS operating point under the paper's model: damage =
/// Γ(γ)·R_bottle (Eq. 10), cost = γ·R_bottle.
double pdos_model_potency(const VictimProfile& victim, Time textent,
                          double c_attack, double gamma, double omega = 1.0);

/// The γ maximizing model potency on (C_Ψ, 1), found numerically (for
/// Ω = 1 it has the closed form γ = 2·C_Ψ, clamped into the interval) —
/// typically far below the gain-optimal γ* = √C_Ψ.
double roq_optimal_gamma(const VictimProfile& victim, Time textent,
                         double c_attack, double omega = 1.0);

}  // namespace pdos
