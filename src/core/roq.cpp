#include "core/roq.hpp"

#include <cmath>

#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "util/assert.hpp"

namespace pdos {

double roq_potency(double damage_bps, double cost_bps, double omega) {
  PDOS_REQUIRE(damage_bps >= 0.0, "roq_potency: damage must be >= 0");
  PDOS_REQUIRE(cost_bps > 0.0, "roq_potency: cost must be > 0");
  PDOS_REQUIRE(omega > 0.0, "roq_potency: omega must be > 0");
  return damage_bps / std::pow(cost_bps, omega);
}

double pdos_model_potency(const VictimProfile& victim, Time textent,
                          double c_attack, double gamma, double omega) {
  PDOS_REQUIRE(gamma > 0.0 && gamma < 1.0,
               "pdos_model_potency: gamma must be in (0, 1)");
  const double cpsi = c_psi(victim, textent, c_attack);
  if (gamma <= cpsi) return 0.0;  // the model predicts no damage here
  const double damage = (1.0 - cpsi / gamma) * victim.rbottle;
  const double cost = gamma * victim.rbottle;
  return roq_potency(damage, cost, omega);
}

double roq_optimal_gamma(const VictimProfile& victim, Time textent,
                         double c_attack, double omega) {
  const double cpsi = c_psi(victim, textent, c_attack);
  PDOS_REQUIRE(cpsi < 1.0,
               "roq_optimal_gamma: C_Psi >= 1, no feasible damage");
  // For omega = 1 the maximizer has the closed form gamma = 2*C_Psi
  // (d/dγ[(γ−CΨ)/γ²] = 0); keep the numeric search so any omega works and
  // the boundary clamp is automatic.
  const double gstar = golden_section_max(
      [&](double gamma) {
        return pdos_model_potency(victim, textent, c_attack, gamma, omega);
      },
      cpsi + 1e-9, 1.0 - 1e-9);
  return gstar;
}

}  // namespace pdos
