// Scenario builder and experiment runner.
//
// Encodes the paper's two evaluation environments:
//   - `ScenarioConfig::ns2_dumbbell(M)`  — §4.1: M TCP NewReno flows over a
//     dumbbell with a 15 Mbps RED bottleneck, 50 Mbps access links, RTTs
//     evenly spread over 20-460 ms, ns-2 minRTO = 1 s.
//   - `ScenarioConfig::testbed(M)`       — §4.2: Dummynet-style single
//     10 Mbps bottleneck with 150 ms RTT, Linux minRTO = 200 ms, delayed
//     ACKs (d = 2), RED(0.2B, 0.8B, w_q = 0.002, max_p = 0.1, gentle) with
//     B = RTT × R_bottle.
//
// `run_scenario` builds the topology, runs warmup + measurement under an
// optional pulse train, and reports aggregate goodput, the bottleneck's
// incoming-traffic series (Figs. 2-3), queue/loss statistics and TCP state
// counters. `measure_gain` composes two runs into the paper's Γ and G.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "attack/pulse.hpp"
#include "core/params.hpp"
#include "fluid/fluid.hpp"
#include "net/queue.hpp"
#include "net/red.hpp"
#include "sim/pdes/engine.hpp"
#include "tcp/connection.hpp"
#include "tcp/tcp_sender.hpp"
#include "util/units.hpp"

namespace pdos {

class Link;
class OnOffSource;
class StatsHub;
namespace fluid {
class FluidBackgroundSource;
}

enum class QueueKind { kDropTail, kRed };

/// Simulation tier a scenario runs on (DESIGN.md §12, "Choosing a backend"
/// in README.md):
///   kFull   — the packet engine's default event path (golden-digest
///             pinned; the paper figures run here).
///   kFast   — the same packet engine with the express ACK lane and event
///             fusion (DESIGN.md §11); bit-identical packet timings,
///             different event counts. Equivalent to fast_path = true.
///   kFluid  — no packets at all: the fluid AIMD solver (src/fluid)
///             integrates per-class window ODEs and RED occupancy,
///             microseconds per run.
///   kHybrid — `hybrid_foreground` flows stay packet-level; the remaining
///             flows become a fluid aggregate coupled into the RED
///             bottleneck through a FluidBackgroundSource.
enum class Backend { kFull, kFast, kFluid, kHybrid };

const char* backend_name(Backend backend);

/// Parse "full" | "fast" | "fluid" | "hybrid"; nullopt on anything else.
std::optional<Backend> parse_backend(const std::string& name);

struct ScenarioConfig {
  int num_flows = 15;
  BitRate bottleneck = mbps(15);
  BitRate access = mbps(50);
  Time bottleneck_delay = ms(1);  // one-way propagation of the shared link
  std::vector<Time> rtts;         // per-flow two-way propagation targets
  QueueKind queue = QueueKind::kRed;
  std::size_t buffer_packets = 60;  // bottleneck buffer B
  TcpSenderConfig tcp;
  Bytes attack_packet_bytes = 1040;
  BitRate attacker_access = 0.0;  // 0 = auto: max(access, 2 x R_attack)
  /// Distributed attack: the pulse train is split evenly over this many
  /// sources (each with its own access link). 1 = the paper's single
  /// attacker.
  int num_attackers = 1;
  /// Random per-source start offset in [0, spread]; softens the aggregate
  /// pulse edge at a small damage cost.
  Time attacker_phase_spread = 0.0;
  Time flow_start_spread = sec(1.0);  // flows start uniformly in [0, spread]
  /// Unresponsive cross traffic sharing the bottleneck: an exponential
  /// ON/OFF source (50% duty cycle) with this long-run average rate.
  /// 0 disables it (the paper's scenarios).
  BitRate cross_traffic_rate = 0.0;
  std::uint64_t seed = 1;
  /// Large-scale event plumbing (DESIGN.md §11): reverse-path links become
  /// queue-less express ACK lanes and forward links fuse idle serves into
  /// zero service events. Packet-level behaviour (timings, drops, RNG
  /// draws) is unchanged, but the scheduler's event count and tie-break
  /// rank stream are not — and the golden figure digests pin event counts —
  /// so this is opt-in and the paper scenarios leave it off. A scenario
  /// that installs reverse-path queues or taps must also leave it off.
  bool fast_path = false;
  /// Which simulation tier runs the scenario (see Backend above). kFull
  /// keeps every default-path digest byte-identical; kFast implies
  /// fast_path; kFluid and kHybrid trade packet-level fidelity for speed.
  Backend backend = Backend::kFull;
  /// Hybrid tier: how many flows (spread evenly across the RTT list) stay
  /// packet-level. The other num_flows - hybrid_foreground flows form the
  /// fluid background aggregate.
  int hybrid_foreground = 4;
  /// Hybrid tier: background integration tick.
  Time hybrid_tick = ms(1.0);
  /// Fluid tier: base integration step inside / between pulses. The solver
  /// additionally snaps steps to pulse edges and RTO expiries.
  Time fluid_dt_pulse = ms(10.0);
  Time fluid_dt_idle = ms(20.0);
  /// Conservative PDES sharding (DESIGN.md §13): 1 runs the whole scenario
  /// on one scheduler (the default path, golden-digest pinned); K >= 2
  /// partitions it into K logical processes — shard 0 owns the routers,
  /// bottleneck, attackers, and cross traffic, shards 1..K-1 own contiguous
  /// flow blocks — each with its own Simulator, synchronized by link-delay
  /// lookahead. The partition is a pure function of (num_flows, shards),
  /// NOT of the executor thread count, and on the full backend the outputs
  /// (every counter, bin, and the event count) are bit-identical to
  /// shards = 1; on the fast backend every counter matches but the event
  /// count differs (cross-shard links cannot fuse). Excluded from
  /// point-cache keys for exactly that reason. Packet backends only.
  int shards = 1;

  /// §4.1 ns-2 scenario. The paper reuses Kuzmanovic & Knightly's scripts;
  /// parameters it does not restate (buffer size, RED thresholds) follow
  /// the same 20%/80% rule as the test-bed on a 60-packet buffer —
  /// documented in EXPERIMENTS.md.
  static ScenarioConfig ns2_dumbbell(int num_flows);

  /// §4.2 test-bed scenario.
  static ScenarioConfig testbed(int num_flows = 10);

  /// Beyond-the-paper scaling family (DESIGN.md §11): the ns-2 dumbbell
  /// stretched to `num_flows` victims on a `bottleneck` of up to 1 Gbps,
  /// with the buffer scaled in proportion to the rate (240 packets at
  /// 15 Mbps) so the queueing dynamics stay comparable. Enables
  /// `fast_path`: the express ACK lane and event fusion, which leave
  /// packet-level behaviour untouched.
  static ScenarioConfig large_scale(int num_flows,
                                    BitRate bottleneck = gbps(1));

  void validate() const;

  /// The analytical victim profile implied by this scenario.
  VictimProfile victim_profile() const;
};

struct RunControl {
  Time warmup = sec(8.0);     // attack starts at t=0; stats from `warmup`
  Time measure = sec(30.0);   // measurement window length
  Time bin_width = ms(100);   // incoming-traffic series resolution
  int traced_flow = -1;       // >= 0: record that flow's cwnd trace
  Time horizon() const { return warmup + measure; }
};

struct RunResult {
  // Aggregate application goodput over the measurement window only.
  Bytes goodput_bytes = 0;
  BitRate goodput_rate = 0.0;
  double utilization = 0.0;  // goodput_rate / bottleneck
  // Per-flow goodput over the measurement window, and Jain's fairness
  // index over it (the attack starves large-RTT flows first).
  std::vector<Bytes> per_flow_goodput;
  double fairness_index = 0.0;

  // Incoming traffic at the bottleneck (TCP + attack), bytes per bin, over
  // the whole run starting at t = 0.
  std::vector<double> incoming_bins;
  // Attack-only arrivals at the bottleneck, same binning.
  std::vector<double> attack_bins;
  Time bin_width = 0.0;

  QueueStats bottleneck_queue;
  std::uint64_t red_early_drops = 0;
  std::uint64_t red_forced_drops = 0;
  // Bottleneck queue occupancy sampled every `bin_width` (packets), and
  // RED's EWMA estimate at the same instants (0 for drop-tail). The gap
  // between the two during pulses is the AQM transient RoQ-style attacks
  // exploit.
  std::vector<double> queue_occupancy;
  std::vector<double> red_avg_samples;

  std::uint64_t total_timeouts = 0;
  std::uint64_t total_fast_recoveries = 0;
  std::uint64_t total_retransmits = 0;
  // Mean over flows of the RFC 3550 smoothed interarrival jitter of
  // in-order deliveries (§2.3: attacks increase jitter).
  Time mean_delivery_jitter = 0.0;
  std::uint64_t attack_packets_sent = 0;
  std::uint64_t events_executed = 0;

  std::vector<std::pair<Time, double>> cwnd_trace;  // if traced_flow >= 0
};

/// One point of the paper's gain plots (declared early for
/// ScenarioWorkspace): Γ = 1 − goodput/baseline (clamped at 0) and
/// G = Γ(1−γ)^κ, with γ taken from the train and the scenario's bottleneck.
struct GainMeasurement;

/// A reusable scenario harness: one warm `Simulator` whose arena blocks,
/// scheduler slabs, and container capacities survive from run to run.
/// Each `run()` rewinds the simulator to `config.seed` and rebuilds the
/// dumbbell inside the retained memory, so a sweep worker pays scenario
/// construction out of already-hot blocks instead of the system allocator.
/// Outputs are bit-identical to a fresh `run_scenario` call: the seed
/// streams, event ordering, and slot assignment do not depend on whether
/// the simulator is fresh or rewound.
class ScenarioWorkspace {
 public:
  ScenarioWorkspace();
  ~ScenarioWorkspace();
  ScenarioWorkspace(const ScenarioWorkspace&) = delete;
  ScenarioWorkspace& operator=(const ScenarioWorkspace&) = delete;

  /// Build and run one scenario; equivalent to `run_scenario`.
  RunResult run(const ScenarioConfig& config,
                const std::optional<PulseTrain>& attack,
                const RunControl& control);

  /// Phased execution, the primitive under the replicate-batch runner
  /// (sweep/replicate_batch, DESIGN.md §14). `begin_run` rewinds the
  /// simulator to `config.seed`, rebuilds the topology, arms the
  /// instrumentation, and starts the sources; `advance_run(until)` executes
  /// events up to `min(until, horizon)` — taking the warmup goodput marks
  /// exactly when the clock crosses the warmup boundary — and returns true
  /// once the horizon is reached; `finish_run` collects the result and
  /// retires the run. `run()` on the single-scheduler packet path is
  /// exactly begin + advance(horizon) + finish, so sliced and monolithic
  /// execution share one code path and are bit-identical by construction
  /// (the scheduler pops in (time, rank) order regardless of how the
  /// horizon is partitioned). Packet backends with shards == 1 only: the
  /// fluid tier has no event loop to slice and the PDES engine drives its
  /// own round loop.
  void begin_run(const ScenarioConfig& config,
                 const std::optional<PulseTrain>& attack,
                 const RunControl& control);
  bool advance_run(Time until);
  RunResult finish_run();
  /// Drop an in-flight phased run (exception recovery); no-op when idle.
  void abort_run();
  /// True between begin_run and finish_run/abort_run.
  bool run_active() const;

  /// Baseline goodput rate (no attack); equivalent to `measure_baseline`.
  BitRate baseline(const ScenarioConfig& config, const RunControl& control);

  /// One gain point; equivalent to `measure_gain`.
  GainMeasurement gain(const ScenarioConfig& config, const PulseTrain& train,
                       double kappa, const RunControl& control,
                       BitRate baseline_goodput);

  /// The underlying simulator (for memory/telemetry inspection in tests).
  /// With shards > 1 this is shard 0 (bottleneck + routers).
  const Simulator& simulator() const { return sim_; }

  /// Executor for sharded runs (config.shards > 1): how the per-round
  /// shard tasks are dispatched. Null (the default) runs them inline on
  /// the calling thread — the right choice inside sweep workers, which are
  /// already one-per-core. CLIs and benches install a ThreadPool-backed
  /// one to run a single large scenario on all cores. Outputs are
  /// bit-identical either way (DESIGN.md §13).
  void set_shard_executor(pdes::ShardExecutor executor) {
    shard_executor_ = std::move(executor);
  }

  /// PDES telemetry from the last sharded run (0 when shards == 1).
  std::uint64_t pdes_rounds() const { return engine_ ? engine_->rounds() : 0; }
  std::uint64_t pdes_messages() const {
    return engine_ ? engine_->messages_delivered() : 0;
  }

 private:
  void build(const ScenarioConfig& config,
             const std::optional<PulseTrain>& attack);

  /// Sharded path (config.shards > 1): partitioned build + conservative
  /// round loop; defined in experiment_pdes.cpp.
  RunResult run_pdes(const ScenarioConfig& config,
                     const std::optional<PulseTrain>& attack,
                     const RunControl& control);
  void build_pdes(const ScenarioConfig& config,
                  const std::optional<PulseTrain>& attack);

  /// Shared tail of run()/run_pdes(): per-flow goodput against the warmup
  /// marks, TCP counters, fairness/jitter, stats-hub series, and bottleneck
  /// telemetry. Everything except events_executed, which the callers own.
  void collect_packet_result(const ScenarioConfig& config,
                             const RunControl& control, StatsHub& arrivals,
                             const std::vector<double>& background_mark,
                             RunResult& result);

  Simulator sim_{1};  // reseeded by every run()
  Node* router_s_ = nullptr;
  Node* router_r_ = nullptr;
  Link* bottleneck_ = nullptr;
  std::vector<TcpConnection> connections_;
  std::vector<PulseAttacker*> attackers_;
  OnOffSource* cross_traffic_ = nullptr;
  fluid::FluidBackgroundSource* background_ = nullptr;  // hybrid tier only
  // Flat hot-state tables (tcp/flow_state.hpp), one slot per flow, laid out
  // contiguously in the simulator arena by build().
  TcpSenderHot* sender_hot_ = nullptr;
  TcpReceiverHot* receiver_hot_ = nullptr;
  // Per-run scratch, cleared (not freed) between runs.
  std::vector<Bytes> goodput_marks_;
  // Sharded runs (DESIGN.md §13): shard 0 is sim_ above; flow shards keep
  // their own warm simulators. Engine state (channels, staging) is reused
  // across runs like the arenas are.
  std::vector<std::unique_ptr<Simulator>> flow_sims_;
  std::unique_ptr<pdes::PdesEngine> engine_;
  pdes::ShardExecutor shard_executor_;
  // Phased-run state (begin_run/advance_run/finish_run): the per-run
  // accumulators the instrumentation closures point into. Heap-held so the
  // captured addresses stay stable for the run's whole lifetime; declared
  // last so its Timer cancels into a still-live scheduler on destruction.
  struct ActiveRun;
  std::unique_ptr<ActiveRun> active_;
};

/// Build and run one scenario. If `attack` is set, the pulse train starts
/// at t = 0 and runs for the whole horizon.
RunResult run_scenario(const ScenarioConfig& config,
                       const std::optional<PulseTrain>& attack,
                       const RunControl& control);

/// One point of the paper's gain plots: Γ = 1 − goodput/baseline (clamped
/// at 0) and G = Γ(1−γ)^κ, with γ taken from the train and the scenario's
/// bottleneck.
struct GainMeasurement {
  double gamma = 0.0;
  double degradation = 0.0;  // measured Γ
  double gain = 0.0;         // measured G
  RunResult run;
};

GainMeasurement measure_gain(const ScenarioConfig& config,
                             const PulseTrain& train, double kappa,
                             const RunControl& control,
                             BitRate baseline_goodput);

/// Fold one finished attack run into a gain point: Γ against the baseline,
/// G = Γ(1−γ)^κ. The measurement math shared by `ScenarioWorkspace::gain`
/// and the replicate-batch runner, which finishes R runs at once.
GainMeasurement finish_gain(const ScenarioConfig& config,
                            const PulseTrain& train, double kappa,
                            BitRate baseline_goodput, RunResult run);

/// Baseline goodput rate (no attack) for the scenario under `control`.
BitRate measure_baseline(const ScenarioConfig& config,
                         const RunControl& control);

/// Lane-batched fluid runs (DESIGN.md §16): evaluate every attack plan in
/// `attacks` (nullopt = unattacked baseline) on the fluid tier in one
/// `fluid::solve_batch` call — same classes and topology, per-lane pulse
/// trains. results[i] is bit-identical to `run_scenario` on the kFluid
/// backend with attacks[i]; the batching only changes throughput. The
/// scenario's `backend` field is ignored: calling this IS selecting the
/// fluid tier.
std::vector<RunResult> run_fluid_batch(
    const ScenarioConfig& config,
    const std::vector<std::optional<PulseTrain>>& attacks,
    const RunControl& control);

/// Batched gain points sharing one baseline: `run_fluid_batch` over
/// `trains` folded through `finish_gain`. gains[i] is bit-identical to
/// `measure_gain(config-with-kFluid, trains[i], ...)`.
std::vector<GainMeasurement> fluid_gain_batch(const ScenarioConfig& config,
                                              const std::vector<PulseTrain>& trains,
                                              double kappa,
                                              const RunControl& control,
                                              BitRate baseline_goodput);

/// Translate a scenario to the fluid tier's system description: one class
/// per flow, the same RED parameterization `make_queue` builds, the TCP
/// stack's AIMD/slow-start/RTO knobs. Used by the kFluid backend, the
/// hybrid background (with the class list cut down to the background
/// flows), and the agreement tests.
fluid::FluidConfig make_fluid_config(const ScenarioConfig& config);

}  // namespace pdos
