// Closed-form and numerical solutions of the PDoS attack optimization
// problem (paper §3.1-§3.2):
//
//     maximize  G(γ) = (1 − C_Ψ/γ)(1 − γ)^κ   subject to  C_Ψ < γ < 1.
//
// Proposition 3 gives γ* in closed form; Corollaries 1-3 cover the three
// risk classes; Proposition 4 / Corollary 4 translate γ* into the pulse
// spacing via μ = T_space/T_extent. A golden-section maximizer is provided
// to cross-validate the closed form and to optimize variants the paper
// leaves analytical (e.g. adding measured shrew boosts).
// The empirical layer (`search_confirm_gamma`) goes beyond the closed form:
// it maximizes the *measured* gain over a γ grid with a two-tier
// search-then-confirm loop — the fluid surrogate (src/fluid, microseconds
// per point) scores every grid point, then only the top-ranked candidates
// are re-measured on the packet path (tens of milliseconds per point) and
// the confirmed winner is returned. `search_gamma_packet_only` runs the
// same grid entirely at packet level; the regression test in
// tests/core/optimizer_search_test.cpp pins that both return the same γ*.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "core/params.hpp"
#include "util/units.hpp"

namespace pdos {

/// Eq. (13), Proposition 3 — evaluated in the algebraically equivalent form
///   γ* = 2 C_Ψ / ( sqrt(C_Ψ²(1−κ)² + 4κC_Ψ) + C_Ψ(1−κ) ),
/// which is numerically stable for κ → 0 (where the printed form is 0/0)
/// and reproduces Corollaries 1-3 in the limits. κ = 0 returns 1, the
/// risk-ignoring flooding limit.
double optimal_gamma(double cpsi, double kappa);

/// Corollary 3 special case, γ* = sqrt(C_Ψ) for the risk-neutral attacker.
double optimal_gamma_risk_neutral(double cpsi);

/// Golden-section maximization of G over (C_Ψ, 1); used to cross-check the
/// closed form and exposed for custom objectives.
double optimal_gamma_numeric(double cpsi, double kappa,
                             double tolerance = 1e-9);

/// Maximize an arbitrary unimodal objective on (lo, hi) by golden section.
double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, double tolerance = 1e-9);

/// Proposition 4: optimal duty-cycle reciprocal. The paper prints
/// μ = C_attack/γ* (Eq. 16); since 1 + μ = C_attack/γ (Eq. 7) the exact
/// value is C_attack/γ* − 1. Both are provided; they agree as μ → ∞.
double optimal_mu_exact(double c_attack, double cpsi, double kappa);
double optimal_mu_paper(double c_attack, double cpsi, double kappa);

/// Corollary 4: risk-neutral μ via C_victim, μ = sqrt(C_attack /
/// (T_extent·C_victim)) (paper's approximation, no −1).
double optimal_mu_risk_neutral_paper(double c_attack, Time textent,
                                     double cvictim);

/// Gain achieved at the optimum, G(γ*).
double optimal_gain(double cpsi, double kappa);

// --- Empirical search-then-confirm (DESIGN.md §12, §16) -----------------

struct GammaSearch;

/// Cache hook for the fluid phase of `search_confirm_gamma`: lets callers
/// persist surrogate gains and baselines (e.g. in a sweep's PointStore, see
/// sweep/optimizer_cache.hpp) so a resumed search skips already-solved γ
/// lanes. The optimizer consults the cache before solving, batches only the
/// misses through the lane-batched fluid tier, and stores what it solved.
/// Key derivation is the implementation's business — the optimizer hands
/// over exactly the (search, γ) pair it would otherwise evaluate. Because
/// batched fluid results are bit-identical to point-at-a-time ones
/// (DESIGN.md §16), a hit is indistinguishable from a re-solve; `fluid_runs`
/// in the result counts only actual solves, so a fully warmed cache yields
/// fluid_runs == 0.
class FluidGainCache {
 public:
  virtual ~FluidGainCache() = default;
  /// Cached fluid baseline goodput for this search's scenario, or nullopt.
  virtual std::optional<BitRate> lookup_baseline(const GammaSearch& search) = 0;
  virtual void store_baseline(const GammaSearch& search, BitRate baseline) = 0;
  /// Cached surrogate gain G at γ, or nullopt on a miss.
  virtual std::optional<double> lookup_gain(const GammaSearch& search,
                                            double gamma) = 0;
  virtual void store_gain(const GammaSearch& search, double gamma,
                          double gain) = 0;
};

/// One empirical γ* search: fix the pulse shape (T_extent, R_attack) and
/// scan γ — i.e. T_space via Eq. (7) — over a grid, maximizing measured
/// gain G = Γ(1−γ)^κ.
struct GammaSearch {
  ScenarioConfig scenario;   // `scenario.backend` selects the confirm tier
                             // (kFluid/kHybrid are coerced to kFull)
  Time textent = ms(50);
  BitRate rattack = mbps(25);
  double kappa = 1.0;
  RunControl control;
  int grid_points = 9;       // evenly spaced γ grid in [gamma_lo, gamma_hi]
  int confirm_top = 3;       // fluid-ranked candidates re-run at packet level
  double gamma_lo = 0.0;     // <= 0: auto, max(C_Ψ + 0.02, 0.1)
  double gamma_hi = 0.95;
  /// Optional fluid-gain cache (non-owning; see FluidGainCache above).
  /// Null runs every fluid point, matching the pre-cache behaviour.
  FluidGainCache* fluid_cache = nullptr;
};

struct GammaCandidate {
  double gamma = 0.0;
  double fluid_gain = 0.0;   // surrogate score (0 in packet-only searches)
  double packet_gain = 0.0;  // measured gain, valid when `confirmed`
  bool confirmed = false;    // re-measured on the packet path
};

struct GammaSearchResult {
  double gamma_star = 0.0;        // argmax of confirmed packet gain
  double gain = 0.0;              // packet-measured G at gamma_star
  double degradation = 0.0;       // packet-measured Γ at gamma_star
  double gamma_star_fluid = 0.0;  // argmax of the fluid surrogate alone
  BitRate baseline_goodput = 0.0;
  BitRate fluid_baseline_goodput = 0.0;
  int fluid_runs = 0;   // fluid evaluations (incl. the fluid baseline)
  int packet_runs = 0;  // packet evaluations (incl. the packet baseline)
  std::vector<GammaCandidate> candidates;  // ascending γ
};

/// Two-tier search: score the whole grid on the fluid surrogate, confirm
/// the `confirm_top` best candidates on the packet path, return the
/// confirmed winner.
GammaSearchResult search_confirm_gamma(const GammaSearch& search);

/// Reference search: every grid point measured on the packet path (the
/// fluid tier is never consulted). Same grid, same ranking rule.
GammaSearchResult search_gamma_packet_only(const GammaSearch& search);

}  // namespace pdos
