// Closed-form and numerical solutions of the PDoS attack optimization
// problem (paper §3.1-§3.2):
//
//     maximize  G(γ) = (1 − C_Ψ/γ)(1 − γ)^κ   subject to  C_Ψ < γ < 1.
//
// Proposition 3 gives γ* in closed form; Corollaries 1-3 cover the three
// risk classes; Proposition 4 / Corollary 4 translate γ* into the pulse
// spacing via μ = T_space/T_extent. A golden-section maximizer is provided
// to cross-validate the closed form and to optimize variants the paper
// leaves analytical (e.g. adding measured shrew boosts).
#pragma once

#include <functional>

#include "core/params.hpp"
#include "util/units.hpp"

namespace pdos {

/// Eq. (13), Proposition 3 — evaluated in the algebraically equivalent form
///   γ* = 2 C_Ψ / ( sqrt(C_Ψ²(1−κ)² + 4κC_Ψ) + C_Ψ(1−κ) ),
/// which is numerically stable for κ → 0 (where the printed form is 0/0)
/// and reproduces Corollaries 1-3 in the limits. κ = 0 returns 1, the
/// risk-ignoring flooding limit.
double optimal_gamma(double cpsi, double kappa);

/// Corollary 3 special case, γ* = sqrt(C_Ψ) for the risk-neutral attacker.
double optimal_gamma_risk_neutral(double cpsi);

/// Golden-section maximization of G over (C_Ψ, 1); used to cross-check the
/// closed form and exposed for custom objectives.
double optimal_gamma_numeric(double cpsi, double kappa,
                             double tolerance = 1e-9);

/// Maximize an arbitrary unimodal objective on (lo, hi) by golden section.
double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, double tolerance = 1e-9);

/// Proposition 4: optimal duty-cycle reciprocal. The paper prints
/// μ = C_attack/γ* (Eq. 16); since 1 + μ = C_attack/γ (Eq. 7) the exact
/// value is C_attack/γ* − 1. Both are provided; they agree as μ → ∞.
double optimal_mu_exact(double c_attack, double cpsi, double kappa);
double optimal_mu_paper(double c_attack, double cpsi, double kappa);

/// Corollary 4: risk-neutral μ via C_victim, μ = sqrt(C_attack /
/// (T_extent·C_victim)) (paper's approximation, no −1).
double optimal_mu_risk_neutral_paper(double c_attack, Time textent,
                                     double cvictim);

/// Gain achieved at the optimum, G(γ*).
double optimal_gain(double cpsi, double kappa);

}  // namespace pdos
