// Parameter structs shared by the analytical model, optimizer and planner.
#pragma once

#include <vector>

#include "tcp/aimd.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace pdos {

/// Everything the analytical model needs to know about the victims and the
/// bottleneck: the AIMD parameters of the transport, the packet size, the
/// bottleneck capacity, and the RTT of every victim flow.
struct VictimProfile {
  AimdParams aimd = AimdParams::new_reno();
  Bytes spacket = 1040;          // full packet size in bytes (MSS + headers)
  BitRate rbottle = mbps(15);    // bottleneck capacity, bps
  std::vector<Time> rtts;        // per-flow round-trip times, seconds

  void validate() const {
    aimd.validate();
    PDOS_REQUIRE(spacket > 0, "VictimProfile: spacket must be > 0");
    PDOS_REQUIRE(rbottle > 0.0, "VictimProfile: rbottle must be > 0");
    PDOS_REQUIRE(!rtts.empty(), "VictimProfile: need at least one flow");
    for (Time rtt : rtts)
      PDOS_REQUIRE(rtt > 0.0, "VictimProfile: RTTs must be > 0");
  }

  int num_flows() const { return static_cast<int>(rtts.size()); }

  /// Sum of 1/RTT_i^2 over all victim flows (appears in Eqs. 9, 11, 18).
  double inverse_rtt_sq_sum() const {
    double sum = 0.0;
    for (Time rtt : rtts) sum += 1.0 / (rtt * rtt);
    return sum;
  }

  /// Evenly spaced RTTs in [lo, hi], the distribution of the paper's ns-2
  /// scenario ("RTTs range from 20 ms to 460 ms").
  static std::vector<Time> even_rtts(int n, Time lo, Time hi) {
    PDOS_REQUIRE(n >= 1, "even_rtts: n must be >= 1");
    PDOS_REQUIRE(lo > 0.0 && lo <= hi, "even_rtts: need 0 < lo <= hi");
    std::vector<Time> rtts(n);
    for (int i = 0; i < n; ++i) {
      rtts[i] = n == 1 ? lo : lo + (hi - lo) * i / (n - 1);
    }
    return rtts;
  }
};

/// Attacker risk preference: the exponent κ of the (1 − γ)^κ risk term.
enum class RiskClass { kRiskLoving, kRiskNeutral, kRiskAverse };

inline RiskClass classify_risk(double kappa) {
  PDOS_REQUIRE(kappa > 0.0, "classify_risk: kappa must be > 0");
  if (kappa < 1.0) return RiskClass::kRiskLoving;
  if (kappa > 1.0) return RiskClass::kRiskAverse;
  return RiskClass::kRiskNeutral;
}

inline const char* risk_class_name(RiskClass c) {
  switch (c) {
    case RiskClass::kRiskLoving:
      return "risk-loving";
    case RiskClass::kRiskNeutral:
      return "risk-neutral";
    case RiskClass::kRiskAverse:
      return "risk-averse";
  }
  return "?";
}

}  // namespace pdos
