// Sharded scenario path (DESIGN.md §13): the dumbbell partitioned into
// config.shards logical processes, run by the conservative PDES engine.
//
// Partition (a pure function of num_flows and shards, never of the executor
// thread count):
//   shard 0          — routerS, routerR, the bottleneck pair, attackers,
//                      cross traffic, the sampler, and the router-side half
//                      of every flow's access links (rcv_fwd, snd_rev).
//   shard s in 1..K-1 — the contiguous flow block [m(s-1)/F, ms/F), F=K-1:
//                      sender/receiver nodes, TCP agents, per-shard hot
//                      tables, and the edge-side half of the access links
//                      (snd_fwd, rcv_rev).
//
// Every access link therefore crosses the shard boundary exactly once, and
// its propagation delay (side_i >= lookahead) is the conservative window.
// Cross links get a RemoteLink egress hook instead of a local delivery
// event: one staged message, one destination-shard event per packet — the
// same per-packet event cost as the single-scheduler link path, which is
// what keeps total events_executed (a golden-digest field) identical to
// shards=1 on the full backend. On the fast backend the cross links cannot
// fuse (a lazy link's deferred emissions would violate the lookahead
// contract), so counters and bins match shards=1 exactly but the event
// count is higher than the unsharded fast path.
#include <algorithm>
#include <limits>
#include <memory>
#include <string>

#include "attack/distributed.hpp"
#include "core/experiment.hpp"
#include "core/experiment_internal.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/pdes/engine.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/stats_hub.hpp"
#include "tcp/connection.hpp"
#include "traffic/sources.hpp"
#include "util/assert.hpp"

namespace pdos {

using detail::big_fifo;
using detail::kFlowStartStream;
using detail::make_queue;

void ScenarioWorkspace::build_pdes(const ScenarioConfig& config,
                                   const std::optional<PulseTrain>& attack) {
  const int m = config.num_flows;
  const int flow_shards = config.shards - 1;
  const NodeId router_s_id = 2 * m;
  const NodeId router_r_id = 2 * m + 1;
  const NodeId attacker_id = 2 * m + 2;
  const bool fast = config.fast_path || config.backend == Backend::kFast;
  Simulator& sim = sim_;
  const Bytes spacket = config.tcp.mss + config.tcp.header_bytes;

  router_s_ = sim.make<Node>(router_s_id, "routerS", sim.memory());
  router_r_ = sim.make<Node>(router_r_id, "routerR", sim.memory());

  bottleneck_ = sim.make<Link>(
      sim, "bottleneck", config.bottleneck, config.bottleneck_delay,
      make_queue(sim, config), router_r_, spacket);
  if (fast) bottleneck_->set_fused(true);
  // The bottleneck pair is entirely shard-0-local, so the fast path keeps
  // every single-sim optimization here: fusion on the forward direction and
  // the chained express ACK lane on the reverse (DESIGN.md §11).
  Link* bottleneck_rev =
      fast ? sim.make<Link>(sim, "bottleneck.rev", config.bottleneck,
                            config.bottleneck_delay,
                            static_cast<PacketHandler*>(router_s_), spacket)
           : sim.make<Link>(sim, "bottleneck.rev", config.bottleneck,
                            config.bottleneck_delay, big_fifo(sim), router_s_,
                            spacket);
  router_r_->add_route(router_s_id, bottleneck_rev);
  if (fast) bottleneck_rev->chain_via(router_s_);

  connections_.reserve(static_cast<std::size_t>(m));
  for (int s = 1; s <= flow_shards; ++s) {
    Simulator& fs = *flow_sims_[static_cast<std::size_t>(s - 1)];
    // Contiguous block split: every flow lands on exactly one shard and the
    // block edges depend only on (m, F).
    const int lo = m * (s - 1) / flow_shards;
    const int hi = m * s / flow_shards;
    const int count = hi - lo;
    PDOS_CHECK(count > 0);  // validate(): shards - 1 <= num_flows
    pdes::Channel* up = engine_->channel(static_cast<std::uint32_t>(s), 0);
    pdes::Channel* down = engine_->channel(0, static_cast<std::uint32_t>(s));

    // Per-shard hot tables: the block's ACK-clock state is contiguous in
    // the shard's own arena, so shard tasks never share cache lines.
    auto* snd_hot =
        fs.make_array<TcpSenderHot>(static_cast<std::size_t>(count));
    auto* rcv_hot = fs.make_array<TcpReceiverHot>(
        static_cast<std::size_t>(count), fs.memory());

    for (int i = lo; i < hi; ++i) {
      const NodeId snd_id = i;
      const NodeId rcv_id = m + i;
      auto* snd =
          fs.make<Node>(snd_id, "sender" + std::to_string(i), fs.memory());
      auto* rcv =
          fs.make<Node>(rcv_id, "receiver" + std::to_string(i), fs.memory());

      const Time side = (config.rtts[i] / 2.0 - config.bottleneck_delay) / 2.0;
      PDOS_CHECK(side > 0.0);

      // Edge-side links live on the flow shard, router-side links on shard
      // 0. A cross link's `downstream` pointer names the logical target for
      // documentation/symmetry but is never dereferenced by the owner — the
      // remote-egress hook intercepts emit() before delivery.
      auto* snd_fwd = fs.make<Link>(fs, "acc.s" + std::to_string(i),
                                    config.access, side, big_fifo(fs),
                                    router_s_, spacket);
      auto* rcv_fwd = sim.make<Link>(sim, "acc.r" + std::to_string(i),
                                     config.access, side, big_fifo(sim), rcv,
                                     spacket);
      Link* snd_rev =
          fast ? sim.make<Link>(sim, "acc.s.rev" + std::to_string(i),
                                config.access, side,
                                static_cast<PacketHandler*>(snd), spacket)
               : sim.make<Link>(sim, "acc.s.rev" + std::to_string(i),
                                config.access, side, big_fifo(sim), snd,
                                spacket);
      Link* rcv_rev =
          fast ? fs.make<Link>(fs, "acc.r.rev" + std::to_string(i),
                               config.access, side,
                               static_cast<PacketHandler*>(router_r_), spacket)
               : fs.make<Link>(fs, "acc.r.rev" + std::to_string(i),
                               config.access, side, big_fifo(fs), router_r_,
                               spacket);
      // NOTE: no set_fused on snd_fwd/rcv_fwd even in fast mode — a lazy
      // fused link defers emissions to later visits, which would push
      // messages into a round that already started on the far shard. The
      // express reverse lanes are safe: they emit eagerly at handle() time.

      snd->set_default_route(snd_fwd);
      rcv->set_default_route(rcv_rev);
      router_s_->add_route(rcv_id, bottleneck_);
      router_s_->add_route(snd_id, snd_rev);
      router_r_->add_route(rcv_id, rcv_fwd);
      router_r_->add_route(snd_id, bottleneck_rev);

      connections_.push_back(make_tcp_connection(
          fs, *snd, *rcv, /*flow=*/i, config.tcp, &snd_hot[i - lo],
          &rcv_hot[i - lo], fast ? snd_fwd : nullptr,
          fast ? rcv_rev : nullptr));

      // Remote egress contexts, allocated in the OWNING shard's arena (the
      // side whose round task writes the channel — SPSC by construction).
      // Lanes 4i+k are unique per link, giving the destination merge its
      // canonical tie-break. Fast mode delivers straight to the object the
      // single-sim fast path would have set as the link's downstream; full
      // mode delivers to the node, which dispatches exactly like the
      // single-sim delivery event did.
      const std::uint32_t lane = 4 * static_cast<std::uint32_t>(i);
      auto* r_snd_fwd = fs.make<pdes::RemoteLink>();
      r_snd_fwd->channel = up;
      r_snd_fwd->handler =
          fast ? static_cast<PacketHandler*>(bottleneck_)
               : static_cast<PacketHandler*>(router_s_);
      r_snd_fwd->delay = side;
      r_snd_fwd->lane = lane + 0;
      snd_fwd->set_remote_egress(&pdes::RemoteLink::egress, r_snd_fwd);

      auto* r_rcv_fwd = sim.make<pdes::RemoteLink>();
      r_rcv_fwd->channel = down;
      r_rcv_fwd->handler =
          fast ? static_cast<PacketHandler*>(connections_.back().receiver)
               : static_cast<PacketHandler*>(rcv);
      r_rcv_fwd->delay = side;
      r_rcv_fwd->lane = lane + 1;
      rcv_fwd->set_remote_egress(&pdes::RemoteLink::egress, r_rcv_fwd);

      auto* r_snd_rev = sim.make<pdes::RemoteLink>();
      r_snd_rev->channel = down;
      r_snd_rev->handler =
          fast ? static_cast<PacketHandler*>(connections_.back().sender)
               : static_cast<PacketHandler*>(snd);
      r_snd_rev->delay = side;
      r_snd_rev->lane = lane + 2;
      snd_rev->set_remote_egress(&pdes::RemoteLink::egress, r_snd_rev);

      auto* r_rcv_rev = fs.make<pdes::RemoteLink>();
      r_rcv_rev->channel = up;
      r_rcv_rev->handler =
          fast ? static_cast<PacketHandler*>(bottleneck_rev)
               : static_cast<PacketHandler*>(router_r_);
      r_rcv_rev->delay = side;
      r_rcv_rev->lane = lane + 3;
      rcv_rev->set_remote_egress(&pdes::RemoteLink::egress, r_rcv_rev);
    }
  }
  router_s_->add_route(router_r_id, bottleneck_);

  // Cross traffic and attackers are shard-0-local; this block is identical
  // to build()'s.
  if (config.cross_traffic_rate > 0.0) {
    const NodeId cross_id = 2 * m + 3;
    auto* cross_node = sim.make<Node>(cross_id, "cross", sim.memory());
    auto* cross_link = sim.make<Link>(sim, "acc.cross", config.access, ms(1),
                                      big_fifo(sim), router_s_, spacket);
    if (fast) cross_link->set_fused(true);
    cross_node->set_default_route(cross_link);
    cross_traffic_ = sim.make<OnOffSource>(
        sim, 2.0 * config.cross_traffic_rate, ms(500), ms(500), spacket,
        cross_id, router_r_id, cross_node);
  }

  if (attack) {
    const auto sub_trains = split_train(*attack, config.num_attackers);
    for (int a = 0; a < config.num_attackers; ++a) {
      const NodeId node_id = attacker_id + 10 + a;
      auto* attacker_node = sim.make<Node>(
          node_id, "attacker" + std::to_string(a), sim.memory());
      BitRate attacker_access = config.attacker_access;
      if (attacker_access <= 0.0) {
        attacker_access =
            std::max(config.access, 2.0 * sub_trains[a].rattack);
      }
      const bool express_attack =
          fast && attacker_access >= sub_trains[a].rattack;
      Link* attack_link =
          express_attack
              ? sim.make<Link>(sim, "acc.attacker" + std::to_string(a),
                               attacker_access, ms(1),
                               static_cast<PacketHandler*>(router_s_),
                               attack->packet_bytes)
              : sim.make<Link>(sim, "acc.attacker" + std::to_string(a),
                               attacker_access, ms(1), big_fifo(sim),
                               router_s_, attack->packet_bytes);
      if (fast && !express_attack) attack_link->set_fused(true);
      if (fast) attack_link->set_downstream(bottleneck_);
      attacker_node->set_default_route(attack_link);
      attackers_.push_back(
          sim.make<PulseAttacker>(sim, sub_trains[a], node_id, router_r_id,
                                  attacker_node, FlowId{-1000 - a}));
      if (express_attack) attackers_.back()->set_express_lane(attack_link);
    }
  }
}

RunResult ScenarioWorkspace::run_pdes(const ScenarioConfig& config,
                                      const std::optional<PulseTrain>& attack,
                                      const RunControl& control) {
  const std::size_t flow_shards =
      static_cast<std::size_t>(config.shards) - 1;

  // Rewind every shard to the run seed. Flow-shard simulators are created
  // on first use and kept warm afterwards, exactly like sim_ — a workspace
  // cycling through shard counts retains the larger set.
  sim_.reset(config.seed);
  while (flow_sims_.size() < flow_shards) {
    flow_sims_.push_back(std::make_unique<Simulator>(config.seed));
  }
  for (std::size_t s = 0; s < flow_shards; ++s) {
    flow_sims_[s]->reset(config.seed);
  }
  router_s_ = nullptr;
  router_r_ = nullptr;
  bottleneck_ = nullptr;
  cross_traffic_ = nullptr;
  background_ = nullptr;
  sender_hot_ = nullptr;
  receiver_hot_ = nullptr;
  connections_.clear();
  attackers_.clear();

  // The conservative window: no cross-shard link may carry a packet across
  // a round boundary faster than this. Every cross link is an access-link
  // half with delay side_i, so the minimum side is the exact bound.
  Time lookahead = std::numeric_limits<Time>::infinity();
  for (Time rtt : config.rtts) {
    const Time side = (rtt / 2.0 - config.bottleneck_delay) / 2.0;
    lookahead = std::min(lookahead, side);
  }

  if (!engine_) engine_ = std::make_unique<pdes::PdesEngine>();
  std::vector<Simulator*> sims;
  sims.reserve(flow_shards + 1);
  sims.push_back(&sim_);
  for (std::size_t s = 0; s < flow_shards; ++s) {
    sims.push_back(flow_sims_[s].get());
  }
  engine_->configure(std::move(sims), lookahead);

  build_pdes(config, attack);

  // Instrumentation mirrors run() exactly; see the comments there. The
  // arrivals tap and sampler are shard-0-only; per-flow delivery tracers
  // touch disjoint meter slots, so flow shards never write shared state.
  StatsHub arrivals(control.bin_width, control.horizon());
  bottleneck_->add_arrival_tap(
      [hub = &arrivals, sim = &sim_](const Packet& pkt) {
        hub->on_arrival(sim->now(), pkt);
      });

  RunResult result;

  struct SamplerCtx {
    Link* bottleneck;
    Simulator& sim;
    RunResult& result;
    const RunControl& control;
    const RedQueue* red_queue;
    Timer* timer = nullptr;
  } sampler_ctx{bottleneck_, sim_, result, control,
                dynamic_cast<const RedQueue*>(&bottleneck_->queue())};
  Timer sampler(sim_.scheduler(), [ctx = &sampler_ctx] {
    ctx->bottleneck->settle();
    ctx->result.queue_occupancy.push_back(
        static_cast<double>(ctx->bottleneck->queue().length()) +
        (ctx->red_queue != nullptr ? ctx->red_queue->fluid_backlog() : 0.0));
    ctx->result.red_avg_samples.push_back(
        ctx->red_queue != nullptr ? ctx->red_queue->avg() : 0.0);
    if (ctx->sim.now() + ctx->control.bin_width <= ctx->control.horizon()) {
      ctx->timer->schedule_in(ctx->control.bin_width);
    }
  });
  sampler_ctx.timer = &sampler;
  sampler.schedule_in(0.0);

  arrivals.register_flows(connections_.size());
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    connections_[i].receiver->set_delivery_tracer(
        [hub = &arrivals, i](Time t, std::int64_t) {
          hub->on_delivery(i, t);
        });
  }

  if (control.traced_flow >= 0) {
    PDOS_REQUIRE(control.traced_flow < config.num_flows,
                 "RunControl: traced_flow out of range");
    connections_[control.traced_flow].sender->set_cwnd_tracer(
        [&result](Time t, double w) { result.cwnd_trace.emplace_back(t, w); });
  }

  // Flow-start offsets come from the same seed-derived streams as run();
  // shard simulators share the run seed, so which Simulator derives the
  // stream is immaterial (Simulator::stream is construction-order free).
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Rng start_rng = sim_.stream(kFlowStartStream + i);
    connections_[i].sender->start(
        start_rng.uniform(0.0, config.flow_start_spread));
  }
  if (!attackers_.empty()) {
    auto phases =
        spread_phases_seeded(static_cast<int>(attackers_.size()),
                             config.attacker_phase_spread, config.seed);
    for (std::size_t a = 0; a < attackers_.size(); ++a) {
      attackers_[a]->start(phases[a]);
    }
  }
  if (cross_traffic_) cross_traffic_->start(0.0);

  engine_->run_until(control.warmup, shard_executor_);
  goodput_marks_.clear();
  goodput_marks_.reserve(connections_.size());
  for (const auto& conn : connections_) {
    goodput_marks_.push_back(conn.receiver->goodput_bytes());
  }

  engine_->run_until(control.horizon(), shard_executor_);

  collect_packet_result(config, control, arrivals, /*background_mark=*/{},
                        result);
  result.events_executed = sim_.scheduler().events_executed();
  for (std::size_t s = 0; s < flow_shards; ++s) {
    result.events_executed += flow_sims_[s]->scheduler().events_executed();
  }
  return result;
}

}  // namespace pdos
