#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "attack/distributed.hpp"
#include "core/experiment_internal.hpp"
#include "core/model.hpp"
#include "fluid/batch.hpp"
#include "fluid/hybrid.hpp"
#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/fairness.hpp"
#include "stats/jitter.hpp"
#include "stats/stats_hub.hpp"
#include "traffic/sources.hpp"
#include "tcp/connection.hpp"
#include "util/assert.hpp"

namespace pdos {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kFull: return "full";
    case Backend::kFast: return "fast";
    case Backend::kFluid: return "fluid";
    case Backend::kHybrid: return "hybrid";
  }
  return "?";
}

std::optional<Backend> parse_backend(const std::string& name) {
  if (name == "full") return Backend::kFull;
  if (name == "fast") return Backend::kFast;
  if (name == "fluid") return Backend::kFluid;
  if (name == "hybrid") return Backend::kHybrid;
  return std::nullopt;
}

ScenarioConfig ScenarioConfig::ns2_dumbbell(int num_flows) {
  ScenarioConfig config;
  config.num_flows = num_flows;
  config.bottleneck = mbps(15);
  config.access = mbps(50);
  config.bottleneck_delay = ms(1);
  config.rtts = VictimProfile::even_rtts(num_flows, ms(20), ms(460));
  config.queue = QueueKind::kRed;
  // Not restated by the paper; ~0.55 x BDP at the mean RTT keeps the
  // bottleneck >90% utilized without an attack (Lemma 1's premise) while
  // letting 50-100 ms pulses overflow it. See EXPERIMENTS.md.
  config.buffer_packets = 240;
  config.tcp = TcpSenderConfig{};
  config.tcp.aimd = AimdParams::new_reno();  // ns-2: no delayed ACKs
  config.tcp.rto_min = sec(1.0);             // ns-2 default minRTO
  return config;
}

ScenarioConfig ScenarioConfig::testbed(int num_flows) {
  ScenarioConfig config;
  config.num_flows = num_flows;
  config.bottleneck = mbps(10);
  config.access = mbps(100);
  config.bottleneck_delay = ms(1);
  // Dummynet adds 150 ms of delay shared by every flow.
  config.rtts.assign(num_flows, ms(150));
  config.queue = QueueKind::kRed;
  config.tcp = TcpSenderConfig{};
  config.tcp.aimd = AimdParams::new_reno_delack();  // Linux: delayed ACKs
  config.tcp.rto_min = ms(200);                     // Fedora kernel 2.6.5
  // Rule-of-thumb buffer B = RTT * R_bottle, in packets.
  const Bytes spacket = config.tcp.mss + config.tcp.header_bytes;
  config.buffer_packets = static_cast<std::size_t>(
      ms(150) * mbps(10) / 8.0 / static_cast<double>(spacket));
  return config;
}

ScenarioConfig ScenarioConfig::large_scale(int num_flows,
                                           BitRate bottleneck) {
  ScenarioConfig config;
  config.num_flows = num_flows;
  config.bottleneck = bottleneck;
  config.access = mbps(50);
  config.bottleneck_delay = ms(1);
  config.rtts = VictimProfile::even_rtts(num_flows, ms(20), ms(460));
  config.queue = QueueKind::kRed;
  // Scale the ns-2 dumbbell's 240-packet buffer with the bottleneck rate so
  // buffering stays ~0.55 x BDP at the mean RTT regardless of scale.
  config.buffer_packets =
      static_cast<std::size_t>(240.0 * bottleneck / mbps(15));
  config.tcp = TcpSenderConfig{};
  config.tcp.aimd = AimdParams::new_reno();
  config.tcp.rto_min = sec(1.0);
  config.fast_path = true;
  return config;
}

void ScenarioConfig::validate() const {
  PDOS_REQUIRE(num_flows >= 1, "Scenario: need at least one flow");
  PDOS_REQUIRE(static_cast<int>(rtts.size()) == num_flows,
               "Scenario: rtts.size() must equal num_flows");
  PDOS_REQUIRE(bottleneck > 0.0 && access > 0.0,
               "Scenario: link rates must be > 0");
  PDOS_REQUIRE(buffer_packets >= 2, "Scenario: buffer must hold >= 2 packets");
  PDOS_REQUIRE(num_attackers >= 1, "Scenario: need at least one attacker");
  PDOS_REQUIRE(attacker_phase_spread >= 0.0,
               "Scenario: attacker_phase_spread must be >= 0");
  PDOS_REQUIRE(cross_traffic_rate >= 0.0,
               "Scenario: cross_traffic_rate must be >= 0");
  for (Time rtt : rtts) {
    PDOS_REQUIRE(rtt > 2.0 * bottleneck_delay,
                 "Scenario: RTT must exceed bottleneck propagation");
  }
  if (backend == Backend::kFluid || backend == Backend::kHybrid) {
    PDOS_REQUIRE(fluid_dt_pulse > 0.0 && fluid_dt_idle > 0.0,
                 "Scenario: fluid integration steps must be > 0");
  }
  if (backend == Backend::kFluid) {
    PDOS_REQUIRE(cross_traffic_rate == 0.0,
                 "Scenario: fluid backend does not model cross traffic");
    PDOS_REQUIRE(attacker_phase_spread == 0.0,
                 "Scenario: fluid backend needs in-phase attackers");
  }
  if (backend == Backend::kHybrid) {
    PDOS_REQUIRE(queue == QueueKind::kRed,
                 "Scenario: hybrid backend requires a RED bottleneck");
    PDOS_REQUIRE(hybrid_foreground >= 1 && hybrid_foreground < num_flows,
                 "Scenario: hybrid needs 1 <= hybrid_foreground < num_flows");
    PDOS_REQUIRE(hybrid_tick > 0.0, "Scenario: hybrid_tick must be > 0");
  }
  PDOS_REQUIRE(shards >= 1, "Scenario: shards must be >= 1");
  if (shards > 1) {
    PDOS_REQUIRE(backend == Backend::kFull || backend == Backend::kFast,
                 "Scenario: shards > 1 requires a packet backend");
    PDOS_REQUIRE(shards - 1 <= num_flows,
                 "Scenario: need at least one flow per flow shard");
  }
  tcp.validate();
}

VictimProfile ScenarioConfig::victim_profile() const {
  VictimProfile victim;
  victim.aimd = tcp.aimd;
  victim.spacket = tcp.mss + tcp.header_bytes;
  victim.rbottle = bottleneck;
  victim.rtts = rtts;
  return victim;
}

fluid::FluidConfig make_fluid_config(const ScenarioConfig& config) {
  fluid::FluidConfig fc;
  fc.aimd = config.tcp.aimd;
  fc.spacket = config.tcp.mss + config.tcp.header_bytes;
  fc.bottleneck = config.bottleneck;
  fc.access = config.access;
  // Same parameterization make_queue builds for the packet bottleneck.
  fc.red = RedParams::paper_testbed(config.buffer_packets);
  fc.droptail = config.queue == QueueKind::kDropTail;
  fc.classes.reserve(config.rtts.size());
  for (Time rtt : config.rtts) {
    fc.classes.push_back(fluid::FluidClass{rtt, 1.0});
  }
  fc.initial_ssthresh = config.tcp.initial_ssthresh;
  fc.max_cwnd = config.tcp.max_cwnd;
  fc.rto_min = config.tcp.rto_min;
  fc.dt_pulse = config.fluid_dt_pulse;
  fc.dt_idle = config.fluid_dt_idle;
  return fc;
}

namespace {

using detail::big_fifo;
using detail::kFlowStartStream;
using detail::make_queue;

fluid::FluidControl fluid_control_from(const RunControl& control) {
  fluid::FluidControl fctl;
  fctl.warmup = control.warmup;
  fctl.measure = control.measure;
  fctl.bin_width = control.bin_width;
  fctl.traced_class = control.traced_flow;
  return fctl;
}

std::optional<fluid::FluidAttack> fluid_attack_from(
    const std::optional<PulseTrain>& attack) {
  if (!attack) return std::nullopt;
  return fluid::FluidAttack{attack->textent, attack->rattack, attack->tspace,
                            attack->packet_bytes};
}

/// Map the fluid observables onto RunResult so every caller (sweeps,
/// optimizer, gain/baseline) consumes the surrogate through the same
/// interface as the packet tiers. Shared by the single-point kFluid
/// backend and the lane-batched run_fluid_batch.
RunResult fluid_result_to_run(const std::optional<PulseTrain>& attack,
                              fluid::FluidResult fr) {
  RunResult result;
  result.goodput_bytes = static_cast<Bytes>(fr.goodput_bytes);
  result.goodput_rate = fr.goodput_rate;
  result.utilization = fr.utilization;
  result.per_flow_goodput.reserve(fr.per_class_goodput_bytes.size());
  for (double bytes : fr.per_class_goodput_bytes) {
    result.per_flow_goodput.push_back(static_cast<Bytes>(bytes));
  }
  result.fairness_index = jain_fairness_index(fr.per_class_goodput_bytes);
  result.bin_width = fr.bin_width;
  result.red_early_drops =
      static_cast<std::uint64_t>(fr.early_dropped_packets);
  result.red_forced_drops =
      static_cast<std::uint64_t>(fr.forced_dropped_packets);
  result.total_timeouts = fr.timeouts;
  // A fluid loss episode is the surrogate of a fast-recovery spell.
  result.total_fast_recoveries = fr.loss_events;
  result.events_executed = fr.steps;
  if (attack) {
    double attack_bytes = 0.0;
    for (double b : fr.attack_bins) attack_bytes += b;
    result.attack_packets_sent = static_cast<std::uint64_t>(
        attack_bytes / static_cast<double>(attack->packet_bytes));
  }
  result.incoming_bins = std::move(fr.incoming_bins);
  result.attack_bins = std::move(fr.attack_bins);
  result.queue_occupancy = std::move(fr.queue_occupancy);
  result.red_avg_samples = std::move(fr.red_avg_samples);
  result.cwnd_trace = std::move(fr.cwnd_trace);
  return result;
}

/// kFluid backend: no simulator at all — translate, solve, map.
RunResult run_fluid_backend(const ScenarioConfig& config,
                            const std::optional<PulseTrain>& attack,
                            const RunControl& control) {
  return fluid_result_to_run(
      attack, fluid::solve(make_fluid_config(config),
                           fluid_attack_from(attack),
                           fluid_control_from(control)));
}

}  // namespace

std::vector<RunResult> run_fluid_batch(
    const ScenarioConfig& config,
    const std::vector<std::optional<PulseTrain>>& attacks,
    const RunControl& control) {
  config.validate();
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "RunControl: need warmup >= 0 and measure > 0");
  std::vector<fluid::BatchLane> lanes;
  lanes.reserve(attacks.size());
  for (const std::optional<PulseTrain>& attack : attacks) {
    if (attack) attack->validate();
    lanes.push_back(fluid::BatchLane{fluid_attack_from(attack)});
  }
  std::vector<fluid::FluidResult> solved = fluid::solve_batch(
      make_fluid_config(config), lanes, fluid_control_from(control));
  std::vector<RunResult> results;
  results.reserve(solved.size());
  for (std::size_t i = 0; i < solved.size(); ++i) {
    results.push_back(fluid_result_to_run(attacks[i], std::move(solved[i])));
  }
  return results;
}

std::vector<GainMeasurement> fluid_gain_batch(const ScenarioConfig& config,
                                              const std::vector<PulseTrain>& trains,
                                              double kappa,
                                              const RunControl& control,
                                              BitRate baseline_goodput) {
  std::vector<std::optional<PulseTrain>> attacks;
  attacks.reserve(trains.size());
  for (const PulseTrain& train : trains) attacks.emplace_back(train);
  std::vector<RunResult> runs = run_fluid_batch(config, attacks, control);
  std::vector<GainMeasurement> gains;
  gains.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    gains.push_back(finish_gain(config, trains[i], kappa, baseline_goodput,
                                std::move(runs[i])));
  }
  return gains;
}

void ScenarioWorkspace::build(const ScenarioConfig& config,
                              const std::optional<PulseTrain>& attack) {
  const int m = config.num_flows;
  const NodeId router_s_id = 2 * m;
  const NodeId router_r_id = 2 * m + 1;
  const NodeId attacker_id = 2 * m + 2;
  const bool fast = config.fast_path || config.backend == Backend::kFast;
  Simulator& sim = sim_;

  router_s_ = sim.make<Node>(router_s_id, "routerS", sim.memory());
  router_r_ = sim.make<Node>(router_r_id, "routerR", sim.memory());

  // Flat hot-state tables: all N flows' per-ACK sender state in one arena
  // block, receivers in the next, so the ACK clock walks contiguous cache
  // lines instead of state scattered between cold component objects.
  sender_hot_ = sim.make_array<TcpSenderHot>(static_cast<std::size_t>(m));
  receiver_hot_ = sim.make_array<TcpReceiverHot>(static_cast<std::size_t>(m),
                                                 sim.memory());

  const Bytes spacket = config.tcp.mss + config.tcp.header_bytes;
  bottleneck_ = sim.make<Link>(
      sim, "bottleneck", config.bottleneck, config.bottleneck_delay,
      make_queue(sim, config), router_r_, spacket);
  if (fast) bottleneck_->set_fused(true);
  // Fast path: the reverse direction carries only 40-byte ACKs paced by the
  // forward bottleneck — it can never congest, so it gets the queue-less
  // express lane (one sequenced delivery event per link, no service
  // events). Scenarios that queue or tap the reverse path keep fast_path
  // off and get the full link.
  Link* bottleneck_rev =
      fast ? sim.make<Link>(sim, "bottleneck.rev", config.bottleneck,
                            config.bottleneck_delay,
                            static_cast<PacketHandler*>(router_s_), spacket)
           : sim.make<Link>(sim, "bottleneck.rev", config.bottleneck,
                            config.bottleneck_delay, big_fifo(sim), router_s_,
                            spacket);
  router_r_->add_route(router_s_id, bottleneck_rev);
  // Chain the ACK lane straight through routerS: every packet the reverse
  // bottleneck emits is bound for a sender, whose per-flow reverse access
  // link is also express and fed by this link alone, so the handoff skips
  // routerS's delivery event — one scheduler event per ACK end to end
  // instead of two (see DESIGN.md §11).
  if (fast) bottleneck_rev->chain_via(router_s_);

  for (int i = 0; i < m; ++i) {
    const NodeId snd_id = i;
    const NodeId rcv_id = m + i;
    auto* snd =
        sim.make<Node>(snd_id, "sender" + std::to_string(i), sim.memory());
    auto* rcv =
        sim.make<Node>(rcv_id, "receiver" + std::to_string(i), sim.memory());

    // Split the flow's propagation RTT between its two access links.
    const Time side = (config.rtts[i] / 2.0 - config.bottleneck_delay) / 2.0;
    PDOS_CHECK(side > 0.0);

    auto* snd_fwd = sim.make<Link>(sim, "acc.s" + std::to_string(i),
                                   config.access, side, big_fifo(sim),
                                   router_s_, spacket);
    auto* rcv_fwd = sim.make<Link>(sim, "acc.r" + std::to_string(i),
                                   config.access, side, big_fifo(sim), rcv,
                                   spacket);
    Link* snd_rev =
        fast ? sim.make<Link>(sim, "acc.s.rev" + std::to_string(i),
                              config.access, side,
                              static_cast<PacketHandler*>(snd), spacket)
             : sim.make<Link>(sim, "acc.s.rev" + std::to_string(i),
                              config.access, side, big_fifo(sim), snd,
                              spacket);
    Link* rcv_rev =
        fast ? sim.make<Link>(sim, "acc.r.rev" + std::to_string(i),
                              config.access, side,
                              static_cast<PacketHandler*>(router_r_), spacket)
             : sim.make<Link>(sim, "acc.r.rev" + std::to_string(i),
                              config.access, side, big_fifo(sim), router_r_,
                              spacket);
    if (fast) {
      snd_fwd->set_fused(true);
      rcv_fwd->set_fused(true);
    }

    snd->set_default_route(snd_fwd);
    rcv->set_default_route(rcv_rev);
    router_s_->add_route(rcv_id, bottleneck_);
    router_s_->add_route(snd_id, snd_rev);
    router_r_->add_route(rcv_id, rcv_fwd);
    router_r_->add_route(snd_id, bottleneck_rev);

    connections_.push_back(make_tcp_connection(
        sim, *snd, *rcv, /*flow=*/i, config.tcp, &sender_hot_[i],
        &receiver_hot_[i],
        // Fast path: a per-flow link carries exactly one flow, so every hop
        // it feeds resolves to one handler — wire the agents and links
        // point-to-point and skip the Node dispatch on both edge rows. The
        // routers keep their tables (the bottleneck fan-out and the reverse
        // chain handoff still resolve through them); packet timings, queue
        // decisions, and events are untouched by call-path shortcuts.
        fast ? snd_fwd : nullptr, fast ? rcv_rev : nullptr));
    if (fast) {
      snd_fwd->set_downstream(bottleneck_);
      rcv_fwd->set_downstream(connections_.back().receiver);
      rcv_rev->set_downstream(bottleneck_rev);
      snd_rev->set_downstream(connections_.back().sender);
    }
  }
  router_s_->add_route(router_r_id, bottleneck_);

  if (config.cross_traffic_rate > 0.0) {
    const NodeId cross_id = 2 * m + 3;
    auto* cross_node = sim.make<Node>(cross_id, "cross", sim.memory());
    auto* cross_link = sim.make<Link>(sim, "acc.cross", config.access, ms(1),
                                      big_fifo(sim), router_s_, spacket);
    if (fast) cross_link->set_fused(true);
    cross_node->set_default_route(cross_link);
    // 50% duty cycle: peak rate of twice the requested average.
    cross_traffic_ = sim.make<OnOffSource>(
        sim, 2.0 * config.cross_traffic_rate, ms(500), ms(500), spacket,
        cross_id, router_r_id, cross_node);
  }

  if (attack) {
    const auto sub_trains = split_train(*attack, config.num_attackers);
    for (int a = 0; a < config.num_attackers; ++a) {
      const NodeId node_id = attacker_id + 10 + a;
      auto* attacker_node = sim.make<Node>(
          node_id, "attacker" + std::to_string(a), sim.memory());
      BitRate attacker_access = config.attacker_access;
      if (attacker_access <= 0.0) {
        attacker_access =
            std::max(config.access, 2.0 * sub_trains[a].rattack);
      }
      // Fast path: with the access link at least as fast as the pulse rate
      // it can never queue or drop, so it gets the express lane and the
      // attacker injects each burst in one batched event instead of one
      // event per packet (timings are identical either way).
      const bool express_attack =
          fast && attacker_access >= sub_trains[a].rattack;
      Link* attack_link =
          express_attack
              ? sim.make<Link>(sim, "acc.attacker" + std::to_string(a),
                               attacker_access, ms(1),
                               static_cast<PacketHandler*>(router_s_),
                               attack->packet_bytes)
              : sim.make<Link>(sim, "acc.attacker" + std::to_string(a),
                               attacker_access, ms(1), big_fifo(sim),
                               router_s_, attack->packet_bytes);
      if (fast && !express_attack) attack_link->set_fused(true);
      // Every attack packet is bound for routerR across the bottleneck, so
      // the fast path hands deliveries straight to the bottleneck link
      // instead of bouncing through routerS's route table.
      if (fast) attack_link->set_downstream(bottleneck_);
      attacker_node->set_default_route(attack_link);
      // Attack packets are addressed to routerR, which has no agent for
      // their flow id and therefore sinks them — after they have crossed
      // the bottleneck queue, which is all the attack needs.
      attackers_.push_back(
          sim.make<PulseAttacker>(sim, sub_trains[a], node_id, router_r_id,
                                  attacker_node, FlowId{-1000 - a}));
      if (express_attack) attackers_.back()->set_express_lane(attack_link);
    }
  }
}

/// The per-run accumulators every instrumentation closure points into
/// (arrival tap, occupancy sampler, cwnd tracer). Heap-held by the
/// workspace and never moved, so the captured raw addresses stay valid from
/// begin_run until finish_run — which is what lets a run pause between
/// advance_run slices while other co-resident replicates execute.
struct ScenarioWorkspace::ActiveRun {
  ScenarioConfig config;  // the caller's config (pre-hybrid-carve)
  RunControl control;
  StatsHub arrivals;
  RunResult result;
  std::vector<double> background_mark;
  bool marked = false;  // warmup goodput marks taken

  // Sample bottleneck occupancy (and RED's lagging average) once per bin.
  // The state is bundled so the closure captures one pointer and stays
  // within InlineFn's inline budget.
  struct SamplerCtx {
    Link* bottleneck;
    Simulator& sim;
    RunResult& result;
    const RunControl& control;
    const RedQueue* red_queue;
    Timer* timer = nullptr;
  } sampler_ctx;
  Timer sampler;

  ActiveRun(const ScenarioConfig& cfg, const RunControl& ctl, Simulator& sim,
            Link* bottleneck)
      : config(cfg),
        control(ctl),
        arrivals(ctl.bin_width, ctl.horizon()),
        sampler_ctx{bottleneck, sim, result, control,
                    dynamic_cast<const RedQueue*>(&bottleneck->queue())},
        sampler(sim.scheduler(), [ctx = &sampler_ctx] {
          // Lazy fused links drain analytically between packets; flush
          // services completed by now so the occupancy sample matches the
          // eager schedule.
          ctx->bottleneck->settle();
          // Hybrid runs count the fluid background's virtual backlog as
          // occupancy; with no background the term is exactly 0.0 and the
          // sample is bit-identical to the packet-only path.
          ctx->result.queue_occupancy.push_back(
              static_cast<double>(ctx->bottleneck->queue().length()) +
              (ctx->red_queue != nullptr ? ctx->red_queue->fluid_backlog()
                                         : 0.0));
          ctx->result.red_avg_samples.push_back(
              ctx->red_queue != nullptr ? ctx->red_queue->avg() : 0.0);
          if (ctx->sim.now() + ctx->control.bin_width <=
              ctx->control.horizon()) {
            ctx->timer->schedule_in(ctx->control.bin_width);
          }
        }) {
    sampler_ctx.timer = &sampler;
    // Pre-size the sampled series to the horizon so the event loop itself
    // performs no allocations (pinned by replicate_alloc_test): one sample
    // per bin from t = 0, plus slack for the boundary sample.
    const std::size_t samples =
        static_cast<std::size_t>(ctl.horizon() / ctl.bin_width) + 2;
    result.queue_occupancy.reserve(samples);
    result.red_avg_samples.reserve(samples);
  }
};

ScenarioWorkspace::ScenarioWorkspace() = default;
ScenarioWorkspace::~ScenarioWorkspace() = default;

void ScenarioWorkspace::abort_run() { active_.reset(); }

bool ScenarioWorkspace::run_active() const { return active_ != nullptr; }

RunResult ScenarioWorkspace::run(const ScenarioConfig& config,
                                 const std::optional<PulseTrain>& attack,
                                 const RunControl& control) {
  config.validate();
  if (attack) attack->validate();
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "RunControl: need warmup >= 0 and measure > 0");

  if (config.backend == Backend::kFluid) {
    // Pure surrogate: no packets, no simulator state touched.
    return run_fluid_backend(config, attack, control);
  }

  if (config.shards > 1) {
    // Conservative PDES partition (experiment_pdes.cpp): K simulators in
    // lookahead-bounded rounds. Full backend: bit-identical to the path
    // below, events included; fast backend: counters identical, event count
    // differs (cross-shard links cannot fuse).
    return run_pdes(config, attack, control);
  }

  // The monolithic path IS the phased path run in one slice, so batched
  // (sweep/replicate_batch) and sequential execution cannot diverge.
  begin_run(config, attack, control);
  advance_run(control.horizon());
  return finish_run();
}

void ScenarioWorkspace::begin_run(const ScenarioConfig& config,
                                  const std::optional<PulseTrain>& attack,
                                  const RunControl& control) {
  config.validate();
  if (attack) attack->validate();
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "RunControl: need warmup >= 0 and measure > 0");
  PDOS_REQUIRE(config.backend != Backend::kFluid,
               "begin_run: the fluid tier has no event loop to phase");
  PDOS_REQUIRE(config.shards == 1,
               "begin_run: sharded runs drive their own round loop");

  // Hybrid: carve the packet-level foreground out of the flow list; the
  // complement becomes the fluid background aggregate attached after build.
  const bool hybrid = config.backend == Backend::kHybrid;
  ScenarioConfig active = config;
  std::vector<Time> background_rtts;
  if (hybrid) {
    const int m = config.num_flows;
    const int f = config.hybrid_foreground;
    std::vector<char> is_foreground(static_cast<std::size_t>(m), 0);
    for (int i = 0; i < f; ++i) {
      // Spread the packet flows evenly across the RTT list (f == 1 keeps
      // the shortest-RTT flow). Strictly increasing for f <= m, no dupes.
      const int idx =
          f == 1 ? 0
                 : static_cast<int>(std::lround(static_cast<double>(i) *
                                                (m - 1) / (f - 1)));
      is_foreground[static_cast<std::size_t>(idx)] = 1;
    }
    active.num_flows = f;
    active.rtts.clear();
    for (int i = 0; i < m; ++i) {
      auto& dst = is_foreground[static_cast<std::size_t>(i)]
                      ? active.rtts
                      : background_rtts;
      dst.push_back(config.rtts[i]);
    }
  }

  // Retire any abandoned phased run before the rewind: its sampler Timer
  // must cancel into the scheduler while its event slots are still live.
  active_.reset();

  // Rewind the simulator to the run seed: the previous run's object graph
  // is destroyed, but every block of memory it occupied is retained and
  // reused by the rebuild below.
  sim_.reset(config.seed);
  router_s_ = nullptr;
  router_r_ = nullptr;
  bottleneck_ = nullptr;
  cross_traffic_ = nullptr;
  background_ = nullptr;
  sender_hot_ = nullptr;
  receiver_hot_ = nullptr;
  connections_.clear();
  attackers_.clear();
  build(active, attack);

  if (hybrid) {
    auto* red = dynamic_cast<RedQueue*>(&bottleneck_->queue());
    PDOS_CHECK(red != nullptr);  // validate() enforced QueueKind::kRed
    fluid::FluidConfig bg = make_fluid_config(config);
    bg.classes.clear();
    bg.classes.reserve(background_rtts.size());
    for (Time rtt : background_rtts) {
      bg.classes.push_back(fluid::FluidClass{rtt, 1.0});
    }
    background_ = sim_.make<fluid::FluidBackgroundSource>(
        sim_, bottleneck_, red, std::move(bg), config.hybrid_tick);
    background_->start(0.0);
  }

  // Instrument the bottleneck's arrivals (the paper's "incoming traffic").
  // StatsHub batches the per-bin sums and is pre-sized to the horizon, so
  // the tap — an inline closure of two pointers — does no allocation and
  // at most one bins-vector store per bin. All per-run accumulators live in
  // the heap-held ActiveRun so their addresses survive across slices.
  active_ = std::make_unique<ActiveRun>(config, control, sim_, bottleneck_);
  ActiveRun& run = *active_;
  bottleneck_->add_arrival_tap(
      [hub = &run.arrivals, sim = &sim_](const Packet& pkt) {
        hub->on_arrival(sim->now(), pkt);
      });
  run.sampler.schedule_in(0.0);

  // Per-flow delivery jitter (§2.3's "increase in jitter"), kept in the
  // hub's flat meter table: one O(1) JitterMeter update per in-order
  // delivery, no allocation on the per-packet path.
  run.arrivals.register_flows(connections_.size());
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    connections_[i].receiver->set_delivery_tracer(
        [hub = &run.arrivals, i](Time t, std::int64_t) {
          hub->on_delivery(i, t);
        });
  }

  if (control.traced_flow >= 0) {
    PDOS_REQUIRE(control.traced_flow < active.num_flows,
                 "RunControl: traced_flow out of range");
    connections_[control.traced_flow].sender->set_cwnd_tracer(
        [result = &run.result](Time t, double w) {
          result->cwnd_trace.emplace_back(t, w);
        });
  }

  // Stagger flow starts to avoid artificial lockstep at t = 0. Each flow
  // draws from its own seed-derived stream so the offsets do not depend on
  // what else the scenario instantiates (attackers, cross traffic).
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Rng start_rng = sim_.stream(kFlowStartStream + i);
    connections_[i].sender->start(
        start_rng.uniform(0.0, config.flow_start_spread));
  }
  if (!attackers_.empty()) {
    auto phases =
        spread_phases_seeded(static_cast<int>(attackers_.size()),
                             config.attacker_phase_spread, config.seed);
    for (std::size_t a = 0; a < attackers_.size(); ++a) {
      attackers_[a]->start(phases[a]);
    }
  }
  if (cross_traffic_) cross_traffic_->start(0.0);
}

bool ScenarioWorkspace::advance_run(Time until) {
  PDOS_CHECK_MSG(active_ != nullptr, "advance_run: no active phased run");
  ActiveRun& run = *active_;
  const Time horizon = run.control.horizon();
  const Time target = std::min(until, horizon);
  if (!run.marked) {
    if (target < run.control.warmup) {
      sim_.run_until(target);
      return false;
    }
    // Stop exactly at the warmup boundary for the goodput marks — the same
    // run_until(warmup) call the monolithic path makes, so the marks see
    // the identical event prefix no matter how the slices fell before it.
    sim_.run_until(run.control.warmup);
    goodput_marks_.clear();
    goodput_marks_.reserve(connections_.size());
    for (const auto& conn : connections_) {
      goodput_marks_.push_back(conn.receiver->goodput_bytes());
    }
    if (background_ != nullptr) {
      run.background_mark = background_->bank().delivered_packets();
    }
    run.marked = true;
  }
  sim_.run_until(target);
  return target >= horizon;
}

RunResult ScenarioWorkspace::finish_run() {
  PDOS_CHECK_MSG(active_ != nullptr, "finish_run: no active phased run");
  ActiveRun& run = *active_;
  PDOS_CHECK_MSG(run.marked && sim_.now() >= run.control.horizon(),
                 "finish_run: the run has not reached its horizon");
  collect_packet_result(run.config, run.control, run.arrivals,
                        run.background_mark, run.result);
  run.result.events_executed = sim_.scheduler().events_executed();
  RunResult result = std::move(run.result);
  active_.reset();
  return result;
}

void ScenarioWorkspace::collect_packet_result(
    const ScenarioConfig& config, const RunControl& control,
    StatsHub& arrivals, const std::vector<double>& background_mark,
    RunResult& result) {
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    const Bytes flow_bytes =
        connections_[i].receiver->goodput_bytes() - goodput_marks_[i];
    result.per_flow_goodput.push_back(flow_bytes);
    result.goodput_bytes += flow_bytes;
    const auto& stats = connections_[i].sender->stats();
    result.total_timeouts += stats.timeouts;
    result.total_fast_recoveries += stats.fast_recoveries;
    result.total_retransmits += stats.retransmits;
  }
  if (background_ != nullptr) {
    // Fold the fluid background's delivered mass into the aggregate: one
    // per-flow entry per background class, appended after the packet flows.
    const auto window = background_->bank().delivered_since(background_mark);
    const double spacket_bytes =
        static_cast<double>(background_->spacket());
    for (double pkts : window) {
      const Bytes bytes = static_cast<Bytes>(pkts * spacket_bytes);
      result.per_flow_goodput.push_back(bytes);
      result.goodput_bytes += bytes;
    }
    result.total_timeouts += background_->bank().timeouts;
    result.total_fast_recoveries += background_->bank().loss_events;
  }
  {
    std::vector<double> shares(result.per_flow_goodput.begin(),
                               result.per_flow_goodput.end());
    result.fairness_index = jain_fairness_index(shares);
  }
  result.mean_delivery_jitter = arrivals.mean_smoothed_jitter();
  result.goodput_rate =
      static_cast<double>(result.goodput_bytes) * 8.0 / control.measure;
  result.utilization = result.goodput_rate / config.bottleneck;
  result.incoming_bins = arrivals.incoming_bins_until(control.horizon());
  result.attack_bins = arrivals.attack_bins_until(control.horizon());
  result.bin_width = control.bin_width;
  bottleneck_->settle();  // flush lazy services so dequeue counts are current
  result.bottleneck_queue = bottleneck_->queue().stats();
  if (const auto* red =
          dynamic_cast<const RedQueue*>(&bottleneck_->queue())) {
    result.red_early_drops = red->early_drops();
    result.red_forced_drops = red->forced_drops();
  }
  for (const auto* attacker : attackers_) {
    result.attack_packets_sent +=
        static_cast<std::uint64_t>(attacker->stats().packets_sent);
  }
}

BitRate ScenarioWorkspace::baseline(const ScenarioConfig& config,
                                    const RunControl& control) {
  return run(config, std::nullopt, control).goodput_rate;
}

GainMeasurement ScenarioWorkspace::gain(const ScenarioConfig& config,
                                        const PulseTrain& train, double kappa,
                                        const RunControl& control,
                                        BitRate baseline_goodput) {
  PDOS_REQUIRE(baseline_goodput > 0.0,
               "measure_gain: baseline goodput must be > 0");
  return finish_gain(config, train, kappa, baseline_goodput,
                     run(config, train, control));
}

GainMeasurement finish_gain(const ScenarioConfig& config,
                            const PulseTrain& train, double kappa,
                            BitRate baseline_goodput, RunResult run) {
  PDOS_REQUIRE(baseline_goodput > 0.0,
               "finish_gain: baseline goodput must be > 0");
  GainMeasurement point;
  point.run = std::move(run);
  point.gamma = train.gamma(config.bottleneck);
  point.degradation =
      std::max(0.0, 1.0 - point.run.goodput_rate / baseline_goodput);
  point.gain = point.degradation * risk_term(std::min(point.gamma, 1.0),
                                             kappa);
  return point;
}

RunResult run_scenario(const ScenarioConfig& config,
                       const std::optional<PulseTrain>& attack,
                       const RunControl& control) {
  ScenarioWorkspace workspace;
  return workspace.run(config, attack, control);
}

GainMeasurement measure_gain(const ScenarioConfig& config,
                             const PulseTrain& train, double kappa,
                             const RunControl& control,
                             BitRate baseline_goodput) {
  ScenarioWorkspace workspace;
  return workspace.gain(config, train, kappa, control, baseline_goodput);
}

BitRate measure_baseline(const ScenarioConfig& config,
                         const RunControl& control) {
  ScenarioWorkspace workspace;
  return workspace.baseline(config, control);
}

}  // namespace pdos
