#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "attack/distributed.hpp"
#include "core/model.hpp"
#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "stats/fairness.hpp"
#include "stats/jitter.hpp"
#include "stats/stats_hub.hpp"
#include "traffic/sources.hpp"
#include "tcp/connection.hpp"
#include "util/assert.hpp"

namespace pdos {

ScenarioConfig ScenarioConfig::ns2_dumbbell(int num_flows) {
  ScenarioConfig config;
  config.num_flows = num_flows;
  config.bottleneck = mbps(15);
  config.access = mbps(50);
  config.bottleneck_delay = ms(1);
  config.rtts = VictimProfile::even_rtts(num_flows, ms(20), ms(460));
  config.queue = QueueKind::kRed;
  // Not restated by the paper; ~0.55 x BDP at the mean RTT keeps the
  // bottleneck >90% utilized without an attack (Lemma 1's premise) while
  // letting 50-100 ms pulses overflow it. See EXPERIMENTS.md.
  config.buffer_packets = 240;
  config.tcp = TcpSenderConfig{};
  config.tcp.aimd = AimdParams::new_reno();  // ns-2: no delayed ACKs
  config.tcp.rto_min = sec(1.0);             // ns-2 default minRTO
  return config;
}

ScenarioConfig ScenarioConfig::testbed(int num_flows) {
  ScenarioConfig config;
  config.num_flows = num_flows;
  config.bottleneck = mbps(10);
  config.access = mbps(100);
  config.bottleneck_delay = ms(1);
  // Dummynet adds 150 ms of delay shared by every flow.
  config.rtts.assign(num_flows, ms(150));
  config.queue = QueueKind::kRed;
  config.tcp = TcpSenderConfig{};
  config.tcp.aimd = AimdParams::new_reno_delack();  // Linux: delayed ACKs
  config.tcp.rto_min = ms(200);                     // Fedora kernel 2.6.5
  // Rule-of-thumb buffer B = RTT * R_bottle, in packets.
  const Bytes spacket = config.tcp.mss + config.tcp.header_bytes;
  config.buffer_packets = static_cast<std::size_t>(
      ms(150) * mbps(10) / 8.0 / static_cast<double>(spacket));
  return config;
}

void ScenarioConfig::validate() const {
  PDOS_REQUIRE(num_flows >= 1, "Scenario: need at least one flow");
  PDOS_REQUIRE(static_cast<int>(rtts.size()) == num_flows,
               "Scenario: rtts.size() must equal num_flows");
  PDOS_REQUIRE(bottleneck > 0.0 && access > 0.0,
               "Scenario: link rates must be > 0");
  PDOS_REQUIRE(buffer_packets >= 2, "Scenario: buffer must hold >= 2 packets");
  PDOS_REQUIRE(num_attackers >= 1, "Scenario: need at least one attacker");
  PDOS_REQUIRE(attacker_phase_spread >= 0.0,
               "Scenario: attacker_phase_spread must be >= 0");
  PDOS_REQUIRE(cross_traffic_rate >= 0.0,
               "Scenario: cross_traffic_rate must be >= 0");
  for (Time rtt : rtts) {
    PDOS_REQUIRE(rtt > 2.0 * bottleneck_delay,
                 "Scenario: RTT must exceed bottleneck propagation");
  }
  tcp.validate();
}

VictimProfile ScenarioConfig::victim_profile() const {
  VictimProfile victim;
  victim.aimd = tcp.aimd;
  victim.spacket = tcp.mss + tcp.header_bytes;
  victim.rbottle = bottleneck;
  victim.rtts = rtts;
  return victim;
}

namespace {

// Stream tags for seed-derived randomness (see Simulator::stream). Every
// stochastic component gets its own stream keyed off the run seed, so
// changing one component (e.g. adding attackers) never shifts the
// randomness another component sees — two runs with the same config and
// seed are bit-identical even when num_attackers > 1.
constexpr std::uint64_t kQueueStream = 0x71756575'65000000ULL;      // "queue"
constexpr std::uint64_t kFlowStartStream = 0x666c6f77'73000000ULL;  // "flows"

/// All the wiring for one dumbbell run, kept alive for the run's duration.
struct Testframe {
  Simulator sim;
  Node* router_s = nullptr;
  Node* router_r = nullptr;
  Link* bottleneck = nullptr;
  std::vector<TcpConnection> connections;
  std::vector<PulseAttacker*> attackers;
  OnOffSource* cross_traffic = nullptr;

  explicit Testframe(std::uint64_t seed) : sim(seed) {}
};

std::unique_ptr<QueueDiscipline> make_queue(const ScenarioConfig& config,
                                            Rng rng) {
  if (config.queue == QueueKind::kDropTail) {
    return std::make_unique<DropTailQueue>(config.buffer_packets);
  }
  return std::make_unique<RedQueue>(
      RedParams::paper_testbed(config.buffer_packets), rng);
}

std::unique_ptr<DropTailQueue> big_fifo() {
  // Access links are never the bottleneck; give them ample tail-drop space.
  return std::make_unique<DropTailQueue>(1000);
}

void build(Testframe& frame, const ScenarioConfig& config,
           const std::optional<PulseTrain>& attack) {
  const int m = config.num_flows;
  const NodeId router_s_id = 2 * m;
  const NodeId router_r_id = 2 * m + 1;
  const NodeId attacker_id = 2 * m + 2;
  Simulator& sim = frame.sim;

  frame.router_s = sim.make<Node>(router_s_id, "routerS");
  frame.router_r = sim.make<Node>(router_r_id, "routerR");

  const Bytes spacket = config.tcp.mss + config.tcp.header_bytes;
  frame.bottleneck = sim.make<Link>(
      sim, "bottleneck", config.bottleneck, config.bottleneck_delay,
      make_queue(config, sim.stream(kQueueStream)), frame.router_r, spacket);
  auto* bottleneck_rev = sim.make<Link>(sim, "bottleneck.rev",
                                        config.bottleneck,
                                        config.bottleneck_delay, big_fifo(),
                                        frame.router_s, spacket);
  frame.router_r->add_route(router_s_id, bottleneck_rev);

  for (int i = 0; i < m; ++i) {
    const NodeId snd_id = i;
    const NodeId rcv_id = m + i;
    auto* snd = sim.make<Node>(snd_id, "sender" + std::to_string(i));
    auto* rcv = sim.make<Node>(rcv_id, "receiver" + std::to_string(i));

    // Split the flow's propagation RTT between its two access links.
    const Time side = (config.rtts[i] / 2.0 - config.bottleneck_delay) / 2.0;
    PDOS_CHECK(side > 0.0);

    auto* snd_fwd = sim.make<Link>(sim, "acc.s" + std::to_string(i),
                                   config.access, side, big_fifo(),
                                   frame.router_s, spacket);
    auto* snd_rev = sim.make<Link>(sim, "acc.s.rev" + std::to_string(i),
                                   config.access, side, big_fifo(), snd,
                                   spacket);
    auto* rcv_fwd = sim.make<Link>(sim, "acc.r" + std::to_string(i),
                                   config.access, side, big_fifo(), rcv,
                                   spacket);
    auto* rcv_rev = sim.make<Link>(sim, "acc.r.rev" + std::to_string(i),
                                   config.access, side, big_fifo(),
                                   frame.router_r, spacket);

    snd->set_default_route(snd_fwd);
    rcv->set_default_route(rcv_rev);
    frame.router_s->add_route(rcv_id, frame.bottleneck);
    frame.router_s->add_route(snd_id, snd_rev);
    frame.router_r->add_route(rcv_id, rcv_fwd);
    frame.router_r->add_route(snd_id, bottleneck_rev);

    frame.connections.push_back(
        make_tcp_connection(sim, *snd, *rcv, /*flow=*/i, config.tcp));
  }
  frame.router_s->add_route(router_r_id, frame.bottleneck);

  if (config.cross_traffic_rate > 0.0) {
    const NodeId cross_id = 2 * m + 3;
    auto* cross_node = sim.make<Node>(cross_id, "cross");
    auto* cross_link = sim.make<Link>(sim, "acc.cross", config.access, ms(1),
                                      big_fifo(), frame.router_s, spacket);
    cross_node->set_default_route(cross_link);
    // 50% duty cycle: peak rate of twice the requested average.
    frame.cross_traffic = sim.make<OnOffSource>(
        sim, 2.0 * config.cross_traffic_rate, ms(500), ms(500), spacket,
        cross_id, router_r_id, cross_node);
  }

  if (attack) {
    const auto sub_trains = split_train(*attack, config.num_attackers);
    for (int a = 0; a < config.num_attackers; ++a) {
      const NodeId node_id = attacker_id + 10 + a;
      auto* attacker_node =
          sim.make<Node>(node_id, "attacker" + std::to_string(a));
      BitRate attacker_access = config.attacker_access;
      if (attacker_access <= 0.0) {
        attacker_access =
            std::max(config.access, 2.0 * sub_trains[a].rattack);
      }
      auto* attack_link = sim.make<Link>(
          sim, "acc.attacker" + std::to_string(a), attacker_access, ms(1),
          big_fifo(), frame.router_s, attack->packet_bytes);
      attacker_node->set_default_route(attack_link);
      // Attack packets are addressed to routerR, which has no agent for
      // their flow id and therefore sinks them — after they have crossed
      // the bottleneck queue, which is all the attack needs.
      frame.attackers.push_back(
          sim.make<PulseAttacker>(sim, sub_trains[a], node_id, router_r_id,
                                  attacker_node, FlowId{-1000 - a}));
    }
  }
}

}  // namespace

RunResult run_scenario(const ScenarioConfig& config,
                       const std::optional<PulseTrain>& attack,
                       const RunControl& control) {
  config.validate();
  if (attack) attack->validate();
  PDOS_REQUIRE(control.warmup >= 0.0 && control.measure > 0.0,
               "RunControl: need warmup >= 0 and measure > 0");

  Testframe frame(config.seed);
  build(frame, config, attack);

  // Instrument the bottleneck's arrivals (the paper's "incoming traffic").
  // StatsHub batches the per-bin sums and is pre-sized to the horizon, so
  // the tap — an inline closure of two pointers — does no allocation and
  // at most one bins-vector store per bin.
  StatsHub arrivals(control.bin_width, control.horizon());
  frame.bottleneck->add_arrival_tap(
      [hub = &arrivals, sim = &frame.sim](const Packet& pkt) {
        hub->on_arrival(sim->now(), pkt);
      });

  RunResult result;

  // Sample bottleneck occupancy (and RED's lagging average) once per bin.
  // The state is bundled so the closure captures one pointer and stays
  // within InlineFn's inline budget.
  struct SamplerCtx {
    Testframe& frame;
    RunResult& result;
    const RunControl& control;
    const RedQueue* red_queue;
    Timer* timer = nullptr;
  } sampler_ctx{frame, result, control,
                dynamic_cast<const RedQueue*>(&frame.bottleneck->queue())};
  Timer sampler(frame.sim.scheduler(), [ctx = &sampler_ctx] {
    ctx->result.queue_occupancy.push_back(
        static_cast<double>(ctx->frame.bottleneck->queue().length()));
    ctx->result.red_avg_samples.push_back(
        ctx->red_queue != nullptr ? ctx->red_queue->avg() : 0.0);
    if (ctx->frame.sim.now() + ctx->control.bin_width <=
        ctx->control.horizon()) {
      ctx->timer->schedule_in(ctx->control.bin_width);
    }
  });
  sampler_ctx.timer = &sampler;
  sampler.schedule_in(0.0);

  // Per-flow delivery jitter (§2.3's "increase in jitter").
  std::vector<JitterMeter> jitter(frame.connections.size());
  for (std::size_t i = 0; i < frame.connections.size(); ++i) {
    frame.connections[i].receiver->set_delivery_tracer(
        [&jitter, i](Time t, std::int64_t) { jitter[i].observe(t); });
  }

  if (control.traced_flow >= 0) {
    PDOS_REQUIRE(control.traced_flow < config.num_flows,
                 "RunControl: traced_flow out of range");
    frame.connections[control.traced_flow].sender->set_cwnd_tracer(
        [&result](Time t, double w) { result.cwnd_trace.emplace_back(t, w); });
  }

  // Stagger flow starts to avoid artificial lockstep at t = 0. Each flow
  // draws from its own seed-derived stream so the offsets do not depend on
  // what else the scenario instantiates (attackers, cross traffic).
  for (std::size_t i = 0; i < frame.connections.size(); ++i) {
    Rng start_rng = frame.sim.stream(kFlowStartStream + i);
    frame.connections[i].sender->start(
        start_rng.uniform(0.0, config.flow_start_spread));
  }
  if (!frame.attackers.empty()) {
    auto phases =
        spread_phases_seeded(static_cast<int>(frame.attackers.size()),
                             config.attacker_phase_spread, config.seed);
    for (std::size_t a = 0; a < frame.attackers.size(); ++a) {
      frame.attackers[a]->start(phases[a]);
    }
  }
  if (frame.cross_traffic) frame.cross_traffic->start(0.0);

  frame.sim.run_until(control.warmup);
  std::vector<Bytes> goodput_marks;
  goodput_marks.reserve(frame.connections.size());
  for (const auto& conn : frame.connections) {
    goodput_marks.push_back(conn.receiver->goodput_bytes());
  }

  frame.sim.run_until(control.horizon());

  for (std::size_t i = 0; i < frame.connections.size(); ++i) {
    const Bytes flow_bytes =
        frame.connections[i].receiver->goodput_bytes() - goodput_marks[i];
    result.per_flow_goodput.push_back(flow_bytes);
    result.goodput_bytes += flow_bytes;
    const auto& stats = frame.connections[i].sender->stats();
    result.total_timeouts += stats.timeouts;
    result.total_fast_recoveries += stats.fast_recoveries;
    result.total_retransmits += stats.retransmits;
  }
  {
    std::vector<double> shares(result.per_flow_goodput.begin(),
                               result.per_flow_goodput.end());
    result.fairness_index = jain_fairness_index(shares);
  }
  for (const auto& meter : jitter) {
    result.mean_delivery_jitter += meter.smoothed_jitter();
  }
  result.mean_delivery_jitter /= static_cast<double>(jitter.size());
  result.goodput_rate =
      static_cast<double>(result.goodput_bytes) * 8.0 / control.measure;
  result.utilization = result.goodput_rate / config.bottleneck;
  result.incoming_bins = arrivals.incoming_bins_until(control.horizon());
  result.attack_bins = arrivals.attack_bins_until(control.horizon());
  result.bin_width = control.bin_width;
  result.bottleneck_queue = frame.bottleneck->queue().stats();
  if (const auto* red =
          dynamic_cast<const RedQueue*>(&frame.bottleneck->queue())) {
    result.red_early_drops = red->early_drops();
    result.red_forced_drops = red->forced_drops();
  }
  for (const auto* attacker : frame.attackers) {
    result.attack_packets_sent +=
        static_cast<std::uint64_t>(attacker->stats().packets_sent);
  }
  result.events_executed = frame.sim.scheduler().events_executed();
  return result;
}

GainMeasurement measure_gain(const ScenarioConfig& config,
                             const PulseTrain& train, double kappa,
                             const RunControl& control,
                             BitRate baseline_goodput) {
  PDOS_REQUIRE(baseline_goodput > 0.0,
               "measure_gain: baseline goodput must be > 0");
  GainMeasurement point;
  point.run = run_scenario(config, train, control);
  point.gamma = train.gamma(config.bottleneck);
  point.degradation =
      std::max(0.0, 1.0 - point.run.goodput_rate / baseline_goodput);
  point.gain = point.degradation * risk_term(std::min(point.gamma, 1.0),
                                             kappa);
  return point;
}

BitRate measure_baseline(const ScenarioConfig& config,
                         const RunControl& control) {
  return run_scenario(config, std::nullopt, control).goodput_rate;
}

}  // namespace pdos
