// Shared internals of the experiment runner, split out so the single-sim
// path (experiment.cpp) and the sharded PDES path (experiment_pdes.cpp)
// build scenarios from the SAME stream tags and queue parameterization —
// the bit-identical-output guarantee between shards=1 and shards=K rests
// on these never diverging.
#pragma once

#include <cstdint>

#include "core/experiment.hpp"
#include "net/droptail.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"

namespace pdos::detail {

// Stream tags for seed-derived randomness (see Simulator::stream). Every
// stochastic component gets its own stream keyed off the run seed, so
// changing one component (e.g. adding attackers) never shifts the
// randomness another component sees — two runs with the same config and
// seed are bit-identical even when num_attackers > 1. Because streams are
// derived from (seed, tag) alone — never from construction order — a
// sharded run's per-shard simulators reproduce them exactly.
inline constexpr std::uint64_t kQueueStream = 0x71756575'65000000ULL;  // "queue"
inline constexpr std::uint64_t kFlowStartStream =
    0x666c6f77'73000000ULL;  // "flows"

/// Bottleneck queue, allocated in the simulator's arena so its buffer and
/// the links it serves share blocks (and survive warm resets).
inline QueueDiscipline* make_queue(Simulator& sim,
                                   const ScenarioConfig& config) {
  if (config.queue == QueueKind::kDropTail) {
    return sim.make<DropTailQueue>(config.buffer_packets, sim.memory());
  }
  return sim.make<RedQueue>(RedParams::paper_testbed(config.buffer_packets),
                            sim.stream(kQueueStream), sim.memory());
}

inline QueueDiscipline* big_fifo(Simulator& sim) {
  // Access links are never the bottleneck; give them ample tail-drop space.
  return sim.make<DropTailQueue>(1000, sim.memory());
}

}  // namespace pdos::detail
