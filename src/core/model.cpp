#include "core/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pdos {

namespace {
void check_period(Time t_aimd) {
  PDOS_REQUIRE(t_aimd > 0.0, "model: T_AIMD must be > 0");
}
void check_rtt(Time rtt) { PDOS_REQUIRE(rtt > 0.0, "model: RTT must be > 0"); }
}  // namespace

double converged_cwnd(const AimdParams& aimd, Time t_aimd, Time rtt) {
  aimd.validate();
  check_period(t_aimd);
  check_rtt(rtt);
  return aimd.a / (1.0 - aimd.b) * t_aimd /
         (static_cast<double>(aimd.d) * rtt);
}

double cwnd_step(const AimdParams& aimd, Time t_aimd, Time rtt, double w) {
  aimd.validate();
  check_period(t_aimd);
  check_rtt(rtt);
  PDOS_REQUIRE(w >= 0.0, "cwnd_step: window must be >= 0");
  return aimd.b * w +
         aimd.a / static_cast<double>(aimd.d) * t_aimd / rtt;
}

int pulses_to_converge(const AimdParams& aimd, Time t_aimd, Time rtt,
                       double w1, double tolerance) {
  PDOS_REQUIRE(tolerance > 0.0, "pulses_to_converge: tolerance must be > 0");
  const double w_inf = converged_cwnd(aimd, t_aimd, rtt);
  double w = w1;
  int n = 1;
  // The recursion contracts by factor b each step; bound the loop anyway.
  constexpr int kMaxPulses = 10000;
  while (std::abs(w - w_inf) > tolerance * w_inf && n < kMaxPulses) {
    w = cwnd_step(aimd, t_aimd, rtt, w);
    ++n;
  }
  return n;
}

double flow_packets_exact(const AimdParams& aimd, Time t_aimd, Time rtt,
                          double w1, int n_pulses) {
  PDOS_REQUIRE(n_pulses >= 1, "flow_packets_exact: need >= 1 pulse");
  const int n_attack = pulses_to_converge(aimd, t_aimd, rtt, w1);
  const double ratio = t_aimd / rtt;
  const double add_half = aimd.a / (2.0 * aimd.d) * ratio;

  // Transient phase: N_attack − 1 free-of-attack intervals with the exact
  // window recursion (first summand of Eq. 2).
  double packets = 0.0;
  double w = w1;
  const int transient_intervals = std::min(n_attack, n_pulses) - 1;
  for (int i = 0; i < transient_intervals; ++i) {
    packets += (aimd.b * w + add_half) * ratio;
    w = cwnd_step(aimd, t_aimd, rtt, w);
  }

  // Steady phase: N − N_attack sawtooth periods at W∞ (second summand).
  const int steady_intervals = std::max(0, n_pulses - n_attack);
  packets += flow_packets_steady(aimd, t_aimd, rtt) *
             static_cast<double>(steady_intervals);
  return packets;
}

double flow_packets_steady(const AimdParams& aimd, Time t_aimd, Time rtt) {
  aimd.validate();
  check_period(t_aimd);
  check_rtt(rtt);
  const double ratio = t_aimd / rtt;
  return aimd.a * (1.0 + aimd.b) /
         (2.0 * static_cast<double>(aimd.d) * (1.0 - aimd.b)) * ratio * ratio;
}

double normal_throughput_bytes(BitRate rbottle, Time t_aimd, int n_pulses) {
  PDOS_REQUIRE(rbottle > 0.0, "normal_throughput: rbottle must be > 0");
  check_period(t_aimd);
  PDOS_REQUIRE(n_pulses >= 2, "normal_throughput: need >= 2 pulses");
  return rbottle * static_cast<double>(n_pulses - 1) * t_aimd / 8.0;
}

double attack_throughput_bytes(const VictimProfile& victim, Time t_aimd,
                               int n_pulses) {
  victim.validate();
  check_period(t_aimd);
  PDOS_REQUIRE(n_pulses >= 2, "attack_throughput: need >= 2 pulses");
  double packets = 0.0;
  for (Time rtt : victim.rtts) {
    packets += flow_packets_steady(victim.aimd, t_aimd, rtt);
  }
  return packets * static_cast<double>(n_pulses - 1) *
         static_cast<double>(victim.spacket);
}

double throughput_degradation(const VictimProfile& victim, Time t_aimd) {
  // Γ = 1 − Ψ_attack/Ψ_normal with the (N−1) factors cancelling.
  const double psi_attack = attack_throughput_bytes(victim, t_aimd, 2);
  const double psi_normal =
      normal_throughput_bytes(victim.rbottle, t_aimd, 2);
  const double gamma_deg = 1.0 - psi_attack / psi_normal;
  return std::clamp(gamma_deg, 0.0, 1.0);
}

double c_psi(const VictimProfile& victim, Time textent, double c_attack) {
  victim.validate();
  PDOS_REQUIRE(textent > 0.0, "c_psi: textent must be > 0");
  PDOS_REQUIRE(c_attack > 0.0, "c_psi: c_attack must be > 0");
  return textent * c_attack * c_victim(victim);
}

double c_victim(const VictimProfile& victim) {
  victim.validate();
  const AimdParams& aimd = victim.aimd;
  return 4.0 * aimd.a * (1.0 + aimd.b) *
         static_cast<double>(victim.spacket) /
         ((1.0 - aimd.b) * static_cast<double>(aimd.d) * victim.rbottle) *
         victim.inverse_rtt_sq_sum();
}

double attack_gain(double gamma, double cpsi, double kappa) {
  PDOS_REQUIRE(cpsi > 0.0, "attack_gain: c_psi must be > 0");
  PDOS_REQUIRE(kappa >= 0.0, "attack_gain: kappa must be >= 0");
  if (gamma <= cpsi || gamma >= 1.0) return 0.0;
  return (1.0 - cpsi / gamma) * risk_term(gamma, kappa);
}

double risk_term(double gamma, double kappa) {
  PDOS_REQUIRE(gamma >= 0.0 && gamma <= 1.0,
               "risk_term: gamma must be in [0, 1]");
  PDOS_REQUIRE(kappa >= 0.0, "risk_term: kappa must be >= 0");
  if (kappa == 0.0) return 1.0;
  return std::pow(1.0 - gamma, kappa);
}

}  // namespace pdos
