#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "attack/pulse.hpp"
#include "core/model.hpp"
#include "util/assert.hpp"

namespace pdos {

namespace {
void check_cpsi(double cpsi) {
  PDOS_REQUIRE(cpsi > 0.0 && cpsi < 1.0,
               "optimizer: C_Psi must be in (0, 1) for a feasible attack");
}
}  // namespace

double optimal_gamma(double cpsi, double kappa) {
  check_cpsi(cpsi);
  PDOS_REQUIRE(kappa >= 0.0, "optimizer: kappa must be >= 0");
  if (kappa == 0.0) return 1.0;  // Corollary 2 limit: risk ignored entirely
  const double one_minus_k = 1.0 - kappa;
  const double disc =
      std::sqrt(cpsi * cpsi * one_minus_k * one_minus_k + 4.0 * kappa * cpsi);
  // Rationalized Eq. (13); equals (CΨ(1−κ) − disc)/(−2κ) without the 0/0.
  return 2.0 * cpsi / (disc + cpsi * one_minus_k);
}

double optimal_gamma_risk_neutral(double cpsi) {
  check_cpsi(cpsi);
  return std::sqrt(cpsi);
}

double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, double tolerance) {
  PDOS_REQUIRE(lo < hi, "golden_section_max: need lo < hi");
  PDOS_REQUIRE(tolerance > 0.0, "golden_section_max: tolerance must be > 0");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/φ
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > tolerance) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
  }
  return (a + b) / 2.0;
}

double optimal_gamma_numeric(double cpsi, double kappa, double tolerance) {
  check_cpsi(cpsi);
  PDOS_REQUIRE(kappa >= 0.0, "optimizer: kappa must be >= 0");
  if (kappa == 0.0) return 1.0;
  return golden_section_max(
      [cpsi, kappa](double g) { return attack_gain(g, cpsi, kappa); }, cpsi,
      1.0, tolerance);
}

double optimal_mu_exact(double c_attack, double cpsi, double kappa) {
  PDOS_REQUIRE(c_attack > 0.0, "optimizer: C_attack must be > 0");
  const double gstar = optimal_gamma(cpsi, kappa);
  const double mu = c_attack / gstar - 1.0;
  PDOS_REQUIRE(mu >= 0.0,
               "optimizer: optimal gamma exceeds C_attack "
               "(pulse rate below bottleneck demand; raise R_attack)");
  return mu;
}

double optimal_mu_paper(double c_attack, double cpsi, double kappa) {
  PDOS_REQUIRE(c_attack > 0.0, "optimizer: C_attack must be > 0");
  return c_attack / optimal_gamma(cpsi, kappa);  // Eq. (16) as printed
}

double optimal_mu_risk_neutral_paper(double c_attack, Time textent,
                                     double cvictim) {
  PDOS_REQUIRE(c_attack > 0.0, "optimizer: C_attack must be > 0");
  PDOS_REQUIRE(textent > 0.0, "optimizer: T_extent must be > 0");
  PDOS_REQUIRE(cvictim > 0.0, "optimizer: C_victim must be > 0");
  return std::sqrt(c_attack / (textent * cvictim));  // Eq. (17)
}

double optimal_gain(double cpsi, double kappa) {
  return attack_gain(optimal_gamma(cpsi, kappa), cpsi, kappa);
}

namespace {

/// Shared engine for both search modes. `fluid_inner` = true scores the
/// grid with the fluid surrogate and packet-confirms only the top
/// `confirm_top`; false confirms every point (the reference search).
GammaSearchResult run_gamma_search(const GammaSearch& search,
                                   bool fluid_inner) {
  PDOS_REQUIRE(search.grid_points >= 2,
               "gamma search: need at least 2 grid points");
  PDOS_REQUIRE(search.confirm_top >= 1,
               "gamma search: need confirm_top >= 1");
  PDOS_REQUIRE(search.textent > 0.0 && search.rattack > 0.0,
               "gamma search: pulse shape must be positive");

  // The confirm tier is the packet engine; a surrogate tier handed in by
  // the caller would make "confirm" meaningless.
  ScenarioConfig packet_cfg = search.scenario;
  if (packet_cfg.backend != Backend::kFast) {
    packet_cfg.backend = Backend::kFull;
  }
  ScenarioConfig fluid_cfg = search.scenario;
  fluid_cfg.backend = Backend::kFluid;

  const double c_attack = search.rattack / packet_cfg.bottleneck;
  const double cpsi =
      c_psi(packet_cfg.victim_profile(), search.textent, c_attack);
  double lo = search.gamma_lo;
  if (lo <= 0.0) lo = std::max(cpsi + 0.02, 0.1);
  const double hi = search.gamma_hi;
  PDOS_REQUIRE(lo < hi && hi < 1.0,
               "gamma search: need gamma_lo < gamma_hi < 1");
  // γ = R_attack·T_extent/(R_bottle·T) <= C_attack at back-to-back pulses.
  PDOS_REQUIRE(hi <= c_attack,
               "gamma search: gamma_hi unreachable at this R_attack");

  GammaSearchResult result;
  ScenarioWorkspace workspace;

  result.baseline_goodput = workspace.baseline(packet_cfg, search.control);
  ++result.packet_runs;
  PDOS_REQUIRE(result.baseline_goodput > 0.0,
               "gamma search: packet baseline produced no goodput");
  FluidGainCache* cache = fluid_inner ? search.fluid_cache : nullptr;
  if (fluid_inner) {
    std::optional<BitRate> fluid_baseline =
        cache ? cache->lookup_baseline(search) : std::nullopt;
    if (!fluid_baseline) {
      fluid_baseline = workspace.baseline(fluid_cfg, search.control);
      ++result.fluid_runs;
      if (cache) cache->store_baseline(search, *fluid_baseline);
    }
    result.fluid_baseline_goodput = *fluid_baseline;
    PDOS_REQUIRE(result.fluid_baseline_goodput > 0.0,
                 "gamma search: fluid baseline produced no goodput");
  }

  // Score the grid on the fluid surrogate: cache hits fill in directly,
  // the misses are solved as lanes of ONE lane-batched fluid evaluation
  // (fluid::solve_batch via fluid_gain_batch) — bit-identical to solving
  // them one at a time, several times faster on SIMD builds.
  result.candidates.resize(static_cast<std::size_t>(search.grid_points));
  std::vector<std::size_t> miss_index;
  std::vector<PulseTrain> miss_trains;
  for (int i = 0; i < search.grid_points; ++i) {
    auto& cand = result.candidates[static_cast<std::size_t>(i)];
    cand.gamma = lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(search.grid_points - 1);
    if (!fluid_inner) continue;
    if (cache) {
      if (const std::optional<double> hit =
              cache->lookup_gain(search, cand.gamma)) {
        cand.fluid_gain = *hit;
        continue;
      }
    }
    miss_index.push_back(static_cast<std::size_t>(i));
    miss_trains.push_back(PulseTrain::from_gamma(search.textent,
                                                 search.rattack, cand.gamma,
                                                 packet_cfg.bottleneck));
  }
  if (!miss_trains.empty()) {
    const std::vector<GainMeasurement> gains =
        fluid_gain_batch(fluid_cfg, miss_trains, search.kappa, search.control,
                         result.fluid_baseline_goodput);
    for (std::size_t k = 0; k < miss_index.size(); ++k) {
      auto& cand = result.candidates[miss_index[k]];
      cand.fluid_gain = gains[k].gain;
      ++result.fluid_runs;
      if (cache) cache->store_gain(search, cand.gamma, cand.fluid_gain);
    }
  }

  // Rank by surrogate score and confirm the head of the ranking on the
  // packet path; packet-only mode confirms everything.
  std::vector<std::size_t> order(result.candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (fluid_inner) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return result.candidates[a].fluid_gain >
                              result.candidates[b].fluid_gain;
                     });
    result.gamma_star_fluid = result.candidates[order.front()].gamma;
  }
  const std::size_t confirm =
      fluid_inner ? std::min(order.size(),
                             static_cast<std::size_t>(search.confirm_top))
                  : order.size();

  double best_gain = -1.0;
  for (std::size_t k = 0; k < confirm; ++k) {
    auto& cand = result.candidates[order[k]];
    const PulseTrain train =
        PulseTrain::from_gamma(search.textent, search.rattack, cand.gamma,
                               packet_cfg.bottleneck);
    const GainMeasurement point =
        workspace.gain(packet_cfg, train, search.kappa, search.control,
                       result.baseline_goodput);
    ++result.packet_runs;
    cand.packet_gain = point.gain;
    cand.confirmed = true;
    if (point.gain > best_gain) {
      best_gain = point.gain;
      result.gamma_star = cand.gamma;
      result.gain = point.gain;
      result.degradation = point.degradation;
    }
  }
  return result;
}

}  // namespace

GammaSearchResult search_confirm_gamma(const GammaSearch& search) {
  return run_gamma_search(search, /*fluid_inner=*/true);
}

GammaSearchResult search_gamma_packet_only(const GammaSearch& search) {
  return run_gamma_search(search, /*fluid_inner=*/false);
}

}  // namespace pdos
