#include "core/optimizer.hpp"

#include <cmath>

#include "core/model.hpp"
#include "util/assert.hpp"

namespace pdos {

namespace {
void check_cpsi(double cpsi) {
  PDOS_REQUIRE(cpsi > 0.0 && cpsi < 1.0,
               "optimizer: C_Psi must be in (0, 1) for a feasible attack");
}
}  // namespace

double optimal_gamma(double cpsi, double kappa) {
  check_cpsi(cpsi);
  PDOS_REQUIRE(kappa >= 0.0, "optimizer: kappa must be >= 0");
  if (kappa == 0.0) return 1.0;  // Corollary 2 limit: risk ignored entirely
  const double one_minus_k = 1.0 - kappa;
  const double disc =
      std::sqrt(cpsi * cpsi * one_minus_k * one_minus_k + 4.0 * kappa * cpsi);
  // Rationalized Eq. (13); equals (CΨ(1−κ) − disc)/(−2κ) without the 0/0.
  return 2.0 * cpsi / (disc + cpsi * one_minus_k);
}

double optimal_gamma_risk_neutral(double cpsi) {
  check_cpsi(cpsi);
  return std::sqrt(cpsi);
}

double golden_section_max(const std::function<double(double)>& f, double lo,
                          double hi, double tolerance) {
  PDOS_REQUIRE(lo < hi, "golden_section_max: need lo < hi");
  PDOS_REQUIRE(tolerance > 0.0, "golden_section_max: tolerance must be > 0");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/φ
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > tolerance) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
  }
  return (a + b) / 2.0;
}

double optimal_gamma_numeric(double cpsi, double kappa, double tolerance) {
  check_cpsi(cpsi);
  PDOS_REQUIRE(kappa >= 0.0, "optimizer: kappa must be >= 0");
  if (kappa == 0.0) return 1.0;
  return golden_section_max(
      [cpsi, kappa](double g) { return attack_gain(g, cpsi, kappa); }, cpsi,
      1.0, tolerance);
}

double optimal_mu_exact(double c_attack, double cpsi, double kappa) {
  PDOS_REQUIRE(c_attack > 0.0, "optimizer: C_attack must be > 0");
  const double gstar = optimal_gamma(cpsi, kappa);
  const double mu = c_attack / gstar - 1.0;
  PDOS_REQUIRE(mu >= 0.0,
               "optimizer: optimal gamma exceeds C_attack "
               "(pulse rate below bottleneck demand; raise R_attack)");
  return mu;
}

double optimal_mu_paper(double c_attack, double cpsi, double kappa) {
  PDOS_REQUIRE(c_attack > 0.0, "optimizer: C_attack must be > 0");
  return c_attack / optimal_gamma(cpsi, kappa);  // Eq. (16) as printed
}

double optimal_mu_risk_neutral_paper(double c_attack, Time textent,
                                     double cvictim) {
  PDOS_REQUIRE(c_attack > 0.0, "optimizer: C_attack must be > 0");
  PDOS_REQUIRE(textent > 0.0, "optimizer: T_extent must be > 0");
  PDOS_REQUIRE(cvictim > 0.0, "optimizer: C_victim must be > 0");
  return std::sqrt(c_attack / (textent * cvictim));  // Eq. (17)
}

double optimal_gain(double cpsi, double kappa) {
  return attack_gain(optimal_gamma(cpsi, kappa), cpsi, kappa);
}

}  // namespace pdos
