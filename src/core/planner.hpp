// Attack planner: the user-facing entry point of the library.
//
// Given a victim profile (what the attacker knows or estimates about the
// bottleneck and its flows), a pulse shape (T_extent, R_attack) and a risk
// preference κ, the planner solves the paper's optimization problem and
// emits a concrete, schedulable `PulseTrain`, together with the analytical
// predictions (Γ, G, W∞ per flow) and warnings — e.g. when the optimal
// period collides with a shrew harmonic and the model will under-predict
// the damage.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attack/pulse.hpp"
#include "core/params.hpp"
#include "util/units.hpp"

namespace pdos {

struct AttackPlanRequest {
  VictimProfile victim;
  Time textent = ms(50);       // chosen pulse width
  BitRate rattack = mbps(25);  // chosen in-pulse rate
  double kappa = 1.0;          // risk preference
  Bytes attack_packet_bytes = 1040;
  /// If set, flags plans whose period is within 10% of minRTO/n.
  std::optional<Time> victim_min_rto;

  void validate() const;
};

struct AttackPlan {
  PulseTrain train;             // ready to hand to PulseAttacker
  double c_attack = 0.0;        // R_attack / R_bottle
  double c_psi = 0.0;           // Eq. (11)
  double gamma = 0.0;           // planned γ (γ*, possibly clamped)
  double gamma_unclamped = 0.0; // raw γ* from Eq. (13)
  double mu = 0.0;              // T_space / T_extent actually planned
  double predicted_degradation = 0.0;  // Γ at the planned γ
  double predicted_gain = 0.0;         // G at the planned γ
  RiskClass risk_class = RiskClass::kRiskNeutral;
  std::optional<int> shrew_harmonic;  // set if period ≈ minRTO/n
  bool gamma_clamped = false;   // γ* exceeded C_attack and was clamped
  std::vector<double> converged_cwnds;  // W∞ per victim flow, segments

  std::string summary() const;
};

/// Solve the optimization problem and build the pulse train.
/// Throws ParameterError if C_Ψ >= 1 (no feasible degradation-of-service
/// attack exists for this pulse shape: every feasible γ predicts Γ <= 0).
AttackPlan plan_attack(const AttackPlanRequest& request);

/// Evaluate a *given* γ for the same request (used to sweep γ as in
/// Figs. 6-9). γ must lie in (0, min(1, C_attack)].
AttackPlan plan_attack_at_gamma(const AttackPlanRequest& request,
                                double gamma);

}  // namespace pdos
