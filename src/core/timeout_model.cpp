#include "core/timeout_model.hpp"

#include <algorithm>
#include <cmath>

#include "attack/shrew.hpp"
#include "core/model.hpp"
#include "util/assert.hpp"

namespace pdos {

void TimeoutModelParams::validate() const {
  PDOS_REQUIRE(dupack_threshold >= 1,
               "TimeoutModel: dupack_threshold must be >= 1");
  PDOS_REQUIRE(min_rto > 0.0, "TimeoutModel: min_rto must be > 0");
  PDOS_REQUIRE(survival_probability >= 0.0 && survival_probability <= 1.0,
               "TimeoutModel: survival_probability must be in [0, 1]");
  PDOS_REQUIRE(shrew_tolerance > 0.0 && shrew_tolerance < 1.0,
               "TimeoutModel: shrew_tolerance must be in (0, 1)");
  PDOS_REQUIRE(max_harmonic >= 1, "TimeoutModel: max_harmonic must be >= 1");
}

bool flow_is_timeout_bound(const AimdParams& aimd, Time t_aimd, Time rtt,
                           int dupack_threshold) {
  PDOS_REQUIRE(dupack_threshold >= 1,
               "flow_is_timeout_bound: dupack_threshold must be >= 1");
  // Fast retransmit needs the window at loss time to cover the lost
  // segment plus `dupack_threshold` later segments whose ACKs duplicate.
  return converged_cwnd(aimd, t_aimd, rtt) <
         static_cast<double>(dupack_threshold + 1);
}

bool pulses_cause_burst_loss(const PulseContext& ctx, BitRate rbottle) {
  if (ctx.buffer_bytes <= 0) return false;
  PDOS_REQUIRE(ctx.textent > 0.0 && ctx.rattack > 0.0,
               "pulses_cause_burst_loss: pulse shape must be positive");
  PDOS_REQUIRE(rbottle > 0.0, "pulses_cause_burst_loss: rbottle must be > 0");
  // Bytes the pulse injects vs what the buffer can absorb plus what the
  // link drains while the pulse lasts: beyond that the queue is in outage
  // and arrivals (whole windows) are lost in bursts.
  const double injected = ctx.rattack * ctx.textent / 8.0;
  const double absorbed = static_cast<double>(ctx.buffer_bytes) +
                          rbottle * ctx.textent / 8.0;
  return injected >= absorbed;
}

FlowRegime classify_flow(const VictimProfile& victim, Time t_aimd, Time rtt,
                         const TimeoutModelParams& params,
                         const std::optional<PulseContext>& ctx) {
  if (ctx && pulses_cause_burst_loss(*ctx, victim.rbottle)) {
    return FlowRegime::kBurstLoss;
  }
  if (matching_shrew_harmonic(t_aimd, params.min_rto, params.max_harmonic,
                              params.shrew_tolerance)) {
    return FlowRegime::kShrewPinned;
  }
  if (flow_is_timeout_bound(victim.aimd, t_aimd, rtt,
                            params.dupack_threshold)) {
    return FlowRegime::kSmallWindow;
  }
  return FlowRegime::kFastRecovery;
}

double timeout_bound_flow_packets(const AimdParams& aimd, Time t_aimd,
                                  Time rtt,
                                  const TimeoutModelParams& params,
                                  double share_cap_packets) {
  aimd.validate();
  params.validate();
  PDOS_REQUIRE(t_aimd > 0.0 && rtt > 0.0,
               "timeout_bound_flow_packets: need positive times");
  PDOS_REQUIRE(share_cap_packets >= 0.0,
               "timeout_bound_flow_packets: cap must be >= 0");
  const Time available = t_aimd - params.min_rto;
  if (available <= 0.0) return 0.0;  // pinned: retransmission meets a pulse
  // Slow start from one segment: after k RTTs, 2^k - 1 segments are out.
  // The exponential is clamped at 2^40 (any larger count is cut off by the
  // share cap anyway); at or beyond the clamp, and for whole-RTT exponents,
  // the power of two is exact, so std::ldexp replaces the libm pow() call.
  // Fractional exponents keep std::pow: generic 2^x routines round the last
  // ulp differently, and the analytic gain columns are digest-pinned.
  const double rtts = available / rtt;
  if (rtts >= 40.0) {
    return std::min(std::ldexp(1.0, 40) - 1.0, share_cap_packets);
  }
  const double whole = std::floor(rtts);
  const double raw = whole == rtts
                         ? std::ldexp(1.0, static_cast<int>(whole)) - 1.0
                         : std::pow(2.0, rtts) - 1.0;
  return std::min(raw, share_cap_packets);
}

namespace {

/// Fair share of the bottleneck for one flow over one period, in packets.
double share_cap(const VictimProfile& victim, Time t_aimd) {
  return victim.rbottle * t_aimd /
         (8.0 * static_cast<double>(victim.spacket) *
          static_cast<double>(victim.num_flows()));
}

}  // namespace

double flow_packets_ext(const VictimProfile& victim, Time t_aimd, Time rtt,
                        const TimeoutModelParams& params,
                        const std::optional<PulseContext>& ctx) {
  victim.validate();
  params.validate();
  const FlowRegime regime = classify_flow(victim, t_aimd, rtt, params, ctx);
  if (regime == FlowRegime::kFastRecovery) {
    // Healthy flows follow the base sawtooth exactly (Eq. 9), so the
    // extension degenerates to the paper's model when no flow times out.
    return flow_packets_steady(victim.aimd, t_aimd, rtt);
  }

  // Timeout-affected: mixture of escaping the pulse (base behaviour) and
  // being hit (RTO idle + slow-start ramp). A flow restarting from one
  // segment cannot exceed its fair share of the link within a period, so
  // cap both branches — unlike healthy flows, which may legitimately hold
  // more than 1/N of the bottleneck.
  const double cap = share_cap(victim, t_aimd);
  const double steady =
      std::min(flow_packets_steady(victim.aimd, t_aimd, rtt), cap);
  const double ramp_cap =
      std::max(0.0, cap * (t_aimd - params.min_rto) / t_aimd);
  const double ramp = timeout_bound_flow_packets(victim.aimd, t_aimd, rtt,
                                                 params, ramp_cap);
  const double s = params.survival_probability;
  return s * steady + (1.0 - s) * ramp;
}

double attack_throughput_bytes_ext(const VictimProfile& victim, Time t_aimd,
                                   int n_pulses,
                                   const TimeoutModelParams& params,
                                   const std::optional<PulseContext>& ctx) {
  PDOS_REQUIRE(n_pulses >= 2, "attack_throughput_ext: need >= 2 pulses");
  double packets = 0.0;
  for (Time rtt : victim.rtts) {
    packets += flow_packets_ext(victim, t_aimd, rtt, params, ctx);
  }
  return packets * static_cast<double>(n_pulses - 1) *
         static_cast<double>(victim.spacket);
}

double throughput_degradation_ext(const VictimProfile& victim, Time t_aimd,
                                  const TimeoutModelParams& params,
                                  const std::optional<PulseContext>& ctx) {
  const double psi_attack =
      attack_throughput_bytes_ext(victim, t_aimd, 2, params, ctx);
  const double psi_normal =
      normal_throughput_bytes(victim.rbottle, t_aimd, 2);
  return std::clamp(1.0 - psi_attack / psi_normal, 0.0, 1.0);
}

double attack_gain_ext(const VictimProfile& victim, const PulseContext& ctx,
                       double gamma, double kappa,
                       const TimeoutModelParams& params) {
  PDOS_REQUIRE(gamma > 0.0 && gamma < 1.0,
               "attack_gain_ext: gamma must be in (0, 1)");
  PDOS_REQUIRE(ctx.textent > 0.0 && ctx.rattack > 0.0,
               "attack_gain_ext: pulse shape must be positive");
  const double c_attack = ctx.rattack / victim.rbottle;
  const Time t_aimd = ctx.textent * c_attack / gamma;  // Eq. (4) inverted
  return throughput_degradation_ext(victim, t_aimd, params, ctx) *
         risk_term(gamma, kappa);
}

int timeout_bound_flow_count(const VictimProfile& victim, Time t_aimd,
                             const TimeoutModelParams& params,
                             const std::optional<PulseContext>& ctx) {
  victim.validate();
  params.validate();
  int count = 0;
  for (Time rtt : victim.rtts) {
    if (classify_flow(victim, t_aimd, rtt, params, ctx) !=
        FlowRegime::kFastRecovery) {
      ++count;
    }
  }
  return count;
}

}  // namespace pdos
