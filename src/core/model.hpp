// The paper's analytical model of TCP throughput under an AIMD-based PDoS
// attack (Luo & Chang, DSN 2005, §2-§3).
//
// Equation index:
//   Eq. (1)  converged_cwnd          W∞ = (a/(1-b)) * T_AIMD / (d * RTT)
//   Eq. (2)  flow_packets_exact      transient + steady packets of one flow
//   Eq. (4)  gamma                   normalized average attack rate
//   Eq. (7)  gamma = C_attack/(1+μ)  (see PulseTrain helpers)
//   Eq. (8)  normal_throughput_bytes Ψ_normal
//   Eq. (9)  attack_throughput_bytes Ψ_attack (steady-state approximation)
//   Eq. (10) throughput_degradation  Γ = 1 − C_Ψ/γ
//   Eq. (11) c_psi
//   Eq. (5/12) attack_gain           G = Γ · (1 − γ)^κ
//   Eq. (18) c_victim
//
// Conventions: rates in bps, times in seconds, sizes in bytes, windows in
// segments — matching the paper exactly (its S_packet is bytes, R_bottle is
// bps, and the factor 4 in Eq. 11 absorbs the bits/bytes conversion 8/2).
#pragma once

#include "core/params.hpp"
#include "util/units.hpp"

namespace pdos {

/// Eq. (1): the cwnd value the attack converges to.
double converged_cwnd(const AimdParams& aimd, Time t_aimd, Time rtt);

/// One step of the cwnd recursion W' = b·W + (a/d)·T_AIMD/RTT that underlies
/// Eq. (1) (each period: multiplicative drop, then additive growth).
double cwnd_step(const AimdParams& aimd, Time t_aimd, Time rtt, double w);

/// Minimum number of pulses to bring cwnd from w1 to within `tolerance`
/// (relative) of W∞ — the paper's N_attack. Returns at least 1.
int pulses_to_converge(const AimdParams& aimd, Time t_aimd, Time rtt,
                       double w1, double tolerance = 0.05);

/// Eq. (2): packets sent by one victim flow over an N-pulse attack, using
/// the exact cwnd recursion for the transient phase. `w1` is the cwnd just
/// before the first pulse.
double flow_packets_exact(const AimdParams& aimd, Time t_aimd, Time rtt,
                          double w1, int n_pulses);

/// Eq. (9) for a single flow: steady-state packets per free-of-attack
/// interval, (bW∞ + (a/2d)·T/RTT) · T/RTT = (a(1+b)/(2d(1-b))) (T/RTT)^2.
double flow_packets_steady(const AimdParams& aimd, Time t_aimd, Time rtt);

/// Eq. (8): aggregate no-attack throughput in bytes over (N−1) periods.
double normal_throughput_bytes(BitRate rbottle, Time t_aimd, int n_pulses);

/// Eq. (9): aggregate under-attack throughput in bytes over (N−1) periods.
double attack_throughput_bytes(const VictimProfile& victim, Time t_aimd,
                               int n_pulses);

/// Eq. (3)/(10): Γ = 1 − Ψ_attack/Ψ_normal, computed from the closed forms.
/// Clamped to [0, 1) — the model loses meaning once it predicts Γ <= 0.
double throughput_degradation(const VictimProfile& victim, Time t_aimd);

/// Eq. (11): C_Ψ, with C_attack = R_attack / R_bottle.
double c_psi(const VictimProfile& victim, Time textent, double c_attack);

/// Eq. (18): C_victim; note C_Ψ = T_extent · C_attack · C_victim.
double c_victim(const VictimProfile& victim);

/// Eq. (5)/(12): attack gain G(γ) = (1 − C_Ψ/γ)(1 − γ)^κ for γ in (C_Ψ, 1);
/// 0 outside that interval (the attack either does no predicted damage or
/// is a flooding attack).
double attack_gain(double gamma, double cpsi, double kappa);

/// The risk term (1 − γ)^κ alone (Fig. 4).
double risk_term(double gamma, double kappa);

}  // namespace pdos
