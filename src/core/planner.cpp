#include "core/planner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "attack/shrew.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "util/assert.hpp"

namespace pdos {

void AttackPlanRequest::validate() const {
  victim.validate();
  PDOS_REQUIRE(textent > 0.0, "AttackPlanRequest: textent must be > 0");
  PDOS_REQUIRE(rattack > 0.0, "AttackPlanRequest: rattack must be > 0");
  PDOS_REQUIRE(kappa >= 0.0, "AttackPlanRequest: kappa must be >= 0");
  PDOS_REQUIRE(attack_packet_bytes > 0,
               "AttackPlanRequest: attack_packet_bytes must be > 0");
  if (victim_min_rto)
    PDOS_REQUIRE(*victim_min_rto > 0.0,
                 "AttackPlanRequest: min_rto must be > 0");
}

namespace {

AttackPlan build_plan(const AttackPlanRequest& request, double gamma,
                      double gamma_unclamped, bool clamped) {
  const double c_attack = request.rattack / request.victim.rbottle;
  const double cpsi =
      c_psi(request.victim, request.textent, c_attack);

  AttackPlan plan;
  plan.c_attack = c_attack;
  plan.c_psi = cpsi;
  plan.gamma = gamma;
  plan.gamma_unclamped = gamma_unclamped;
  plan.gamma_clamped = clamped;
  plan.risk_class = request.kappa == 0.0 ? RiskClass::kRiskLoving
                                         : classify_risk(request.kappa);
  plan.train =
      PulseTrain::from_gamma(request.textent, request.rattack, gamma,
                             request.victim.rbottle,
                             request.attack_packet_bytes);
  plan.mu = plan.train.mu();
  plan.predicted_degradation =
      throughput_degradation(request.victim, plan.train.period());
  plan.predicted_gain = attack_gain(gamma, cpsi, request.kappa);

  for (Time rtt : request.victim.rtts) {
    plan.converged_cwnds.push_back(
        converged_cwnd(request.victim.aimd, plan.train.period(), rtt));
  }
  if (request.victim_min_rto) {
    // Only low harmonics matter: after a timeout the RTO doubles, so pulse
    // trains faster than ~minRTO/3 stop re-hitting retransmissions — these
    // are also the only points Fig. 10 marks.
    plan.shrew_harmonic =
        matching_shrew_harmonic(plan.train.period(), *request.victim_min_rto,
                                /*max_harmonic=*/3, /*tolerance=*/0.06);
  }
  return plan;
}

}  // namespace

AttackPlan plan_attack(const AttackPlanRequest& request) {
  request.validate();
  const double c_attack = request.rattack / request.victim.rbottle;
  const double cpsi = c_psi(request.victim, request.textent, c_attack);
  PDOS_REQUIRE(cpsi < 1.0,
               "plan_attack: C_Psi >= 1 — this pulse shape cannot trade "
               "damage for stealth (try a shorter T_extent)");

  const double gstar = optimal_gamma(cpsi, request.kappa);
  // γ cannot exceed C_attack (Eq. 7 with μ >= 0) or reach 1 (flooding);
  // clamp and report when the unconstrained optimum is infeasible.
  const double hi = std::min(c_attack, 1.0 - 1e-9);
  const double gamma = std::min(gstar, hi);
  return build_plan(request, gamma, gstar, gamma < gstar);
}

AttackPlan plan_attack_at_gamma(const AttackPlanRequest& request,
                                double gamma) {
  request.validate();
  const double c_attack = request.rattack / request.victim.rbottle;
  PDOS_REQUIRE(gamma > 0.0 && gamma <= std::min(1.0, c_attack),
               "plan_attack_at_gamma: gamma outside (0, min(1, C_attack)]");
  return build_plan(request, gamma, gamma, false);
}

std::string AttackPlan::summary() const {
  std::ostringstream os;
  os << risk_class_name(risk_class) << " plan: gamma=" << gamma
     << (gamma_clamped ? " (clamped)" : "") << " C_psi=" << c_psi
     << " T_extent=" << to_ms(train.textent) << "ms"
     << " T_space=" << to_ms(train.tspace) << "ms"
     << " period=" << to_ms(train.period()) << "ms"
     << " R_attack=" << to_mbps(train.rattack) << "Mbps"
     << " predicted_Gamma=" << predicted_degradation
     << " predicted_gain=" << predicted_gain;
  if (shrew_harmonic) {
    os << " [WARNING: period ~ minRTO/" << *shrew_harmonic
       << ", shrew regime: model will under-estimate damage]";
  }
  return os.str();
}

}  // namespace pdos
