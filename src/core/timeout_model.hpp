// Timeout-aware extension of the throughput model (the paper's §5 future
// work: "extend the analytical models to incorporate the timeout effects").
//
// The base model (Eqs. 2/9) assumes every pulse sends every victim through
// fast recovery. Simulation (and the paper's own experiments) show three
// regimes where timeouts take over and the base model under-predicts the
// damage:
//
//   1. burst loss — when a pulse carries more bytes than the bottleneck
//      buffer plus what the link drains during the pulse, the queue is in
//      outage for part of the pulse and whole windows are lost at once;
//      without ACK flow there are no duplicate ACKs, so the victim times
//      out no matter how large its window was;
//   2. shrew alignment — when T_AIMD ≈ minRTO/n (n small), retransmissions
//      fired after a timeout meet the next pulse and the victim is pinned
//      near the TO state (Kuzmanovic & Knightly's attack; Fig. 10);
//   3. small windows — when the converged window W∞ < dupack_threshold + 1,
//      the victim cannot gather enough duplicate ACKs and every loss
//      becomes a timeout.
//
// A timeout-affected flow is modelled as a mixture: with probability
// `survival_probability` a given pulse misses it (drops are stochastic at
// the queue) and it behaves per the base sawtooth; otherwise it idles for
// RTO ≈ minRTO and then slow-starts in whatever time remains before the
// next pulse. Per-flow throughput is capped by the flow's share of the
// bottleneck so the base model's unbounded (T/RTT)² growth cannot exceed
// capacity.
#pragma once

#include <optional>

#include "core/params.hpp"
#include "util/units.hpp"

namespace pdos {

struct TimeoutModelParams {
  int dupack_threshold = 3;  // duplicate ACKs needed for fast retransmit
  Time min_rto = sec(1.0);   // victim's minimum RTO (ns-2: 1 s, Linux: 200 ms)
  /// Probability that a timeout-prone flow escapes a given pulse unharmed.
  double survival_probability = 0.5;
  /// Shrew-alignment detection: |T_AIMD - minRTO/n| within this relative
  /// tolerance for n = 1..max_harmonic.
  double shrew_tolerance = 0.08;
  int max_harmonic = 3;

  void validate() const;
};

/// What the extension needs to know about the pulses themselves (the plain
/// period is not enough to detect burst loss). `buffer_bytes` = 0 means the
/// attacker does not know the buffer size and burst-loss detection is
/// skipped.
struct PulseContext {
  Time textent = 0.0;
  BitRate rattack = 0.0;
  Bytes buffer_bytes = 0;
};

/// Regime the extension assigns to a flow (for reporting).
enum class FlowRegime { kFastRecovery, kSmallWindow, kShrewPinned,
                        kBurstLoss };

/// True when W∞ (Eq. 1) is too small to generate dupack_threshold duplicate
/// ACKs — the flow times out on every pulse instead of fast-recovering.
bool flow_is_timeout_bound(const AimdParams& aimd, Time t_aimd, Time rtt,
                           int dupack_threshold);

/// True when a pulse overwhelms buffer + drain and causes whole-window
/// (burst) losses. Requires ctx.buffer_bytes > 0.
bool pulses_cause_burst_loss(const PulseContext& ctx, BitRate rbottle);

/// Regime classification for one flow.
FlowRegime classify_flow(const VictimProfile& victim, Time t_aimd, Time rtt,
                         const TimeoutModelParams& params,
                         const std::optional<PulseContext>& ctx);

/// Packets a timed-out flow sends per attack period: zero while
/// T_AIMD <= RTO (pinned), then a slow-start ramp over T_AIMD − RTO,
/// capped at `share_cap_packets`.
double timeout_bound_flow_packets(const AimdParams& aimd, Time t_aimd,
                                  Time rtt, const TimeoutModelParams& params,
                                  double share_cap_packets);

/// Per-flow packets per period under the extended model.
double flow_packets_ext(const VictimProfile& victim, Time t_aimd, Time rtt,
                        const TimeoutModelParams& params,
                        const std::optional<PulseContext>& ctx = {});

/// Aggregate under-attack throughput in bytes over (N−1) periods.
double attack_throughput_bytes_ext(
    const VictimProfile& victim, Time t_aimd, int n_pulses,
    const TimeoutModelParams& params,
    const std::optional<PulseContext>& ctx = {});

/// Γ under the extended model, clamped to [0, 1].
double throughput_degradation_ext(
    const VictimProfile& victim, Time t_aimd,
    const TimeoutModelParams& params,
    const std::optional<PulseContext>& ctx = {});

/// G = Γ_ext · (1 − γ)^κ at a given γ; the extended counterpart of the
/// objective in Eq. (12). Derives T_AIMD from γ via Eq. (4).
double attack_gain_ext(const VictimProfile& victim, const PulseContext& ctx,
                       double gamma, double kappa,
                       const TimeoutModelParams& params);

/// Count of victim flows classified as anything but kFastRecovery.
int timeout_bound_flow_count(const VictimProfile& victim, Time t_aimd,
                             const TimeoutModelParams& params,
                             const std::optional<PulseContext>& ctx = {});

}  // namespace pdos
