// pdos_campaign — execute one or more sweep specs with K cooperating
// worker processes over a shared sharded point store.
//
// Usage:
//   pdos_campaign SPEC... [--store DIR] [--workers K] [--threads N]
//                 [--csv-dir DIR] [--lease-ttl S] [--partial-interval S]
//                 [--keep-going] [--assert-no-dup] [--compact] [--quiet]
//
// Each worker process runs every spec through the ordinary sweep engine;
// the store's claim protocol partitions the cold grid among them with
// near-zero duplicated simulation, and every completed point is a hit for
// all workers, all specs that share its sub-grid, and every later
// campaign. After the workers join, the parent replays each spec from the
// store and writes merged CSV/JSON tables byte-identical to a
// single-process run.
//
//   --store DIR          CampaignStore directory (default
//                        .pdos-cache/campaign; spec `store =` overrides the
//                        default, the flag overrides the spec)
//   --workers K          worker processes (default 2)
//   --threads N          threads per worker (default: all hardware threads)
//   --csv-dir DIR        write each spec's merged CSV to DIR/<spec-stem>.csv
//                        (overrides the spec's `csv =`)
//   --lease-ttl S        work-claim lifetime in seconds (default 120)
//   --partial-interval S stream lookup-only partial CSVs to
//                        <csv>.partial every S seconds while workers run
//   --keep-going         workers keep dispatching after a point failure
//   --assert-no-dup      exit 1 if total simulations exceeded the unique
//                        task count (i.e. claiming failed to dedup)
//   --compact            compact the store segments after the run
//
// Exit status: 0 on success; 1 when any point failed, a worker crashed, or
// an --assert-no-dup check tripped.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sweep/campaign.hpp"
#include "sweep/campaign_store.hpp"
#include "sweep/spec.hpp"

using namespace pdos;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pdos_campaign SPEC... [--store DIR] [--workers K] "
               "[--threads N] [--csv-dir DIR] [--lease-ttl S] "
               "[--partial-interval S] [--keep-going] [--assert-no-dup] "
               "[--compact] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> spec_paths;
  sweep::CampaignOptions options;
  std::string store_flag;
  std::string csv_dir;
  bool assert_no_dup = false;
  bool compact = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_flag = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv-dir") == 0 && i + 1 < argc) {
      csv_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--lease-ttl") == 0 && i + 1 < argc) {
      options.lease_ttl_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--partial-interval") == 0 &&
               i + 1 < argc) {
      options.partial_interval_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--keep-going") == 0) {
      options.keep_going = true;
    } else if (std::strcmp(argv[i], "--assert-no-dup") == 0) {
      assert_no_dup = true;
    } else if (std::strcmp(argv[i], "--compact") == 0) {
      compact = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      spec_paths.push_back(argv[i]);
    }
  }
  if (spec_paths.empty()) return usage();

  std::vector<sweep::CampaignSpec> specs;
  for (const std::string& path : spec_paths) {
    sweep::SpecFile file;
    try {
      file = sweep::load_spec_file(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pdos_campaign: %s\n", e.what());
      return 2;
    }
    sweep::CampaignSpec spec;
    spec.spec = file.spec;
    spec.csv_path = file.csv_path;
    spec.json_path = file.json_path;
    spec.name = std::filesystem::path(path).stem().string();
    if (!csv_dir.empty()) {
      spec.csv_path =
          (std::filesystem::path(csv_dir) / (spec.name + ".csv")).string();
    }
    // A spec's `store =` sets the campaign-wide store; the flag wins, and
    // disagreeing specs are a configuration error (one campaign, one store).
    if (!file.store_dir.empty() && store_flag.empty()) {
      if (!options.store_dir.empty() &&
          options.store_dir != sweep::CampaignOptions{}.store_dir &&
          options.store_dir != file.store_dir) {
        std::fprintf(stderr,
                     "pdos_campaign: specs disagree on store (%s vs %s)\n",
                     options.store_dir.c_str(), file.store_dir.c_str());
        return 2;
      }
      options.store_dir = file.store_dir;
    }
    specs.push_back(std::move(spec));
  }
  if (!store_flag.empty()) options.store_dir = store_flag;

  if (!quiet) {
    options.on_progress = [](const sweep::CampaignProgress& p) {
      std::fprintf(stderr,
                   "\r%zu/%zu done (%zu cached), %d workers, %.1fs   ",
                   p.done, p.total, p.cached, p.workers_alive,
                   p.elapsed_seconds);
      if (p.done == p.total) std::fprintf(stderr, "\n");
    };
    std::fprintf(stderr, "pdos_campaign: %zu spec(s), %d workers, store %s\n",
                 specs.size(), std::max(1, options.workers),
                 options.store_dir.c_str());
  }

  sweep::CampaignResult result;
  try {
    result = sweep::run_campaign(specs, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdos_campaign: %s\n", e.what());
    return 1;
  }

  const std::size_t total_simulated =
      result.worker_simulated + result.final_simulated;
  if (!quiet) {
    std::fprintf(stderr, "\n");
    for (std::size_t si = 0; si < specs.size(); ++si) {
      const sweep::CampaignSpecResult& s = result.specs[si];
      std::fprintf(stderr,
                   "pdos_campaign: %s: %zu ok, %zu failed, %zu store hits"
                   "%s%s\n",
                   specs[si].name.c_str(), s.result.completed(),
                   s.result.failures(), s.result.cache_hits,
                   specs[si].csv_path.empty() ? "" : " -> ",
                   specs[si].csv_path.c_str());
    }
    std::fprintf(stderr,
                 "pdos_campaign: %zu unique tasks, %zu simulated "
                 "(%zu by workers, %zu in merge), %d worker failure(s), "
                 "%.2fs wall\n",
                 result.unique_tasks, total_simulated,
                 result.worker_simulated, result.final_simulated,
                 result.worker_failures, result.wall_seconds);
  }

  if (compact) {
    sweep::CampaignStore store(options.store_dir,
                               options.lease_ttl_seconds);
    const std::size_t dropped = store.compact();
    if (!quiet) {
      std::fprintf(stderr, "pdos_campaign: compacted %s (%zu lines dropped)\n",
                   options.store_dir.c_str(), dropped);
    }
  }

  bool ok = result.ok();
  if (assert_no_dup && total_simulated > result.unique_tasks) {
    std::fprintf(stderr,
                 "pdos_campaign: DUPLICATED WORK: %zu simulations for %zu "
                 "unique tasks\n",
                 total_simulated, result.unique_tasks);
    ok = false;
  }
  return ok ? 0 : 1;
}
