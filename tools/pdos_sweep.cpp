// pdos_sweep — run a parameter campaign described by a key=value spec file
// and emit the result table.
//
// Usage:
//   pdos_sweep SPECFILE [--threads N] [--csv PATH] [--json PATH]
//              [--aggregate PATH] [--resume] [--cache PATH]
//              [--campaign DIR] [--progress-json] [--quiet] [--keep-going]
//
// The spec format is documented in src/sweep/spec.hpp (and README.md,
// "Running parameter sweeps"). Command-line flags override the file.
// Progress goes to stderr, the CSV table to --csv/`csv =` or stdout.
// `--aggregate` additionally writes the per-point replicate statistics
// (mean / sample stddev / 95% CI of gain and degradation) — CSV, or JSON
// when the path ends in ".json". `--resume` enables the persistent point
// cache at .pdos-cache/points.cache (or `--cache PATH`): completed points
// are replayed instead of re-simulated, so an interrupted or repeated
// campaign picks up where it left off. `--campaign DIR` (or `store =` in
// the spec) coordinates through a sharded CampaignStore instead: several
// pdos_sweep processes pointed at the same DIR partition a cold grid via
// work claiming and share every result (see README.md, "Running
// campaigns"). `--progress-json` emits machine-readable JSON-lines
// progress on stderr for orchestrators and CI logs.
// Exit status: 0 on success, 1 when any point failed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "sweep/campaign_store.hpp"
#include "sweep/spec.hpp"
#include "util/assert.hpp"

using namespace pdos;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pdos_sweep SPECFILE [--threads N] [--csv PATH] "
               "[--json PATH] [--aggregate PATH] [--resume] [--cache PATH] "
               "[--campaign DIR] [--progress-json] [--quiet] "
               "[--keep-going]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return usage();

  sweep::SpecFile file;
  try {
    file = sweep::load_spec_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdos_sweep: %s\n", e.what());
    return 2;
  }

  bool quiet = false;
  bool progress_json = false;
  std::string aggregate_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      file.options.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      file.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      file.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--aggregate") == 0 && i + 1 < argc) {
      aggregate_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      if (file.options.cache_path.empty()) {
        file.options.cache_path = ".pdos-cache/points.cache";
      }
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      file.options.cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--campaign") == 0 && i + 1 < argc) {
      file.store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--progress-json") == 0) {
      progress_json = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--keep-going") == 0) {
      file.options.cancel_on_failure = false;
    } else {
      return usage();
    }
  }

  // A campaign store (from --campaign or `store =`) supersedes the
  // single-file cache: same keys, plus multi-process claiming.
  std::unique_ptr<sweep::CampaignStore> store;
  if (!file.store_dir.empty()) {
    store = std::make_unique<sweep::CampaignStore>(file.store_dir);
    file.options.store = store.get();
  }

  const auto points = file.spec.enumerate();
  if (progress_json) {
    // One JSON object per finished task, machine-readable on stderr (the
    // CSV table owns stdout). Orchestrators and CI logs consume this.
    file.options.on_progress = [](const sweep::SweepProgress& progress) {
      std::fprintf(stderr,
                   "{\"done\": %zu, \"total\": %zu, \"cached\": %zu, "
                   "\"elapsed_s\": %.3f, \"eta_s\": %.3f}\n",
                   progress.done, progress.total, progress.cached,
                   progress.elapsed_seconds, progress.eta_seconds);
    };
  } else if (!quiet) {
    std::fprintf(stderr,
                 "pdos_sweep: %zu points (%s scenario, %s backend, "
                 "base seed %llu)\n",
                 points.size(), sweep::scenario_kind_name(file.spec.scenario),
                 backend_name(file.spec.backend),
                 static_cast<unsigned long long>(file.spec.base_seed));
    file.options.on_progress = [](const sweep::SweepProgress& progress) {
      std::fprintf(stderr, "\r%zu/%zu done, %.1fs elapsed, eta %.1fs   ",
                   progress.done, progress.total, progress.elapsed_seconds,
                   progress.eta_seconds);
      if (progress.done == progress.total) std::fprintf(stderr, "\n");
    };
  }

  const sweep::SweepResult result = sweep::run_sweep(file.spec, file.options);
  if (!quiet) {
    std::fprintf(stderr,
                 "pdos_sweep: %zu ok, %zu failed%s on %d threads in %.2fs\n",
                 result.completed(), result.failures(),
                 result.cancelled ? " (cancelled)" : "", result.threads,
                 result.wall_seconds);
    if (store) {
      std::fprintf(stderr,
                   "pdos_sweep: %zu store hits, %zu simulated (%s)\n",
                   result.cache_hits, result.simulated,
                   file.store_dir.c_str());
    } else if (!file.options.cache_path.empty()) {
      std::fprintf(stderr, "pdos_sweep: %zu cache hits (%s)\n",
                   result.cache_hits, file.options.cache_path.c_str());
    }
  }

  if (file.csv_path.empty()) {
    result.write_csv(std::cout);
  } else {
    std::ofstream out(file.csv_path);
    PDOS_REQUIRE(out.good(), "cannot open output: " + file.csv_path);
    result.write_csv(out);
    if (!quiet) {
      std::fprintf(stderr, "pdos_sweep: wrote %s\n", file.csv_path.c_str());
    }
  }
  if (!file.json_path.empty()) {
    std::ofstream out(file.json_path);
    PDOS_REQUIRE(out.good(), "cannot open output: " + file.json_path);
    result.write_json(out);
    if (!quiet) {
      std::fprintf(stderr, "pdos_sweep: wrote %s\n", file.json_path.c_str());
    }
  }
  if (!aggregate_path.empty()) {
    const auto rows = sweep::aggregate_replicates(result);
    std::ofstream out(aggregate_path);
    PDOS_REQUIRE(out.good(), "cannot open output: " + aggregate_path);
    const bool json = aggregate_path.size() >= 5 &&
                      aggregate_path.rfind(".json") ==
                          aggregate_path.size() - 5;
    if (json) {
      sweep::write_aggregate_json(rows, out);
    } else {
      sweep::write_aggregate_csv(rows, out);
    }
    if (!quiet) {
      std::fprintf(stderr, "pdos_sweep: wrote %s (%zu aggregate rows)\n",
                   aggregate_path.c_str(), rows.size());
    }
  }

  for (const auto& point : result.points) {
    if (point.status == sweep::PointStatus::kFailed) {
      std::fprintf(stderr, "point %zu failed: %s\n", point.index,
                   point.error.c_str());
    }
  }
  return result.failures() == 0 && !result.cancelled ? 0 : 1;
}
