// Engine + data-path + sweep + scale + fluid + pdes + replicate
// performance report: measures the scheduler and packet data-path
// micro-benchmarks, scenario setup (fresh vs warm-reset), the LargeScale
// fast-path scenarios (interleaved fast/full A/B), the fluid-surrogate vs
// packet A/B on a fig. 6 quick grid point, the sharded-vs-single PDES A/B
// on a 10 Gbps LargeScale scenario, the sequential-vs-batched replicate
// A/B at R = 8 (DESIGN.md §14), the 1-worker vs K-worker multi-process
// campaign A/B over a shared CampaignStore (DESIGN.md §15), and a fixed
// fig. 6 quick-mode sweep (cold and cache-resumed), and writes
// BENCH_engine.json, BENCH_datapath.json, BENCH_sweep.json,
// BENCH_scale.json, BENCH_fluid.json, BENCH_pdes.json,
// BENCH_replicate.json, and BENCH_campaign.json.
//
// This is the tracked-baseline half of the perf story: google-benchmark
// (bench/micro_engine, bench/micro_datapath, bench/micro_setup,
// bench/micro_largescale, bench/micro_fluid, bench/micro_replicate) is for
// interactive work, while this tool emits stable, machine-readable
// snapshots that CI diffs against the committed bench/baseline_engine.json,
// bench/baseline_datapath.json, bench/baseline_sweep.json,
// bench/baseline_scale.json, bench/baseline_fluid.json, and
// bench/baseline_replicate.json. The JSON is flat `"key": number` pairs so
// the reader below stays a 30-line scanner instead of a JSON library.
//
// Usage:
//   bench_report [--out FILE] [--baseline FILE] [--datapath-out FILE]
//                [--datapath-baseline FILE] [--sweep-out FILE]
//                [--sweep-baseline FILE] [--scale-out FILE]
//                [--scale-baseline FILE] [--fluid-out FILE]
//                [--fluid-baseline FILE] [--pdes-out FILE]
//                [--pdes-baseline FILE] [--fluid-surface-out FILE]
//                [--replicate-out FILE] [--replicate-baseline FILE]
//                [--campaign-out FILE] [--campaign-baseline FILE]
//                [--check] [--reps N] [--skip-sweep]
//
//   --out FILE                engine output path (default BENCH_engine.json)
//   --baseline FILE           committed engine reference; its values are
//                             copied into the output next to the fresh
//                             numbers (before/after in one artifact)
//   --datapath-out FILE       data-path output (default BENCH_datapath.json)
//   --datapath-baseline FILE  committed data-path reference
//   --sweep-out FILE          setup/sweep output (default BENCH_sweep.json)
//   --sweep-baseline FILE     committed setup/sweep reference; only the
//                             setup micros are gated — the cold/resume
//                             wall-clock rides along as information
//   --scale-out FILE          LargeScale output (default BENCH_scale.json)
//   --scale-baseline FILE     committed LargeScale reference; the fast-path
//                             event throughputs are gated, the fast-vs-full
//                             speedup rides along as information
//   --fluid-out FILE          fluid-tier output (default BENCH_fluid.json)
//   --fluid-baseline FILE     committed fluid-tier reference; the fluid
//                             point, batched W=8 γ-grid, and binned
//                             1e6-flow throughputs are gated against it,
//                             and under --check the fluid-vs-packet
//                             speedup must additionally clear the >= 100x
//                             floor the surrogate tier promises
//                             (DESIGN.md §12) while the vectorized paths
//                             must beat the frozen scalar reference solver
//                             (fluid/refbench.hpp) by >= 1.10x (batched
//                             grid; measured 1.2-1.3x, driver-bound at 15
//                             classes) and >= 1.30x (binned 64-class
//                             solve; measured 1.45-1.6x) — SIMD builds
//                             only; scalar builds skip those two floors
//                             out loud (DESIGN.md §16)
//   --pdes-out FILE           PDES sharding output (default BENCH_pdes.json)
//   --pdes-baseline FILE      committed PDES reference; the sharded run's
//                             event throughput is gated against it, and
//                             under --check the shards=4 vs shards=1
//                             speedup must clear the >= 3x floor
//                             (DESIGN.md §13) — but ONLY on hosts with
//                             at least 4 hardware threads. Single-core CI
//                             runners print a skip line instead: the
//                             sharded run cannot beat the single scheduler
//                             without parallel hardware.
//   --fluid-surface-out FILE  also emit the fluid-tier attack-gain surface
//                             (γ × T_extent grid, long-format CSV:
//                             textent_ms,gamma,degradation,gain) to FILE
//   --replicate-out FILE      replicate-batching output (default
//                             BENCH_replicate.json)
//   --replicate-baseline FILE committed replicate reference; the batched
//                             replicate throughputs (packet and fluid tier)
//                             are gated against it, and under --check the
//                             fluid tier's batched-vs-sequential replicate
//                             speedup at R = 8 must additionally clear the
//                             >= 1.3x floor (DESIGN.md §14). The packet
//                             tier's speedup rides along as information:
//                             co-resident packet replicates execute the
//                             same events as sequential ones, so their win
//                             is locality, not work elimination — the fluid
//                             tier is where batching eliminates R - 1
//                             solves outright. The committed baseline's
//                             throughput values are deliberately
//                             conservative: the fluid batched wall is
//                             microseconds and jitters well past the 30%
//                             tolerance run to run; the 1.3x same-machine
//                             floor (measured ~8x) is the real promise.
//   --campaign-out FILE       multi-process campaign output (default
//                             BENCH_campaign.json)
//   --campaign-baseline FILE  committed campaign reference; the K-worker
//                             cold campaign's task throughput is gated
//                             against it. Under --check the K-worker vs
//                             1-worker cold-campaign speedup must clear the
//                             >= 2.5x floor — but ONLY on hosts with at
//                             least 4 hardware threads (single-core runners
//                             print a skip line: forked workers cannot beat
//                             one process without parallel hardware), and
//                             the all-hit resume must simulate nothing and
//                             reproduce the merged CSV byte for byte (that
//                             pair gates on every host).
//   --check                   exit non-zero if any micro-benchmark runs >30%
//                             slower than its baseline (requires the
//                             corresponding --*baseline)
//   --reps N                  samples per benchmark, best-of (default 7)
//   --skip-sweep              omit the fig. 6 sweeps (fast CI smoke)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "fluid/batch.hpp"
#include "fluid/fluid.hpp"
#include "fluid/refbench.hpp"
#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/packet_ring.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/stats_hub.hpp"
#include "sweep/campaign.hpp"
#include "sweep/replicate_batch.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kRegressionTolerance = 0.30;  // fail at >30% slowdown

// The surrogate-tier contract (DESIGN.md §12): a fluid fig. 6 quick grid
// point must evaluate at least this many times faster than the same point
// on the full packet path. A same-machine ratio, so it is gated directly
// under --check rather than via the committed baseline.
constexpr double kFluidSpeedupFloor = 100.0;

// The vectorization contract (DESIGN.md §16): the lane-batched γ-grid at
// W = kFluidBatchWidth must beat the frozen pre-vectorization scalar
// solver (fluid/refbench.hpp) evaluating the same grid point-at-a-time by
// at least kFluidBatchSpeedupFloor, and the vectorized binned 1e6-flow
// solve must beat the same reference by kFluidBinnedSpeedupFloor. Both
// are same-machine in-run ratios, gated directly under --check — but only
// when the fluid kernels were compiled against a real SIMD backend.
// Scalar builds (-DPDOS_SIMD=OFF, or hosts without AVX2/NEON) still
// measure and report the pair, and print a skip line instead of gating:
// without lane hardware the scalar kernels cannot owe a vector win.
//
// The floors are deliberately far below the naive 4-lane ideal, because
// the ratios are Amdahl-bound, not kernel-bound (DESIGN.md §16): every
// lane-step pays a ~50-60 ns scalar driver (libm exp, RED bookkeeping,
// step clipping) that vectorization cannot touch — half the step at the
// γ-grid's 15 classes — and the refbench denominator is itself SSE2
// auto-vectorized with branchy fast paths, so the marginal per-class
// ratio saturates near 1.6x at 64+ classes. Measured on the 1-core AVX2
// host: grid 1.20-1.31x, binned 1.38-1.58x across runs; the floors sit
// under the worst observed run with margin for host noise.
constexpr double kFluidBatchSpeedupFloor = 1.10;
constexpr double kFluidBinnedSpeedupFloor = 1.25;
constexpr int kFluidBatchWidth = 8;

// The PDES sharding contract (DESIGN.md §13): a shards=4 LargeScale run on
// a ThreadPool executor must beat the same run on one scheduler by at
// least this much — but only where the hardware can possibly deliver it.
// Hosts with fewer than kPdesFloorMinThreads hardware threads (single-core
// CI runners in particular) skip the floor: the measurement still runs and
// the speedup still rides along in the artifact, it just cannot gate.
constexpr double kPdesSpeedupFloor = 3.0;
constexpr unsigned kPdesFloorMinThreads = 4;
constexpr int kPdesShards = 4;

// The replicate-batching contract (DESIGN.md §14): running the fig. 6
// quick grid point's R = 8 seed-varied replicates through a warm
// ReplicateBatch must beat R sequential runs by at least this much on the
// fluid tier, where the batch solves the seed-invariant system once and
// fans the result out. A same-machine ratio, gated directly under --check.
// The packet tier has no equivalent floor: its replicates execute the same
// events batched or not (the batch wins shared planning and workspace
// reuse, not event work), so only its baseline-gated throughput is tracked.
constexpr double kReplicateSpeedupFloor = 1.3;
constexpr int kReplicateCount = 8;

// The multi-process campaign contract (DESIGN.md §15): a cold
// kCampaignWorkers-process campaign over a shared CampaignStore must beat
// the same campaign run by one process by at least this much — but, like
// the PDES floor, only where the hardware can deliver it. Hosts with fewer
// than kCampaignFloorMinThreads hardware threads skip the floor out loud;
// the speedup still rides along in the artifact. The resume half of the
// contract (all-hit, byte-identical merged CSV) is hardware-independent
// and gates on every host.
constexpr double kCampaignSpeedupFloor = 2.5;
constexpr unsigned kCampaignFloorMinThreads = 4;
constexpr int kCampaignWorkers = 4;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- workloads (mirror bench/micro_engine.cpp) ---------------------------

long long g_sink = 0;

void workload_schedule_run(int n) {
  Scheduler sched;
  for (int i = 0; i < n; ++i) {
    sched.schedule(static_cast<Time>((i * 2654435761u) % 1000),
                   [] { ++g_sink; });
  }
  sched.run();
}

void workload_cancel_heavy() {
  Scheduler sched;
  EventId pending = kInvalidEventId;
  for (int i = 0; i < 10000; ++i) {
    if (pending != kInvalidEventId) sched.cancel(pending);
    pending = sched.schedule(1000.0, [] {});
    sched.schedule(0.001 * i, [] {});
  }
  sched.run();
}

void workload_timer_restart() {
  Scheduler sched;
  Timer timer(sched, [] { ++g_sink; });
  timer.schedule_at(1.0);
  for (int i = 0; i < 10000; ++i) timer.schedule_at(1.0 + 0.001 * i);
  sched.run();
}

// --- data-path workloads (mirror bench/micro_datapath.cpp) ---------------

Packet bench_packet() {
  Packet pkt;
  pkt.type = PacketType::kAttack;
  pkt.size_bytes = 1040;
  return pkt;
}

void workload_ring_churn() {
  static PacketRing ring;
  ring.reserve(256);
  const Packet pkt = bench_packet();
  for (int lap = 0; lap < 8; ++lap) {
    for (int i = 0; i < 128; ++i) ring.push_back(pkt);
    while (!ring.empty()) g_sink += ring.pop_front().size_bytes;
  }
}

struct BenchSink : PacketHandler {
  long long received = 0;
  void handle(Packet) override { ++received; }
};

/// 1000 packets into a 10 Mbps / 5 ms link at twice its service rate, so
/// the queue builds and drains; optionally with production taps attached.
void workload_link_pipeline(bool tapped) {
  Simulator sim(1);
  sim.reserve_events(64);
  StatsHub hub(ms(10), sec(2));
  auto* sink = sim.make<BenchSink>();
  auto* link = sim.make<Link>(sim, "l", mbps(10), ms(5),
                              std::make_unique<DropTailQueue>(64), sink);
  if (tapped) {
    link->add_arrival_tap([&sim, &hub](const Packet& pkt) {
      hub.on_arrival(sim.now(), pkt);
    });
    link->add_departure_tap([](const Packet&) { ++g_sink; });
  }
  struct Source {
    Simulator& sim;
    Link& link;
    int remaining;
    void operator()() const {
      link.handle(bench_packet());
      if (remaining > 1) {
        sim.schedule(transmission_time(1040, mbps(20)),
                     Source{sim, link, remaining - 1});
      }
    }
  };
  sim.schedule(0.0, Source{sim, *link, 1000});
  sim.run();
  g_sink += sink->received;
}

/// Best-of-`reps` items/sec for `fn`, which processes `items` per call.
/// Each sample batches calls until it spans >= 10 ms so the clock
/// resolution never dominates.
template <typename F>
double measure_items_per_sec(F&& fn, long long items, int reps) {
  fn();  // warm caches, page in slabs
  const auto probe = Clock::now();
  fn();
  const double once = std::max(seconds_since(probe), 1e-9);
  const int batch = std::max(1, static_cast<int>(0.01 / once));
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (int b = 0; b < batch; ++b) fn();
    const double rate =
        static_cast<double>(items) * batch / seconds_since(start);
    best = std::max(best, rate);
  }
  return best;
}

// --- scenario setup workloads (mirror bench/micro_setup.cpp) -------------

/// A horizon so short that almost no simulation events execute: the cost
/// measured is topology construction (+ teardown on reset), not the run.
RunControl setup_only_control() {
  RunControl control;
  control.warmup = 0.0;
  control.measure = ms(1);
  return control;
}

void workload_setup_fresh() {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  ScenarioWorkspace ws;
  g_sink += static_cast<long long>(
      ws.run(config, std::nullopt, setup_only_control()).events_executed);
}

void workload_setup_warm(ScenarioWorkspace& ws) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  g_sink += static_cast<long long>(
      ws.run(config, std::nullopt, setup_only_control()).events_executed);
}

// --- LargeScale workloads (mirror bench/micro_largescale.cpp) ------------

/// Pulse train scaled to the bottleneck per the paper's Eq. (1)-(2): the
/// pulse magnitude must exceed the bottleneck rate for the queue to fill
/// within T_extent, so R_attack tracks R_bottle (same 25/15 ratio as the
/// ns-2 reference scenario) with γ = 0.3 fixing the period.
PulseTrain large_scale_train(BitRate bottleneck) {
  return PulseTrain::from_gamma(ms(50), bottleneck * (25.0 / 15.0), 0.3,
                                bottleneck);
}

/// Short horizon: long enough that steady-state forwarding dominates the
/// build cost, short enough to keep the 1 Gbps A/B pair inside a CI smoke.
RunControl large_scale_control() {
  RunControl control;
  control.warmup = sec(0.5);
  control.measure = sec(1.0);
  return control;
}

struct ScaleSample {
  std::uint64_t events = 0;
  double wall = 0.0;
};

ScaleSample run_large_scale(ScenarioWorkspace& ws, int flows, BitRate rate,
                            bool fast) {
  ScenarioConfig config = ScenarioConfig::large_scale(flows, rate);
  config.fast_path = fast;
  const RunControl control = large_scale_control();
  const auto start = Clock::now();
  const RunResult result = ws.run(config, large_scale_train(rate), control);
  return ScaleSample{result.events_executed, seconds_since(start)};
}

struct ScaleMeasurement {
  std::uint64_t fast_events = 0;  // deterministic per config/seed
  std::uint64_t full_events = 0;
  double fast_wall = 0.0;  // best-of-reps
  double full_wall = 0.0;
};

/// Interleaved A/B: alternate fast-path and full-path samples (each in its
/// own warm workspace) so clock drift and thermal state hit both arms the
/// same way, then take best-of per arm.
ScaleMeasurement measure_large_scale(int flows, BitRate rate, int reps) {
  ScenarioWorkspace fast_ws;
  ScenarioWorkspace full_ws;
  ScaleMeasurement m;
  m.fast_events = run_large_scale(fast_ws, flows, rate, true).events;   // warm
  m.full_events = run_large_scale(full_ws, flows, rate, false).events;  // warm
  m.fast_wall = m.full_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    m.fast_wall =
        std::min(m.fast_wall, run_large_scale(fast_ws, flows, rate, true).wall);
    m.full_wall = std::min(m.full_wall,
                           run_large_scale(full_ws, flows, rate, false).wall);
  }
  return m;
}

// --- fluid surrogate vs packet point (mirror bench/micro_fluid.cpp) ------

/// One fig. 6 quick-mode grid point (15-flow ns-2 dumbbell, T_extent 50 ms,
/// R_attack 25 Mbps, γ = 0.5, 5 s warmup + 15 s measurement) on the given
/// backend; returns the wall time of the run.
double run_fig06_point(ScenarioWorkspace& ws, Backend backend) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = backend;
  const PulseTrain train =
      PulseTrain::from_gamma(ms(50), mbps(25), 0.5, config.bottleneck);
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  const auto start = Clock::now();
  const RunResult result = ws.run(config, train, control);
  g_sink += static_cast<long long>(result.events_executed);
  return seconds_since(start);
}

// --- vectorized fluid kernels vs frozen scalar reference (§16) -----------

/// The fig. 6 quick point as a bare fluid system (no experiment-layer
/// wrapper): the shared topology every γ lane of the batched grid rides.
fluid::FluidConfig fig06_fluid_config() {
  return make_fluid_config(ScenarioConfig::ns2_dumbbell(15));
}

fluid::FluidAttack fig06_fluid_attack(double gamma) {
  const PulseTrain train = PulseTrain::from_gamma(
      ms(50), mbps(25), gamma, ScenarioConfig::ns2_dumbbell(15).bottleneck);
  fluid::FluidAttack attack;
  attack.textent = train.textent;
  attack.rattack = train.rattack;
  attack.tspace = train.tspace;
  return attack;
}

fluid::FluidControl fig06_fluid_control() {
  fluid::FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  return control;
}

/// The million-flow population binned to 64 classes, exactly as
/// bench/micro_fluid.cpp's BM_FluidSolveMillionFlowsBinned builds it: the
/// class-vectorization showcase (64 padded SoA classes, no batch lanes).
fluid::FluidConfig binned_million_flow_config() {
  fluid::FluidConfig config = fig06_fluid_config();
  constexpr int kFlows = 1000000;
  std::vector<fluid::FluidClass> classes;
  classes.reserve(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    const double frac = static_cast<double>(i) / (kFlows - 1);
    classes.push_back(fluid::FluidClass{ms(20) + frac * ms(440), 1.0});
  }
  config.classes = fluid::bin_classes(std::move(classes), 64);
  config.bottleneck = gbps(10);
  config.red = RedParams::paper_testbed(4000);
  return config;
}

fluid::FluidAttack binned_million_flow_attack(BitRate bottleneck) {
  const PulseTrain train = PulseTrain::from_gamma(
      ms(50), bottleneck * (25.0 / 15.0), 0.5, bottleneck);
  fluid::FluidAttack attack;
  attack.textent = train.textent;
  attack.rattack = train.rattack;
  attack.tspace = train.tspace;
  return attack;
}

struct FluidSimdMeasurement {
  double batch_grid_wall = 0.0;  // solve_batch, W-lane γ-grid, SIMD kernels
  double ref_grid_wall = 0.0;    // refbench::solve point-at-a-time, same grid
  double vec_binned_wall = 0.0;  // fluid::solve, binned 1e6-flow config
  double ref_binned_wall = 0.0;  // refbench::solve, same binned config
};

/// Interleaved best-of-reps A/B of the vectorized fluid paths against the
/// frozen scalar reference solver (fluid/refbench.hpp, compiled without
/// SIMD arch flags): the W = kFluidBatchWidth γ-grid through solve_batch
/// vs the same grid point-at-a-time, and the binned 1e6-flow single solve
/// vs its scalar twin. Both arms run warm, like the other same-machine
/// A/Bs in this tool. The reference solver agrees with the vectorized one
/// only to reduction-reassociation error (~ulps), so outputs are
/// sanity-checked loosely, not bit-compared.
FluidSimdMeasurement measure_fluid_simd(int reps) {
  const fluid::FluidConfig config = fig06_fluid_config();
  const fluid::FluidControl control = fig06_fluid_control();
  std::vector<fluid::BatchLane> lanes;
  for (int gi = 1; gi <= kFluidBatchWidth; ++gi) {
    lanes.push_back(fluid::BatchLane{fig06_fluid_attack(0.1 * gi)});
  }
  const fluid::FluidConfig binned = binned_million_flow_config();
  const fluid::FluidAttack binned_attack =
      binned_million_flow_attack(binned.bottleneck);

  const auto batch_grid_pass = [&]() -> double {
    const std::vector<fluid::FluidResult> results =
        fluid::solve_batch(config, lanes, control);
    g_sink += static_cast<long long>(results.front().steps);
    return results.back().goodput_bytes;
  };
  const auto ref_grid_pass = [&]() -> double {
    double last = 0.0;
    for (const fluid::BatchLane& lane : lanes) {
      const fluid::FluidResult result =
          fluid::refbench::solve(config, lane.attack, control);
      g_sink += static_cast<long long>(result.steps);
      last = result.goodput_bytes;
    }
    return last;
  };
  const auto vec_binned_pass = [&]() -> double {
    const fluid::FluidResult result =
        fluid::solve(binned, binned_attack, control);
    g_sink += static_cast<long long>(result.steps);
    return result.goodput_bytes;
  };
  const auto ref_binned_pass = [&]() -> double {
    const fluid::FluidResult result =
        fluid::refbench::solve(binned, binned_attack, control);
    g_sink += static_cast<long long>(result.steps);
    return result.goodput_bytes;
  };

  // Warm both arms and sanity-check the reference against the vectorized
  // results: same physics, different reduction order — agreement should be
  // far inside 0.1%. A bigger gap means the frozen snapshot drifted.
  const double grid_vec = batch_grid_pass();
  const double grid_ref = ref_grid_pass();
  const double binned_vec = vec_binned_pass();
  const double binned_ref = ref_binned_pass();
  const auto close = [](double a, double b) {
    return std::abs(a - b) <= 1e-3 * std::max(std::abs(a), std::abs(b));
  };
  if (!close(grid_vec, grid_ref) || !close(binned_vec, binned_ref)) {
    std::fprintf(stderr,
                 "bench_report: refbench solver diverged from fluid::solve "
                 "(grid %.17g vs %.17g, binned %.17g vs %.17g)\n",
                 grid_vec, grid_ref, binned_vec, binned_ref);
    std::exit(1);
  }

  FluidSimdMeasurement m;
  m.batch_grid_wall = std::numeric_limits<double>::infinity();
  m.ref_grid_wall = std::numeric_limits<double>::infinity();
  m.vec_binned_wall = std::numeric_limits<double>::infinity();
  m.ref_binned_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    batch_grid_pass();
    m.batch_grid_wall = std::min(m.batch_grid_wall, seconds_since(start));
    start = Clock::now();
    ref_grid_pass();
    m.ref_grid_wall = std::min(m.ref_grid_wall, seconds_since(start));
    start = Clock::now();
    vec_binned_pass();
    m.vec_binned_wall = std::min(m.vec_binned_wall, seconds_since(start));
    start = Clock::now();
    ref_binned_pass();
    m.ref_binned_wall = std::min(m.ref_binned_wall, seconds_since(start));
  }
  return m;
}

// --- replicate batching (DESIGN.md §14) ----------------------------------

/// Sequential-vs-batched A/B of the fig. 6 quick grid point's R = 8
/// replicates, per backend tier. Both arms run warm (a throwaway first
/// pass sizes the arenas) and interleaved best-of-reps, like the other
/// same-machine A/Bs in this tool.
struct ReplicateMeasurement {
  double sequential_wall = 0.0;  // R replicates, one warm workspace
  double batched_wall = 0.0;     // R replicates, one warm ReplicateBatch
};

ReplicateMeasurement measure_replicates(Backend backend, int reps) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = backend;
  const PulseTrain train =
      PulseTrain::from_gamma(ms(50), mbps(25), 0.5, config.bottleneck);
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  std::vector<std::uint64_t> seeds;
  for (int r = 0; r < kReplicateCount; ++r) {
    seeds.push_back(sweep::replicate_seed(1, r));
  }

  ScenarioWorkspace ws;
  sweep::ReplicateBatch batch;
  const auto sequential_pass = [&] {
    for (std::uint64_t seed : seeds) {
      ScenarioConfig replicate = config;
      replicate.seed = seed;
      const RunResult result = ws.run(replicate, train, control);
      g_sink += static_cast<long long>(result.events_executed);
    }
  };
  const auto batched_pass = [&] {
    const std::vector<RunResult> results =
        batch.run(config, train, control, seeds);
    g_sink += static_cast<long long>(results.front().events_executed);
  };
  sequential_pass();  // warm both arms outside the clock
  batched_pass();

  ReplicateMeasurement m;
  m.sequential_wall = std::numeric_limits<double>::infinity();
  m.batched_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    sequential_pass();
    m.sequential_wall = std::min(m.sequential_wall, seconds_since(start));
    start = Clock::now();
    batched_pass();
    m.batched_wall = std::min(m.batched_wall, seconds_since(start));
  }
  return m;
}

// --- PDES sharded-run A/B (mirror tests/pdes, DESIGN.md §13) -------------

/// The intra-run parallelism target scenario: 10k flows on a 10 Gbps
/// bottleneck, fast path, short horizon. Big enough that per-round shard
/// work dwarfs the barrier cost, short enough for a CI smoke.
ScaleSample run_pdes_point(ScenarioWorkspace& ws, int shards) {
  ScenarioConfig config = ScenarioConfig::large_scale(10000, gbps(10));
  config.shards = shards;
  RunControl control;
  control.warmup = sec(0.25);
  control.measure = sec(0.5);
  const auto start = Clock::now();
  const RunResult result =
      ws.run(config, large_scale_train(config.bottleneck), control);
  return ScaleSample{result.events_executed, seconds_since(start)};
}

struct PdesMeasurement {
  std::uint64_t single_events = 0;   // shards=1 event count (deterministic)
  std::uint64_t sharded_events = 0;  // shards=4 event count (deterministic)
  double single_wall = 0.0;          // best-of-reps
  double sharded_wall = 0.0;
  std::uint64_t rounds = 0;    // engine telemetry from the sharded arm
  std::uint64_t messages = 0;  // cross-shard packets per run
  int executor_threads = 1;    // 1 = inline executor (no pool)
};

/// Interleaved A/B: alternate shards=1 and shards=4 samples, each in its
/// own warm workspace, best-of per arm. The sharded arm runs on a
/// ThreadPool executor when the host has more than one hardware thread;
/// on a single-core host it runs the rounds inline — same results (the
/// outputs are executor-invariant), honest wall time.
PdesMeasurement measure_pdes(int reps) {
  PdesMeasurement m;
  std::unique_ptr<sweep::ThreadPool> pool;
  if (std::thread::hardware_concurrency() > 1) {
    pool = std::make_unique<sweep::ThreadPool>();
    m.executor_threads = pool->size();
  }
  ScenarioWorkspace single_ws;
  ScenarioWorkspace sharded_ws;
  if (pool) sharded_ws.set_shard_executor(sweep::pool_shard_executor(*pool));
  m.single_events = run_pdes_point(single_ws, 1).events;            // warm
  m.sharded_events = run_pdes_point(sharded_ws, kPdesShards).events;  // warm
  m.rounds = sharded_ws.pdes_rounds();
  m.messages = sharded_ws.pdes_messages();
  m.single_wall = m.sharded_wall = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    m.single_wall = std::min(m.single_wall, run_pdes_point(single_ws, 1).wall);
    m.sharded_wall =
        std::min(m.sharded_wall, run_pdes_point(sharded_ws, kPdesShards).wall);
  }
  return m;
}

// --- multi-process campaign A/B (mirror tests/sweep, DESIGN.md §15) ------

/// The campaign target grid: one fast-backend fig. 6 slice with enough
/// independent tasks (32 points + 4 baselines) that four workers can
/// partition it meaningfully, and per-task horizons long enough that the
/// simulation dwarfs fork + store overhead.
sweep::SweepSpec campaign_bench_spec() {
  sweep::SweepSpec spec;
  spec.backend = Backend::kFast;
  spec.flow_counts = {15};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  spec.replicates = 4;
  spec.control.warmup = sec(5);
  spec.control.measure = sec(15);
  return spec;
}

struct CampaignMeasurement {
  std::size_t unique_tasks = 0;
  double single_wall = 0.0;   // cold, 1 worker, fresh store
  double multi_wall = 0.0;    // cold, kCampaignWorkers workers, fresh store
  double resume_wall = 0.0;   // identical campaign over the warm store
  std::size_t single_simulated = 0;
  std::size_t multi_simulated = 0;
  std::size_t resume_simulated = 0;  // must be 0: all-hit resume
  bool csv_identical = false;  // single == multi == resume, byte for byte
  bool ok = true;              // no point failures, no worker crashes
};

/// Three campaigns over the same spec: cold single-process, cold
/// K-process (fresh store each), then a resume of the K-process store.
/// Single-shot rather than best-of — a cold campaign consumed its own
/// precondition, and the resume arm is a correctness check first.
CampaignMeasurement measure_campaign(const std::string& scratch_prefix) {
  CampaignMeasurement m;
  sweep::CampaignSpec spec;
  spec.spec = campaign_bench_spec();
  spec.name = "bench";
  const std::string single_dir = scratch_prefix + ".single.store.tmp";
  const std::string multi_dir = scratch_prefix + ".multi.store.tmp";
  std::filesystem::remove_all(single_dir);
  std::filesystem::remove_all(multi_dir);

  sweep::CampaignOptions options;
  options.threads = 1;  // per worker: process count is the variable
  options.claim_poll_seconds = 0.01;

  options.store_dir = single_dir;
  options.workers = 1;
  const sweep::CampaignResult single = sweep::run_campaign({spec}, options);
  m.unique_tasks = single.unique_tasks;
  m.single_wall = single.wall_seconds;
  m.single_simulated = single.worker_simulated + single.final_simulated;
  m.ok = m.ok && single.ok();

  options.store_dir = multi_dir;
  options.workers = kCampaignWorkers;
  const sweep::CampaignResult multi = sweep::run_campaign({spec}, options);
  m.multi_wall = multi.wall_seconds;
  m.multi_simulated = multi.worker_simulated + multi.final_simulated;
  m.ok = m.ok && multi.ok();

  const sweep::CampaignResult resume = sweep::run_campaign({spec}, options);
  m.resume_wall = resume.wall_seconds;
  m.resume_simulated = resume.worker_simulated + resume.final_simulated;
  m.ok = m.ok && resume.ok();

  std::ostringstream a, b, c;
  single.specs[0].result.write_csv(a);
  multi.specs[0].result.write_csv(b);
  resume.specs[0].result.write_csv(c);
  m.csv_identical = a.str() == b.str() && b.str() == c.str();

  std::filesystem::remove_all(single_dir);
  std::filesystem::remove_all(multi_dir);
  return m;
}

// --- fluid-tier attack-gain surface (γ × T_extent heatmap) ---------------

/// Sweep the pulse shape over a γ × T_extent grid on the fluid surrogate
/// (15-flow ns-2 dumbbell, R_attack 25 Mbps, κ = 1) and write the measured
/// degradation Γ and gain G per cell as long-format CSV — the raw material
/// for the heatmaps the optimizer's search surface is read from. The grid
/// is evaluated through the lane-batched tier (DESIGN.md §16): cells queue
/// up in kFluidBatchWidth-lane `fluid_gain_batch` chunks against one
/// shared fluid baseline, bit-identical to the old cell-at-a-time loop and
/// several times cheaper — the whole surface rides in a CI smoke. The
/// grid's points/sec is printed so the smoke log carries the surface
/// throughput next to the gated A/B ratios.
void emit_fluid_surface(const std::string& path) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = Backend::kFluid;
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  const BitRate baseline = measure_baseline(config, control);

  struct Cell {
    double textent_ms;
    double gamma;
  };
  std::vector<Cell> cells;
  std::vector<PulseTrain> trains;
  const double textents_ms[] = {20, 35, 50, 65, 80, 100, 125, 150, 200};
  for (double textent_ms : textents_ms) {
    for (int gi = 1; gi <= 9; ++gi) {
      const double gamma = 0.1 * gi;
      cells.push_back(Cell{textent_ms, gamma});
      trains.push_back(PulseTrain::from_gamma(ms(textent_ms), mbps(25), gamma,
                                              config.bottleneck));
    }
  }

  std::vector<GainMeasurement> points;
  points.reserve(trains.size());
  const auto start = Clock::now();
  for (std::size_t at = 0; at < trains.size(); at += kFluidBatchWidth) {
    const std::size_t width =
        std::min<std::size_t>(kFluidBatchWidth, trains.size() - at);
    const std::vector<PulseTrain> chunk(trains.begin() + at,
                                        trains.begin() + at + width);
    const std::vector<GainMeasurement> gains =
        fluid_gain_batch(config, chunk, 1.0, control, baseline);
    points.insert(points.end(), gains.begin(), gains.end());
  }
  const double wall = seconds_since(start);
  std::printf("fluid_surface: %zu cells in %.3f s (%.0f points/s, batch "
              "W=%d, %s kernels)\n",
              points.size(), wall, static_cast<double>(points.size()) / wall,
              kFluidBatchWidth, fluid::simd_backend());

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "textent_ms,gamma,degradation,gain\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    char row[128];
    std::snprintf(row, sizeof(row), "%g,%g,%.6g,%.6g\n", cells[i].textent_ms,
                  cells[i].gamma, points[i].degradation, points[i].gain);
    out << row;
  }
}

// --- fig. 6 quick-mode sweep (single-threaded, fixed spec) ---------------

sweep::SweepSpec fig06_quick_spec() {
  sweep::SweepSpec spec;
  spec.flow_counts = {15, 25, 35, 45};
  spec.textents = {ms(50), ms(75), ms(100)};
  spec.rattacks = {mbps(25)};
  spec.gamma_points = 7;
  spec.control.warmup = sec(5);
  spec.control.measure = sec(15);
  return spec;
}

double fig06_quick_sweep_seconds(std::size_t* points_out,
                                 const std::string& cache_path = {}) {
  sweep::SweepOptions options;
  options.threads = 1;
  options.cache_path = cache_path;
  const auto start = Clock::now();
  const sweep::SweepResult result =
      sweep::run_sweep(fig06_quick_spec(), options);
  const double wall = seconds_since(start);
  if (points_out != nullptr) *points_out = result.points.size();
  if (result.failures() > 0) {
    std::fprintf(stderr, "bench_report: %zu sweep points failed\n",
                 result.failures());
    std::exit(1);
  }
  return wall;
}

// --- flat JSON in/out ----------------------------------------------------

/// Read `"key": <number>` from a flat JSON file. Returns NaN if absent.
double scan_json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nan("");
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

struct Entry {
  std::string key;
  double value;
};

void write_json(const std::string& path, const char* schema,
                const std::vector<Entry>& entries) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"schema\": \"" << schema << "\"";
  for (const Entry& e : entries) {
    out << ",\n  \"" << e.key << "\": ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", e.value);
    out << buf;
  }
  out << "\n}\n";
}

struct Micro {
  const char* key;
  double items;
  double rate = 0.0;
};

/// Compare fresh `micros` against the flat-JSON baseline at `path`:
/// baseline and speedup entries are appended to `entries`, pre_overhaul_*
/// history keys are carried through, and the number of >30% regressions is
/// returned (0 when `check` is false).
int apply_baseline(const std::string& path, const std::vector<Micro>& micros,
                   bool check, std::vector<Entry>& entries) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_report: cannot read baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  int regressions = 0;
  for (const Micro& m : micros) {
    const double base = scan_json_number(text, m.key);
    if (std::isnan(base) || base <= 0.0) continue;
    const double ratio = m.rate / base;
    entries.push_back(Entry{std::string("baseline_") + m.key, base});
    std::string stem = m.key;
    for (const char* suffix :
         {"_items_per_sec", "_points_per_sec", "_events_per_sec"}) {
      const std::size_t n = std::strlen(suffix);
      if (stem.size() > n && stem.compare(stem.size() - n, n, suffix) == 0) {
        stem.erase(stem.size() - n);
        break;
      }
    }
    entries.push_back(Entry{"speedup_vs_baseline_" + stem, ratio});
    std::printf("%-36s %.2fx vs baseline\n", m.key, ratio);
    if (check && ratio < 1.0 - kRegressionTolerance) {
      std::fprintf(stderr,
                   "REGRESSION: %s is %.0f%% of baseline (gate: >%.0f%%)\n",
                   m.key, 100.0 * ratio, 100.0 * (1.0 - kRegressionTolerance));
      ++regressions;
    }
  }
  // Pre-overhaul history rides along so one artifact holds the whole
  // before/after story.
  for (const Micro& m : micros) {
    const std::string pre_key = std::string("pre_overhaul_") + m.key;
    const double pre = scan_json_number(text, pre_key);
    if (!std::isnan(pre)) entries.push_back(Entry{pre_key, pre});
  }
  const double pre_sweep =
      scan_json_number(text, "pre_overhaul_fig06_quick_sweep_wall_seconds");
  if (!std::isnan(pre_sweep)) {
    entries.push_back(
        Entry{"pre_overhaul_fig06_quick_sweep_wall_seconds", pre_sweep});
  }
  return regressions;
}

}  // namespace
}  // namespace pdos

int main(int argc, char** argv) {
  using namespace pdos;

  std::string out_path = "BENCH_engine.json";
  std::string baseline_path;
  std::string datapath_out_path = "BENCH_datapath.json";
  std::string datapath_baseline_path;
  std::string sweep_out_path = "BENCH_sweep.json";
  std::string sweep_baseline_path;
  std::string scale_out_path = "BENCH_scale.json";
  std::string scale_baseline_path;
  std::string fluid_out_path = "BENCH_fluid.json";
  std::string fluid_baseline_path;
  std::string pdes_out_path = "BENCH_pdes.json";
  std::string pdes_baseline_path;
  std::string replicate_out_path = "BENCH_replicate.json";
  std::string replicate_baseline_path;
  std::string campaign_out_path = "BENCH_campaign.json";
  std::string campaign_baseline_path;
  std::string fluid_surface_path;
  bool check = false;
  bool skip_sweep = false;
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--datapath-out") == 0 && i + 1 < argc) {
      datapath_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--datapath-baseline") == 0 &&
               i + 1 < argc) {
      datapath_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-out") == 0 && i + 1 < argc) {
      sweep_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-baseline") == 0 && i + 1 < argc) {
      sweep_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scale-out") == 0 && i + 1 < argc) {
      scale_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scale-baseline") == 0 && i + 1 < argc) {
      scale_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fluid-out") == 0 && i + 1 < argc) {
      fluid_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fluid-baseline") == 0 && i + 1 < argc) {
      fluid_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--pdes-out") == 0 && i + 1 < argc) {
      pdes_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--pdes-baseline") == 0 && i + 1 < argc) {
      pdes_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replicate-out") == 0 && i + 1 < argc) {
      replicate_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replicate-baseline") == 0 &&
               i + 1 < argc) {
      replicate_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--campaign-out") == 0 && i + 1 < argc) {
      campaign_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--campaign-baseline") == 0 &&
               i + 1 < argc) {
      campaign_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fluid-surface-out") == 0 &&
               i + 1 < argc) {
      fluid_surface_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--skip-sweep") == 0) {
      skip_sweep = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--out FILE] [--baseline FILE] "
                   "[--datapath-out FILE] [--datapath-baseline FILE] "
                   "[--sweep-out FILE] [--sweep-baseline FILE] "
                   "[--scale-out FILE] [--scale-baseline FILE] "
                   "[--fluid-out FILE] [--fluid-baseline FILE] "
                   "[--pdes-out FILE] [--pdes-baseline FILE] "
                   "[--replicate-out FILE] [--replicate-baseline FILE] "
                   "[--campaign-out FILE] [--campaign-baseline FILE] "
                   "[--fluid-surface-out FILE] "
                   "[--check] [--reps N] [--skip-sweep]\n");
      return 2;
    }
  }
  if (check && baseline_path.empty() && datapath_baseline_path.empty() &&
      sweep_baseline_path.empty() && scale_baseline_path.empty() &&
      fluid_baseline_path.empty() && pdes_baseline_path.empty() &&
      replicate_baseline_path.empty() && campaign_baseline_path.empty()) {
    std::fprintf(stderr, "bench_report: --check requires a baseline\n");
    return 2;
  }

  std::vector<Micro> micros = {
      {"schedule_run_1k_items_per_sec", 1000},
      {"schedule_run_100k_items_per_sec", 100000},
      {"cancel_heavy_items_per_sec", 10000},
      {"timer_restart_items_per_sec", 10000},
  };
  micros[0].rate = measure_items_per_sec([] { workload_schedule_run(1000); },
                                         1000, reps);
  micros[1].rate = measure_items_per_sec(
      [] { workload_schedule_run(100000); }, 100000, reps);
  micros[2].rate =
      measure_items_per_sec([] { workload_cancel_heavy(); }, 10000, reps);
  micros[3].rate =
      measure_items_per_sec([] { workload_timer_restart(); }, 10000, reps);

  std::vector<Micro> datapath_micros = {
      {"ring_churn_items_per_sec", 8 * 256},
      {"link_untapped_items_per_sec", 1000},
      {"link_tapped_items_per_sec", 1000},
  };
  datapath_micros[0].rate =
      measure_items_per_sec([] { workload_ring_churn(); }, 8 * 256, reps);
  datapath_micros[1].rate = measure_items_per_sec(
      [] { workload_link_pipeline(false); }, 1000, reps);
  datapath_micros[2].rate = measure_items_per_sec(
      [] { workload_link_pipeline(true); }, 1000, reps);

  std::vector<Micro> sweep_micros = {
      {"setup_fresh_points_per_sec", 1},
      {"setup_warm_points_per_sec", 1},
  };
  sweep_micros[0].rate =
      measure_items_per_sec([] { workload_setup_fresh(); }, 1, reps);
  {
    ScenarioWorkspace warm_ws;
    workload_setup_warm(warm_ws);  // cold build outside the clock
    sweep_micros[1].rate = measure_items_per_sec(
        [&warm_ws] { workload_setup_warm(warm_ws); }, 1, reps);
  }

  // LargeScale family: interleaved fast/full A/B at both scale points. The
  // gated metric is the fast path's scheduler-event throughput (events per
  // wall second); the event counts, events-per-simulated-second density,
  // and the fast-vs-full speedup ride along as information.
  const ScaleMeasurement scale_155 =
      measure_large_scale(250, mbps(155), std::max(2, reps / 2));
  const ScaleMeasurement scale_1g =
      measure_large_scale(1000, gbps(1), std::max(2, reps / 2));

  std::vector<Micro> scale_micros = {
      {"largescale_250f_155m_events_per_sec",
       static_cast<double>(scale_155.fast_events)},
      {"largescale_1000f_1g_events_per_sec",
       static_cast<double>(scale_1g.fast_events)},
  };
  scale_micros[0].rate =
      static_cast<double>(scale_155.fast_events) / scale_155.fast_wall;
  scale_micros[1].rate =
      static_cast<double>(scale_1g.fast_events) / scale_1g.fast_wall;

  // Fluid family: the same fig. 6 quick grid point on the fluid surrogate
  // and the full packet path (each in its own warm workspace), plus the
  // vectorized-vs-reference A/B pair (DESIGN.md §16). The gated metrics
  // are the surrogate's point throughput, the batched W-lane γ-grid
  // throughput, and the binned 1e6-flow solve throughput; the packet and
  // reference walls ride along so the artifact carries every A/B pair.
  // Under --check the fluid-vs-packet speedup must clear
  // kFluidSpeedupFloor, and (on SIMD builds) the batch and binned speedups
  // must clear their §16 floors.
  std::vector<Micro> fluid_micros = {
      {"fluid_point_points_per_sec", 1},
      {"fluid_batch_w8_points_per_sec", kFluidBatchWidth},
      {"fluid_binned1e6_solves_per_sec", 1},
  };
  ScenarioWorkspace fluid_ws;
  fluid_micros[0].rate = measure_items_per_sec(
      [&fluid_ws] { run_fig06_point(fluid_ws, Backend::kFluid); }, 1, reps);
  const double fluid_point_wall = 1.0 / fluid_micros[0].rate;
  double packet_point_wall = std::numeric_limits<double>::infinity();
  {
    ScenarioWorkspace packet_ws;
    run_fig06_point(packet_ws, Backend::kFull);  // warm
    for (int r = 0; r < std::max(2, reps / 2); ++r) {
      packet_point_wall = std::min(packet_point_wall,
                                   run_fig06_point(packet_ws, Backend::kFull));
    }
  }
  const double fluid_speedup = packet_point_wall / fluid_point_wall;
  const FluidSimdMeasurement fluid_simd = measure_fluid_simd(reps);
  fluid_micros[1].rate =
      static_cast<double>(kFluidBatchWidth) / fluid_simd.batch_grid_wall;
  fluid_micros[2].rate = 1.0 / fluid_simd.vec_binned_wall;
  const double fluid_batch_speedup =
      fluid_simd.batch_grid_wall > 0.0
          ? fluid_simd.ref_grid_wall / fluid_simd.batch_grid_wall
          : 0.0;
  const double fluid_binned_speedup =
      fluid_simd.vec_binned_wall > 0.0
          ? fluid_simd.ref_binned_wall / fluid_simd.vec_binned_wall
          : 0.0;

  // PDES family: the same 10 Gbps / 10k-flow scenario on one scheduler and
  // on four shards (interleaved A/B). The gated metric is the sharded arm's
  // event throughput; the walls, event counts, engine telemetry, and the
  // speedup ride along. The >= 3x floor gates only on >= 4-thread hosts.
  const PdesMeasurement pdes = measure_pdes(std::max(2, reps / 2));
  const double pdes_speedup =
      pdes.sharded_wall > 0.0 ? pdes.single_wall / pdes.sharded_wall : 0.0;
  std::vector<Micro> pdes_micros = {
      {"pdes_shard4_10000f_10g_events_per_sec",
       static_cast<double>(pdes.sharded_events)},
  };
  pdes_micros[0].rate =
      static_cast<double>(pdes.sharded_events) / pdes.sharded_wall;

  // Replicate family: the fig. 6 quick grid point's R = 8 replicates,
  // sequential vs one warm ReplicateBatch, on the packet and fluid tiers.
  // The gated metrics are the batched replicate throughputs; the walls and
  // speedups ride along, and under --check the fluid-tier speedup must
  // clear kReplicateSpeedupFloor.
  const ReplicateMeasurement replicate_packet =
      measure_replicates(Backend::kFull, std::max(2, reps / 2));
  const ReplicateMeasurement replicate_fluid =
      measure_replicates(Backend::kFluid, reps);
  const double replicate_packet_speedup =
      replicate_packet.batched_wall > 0.0
          ? replicate_packet.sequential_wall / replicate_packet.batched_wall
          : 0.0;
  const double replicate_fluid_speedup =
      replicate_fluid.batched_wall > 0.0
          ? replicate_fluid.sequential_wall / replicate_fluid.batched_wall
          : 0.0;
  std::vector<Micro> replicate_micros = {
      {"replicate_packet_batched_items_per_sec", kReplicateCount},
      {"replicate_fluid_batched_items_per_sec", kReplicateCount},
  };
  replicate_micros[0].rate =
      static_cast<double>(kReplicateCount) / replicate_packet.batched_wall;
  replicate_micros[1].rate =
      static_cast<double>(kReplicateCount) / replicate_fluid.batched_wall;

  // Campaign family: cold 1-worker vs cold kCampaignWorkers-worker campaign
  // over a shared CampaignStore, plus an all-hit resume. The gated metric
  // is the multi-worker cold campaign's task throughput; the walls, the
  // speedup, and the resume pair ride along. run_campaign forks, which is
  // safe here: every ThreadPool the measurements above created has been
  // joined and destroyed by now.
  const CampaignMeasurement campaign = measure_campaign(campaign_out_path);
  const double campaign_speedup =
      campaign.multi_wall > 0.0 ? campaign.single_wall / campaign.multi_wall
                                : 0.0;
  std::vector<Micro> campaign_micros = {
      {"campaign_multi_tasks_per_sec",
       static_cast<double>(campaign.unique_tasks)},
  };
  campaign_micros[0].rate =
      static_cast<double>(campaign.unique_tasks) / campaign.multi_wall;

  std::vector<Entry> entries;
  for (const Micro& m : micros) {
    std::printf("%-36s %12.0f items/s\n", m.key, m.rate);
    entries.push_back(Entry{m.key, m.rate});
  }
  std::vector<Entry> datapath_entries;
  for (const Micro& m : datapath_micros) {
    std::printf("%-36s %12.0f items/s\n", m.key, m.rate);
    datapath_entries.push_back(Entry{m.key, m.rate});
  }
  std::vector<Entry> sweep_entries;
  for (const Micro& m : sweep_micros) {
    std::printf("%-36s %12.0f items/s\n", m.key, m.rate);
    sweep_entries.push_back(Entry{m.key, m.rate});
  }
  std::vector<Entry> scale_entries;
  for (const Micro& m : scale_micros) {
    std::printf("%-36s %12.0f events/s\n", m.key, m.rate);
    scale_entries.push_back(Entry{m.key, m.rate});
  }
  std::vector<Entry> fluid_entries;
  for (const Micro& m : fluid_micros) {
    std::printf("%-36s %12.0f points/s\n", m.key, m.rate);
    fluid_entries.push_back(Entry{m.key, m.rate});
  }
  std::printf("fluid_point: fluid %.6f s, packet %.3f s, speedup %.0fx "
              "(floor %.0fx)\n",
              fluid_point_wall, packet_point_wall, fluid_speedup,
              kFluidSpeedupFloor);
  fluid_entries.push_back(Entry{"fluid_point_wall_seconds", fluid_point_wall});
  fluid_entries.push_back(
      Entry{"packet_point_wall_seconds", packet_point_wall});
  fluid_entries.push_back(Entry{"fluid_speedup_vs_packet", fluid_speedup});
  fluid_entries.push_back(Entry{"fluid_speedup_floor", kFluidSpeedupFloor});
  std::printf("fluid_simd (%s kernels): batch W=%d grid %.6f s vs scalar-ref "
              "%.6f s, speedup %.2fx (floor %.1fx); binned-1e6 %.6f s vs "
              "%.6f s, speedup %.2fx (floor %.1fx)\n",
              fluid::simd_backend(), kFluidBatchWidth,
              fluid_simd.batch_grid_wall, fluid_simd.ref_grid_wall,
              fluid_batch_speedup, kFluidBatchSpeedupFloor,
              fluid_simd.vec_binned_wall, fluid_simd.ref_binned_wall,
              fluid_binned_speedup, kFluidBinnedSpeedupFloor);
  fluid_entries.push_back(
      Entry{"fluid_batch_grid_wall_seconds", fluid_simd.batch_grid_wall});
  fluid_entries.push_back(
      Entry{"fluid_ref_grid_wall_seconds", fluid_simd.ref_grid_wall});
  fluid_entries.push_back(
      Entry{"fluid_batch_speedup_vs_ref", fluid_batch_speedup});
  fluid_entries.push_back(
      Entry{"fluid_batch_speedup_floor", kFluidBatchSpeedupFloor});
  fluid_entries.push_back(
      Entry{"fluid_binned1e6_wall_seconds", fluid_simd.vec_binned_wall});
  fluid_entries.push_back(
      Entry{"fluid_binned1e6_ref_wall_seconds", fluid_simd.ref_binned_wall});
  fluid_entries.push_back(
      Entry{"fluid_binned_speedup_vs_ref", fluid_binned_speedup});
  fluid_entries.push_back(
      Entry{"fluid_binned_speedup_floor", kFluidBinnedSpeedupFloor});
  std::vector<Entry> pdes_entries;
  for (const Micro& m : pdes_micros) {
    std::printf("%-36s %12.0f events/s\n", m.key, m.rate);
    pdes_entries.push_back(Entry{m.key, m.rate});
  }
  std::printf("pdes_10000f_10g: shards=1 %.3f s (%llu events), shards=%d "
              "%.3f s (%llu events, %llu rounds, %llu messages, %d-thread "
              "executor), speedup %.2fx (floor %.0fx on >= %u threads)\n",
              pdes.single_wall,
              static_cast<unsigned long long>(pdes.single_events), kPdesShards,
              pdes.sharded_wall,
              static_cast<unsigned long long>(pdes.sharded_events),
              static_cast<unsigned long long>(pdes.rounds),
              static_cast<unsigned long long>(pdes.messages),
              pdes.executor_threads, pdes_speedup, kPdesSpeedupFloor,
              kPdesFloorMinThreads);
  pdes_entries.push_back(Entry{"pdes_shard1_wall_seconds", pdes.single_wall});
  pdes_entries.push_back(
      Entry{"pdes_shard4_wall_seconds", pdes.sharded_wall});
  pdes_entries.push_back(Entry{"pdes_shard1_events",
                               static_cast<double>(pdes.single_events)});
  pdes_entries.push_back(Entry{"pdes_shard4_events",
                               static_cast<double>(pdes.sharded_events)});
  pdes_entries.push_back(
      Entry{"pdes_rounds", static_cast<double>(pdes.rounds)});
  pdes_entries.push_back(
      Entry{"pdes_messages", static_cast<double>(pdes.messages)});
  pdes_entries.push_back(Entry{"pdes_executor_threads",
                               static_cast<double>(pdes.executor_threads)});
  pdes_entries.push_back(Entry{"pdes_speedup_vs_shard1", pdes_speedup});
  pdes_entries.push_back(Entry{"pdes_speedup_floor", kPdesSpeedupFloor});
  std::vector<Entry> replicate_entries;
  for (const Micro& m : replicate_micros) {
    std::printf("%-36s %12.2f replicates/s\n", m.key, m.rate);
    replicate_entries.push_back(Entry{m.key, m.rate});
  }
  std::printf("replicate_packet R=%d: sequential %.3f s, batched %.3f s, "
              "speedup %.2fx (informational)\n",
              kReplicateCount, replicate_packet.sequential_wall,
              replicate_packet.batched_wall, replicate_packet_speedup);
  std::printf("replicate_fluid  R=%d: sequential %.6f s, batched %.6f s, "
              "speedup %.2fx (floor %.1fx)\n",
              kReplicateCount, replicate_fluid.sequential_wall,
              replicate_fluid.batched_wall, replicate_fluid_speedup,
              kReplicateSpeedupFloor);
  replicate_entries.push_back(Entry{"replicate_count",
                                    static_cast<double>(kReplicateCount)});
  replicate_entries.push_back(Entry{"replicate_packet_sequential_wall_seconds",
                                    replicate_packet.sequential_wall});
  replicate_entries.push_back(Entry{"replicate_packet_batched_wall_seconds",
                                    replicate_packet.batched_wall});
  replicate_entries.push_back(Entry{"replicate_packet_batched_speedup",
                                    replicate_packet_speedup});
  replicate_entries.push_back(Entry{"replicate_fluid_sequential_wall_seconds",
                                    replicate_fluid.sequential_wall});
  replicate_entries.push_back(Entry{"replicate_fluid_batched_wall_seconds",
                                    replicate_fluid.batched_wall});
  replicate_entries.push_back(Entry{"replicate_fluid_batched_speedup",
                                    replicate_fluid_speedup});
  replicate_entries.push_back(Entry{"replicate_speedup_floor",
                                    kReplicateSpeedupFloor});
  std::vector<Entry> campaign_entries;
  for (const Micro& m : campaign_micros) {
    std::printf("%-36s %12.2f tasks/s\n", m.key, m.rate);
    campaign_entries.push_back(Entry{m.key, m.rate});
  }
  std::printf("campaign %zu tasks: 1 worker %.3f s, %d workers %.3f s, "
              "speedup %.2fx (floor %.1fx on >= %u threads); resume %.3f s "
              "(%zu simulated, csv %s)\n",
              campaign.unique_tasks, campaign.single_wall, kCampaignWorkers,
              campaign.multi_wall, campaign_speedup, kCampaignSpeedupFloor,
              kCampaignFloorMinThreads, campaign.resume_wall,
              campaign.resume_simulated,
              campaign.csv_identical ? "identical" : "DIVERGED");
  campaign_entries.push_back(Entry{
      "campaign_unique_tasks", static_cast<double>(campaign.unique_tasks)});
  campaign_entries.push_back(
      Entry{"campaign_workers", static_cast<double>(kCampaignWorkers)});
  campaign_entries.push_back(
      Entry{"campaign_single_wall_seconds", campaign.single_wall});
  campaign_entries.push_back(
      Entry{"campaign_multi_wall_seconds", campaign.multi_wall});
  campaign_entries.push_back(
      Entry{"campaign_resume_wall_seconds", campaign.resume_wall});
  campaign_entries.push_back(Entry{
      "campaign_single_simulated",
      static_cast<double>(campaign.single_simulated)});
  campaign_entries.push_back(Entry{
      "campaign_multi_simulated",
      static_cast<double>(campaign.multi_simulated)});
  campaign_entries.push_back(Entry{
      "campaign_resume_simulated",
      static_cast<double>(campaign.resume_simulated)});
  campaign_entries.push_back(
      Entry{"campaign_resume_csv_identical",
            campaign.csv_identical ? 1.0 : 0.0});
  campaign_entries.push_back(
      Entry{"campaign_speedup_vs_single", campaign_speedup});
  campaign_entries.push_back(
      Entry{"campaign_speedup_floor", kCampaignSpeedupFloor});
  {
    const double sim_horizon = large_scale_control().horizon();
    const struct {
      const char* tag;
      const ScaleMeasurement& m;
    } points[] = {{"largescale_250f_155m", scale_155},
                  {"largescale_1000f_1g", scale_1g}};
    for (const auto& p : points) {
      const double speedup = p.m.fast_wall > 0.0 && p.m.full_wall > 0.0
                                 ? p.m.full_wall / p.m.fast_wall
                                 : 0.0;
      std::printf("%s: fast %.3f s (%llu events), full %.3f s (%llu events), "
                  "speedup %.2fx\n",
                  p.tag, p.m.fast_wall,
                  static_cast<unsigned long long>(p.m.fast_events),
                  p.m.full_wall,
                  static_cast<unsigned long long>(p.m.full_events), speedup);
      const std::string tag = p.tag;
      scale_entries.push_back(
          Entry{tag + "_events", static_cast<double>(p.m.fast_events)});
      scale_entries.push_back(
          Entry{tag + "_events_per_sim_sec",
                static_cast<double>(p.m.fast_events) / sim_horizon});
      scale_entries.push_back(
          Entry{tag + "_fastpath_wall_seconds", p.m.fast_wall});
      scale_entries.push_back(
          Entry{tag + "_fullpath_wall_seconds", p.m.full_wall});
      scale_entries.push_back(
          Entry{tag + "_fullpath_events",
                static_cast<double>(p.m.full_events)});
      scale_entries.push_back(Entry{tag + "_fastpath_speedup", speedup});
    }
  }

  if (!skip_sweep) {
    // Cold sweep (populates a throwaway cache), then an all-hit resume of
    // the identical campaign. The wall-clock pair is informational — too
    // machine-dependent to gate — but rides in BENCH_sweep.json so every
    // report carries the resume story.
    const std::string tmp_cache = sweep_out_path + ".points.cache.tmp";
    std::filesystem::remove(tmp_cache);
    std::size_t points = 0;
    const double cold = fig06_quick_sweep_seconds(&points, tmp_cache);
    const double resume = fig06_quick_sweep_seconds(nullptr, tmp_cache);
    std::filesystem::remove(tmp_cache);
    std::printf("%-36s %12.2f s (%zu points, 1 thread)\n",
                "fig06_quick_cold_wall_seconds", cold, points);
    std::printf("%-36s %12.4f s (all cache hits)\n",
                "fig06_quick_resume_wall_seconds", resume);
    entries.push_back(Entry{"fig06_quick_sweep_wall_seconds", cold});
    entries.push_back(
        Entry{"fig06_quick_sweep_points", static_cast<double>(points)});
    sweep_entries.push_back(Entry{"fig06_quick_cold_wall_seconds", cold});
    sweep_entries.push_back(
        Entry{"fig06_quick_resume_wall_seconds", resume});
    sweep_entries.push_back(
        Entry{"fig06_quick_resume_speedup", resume > 0.0 ? cold / resume : 0.0});
  }

  int regressions = 0;
  if (!baseline_path.empty()) {
    regressions += apply_baseline(baseline_path, micros, check, entries);
  }
  if (!datapath_baseline_path.empty()) {
    regressions += apply_baseline(datapath_baseline_path, datapath_micros,
                                  check, datapath_entries);
  }
  if (!sweep_baseline_path.empty()) {
    regressions += apply_baseline(sweep_baseline_path, sweep_micros, check,
                                  sweep_entries);
  }
  if (!scale_baseline_path.empty()) {
    regressions += apply_baseline(scale_baseline_path, scale_micros, check,
                                  scale_entries);
  }
  if (!fluid_baseline_path.empty()) {
    regressions += apply_baseline(fluid_baseline_path, fluid_micros, check,
                                  fluid_entries);
  }
  if (!pdes_baseline_path.empty()) {
    regressions += apply_baseline(pdes_baseline_path, pdes_micros, check,
                                  pdes_entries);
  }
  if (!replicate_baseline_path.empty()) {
    regressions += apply_baseline(replicate_baseline_path, replicate_micros,
                                  check, replicate_entries);
  }
  if (!campaign_baseline_path.empty()) {
    regressions += apply_baseline(campaign_baseline_path, campaign_micros,
                                  check, campaign_entries);
  }
  if (check) {
    // The campaign contract (DESIGN.md §15). The speedup half mirrors the
    // PDES floor: same-machine ratio, gated directly, skipped out loud on
    // hosts that cannot run 4 workers in parallel. The resume half —
    // all-hit, byte-identical merged CSV, no failures — is pure protocol
    // correctness and gates everywhere.
    const unsigned threads = std::thread::hardware_concurrency();
    if (threads < kCampaignFloorMinThreads) {
      std::printf(
          "campaign speedup floor skipped: %u hardware thread(s) < %u\n",
          threads, kCampaignFloorMinThreads);
    } else if (campaign_speedup < kCampaignSpeedupFloor) {
      std::fprintf(stderr,
                   "REGRESSION: %d-worker cold campaign is only %.2fx faster "
                   "than 1 worker (floor: %.1fx on %u threads)\n",
                   kCampaignWorkers, campaign_speedup, kCampaignSpeedupFloor,
                   threads);
      ++regressions;
    }
    if (!campaign.ok || campaign.resume_simulated != 0 ||
        !campaign.csv_identical) {
      std::fprintf(stderr,
                   "REGRESSION: campaign resume contract broken (ok=%d, "
                   "resume simulated %zu, csv %s)\n",
                   campaign.ok ? 1 : 0, campaign.resume_simulated,
                   campaign.csv_identical ? "identical" : "diverged");
      ++regressions;
    }
  }
  if (check && replicate_fluid_speedup < kReplicateSpeedupFloor) {
    // Same-machine floor like the fluid and PDES ones (DESIGN.md §14): the
    // batch's once-per-point fluid solve must actually pay off.
    std::fprintf(stderr,
                 "REGRESSION: fluid-tier batched replicates are only %.2fx "
                 "faster than sequential at R=%d (floor: %.1fx)\n",
                 replicate_fluid_speedup, kReplicateCount,
                 kReplicateSpeedupFloor);
    ++regressions;
  }
  if (check) {
    // Satellite gate (DESIGN.md §13): the sharded run must actually be
    // parallel where the hardware allows it. A same-machine ratio like the
    // fluid floor, so it gates directly rather than via the baseline — and
    // a single-core runner (hardware_concurrency < kPdesFloorMinThreads)
    // skips it out loud instead of failing on physics.
    const unsigned threads = std::thread::hardware_concurrency();
    if (threads < kPdesFloorMinThreads) {
      std::printf("pdes speedup floor skipped: %u hardware thread(s) < %u\n",
                  threads, kPdesFloorMinThreads);
    } else if (pdes_speedup < kPdesSpeedupFloor) {
      std::fprintf(stderr,
                   "REGRESSION: shards=%d run is only %.2fx faster than "
                   "shards=1 (floor: %.0fx on %u threads)\n",
                   kPdesShards, pdes_speedup, kPdesSpeedupFloor, threads);
      ++regressions;
    }
  }
  if (check && fluid_speedup < kFluidSpeedupFloor) {
    std::fprintf(stderr,
                 "REGRESSION: fluid point is only %.1fx faster than the "
                 "packet point (floor: %.0fx)\n",
                 fluid_speedup, kFluidSpeedupFloor);
    ++regressions;
  }
  if (check) {
    // The vectorization floors (DESIGN.md §16) are in-run ratios against
    // the frozen scalar reference solver, so they gate directly — but only
    // where the fluid kernels actually compiled against lane hardware.
    // PDOS_SIMD=OFF builds (the CI scalar-determinism job) and hosts
    // without AVX2/NEON skip out loud: scalar kernels differ from the
    // reference only by loop shape, not by width.
    if (std::string(fluid::simd_backend()) == "scalar") {
      std::printf(
          "fluid SIMD speedup floors skipped: scalar kernels "
          "(PDOS_SIMD=OFF or no AVX2/NEON)\n");
    } else {
      if (fluid_batch_speedup < kFluidBatchSpeedupFloor) {
        std::fprintf(stderr,
                     "REGRESSION: batched W=%d fluid grid is only %.2fx "
                     "faster than the scalar reference (floor: %.1fx)\n",
                     kFluidBatchWidth, fluid_batch_speedup,
                     kFluidBatchSpeedupFloor);
        ++regressions;
      }
      if (fluid_binned_speedup < kFluidBinnedSpeedupFloor) {
        std::fprintf(stderr,
                     "REGRESSION: binned 1e6-flow fluid solve is only %.2fx "
                     "faster than the scalar reference (floor: %.1fx)\n",
                     fluid_binned_speedup, kFluidBinnedSpeedupFloor);
        ++regressions;
      }
    }
  }

  write_json(out_path, "pdos-bench-engine-v1", entries);
  std::printf("wrote %s\n", out_path.c_str());
  write_json(datapath_out_path, "pdos-bench-datapath-v1", datapath_entries);
  std::printf("wrote %s\n", datapath_out_path.c_str());
  write_json(sweep_out_path, "pdos-bench-sweep-v1", sweep_entries);
  std::printf("wrote %s\n", sweep_out_path.c_str());
  write_json(scale_out_path, "pdos-bench-scale-v1", scale_entries);
  std::printf("wrote %s\n", scale_out_path.c_str());
  write_json(fluid_out_path, "pdos-bench-fluid-v1", fluid_entries);
  std::printf("wrote %s\n", fluid_out_path.c_str());
  write_json(pdes_out_path, "pdos-bench-pdes-v1", pdes_entries);
  std::printf("wrote %s\n", pdes_out_path.c_str());
  write_json(replicate_out_path, "pdos-bench-replicate-v1",
             replicate_entries);
  std::printf("wrote %s\n", replicate_out_path.c_str());
  write_json(campaign_out_path, "pdos-bench-campaign-v1", campaign_entries);
  std::printf("wrote %s\n", campaign_out_path.c_str());
  if (!fluid_surface_path.empty()) {
    emit_fluid_surface(fluid_surface_path);
    std::printf("wrote %s\n", fluid_surface_path.c_str());
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench_report: %d benchmark(s) regressed\n",
                 regressions);
    return 1;
  }
  return 0;
}
