// Engine performance report: measures the scheduler micro-benchmarks and a
// fixed fig. 6 quick-mode sweep, and writes BENCH_engine.json.
//
// This is the tracked-baseline half of the perf story: google-benchmark
// (bench/micro_engine) is for interactive work, while this tool emits a
// stable, machine-readable snapshot that CI diffs against the committed
// bench/baseline_engine.json. The JSON is flat `"key": number` pairs so the
// reader below stays a 30-line scanner instead of a JSON library.
//
// Usage:
//   bench_report [--out FILE] [--baseline FILE] [--check] [--reps N]
//                [--skip-sweep]
//
//   --out FILE       output path (default BENCH_engine.json)
//   --baseline FILE  committed reference; its values are copied into the
//                    output next to the fresh numbers (before/after in one
//                    artifact)
//   --check          exit non-zero if any micro-benchmark runs >30% slower
//                    than the baseline (requires --baseline)
//   --reps N         samples per benchmark, best-of (default 7)
//   --skip-sweep     omit the fig. 6 sweep (fast CI smoke)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "sweep/sweep.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kRegressionTolerance = 0.30;  // fail at >30% slowdown

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- workloads (mirror bench/micro_engine.cpp) ---------------------------

long long g_sink = 0;

void workload_schedule_run(int n) {
  Scheduler sched;
  for (int i = 0; i < n; ++i) {
    sched.schedule(static_cast<Time>((i * 2654435761u) % 1000),
                   [] { ++g_sink; });
  }
  sched.run();
}

void workload_cancel_heavy() {
  Scheduler sched;
  EventId pending = kInvalidEventId;
  for (int i = 0; i < 10000; ++i) {
    if (pending != kInvalidEventId) sched.cancel(pending);
    pending = sched.schedule(1000.0, [] {});
    sched.schedule(0.001 * i, [] {});
  }
  sched.run();
}

void workload_timer_restart() {
  Scheduler sched;
  Timer timer(sched, [] { ++g_sink; });
  timer.schedule_at(1.0);
  for (int i = 0; i < 10000; ++i) timer.schedule_at(1.0 + 0.001 * i);
  sched.run();
}

/// Best-of-`reps` items/sec for `fn`, which processes `items` per call.
/// Each sample batches calls until it spans >= 10 ms so the clock
/// resolution never dominates.
template <typename F>
double measure_items_per_sec(F&& fn, long long items, int reps) {
  fn();  // warm caches, page in slabs
  const auto probe = Clock::now();
  fn();
  const double once = std::max(seconds_since(probe), 1e-9);
  const int batch = std::max(1, static_cast<int>(0.01 / once));
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (int b = 0; b < batch; ++b) fn();
    const double rate =
        static_cast<double>(items) * batch / seconds_since(start);
    best = std::max(best, rate);
  }
  return best;
}

// --- fig. 6 quick-mode sweep (single-threaded, fixed spec) ---------------

double fig06_quick_sweep_seconds(std::size_t* points_out) {
  sweep::SweepSpec spec;
  spec.flow_counts = {15, 25, 35, 45};
  spec.textents = {ms(50), ms(75), ms(100)};
  spec.rattacks = {mbps(25)};
  spec.gamma_points = 7;
  spec.control.warmup = sec(5);
  spec.control.measure = sec(15);

  sweep::SweepOptions options;
  options.threads = 1;
  const auto start = Clock::now();
  const sweep::SweepResult result = sweep::run_sweep(spec, options);
  const double wall = seconds_since(start);
  if (points_out != nullptr) *points_out = result.points.size();
  if (result.failures() > 0) {
    std::fprintf(stderr, "bench_report: %zu sweep points failed\n",
                 result.failures());
    std::exit(1);
  }
  return wall;
}

// --- flat JSON in/out ----------------------------------------------------

/// Read `"key": <number>` from a flat JSON file. Returns NaN if absent.
double scan_json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nan("");
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

struct Entry {
  std::string key;
  double value;
};

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"schema\": \"pdos-bench-engine-v1\"";
  for (const Entry& e : entries) {
    out << ",\n  \"" << e.key << "\": ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", e.value);
    out << buf;
  }
  out << "\n}\n";
}

}  // namespace
}  // namespace pdos

int main(int argc, char** argv) {
  using namespace pdos;

  std::string out_path = "BENCH_engine.json";
  std::string baseline_path;
  bool check = false;
  bool skip_sweep = false;
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--skip-sweep") == 0) {
      skip_sweep = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--out FILE] [--baseline FILE] "
                   "[--check] [--reps N] [--skip-sweep]\n");
      return 2;
    }
  }
  if (check && baseline_path.empty()) {
    std::fprintf(stderr, "bench_report: --check requires --baseline\n");
    return 2;
  }

  struct Micro {
    const char* key;
    double items;
    double rate = 0.0;
  };
  std::vector<Micro> micros = {
      {"schedule_run_1k_items_per_sec", 1000},
      {"schedule_run_100k_items_per_sec", 100000},
      {"cancel_heavy_items_per_sec", 10000},
      {"timer_restart_items_per_sec", 10000},
  };
  micros[0].rate = measure_items_per_sec([] { workload_schedule_run(1000); },
                                         1000, reps);
  micros[1].rate = measure_items_per_sec(
      [] { workload_schedule_run(100000); }, 100000, reps);
  micros[2].rate =
      measure_items_per_sec([] { workload_cancel_heavy(); }, 10000, reps);
  micros[3].rate =
      measure_items_per_sec([] { workload_timer_restart(); }, 10000, reps);

  std::vector<Entry> entries;
  for (const Micro& m : micros) {
    std::printf("%-36s %12.0f items/s\n", m.key, m.rate);
    entries.push_back(Entry{m.key, m.rate});
  }

  if (!skip_sweep) {
    std::size_t points = 0;
    const double wall = fig06_quick_sweep_seconds(&points);
    std::printf("%-36s %12.2f s (%zu points, 1 thread)\n",
                "fig06_quick_sweep_wall_seconds", wall, points);
    entries.push_back(Entry{"fig06_quick_sweep_wall_seconds", wall});
    entries.push_back(
        Entry{"fig06_quick_sweep_points", static_cast<double>(points)});
  }

  int regressions = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "bench_report: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    for (const Micro& m : micros) {
      const double base = scan_json_number(text, m.key);
      if (std::isnan(base) || base <= 0.0) continue;
      const double ratio = m.rate / base;
      entries.push_back(Entry{std::string("baseline_") + m.key, base});
      entries.push_back(
          Entry{std::string("speedup_vs_baseline_") +
                    std::string(m.key).substr(
                        0, std::strlen(m.key) - std::strlen("_items_per_sec")),
                ratio});
      std::printf("%-36s %.2fx vs baseline\n", m.key, ratio);
      if (check && ratio < 1.0 - kRegressionTolerance) {
        std::fprintf(stderr,
                     "REGRESSION: %s is %.0f%% of baseline (gate: >%.0f%%)\n",
                     m.key, 100.0 * ratio,
                     100.0 * (1.0 - kRegressionTolerance));
        ++regressions;
      }
    }
    // Pre-overhaul history rides along so one artifact holds the whole
    // before/after story.
    for (const Micro& m : micros) {
      const std::string pre_key = std::string("pre_overhaul_") + m.key;
      const double pre = scan_json_number(text, pre_key);
      if (!std::isnan(pre)) entries.push_back(Entry{pre_key, pre});
    }
    const double pre_sweep =
        scan_json_number(text, "pre_overhaul_fig06_quick_sweep_wall_seconds");
    if (!std::isnan(pre_sweep)) {
      entries.push_back(
          Entry{"pre_overhaul_fig06_quick_sweep_wall_seconds", pre_sweep});
    }
  }

  write_json(out_path, entries);
  std::printf("wrote %s\n", out_path.c_str());
  if (regressions > 0) {
    std::fprintf(stderr, "bench_report: %d benchmark(s) regressed\n",
                 regressions);
    return 1;
  }
  return 0;
}
