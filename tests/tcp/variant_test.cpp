// Behavioural differences between the TCP loss-recovery variants, and the
// randomized-RTO defense knob.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "net/droptail.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace pdos {
namespace {

// A second copy of the loopback harness would be noise; this one is
// deliberately minimal: fixed 10 Mbps / 10 ms links, a one-shot loss gate.
class Gate : public PacketHandler {
 public:
  explicit Gate(PacketHandler* next) : next_(next) {}
  void drop_once(std::int64_t seq) { to_drop_.insert(seq); }
  void handle(Packet pkt) override {
    if (pkt.type == PacketType::kTcpData && !pkt.retransmit &&
        to_drop_.erase(pkt.seq) > 0) {
      return;
    }
    next_->handle(std::move(pkt));
  }

 private:
  PacketHandler* next_;
  std::set<std::int64_t> to_drop_;
};

struct Pair {
  Simulator sim;
  struct Redirect : PacketHandler {
    PacketHandler* next = nullptr;
    void handle(Packet pkt) override { next->handle(std::move(pkt)); }
  } redirect;
  std::unique_ptr<TcpReceiver> receiver;
  std::unique_ptr<Link> data_link;
  std::unique_ptr<Gate> gate;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<Link> ack_link;

  explicit Pair(TcpSenderConfig config) {
    TcpReceiverConfig rcfg;
    rcfg.mss = config.mss;
    receiver = std::make_unique<TcpReceiver>(sim, 0, 1, 0, &redirect, rcfg);
    data_link = std::make_unique<Link>(
        sim, "data", mbps(10), ms(10), std::make_unique<DropTailQueue>(1000),
        receiver.get());
    gate = std::make_unique<Gate>(data_link.get());
    sender =
        std::make_unique<TcpSender>(sim, 0, 0, 1, gate.get(), config);
    ack_link = std::make_unique<Link>(
        sim, "ack", mbps(10), ms(10), std::make_unique<DropTailQueue>(1000),
        sender.get());
    redirect.next = ack_link.get();
  }
};

TcpSenderConfig variant_config(TcpVariant variant) {
  TcpSenderConfig config;
  config.variant = variant;
  config.initial_ssthresh = 30.0;
  return config;
}

TEST(VariantTest, NamesAreStable) {
  EXPECT_STREQ(tcp_variant_name(TcpVariant::kTahoe), "Tahoe");
  EXPECT_STREQ(tcp_variant_name(TcpVariant::kReno), "Reno");
  EXPECT_STREQ(tcp_variant_name(TcpVariant::kNewReno), "NewReno");
}

TEST(VariantTest, TahoeCollapsesToOneSegmentOnDupacks) {
  Pair pair(variant_config(TcpVariant::kTahoe));
  pair.sender->start(0.0);
  pair.sim.run_until(sec(1.0));
  ASSERT_GT(pair.sender->cwnd(), 8.0);
  pair.gate->drop_once(pair.sender->next_seq() + 2);
  // Shortly after the loss is detected, Tahoe's window is back to ~1 and
  // it is NOT in fast recovery.
  bool saw_collapse = false;
  for (int step = 0; step < 40 && !saw_collapse; ++step) {
    pair.sim.run_until(sec(1.0) + ms(25 * (step + 1)));
    if (pair.sender->cwnd() <= 2.0) saw_collapse = true;
    EXPECT_FALSE(pair.sender->in_fast_recovery());
  }
  EXPECT_TRUE(saw_collapse);
  EXPECT_EQ(pair.sender->stats().timeouts, 0u);  // dupacks, not RTO
}

TEST(VariantTest, RenoAndNewRenoKeepHalfTheWindow) {
  for (TcpVariant variant : {TcpVariant::kReno, TcpVariant::kNewReno}) {
    Pair pair(variant_config(variant));
    pair.sender->start(0.0);
    pair.sim.run_until(sec(1.0));
    const double before = pair.sender->cwnd();
    ASSERT_GT(before, 8.0);
    pair.gate->drop_once(pair.sender->next_seq() + 2);
    pair.sim.run_until(sec(2.0));
    // After recovery completes, cwnd sits near b * before, far above 1.
    EXPECT_GT(pair.sender->cwnd(), 3.0) << tcp_variant_name(variant);
    EXPECT_EQ(pair.sender->stats().timeouts, 0u);
  }
}

TEST(VariantTest, NewRenoSurvivesDoubleLossRenoOftenCannot) {
  // Two losses in one flight: NewReno repairs both via partial ACKs.
  Pair newreno(variant_config(TcpVariant::kNewReno));
  newreno.sender->start(0.0);
  newreno.sim.run_until(sec(1.0));
  const std::int64_t base = newreno.sender->next_seq();
  newreno.gate->drop_once(base + 2);
  newreno.gate->drop_once(base + 6);
  newreno.sim.run_until(sec(4.0));
  EXPECT_EQ(newreno.sender->stats().timeouts, 0u);

  // Reno exits recovery on the first partial ACK; the second hole can only
  // be repaired by another dupack round or an RTO. Either way it must make
  // progress eventually.
  Pair reno(variant_config(TcpVariant::kReno));
  reno.sender->start(0.0);
  reno.sim.run_until(sec(1.0));
  const std::int64_t rbase = reno.sender->next_seq();
  reno.gate->drop_once(rbase + 2);
  reno.gate->drop_once(rbase + 6);
  reno.sim.run_until(sec(4.0));
  EXPECT_GT(reno.receiver->next_expected(), rbase + 6);
}

TEST(VariantTest, AllVariantsSustainBulkThroughput) {
  for (TcpVariant variant :
       {TcpVariant::kTahoe, TcpVariant::kReno, TcpVariant::kNewReno}) {
    Pair pair(variant_config(variant));
    pair.sender->start(0.0);
    pair.sim.run_until(sec(4.0));
    const double goodput =
        static_cast<double>(pair.receiver->goodput_bytes()) * 8.0 / 4.0;
    EXPECT_GT(goodput, 0.8 * mbps(10)) << tcp_variant_name(variant);
  }
}

TEST(VariantTest, RtoJitterValidation) {
  TcpSenderConfig config;
  config.rto_jitter = -0.1;
  EXPECT_THROW(config.validate(), ParameterError);
  config.rto_jitter = 0.5;
  EXPECT_NO_THROW(config.validate());
}

TEST(VariantTest, RtoJitterRandomizesFirstTimeout) {
  // Black-hole the data path and record when the first retransmission
  // (i.e. the first RTO) fires.
  struct Blackhole : PacketHandler {
    Simulator* sim = nullptr;
    Time first_retransmit = -1.0;
    void handle(Packet pkt) override {
      if (pkt.retransmit && first_retransmit < 0.0) {
        first_retransmit = sim->now();
      }
    }
  };
  auto first_timeout = [](Time jitter, std::uint64_t seed) {
    Simulator sim(seed);
    TcpSenderConfig config;
    config.rto_min = sec(1.0);
    config.initial_rto = sec(1.0);
    config.rto_jitter = jitter;
    Blackhole hole;
    hole.sim = &sim;
    TcpSender sender(sim, 7, 0, 1, &hole, config);
    sender.start(0.0);
    sim.run_until(sec(10.0));
    return hole.first_retransmit;
  };
  // Without jitter, the first RTO fires at exactly initial_rto.
  EXPECT_NEAR(first_timeout(0.0, 1), 1.0, 1e-9);
  // With jitter it is uniform in [1 s, 5 s] and varies with the seed.
  const Time a = first_timeout(sec(4.0), 1);
  const Time b = first_timeout(sec(4.0), 2);
  EXPECT_GE(a, 1.0);
  EXPECT_LE(a, 5.0 + 1e-9);
  EXPECT_GE(b, 1.0);
  EXPECT_LE(b, 5.0 + 1e-9);
  EXPECT_NE(a, b);  // desynchronized across victims
}

}  // namespace
}  // namespace pdos
