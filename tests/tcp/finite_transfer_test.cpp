// Finite (short-flow) transfers: the sender must stop at total_segments,
// report completion, and not spin timers afterwards.
#include <gtest/gtest.h>

#include <memory>

#include "net/droptail.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace pdos {
namespace {

struct ShortFlowPair {
  Simulator sim;
  struct Redirect : PacketHandler {
    PacketHandler* next = nullptr;
    void handle(Packet pkt) override { next->handle(std::move(pkt)); }
  } redirect;
  std::unique_ptr<TcpReceiver> receiver;
  std::unique_ptr<Link> data_link;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<Link> ack_link;

  explicit ShortFlowPair(std::int64_t segments) {
    TcpSenderConfig config;
    config.total_segments = segments;
    TcpReceiverConfig rcfg;
    rcfg.mss = config.mss;
    receiver = std::make_unique<TcpReceiver>(sim, 0, 1, 0, &redirect, rcfg);
    data_link = std::make_unique<Link>(
        sim, "data", mbps(10), ms(5), std::make_unique<DropTailQueue>(100),
        receiver.get());
    sender = std::make_unique<TcpSender>(sim, 0, 0, 1, data_link.get(),
                                         config);
    ack_link = std::make_unique<Link>(
        sim, "ack", mbps(10), ms(5), std::make_unique<DropTailQueue>(100),
        sender.get());
    redirect.next = ack_link.get();
  }
};

TEST(FiniteTransferTest, DeliversExactlyTotalSegments) {
  ShortFlowPair pair(25);
  pair.sender->start(0.0);
  pair.sim.run();
  EXPECT_TRUE(pair.sender->complete());
  EXPECT_EQ(pair.receiver->next_expected(), 25);
  EXPECT_EQ(pair.receiver->goodput_bytes(), 25 * 1000);
  EXPECT_EQ(pair.sender->stats().segments_sent, 25u);
}

TEST(FiniteTransferTest, EventQueueDrainsAfterCompletion) {
  // No timers may linger once the transfer is acknowledged: run() returns
  // and the queue is empty.
  ShortFlowPair pair(10);
  pair.sender->start(0.0);
  pair.sim.run();
  EXPECT_TRUE(pair.sim.scheduler().empty());
  EXPECT_EQ(pair.sender->stats().timeouts, 0u);
}

TEST(FiniteTransferTest, SingleSegmentFlow) {
  ShortFlowPair pair(1);
  pair.sender->start(0.0);
  pair.sim.run();
  EXPECT_TRUE(pair.sender->complete());
  EXPECT_EQ(pair.receiver->next_expected(), 1);
}

TEST(FiniteTransferTest, UnlimitedNeverCompletes) {
  ShortFlowPair pair(-1);
  pair.sender->start(0.0);
  pair.sim.run_until(sec(1.0));
  EXPECT_FALSE(pair.sender->complete());
  EXPECT_GT(pair.receiver->next_expected(), 100);
}

TEST(FiniteTransferTest, CompletionSurvivesLoss) {
  // Lose one mid-transfer segment: retransmission must still finish the
  // flow with exactly the right byte count.
  ShortFlowPair pair(40);
  struct Gate : PacketHandler {
    PacketHandler* next = nullptr;
    bool armed = true;
    void handle(Packet pkt) override {
      if (armed && pkt.type == PacketType::kTcpData && pkt.seq == 12 &&
          !pkt.retransmit) {
        armed = false;
        return;
      }
      next->handle(std::move(pkt));
    }
  };
  Gate gate;
  gate.next = pair.data_link.get();
  // Rewire the sender through the gate.
  TcpSenderConfig config;
  config.total_segments = 40;
  TcpSender sender(pair.sim, 0, 0, 1, &gate, config);
  pair.redirect.next = nullptr;  // detach default pair sender
  std::unique_ptr<Link> ack_link = std::make_unique<Link>(
      pair.sim, "ack2", mbps(10), ms(5), std::make_unique<DropTailQueue>(100),
      &sender);
  pair.redirect.next = ack_link.get();
  sender.start(0.0);
  pair.sim.run_until(sec(30.0));
  EXPECT_TRUE(sender.complete());
  EXPECT_EQ(pair.receiver->goodput_bytes(), 40 * 1000);
  EXPECT_FALSE(gate.armed);
}

}  // namespace
}  // namespace pdos
