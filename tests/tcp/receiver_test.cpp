// Focused TcpReceiver edge cases: reordering, duplicates, delayed-ACK
// timing and timestamp echo semantics.
#include "tcp/tcp_receiver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

class AckCollector : public PacketHandler {
 public:
  explicit AckCollector(Simulator& sim) : sim_(sim) {}
  void handle(Packet pkt) override {
    EXPECT_EQ(pkt.type, PacketType::kTcpAck);
    acks.push_back(pkt);
    times.push_back(sim_.now());
  }
  std::vector<Packet> acks;
  std::vector<Time> times;

 private:
  Simulator& sim_;
};

Packet data(std::int64_t seq, Time ts = 0.0) {
  Packet pkt;
  pkt.type = PacketType::kTcpData;
  pkt.seq = seq;
  pkt.size_bytes = 1040;
  pkt.ts_echo = ts;
  return pkt;
}

struct Harness {
  Simulator sim;
  AckCollector acks{sim};
  TcpReceiver receiver;
  explicit Harness(TcpReceiverConfig config = {})
      : receiver(sim, 0, 1, 0, &acks, config) {}
};

TEST(ReceiverTest, InOrderCumulativeAcks) {
  Harness h;
  for (int i = 0; i < 5; ++i) h.receiver.handle(data(i));
  ASSERT_EQ(h.acks.acks.size(), 5u);
  EXPECT_EQ(h.acks.acks.back().ack, 5);
  EXPECT_EQ(h.receiver.goodput_bytes(), 5 * 1000);
}

TEST(ReceiverTest, GapTriggersImmediateDuplicateAcks) {
  Harness h;
  h.receiver.handle(data(0));
  h.receiver.handle(data(2));  // hole at 1
  h.receiver.handle(data(3));
  h.receiver.handle(data(4));
  ASSERT_EQ(h.acks.acks.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(h.acks.acks[i].ack, 1);  // duplicates pointing at the hole
  }
  EXPECT_EQ(h.receiver.stats().out_of_order, 3u);
}

TEST(ReceiverTest, FillingHoleAcksEverythingBuffered) {
  Harness h;
  h.receiver.handle(data(0));
  h.receiver.handle(data(2));
  h.receiver.handle(data(3));
  h.receiver.handle(data(1));  // plugs the hole
  EXPECT_EQ(h.acks.acks.back().ack, 4);
  EXPECT_EQ(h.receiver.next_expected(), 4);
  EXPECT_EQ(h.receiver.goodput_bytes(), 4 * 1000);
}

TEST(ReceiverTest, MultipleInterleavedHoles) {
  Harness h;
  h.receiver.handle(data(0));
  h.receiver.handle(data(2));
  h.receiver.handle(data(4));
  h.receiver.handle(data(1));  // advances to 3 (4 still buffered)
  EXPECT_EQ(h.receiver.next_expected(), 3);
  h.receiver.handle(data(3));  // advances through the buffered 4
  EXPECT_EQ(h.receiver.next_expected(), 5);
}

TEST(ReceiverTest, SpuriousRetransmissionReAcked) {
  Harness h;
  for (int i = 0; i < 3; ++i) h.receiver.handle(data(i));
  const std::size_t before = h.acks.acks.size();
  h.receiver.handle(data(1));  // already delivered
  ASSERT_EQ(h.acks.acks.size(), before + 1);
  EXPECT_EQ(h.acks.acks.back().ack, 3);
  EXPECT_EQ(h.receiver.stats().duplicate_segments, 1u);
  // Goodput must not double-count.
  EXPECT_EQ(h.receiver.goodput_bytes(), 3 * 1000);
}

TEST(ReceiverTest, DelayedAckCoalescesPairs) {
  TcpReceiverConfig config;
  config.delack_factor = 2;
  Harness h(config);
  for (int i = 0; i < 8; ++i) h.receiver.handle(data(i));
  // One ACK per two segments.
  EXPECT_EQ(h.acks.acks.size(), 4u);
  EXPECT_EQ(h.acks.acks.back().ack, 8);
}

TEST(ReceiverTest, DelackTimerFlushesOddSegment) {
  TcpReceiverConfig config;
  config.delack_factor = 2;
  config.delack_timeout = ms(100);
  Harness h(config);
  h.receiver.handle(data(0));
  EXPECT_TRUE(h.acks.acks.empty());  // held back
  h.sim.run_until(ms(200));
  ASSERT_EQ(h.acks.acks.size(), 1u);
  EXPECT_EQ(h.acks.acks[0].ack, 1);
  EXPECT_NEAR(h.acks.times[0], 0.1, 1e-9);
}

TEST(ReceiverTest, TimestampEchoPropagates) {
  Harness h;
  h.receiver.handle(data(0, 1.25));
  ASSERT_EQ(h.acks.acks.size(), 1u);
  EXPECT_DOUBLE_EQ(h.acks.acks[0].ts_echo, 1.25);
}

TEST(ReceiverTest, AckAddressingIsReversed) {
  Harness h;
  h.receiver.handle(data(0));
  EXPECT_EQ(h.acks.acks[0].src, 1);
  EXPECT_EQ(h.acks.acks[0].dst, 0);
  EXPECT_EQ(h.acks.acks[0].flow, 0);
}

TEST(ReceiverTest, ConfigValidation) {
  Simulator sim;
  AckCollector acks(sim);
  TcpReceiverConfig config;
  config.delack_factor = 0;
  EXPECT_THROW(TcpReceiver(sim, 0, 1, 0, &acks, config), ParameterError);
  config = TcpReceiverConfig{};
  config.delack_timeout = 0.0;
  EXPECT_THROW(TcpReceiver(sim, 0, 1, 0, &acks, config), ParameterError);
  config = TcpReceiverConfig{};
  EXPECT_THROW(TcpReceiver(sim, 0, 1, 0, nullptr, config), ParameterError);
}

}  // namespace
}  // namespace pdos
