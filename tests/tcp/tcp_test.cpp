#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/droptail.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

/// Drops selected data segments exactly once, forwarding everything else.
class LossGate : public PacketHandler {
 public:
  explicit LossGate(PacketHandler* next) : next_(next) {}
  void drop_once(std::int64_t seq) { to_drop_.insert(seq); }
  void set_blackhole(bool on) { blackhole_ = on; }
  void handle(Packet pkt) override {
    if (blackhole_ && pkt.type == PacketType::kTcpData) return;
    if (pkt.type == PacketType::kTcpData) {
      auto it = to_drop_.find(pkt.seq);
      if (it != to_drop_.end() && !pkt.retransmit) {
        to_drop_.erase(it);
        ++dropped_;
        return;
      }
    }
    next_->handle(std::move(pkt));
  }
  int dropped() const { return dropped_; }

 private:
  PacketHandler* next_;
  std::set<std::int64_t> to_drop_;
  bool blackhole_ = false;
  int dropped_ = 0;
};

/// A minimal sender <-> receiver loop over two symmetric links, with a loss
/// gate on the data path.
struct Loopback {
  Simulator sim;
  std::unique_ptr<TcpReceiver> receiver;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<Link> data_link;
  std::unique_ptr<Link> ack_link;
  std::unique_ptr<LossGate> gate;

  explicit Loopback(TcpSenderConfig config = {}, BitRate rate = mbps(10),
                    Time delay = ms(10))
      : sender_config(config), rate(rate), delay(delay) {
    receiver_config.delack_factor = config.aimd.d;
    receiver_config.mss = config.mss;
  }

  TcpSenderConfig sender_config;
  TcpReceiverConfig receiver_config;
  BitRate rate;
  Time delay;

  void build() {
    // sender -> gate -> data_link -> receiver -> ack_sink -> ack_link ->
    // sender; the Redirect breaks the construction-order cycle.
    receiver = std::make_unique<TcpReceiver>(sim, 0, 1, 0, &ack_sink,
                                             receiver_config);
    data_link = std::make_unique<Link>(sim, "data", rate, delay,
                                       std::make_unique<DropTailQueue>(1000),
                                       receiver.get());
    gate = std::make_unique<LossGate>(data_link.get());
    sender = std::make_unique<TcpSender>(sim, 0, 0, 1, gate.get(),
                                         sender_config);
    ack_link = std::make_unique<Link>(sim, "ack", rate, delay,
                                      std::make_unique<DropTailQueue>(1000),
                                      sender.get());
    ack_sink.next = ack_link.get();
  }

  struct Redirect : PacketHandler {
    PacketHandler* next = nullptr;
    void handle(Packet pkt) override { next->handle(std::move(pkt)); }
  };
  Redirect ack_sink;
};

TEST(TcpTest, SlowStartGrowsWindowExponentially) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  // RTT ~ 21 ms; after 5 RTTs of slow start cwnd should be >= 16.
  loop.sim.run_until(ms(110));
  EXPECT_GE(loop.sender->cwnd(), 16.0);
  EXPECT_EQ(loop.sender->stats().timeouts, 0u);
  EXPECT_EQ(loop.sender->stats().fast_recoveries, 0u);
}

TEST(TcpTest, BulkTransferSaturatesLink) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(sec(5.0));
  const double goodput =
      static_cast<double>(loop.receiver->goodput_bytes()) * 8.0 / 5.0;
  // Payload goodput should reach ~ mss/(mss+hdr) of the 10 Mbps link.
  EXPECT_GT(goodput, 0.85 * mbps(10));
  EXPECT_EQ(loop.sender->stats().timeouts, 0u);
}

TEST(TcpTest, InOrderDeliveryCountsUniqueGoodput) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(sec(1.0));
  EXPECT_EQ(loop.receiver->goodput_bytes(),
            loop.receiver->next_expected() *
                loop.sender->config().mss);
}

TEST(TcpTest, TripleDupackTriggersFastRetransmitNotTimeout) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(ms(200));
  ASSERT_EQ(loop.sender->stats().fast_recoveries, 0u);
  loop.gate->drop_once(loop.sender->next_seq() + 5);
  loop.sim.run_until(ms(600));
  EXPECT_EQ(loop.gate->dropped(), 1);
  EXPECT_GE(loop.sender->stats().fast_recoveries, 1u);
  EXPECT_EQ(loop.sender->stats().timeouts, 0u);
  // The receiver eventually got everything.
  EXPECT_GT(loop.receiver->next_expected(), 100);
}

TEST(TcpTest, MultiplicativeDecreaseUsesAimdB) {
  for (double b : {0.5, 0.8}) {
    TcpSenderConfig config;
    config.aimd.b = b;
    config.initial_ssthresh = 30.0;  // move to congestion avoidance early
    Loopback loop(config);
    loop.build();
    loop.sender->start(0.0);
    loop.sim.run_until(sec(1.0));
    const double w_before = loop.sender->cwnd();
    ASSERT_GT(w_before, 10.0);
    loop.gate->drop_once(loop.sender->next_seq() + 2);
    // Capture ssthresh right after the recovery starts.
    loop.sim.run_until(sec(2.0));
    // After recovery completes, cwnd restarts near b * w_before.
    EXPECT_GE(loop.sender->stats().fast_recoveries, 1u);
    EXPECT_NEAR(loop.sender->ssthresh(), b * w_before,
                0.35 * b * w_before + 3.0);
  }
}

TEST(TcpTest, BlackholeCausesTimeoutAndBackoff) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(ms(300));
  loop.gate->set_blackhole(true);
  loop.sim.run_until(sec(10));
  EXPECT_GE(loop.sender->stats().timeouts, 2u);
  EXPECT_LE(loop.sender->cwnd(), 2.0);
}

TEST(TcpTest, RecoveryAfterBlackholeResumes) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(ms(300));
  loop.gate->set_blackhole(true);
  loop.sim.run_until(sec(4));
  const Bytes stalled = loop.receiver->goodput_bytes();
  loop.gate->set_blackhole(false);
  loop.sim.run_until(sec(8));
  EXPECT_GT(loop.receiver->goodput_bytes(), stalled + 100 * 1000);
}

TEST(TcpTest, RtoRespectsConfiguredMinimum) {
  TcpSenderConfig config;
  config.rto_min = sec(1.0);
  Loopback loop(config);
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(sec(1.0));  // srtt ~ 21 ms, far below rto_min
  EXPECT_GE(loop.sender->rto(), sec(1.0));
}

TEST(TcpTest, SrttConvergesToPathRtt) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(sec(2.0));
  // Path RTT: 2 * 10 ms propagation + serialization; queueing adds a bit.
  EXPECT_GT(loop.sender->srtt(), ms(18));
  EXPECT_LT(loop.sender->srtt(), ms(120));
}

TEST(TcpTest, DelayedAckHalvesAckRate) {
  TcpSenderConfig config;
  config.aimd = AimdParams::new_reno_delack();  // d = 2
  Loopback loop(config);
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(sec(3.0));
  const auto& rstats = loop.receiver->stats();
  ASSERT_GT(rstats.segments_received, 200u);
  const double acks_per_segment =
      static_cast<double>(rstats.acks_sent) /
      static_cast<double>(rstats.segments_received);
  EXPECT_LT(acks_per_segment, 0.65);
  EXPECT_GT(acks_per_segment, 0.4);
}

TEST(TcpTest, DelayedAckTimerFlushesTrailingSegment) {
  // Send exactly one segment's worth of window: the delack timer (not a
  // second segment) must produce the ACK.
  TcpSenderConfig config;
  config.aimd = AimdParams::new_reno_delack();
  config.initial_cwnd = 1.0;
  config.max_cwnd = 1.0;  // forever one packet in flight
  Loopback loop(config);
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(sec(1.0));
  EXPECT_GT(loop.receiver->stats().acks_sent, 0u);
  EXPECT_GT(loop.receiver->next_expected(), 1);
  EXPECT_EQ(loop.sender->stats().timeouts, 0u);
}

TEST(TcpTest, OutOfOrderSegmentsAreBufferedNotLost) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(ms(200));
  loop.gate->drop_once(loop.sender->next_seq() + 1);
  loop.sim.run_until(sec(1.0));
  EXPECT_GT(loop.receiver->stats().out_of_order, 0u);
  // No byte is delivered twice.
  EXPECT_EQ(loop.receiver->goodput_bytes(),
            loop.receiver->next_expected() * loop.sender->config().mss);
}

TEST(TcpTest, NewRenoHandlesTwoLossesInOneWindow) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(ms(400));
  const std::int64_t base = loop.sender->next_seq();
  loop.gate->drop_once(base + 2);
  loop.gate->drop_once(base + 6);
  loop.sim.run_until(sec(3.0));
  EXPECT_EQ(loop.gate->dropped(), 2);
  // NewReno's partial-ACK retransmission repairs both holes without RTO.
  EXPECT_EQ(loop.sender->stats().timeouts, 0u);
  EXPECT_GE(loop.sender->stats().fast_recoveries, 1u);
  EXPECT_GT(loop.receiver->next_expected(), base + 6);
}

TEST(TcpTest, CwndTracerObservesDecrease) {
  Loopback loop;
  loop.build();
  std::vector<double> cwnds;
  loop.sender->set_cwnd_tracer(
      [&](Time, double w) { cwnds.push_back(w); });
  loop.sender->start(0.0);
  loop.sim.run_until(ms(400));
  loop.gate->drop_once(loop.sender->next_seq() + 2);
  loop.sim.run_until(sec(1.0));
  ASSERT_FALSE(cwnds.empty());
  bool saw_decrease = false;
  for (std::size_t i = 1; i < cwnds.size(); ++i) {
    if (cwnds[i] < cwnds[i - 1] - 1.0) saw_decrease = true;
  }
  EXPECT_TRUE(saw_decrease);
}

TEST(TcpTest, SenderConfigValidation) {
  Loopback loop;
  loop.build();
  TcpSenderConfig bad;
  bad.mss = 0;
  EXPECT_THROW(TcpSender(loop.sim, 1, 0, 1, loop.gate.get(), bad),
               ParameterError);
  bad = TcpSenderConfig{};
  bad.aimd.b = 1.5;
  EXPECT_THROW(TcpSender(loop.sim, 1, 0, 1, loop.gate.get(), bad),
               ParameterError);
  bad = TcpSenderConfig{};
  bad.rto_min = sec(100);  // > rto_max
  EXPECT_THROW(TcpSender(loop.sim, 1, 0, 1, loop.gate.get(), bad),
               ParameterError);
}

TEST(TcpTest, StartingTwiceIsAnError) {
  Loopback loop;
  loop.build();
  loop.sender->start(0.0);
  EXPECT_THROW(loop.sender->start(1.0), InvariantError);
}

TEST(TcpTest, AdditiveIncreaseRateMatchesAimdA) {
  // In congestion avoidance with a = 2, cwnd should grow ~2 per RTT.
  TcpSenderConfig config;
  config.aimd.a = 2.0;
  config.initial_ssthresh = 4.0;  // enter CA almost immediately
  Loopback loop(config, mbps(50), ms(50));
  loop.build();
  loop.sender->start(0.0);
  loop.sim.run_until(ms(150));
  const double w0 = loop.sender->cwnd();
  loop.sim.run_until(ms(150 + 5 * 101));  // ~5 RTTs later (RTT ~ 101 ms)
  const double w1 = loop.sender->cwnd();
  EXPECT_NEAR(w1 - w0, 2.0 * 5.0, 4.0);
}

}  // namespace
}  // namespace pdos
