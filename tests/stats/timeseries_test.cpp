#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace pdos {
namespace {

std::vector<double> square_wave(std::size_t len, std::size_t period,
                                std::size_t high, double amplitude = 10.0) {
  std::vector<double> v(len, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    if (i % period < high) v[i] = amplitude;
  }
  return v;
}

TEST(BinnedSeriesTest, AccumulatesIntoCorrectBins) {
  BinnedSeries series(ms(100));
  series.add(0.05, 10.0);
  series.add(0.09, 5.0);
  series.add(0.15, 7.0);
  series.add(0.95, 1.0);
  const auto& bins = series.bins();
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_DOUBLE_EQ(bins[0], 15.0);
  EXPECT_DOUBLE_EQ(bins[1], 7.0);
  EXPECT_DOUBLE_EQ(bins[9], 1.0);
}

TEST(BinnedSeriesTest, BinsUntilPadsTrailingZeros) {
  BinnedSeries series(ms(100));
  series.add(0.05, 1.0);
  const auto bins = series.bins_until(sec(1.0));
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_DOUBLE_EQ(bins[0], 1.0);
  EXPECT_DOUBLE_EQ(bins[5], 0.0);
}

TEST(BinnedSeriesTest, ReserveUntilIsCapacityOnly) {
  BinnedSeries series(ms(100));
  series.reserve_until(sec(2.0));
  // Capacity covers the horizon up front...
  EXPECT_GE(series.bins().capacity(), 20u);
  // ...but logical size still tracks only what was recorded.
  series.add(0.25, 3.0);
  EXPECT_EQ(series.bins().size(), 3u);
  // And trailing zeros are still materialized on demand, not pre-filled.
  const auto padded = series.bins_until(sec(2.0));
  ASSERT_EQ(padded.size(), 20u);
  EXPECT_DOUBLE_EQ(padded[2], 3.0);
  EXPECT_DOUBLE_EQ(padded[19], 0.0);
}

TEST(BinnedSeriesTest, RatesDivideByBinWidth) {
  BinnedSeries series(ms(500));
  series.add(0.1, 100.0);
  EXPECT_DOUBLE_EQ(series.rates()[0], 200.0);
}

TEST(BinnedSeriesTest, InvalidInputsThrow) {
  EXPECT_THROW(BinnedSeries(0.0), ParameterError);
  BinnedSeries series(1.0);
  EXPECT_THROW(series.add(-0.1, 1.0), ParameterError);
}

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_NEAR(stddev(v), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({4.0}), 0.0);
}

TEST(StatsTest, NormalizeZeroMean) {
  const auto out = normalize_zero_mean({1, 2, 3});
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  EXPECT_NEAR(mean(out), 0.0, 1e-12);
}

TEST(StatsTest, NormalizeZscoreUnitVariance) {
  const auto out = normalize_zscore({2, 4, 6, 8});
  EXPECT_NEAR(mean(out), 0.0, 1e-12);
  EXPECT_NEAR(stddev(out), 1.0, 1e-12);
}

TEST(StatsTest, ZscoreOfFlatSeriesIsZero) {
  const auto out = normalize_zscore({5, 5, 5});
  for (double x : out) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(PaaTest, AveragesEqualFrames) {
  const std::vector<double> v{1, 1, 3, 3, 5, 5};
  const auto out = paa(v, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
}

TEST(PaaTest, LastFrameAbsorbsRemainder) {
  const std::vector<double> v{0, 0, 0, 6, 6, 6, 6};
  const auto out = paa(v, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);  // first 3 points
  EXPECT_DOUBLE_EQ(out[1], 6.0 * 4 / 4);
}

TEST(PaaTest, IdentityWhenSegmentsEqualLength) {
  const std::vector<double> v{3, 1, 4, 1, 5};
  EXPECT_EQ(paa(v, 5), v);
}

TEST(PaaTest, PreservesMean) {
  std::vector<double> v;
  for (int i = 0; i < 60; ++i) v.push_back(i % 7);
  const auto out = paa(v, 6);
  EXPECT_NEAR(mean(out), mean(v), 0.2);
}

TEST(PaaTest, InvalidSegmentsThrow) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_THROW(paa(v, 0), ParameterError);
  EXPECT_THROW(paa(v, 4), ParameterError);
}

TEST(PeakTest, CountsSquareWavePeaks) {
  // 30 pulses: period 20 bins, 1 bin high — like Fig. 3(a)'s 30 pinnacles.
  const auto v = square_wave(600, 20, 1);
  EXPECT_EQ(count_peaks(v, 5.0), 30u);
}

TEST(PeakTest, ConsecutiveHighBinsCountOnce) {
  const auto v = square_wave(100, 20, 4);
  EXPECT_EQ(count_peaks(v, 5.0), 5u);
}

TEST(PeakTest, MinSeparationMergesNearbyExcursions) {
  std::vector<double> v(30, 0.0);
  v[5] = 10;
  v[7] = 10;  // 1 bin below threshold between excursions
  v[20] = 10;
  EXPECT_EQ(count_peaks(v, 5.0, 1), 3u);
  EXPECT_EQ(count_peaks(v, 5.0, 3), 2u);
}

TEST(PeakTest, NoPeaksBelowThreshold) {
  const std::vector<double> v{1, 2, 3, 2, 1};
  EXPECT_EQ(count_peaks(v, 5.0), 0u);
}

TEST(AutocorrTest, PeriodicSignalPeaksAtPeriod) {
  const auto v = square_wave(400, 25, 3);
  EXPECT_GT(autocorrelation(v, 25), 0.9);
  EXPECT_LT(autocorrelation(v, 12), 0.3);
}

TEST(AutocorrTest, LagZeroIsOne) {
  const auto v = square_wave(100, 10, 2);
  EXPECT_NEAR(autocorrelation(v, 0), 1.0, 1e-12);
}

TEST(AutocorrTest, OutOfRangeLagIsZero) {
  const std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(autocorrelation(v, 10), 0.0);
}

TEST(PeriodTest, RecoversSquareWavePeriod) {
  const auto v = square_wave(600, 20, 1);
  // bin width 100 ms -> period 2.0 s.
  EXPECT_NEAR(estimate_period(v, ms(100), 5, 50), 2.0, 1e-9);
}

TEST(PeriodTest, FlatSeriesGivesZero) {
  const std::vector<double> v(100, 3.0);
  EXPECT_DOUBLE_EQ(estimate_period(v, ms(100), 2, 20), 0.0);
}

TEST(PeriodTest, ShortSeriesGivesZero) {
  const std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(estimate_period(v, ms(100), 2, 20), 0.0);
}

TEST(PeriodTest, InvalidLagsThrow) {
  const std::vector<double> v(50, 1.0);
  EXPECT_THROW(estimate_period(v, ms(100), 0, 10), ParameterError);
  EXPECT_THROW(estimate_period(v, ms(100), 10, 5), ParameterError);
}

class PeriodSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PeriodSweepTest, RecoversPeriodAcrossDutyCycles) {
  const std::size_t period = GetParam();
  for (std::size_t high = 1; high < period / 2; high += 2) {
    const auto v = square_wave(40 * period, period, high);
    EXPECT_NEAR(estimate_period(v, 1.0, 2, 3 * period),
                static_cast<double>(period), 1e-9)
        << "period=" << period << " high=" << high;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweepTest,
                         ::testing::Values(8, 13, 20, 33, 50));

}  // namespace
}  // namespace pdos
