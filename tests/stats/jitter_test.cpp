#include "stats/jitter.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(JitterTest, EmptyAndSingleArrivalAreZero) {
  JitterMeter meter;
  EXPECT_DOUBLE_EQ(meter.smoothed_jitter(), 0.0);
  EXPECT_EQ(meter.samples(), 0u);
  meter.observe(1.0);
  EXPECT_DOUBLE_EQ(meter.smoothed_jitter(), 0.0);
  EXPECT_EQ(meter.samples(), 0u);  // still no gap
}

TEST(JitterTest, PerfectlyPacedArrivalsHaveZeroJitter) {
  JitterMeter meter;
  for (int i = 0; i < 100; ++i) meter.observe(i * 0.01);
  EXPECT_NEAR(meter.smoothed_jitter(), 0.0, 1e-12);
  EXPECT_NEAR(meter.mean_gap(), 0.01, 1e-12);
  EXPECT_NEAR(meter.gap_stddev(), 0.0, 1e-9);
  EXPECT_EQ(meter.samples(), 99u);
}

TEST(JitterTest, AlternatingGapsProduceJitter) {
  JitterMeter meter;
  Time t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += (i % 2 == 0) ? 0.01 : 0.03;
    meter.observe(t);
  }
  // |D| alternates at 0.02; the RFC 3550 filter converges toward 0.02.
  EXPECT_NEAR(meter.smoothed_jitter(), 0.02, 0.005);
  EXPECT_NEAR(meter.mean_gap(), 0.02, 1e-3);
  EXPECT_NEAR(meter.gap_stddev(), 0.01, 1e-4);
}

TEST(JitterTest, BurstyArrivalsJitterMoreThanSmooth) {
  JitterMeter smooth;
  JitterMeter bursty;
  for (int i = 0; i < 300; ++i) smooth.observe(i * 0.01);
  Time t = 0.0;
  for (int burst = 0; burst < 30; ++burst) {
    for (int i = 0; i < 10; ++i) {
      t += 0.001;  // back-to-back within the burst
      bursty.observe(t);
    }
    t += 0.09;  // silence between bursts
  }
  EXPECT_GT(bursty.smoothed_jitter(), smooth.smoothed_jitter() + 0.001);
}

TEST(JitterTest, SimultaneousArrivalsAllowed) {
  JitterMeter meter;
  meter.observe(1.0);
  meter.observe(1.0);
  meter.observe(1.0);
  EXPECT_EQ(meter.samples(), 2u);
  EXPECT_DOUBLE_EQ(meter.mean_gap(), 0.0);
}

TEST(JitterTest, BackwardsTimeRejected) {
  JitterMeter meter;
  meter.observe(2.0);
  EXPECT_THROW(meter.observe(1.0), ParameterError);
}

}  // namespace
}  // namespace pdos
