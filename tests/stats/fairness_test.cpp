#include "stats/fairness.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(FairnessTest, EqualSharesScoreOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.3}), 1.0);
}

TEST(FairnessTest, MonopolyScoresOneOverN) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({10, 0, 0, 0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_fairness_index({7, 0}), 0.5);
}

TEST(FairnessTest, ScaleInvariant) {
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b;
  for (double x : a) b.push_back(1000.0 * x);
  EXPECT_NEAR(jain_fairness_index(a), jain_fairness_index(b), 1e-12);
}

TEST(FairnessTest, BoundedBetweenOneOverNAndOne) {
  const std::vector<double> v{0.1, 3.0, 7.5, 0.0, 2.2};
  const double j = jain_fairness_index(v);
  EXPECT_GE(j, 1.0 / 5.0);
  EXPECT_LE(j, 1.0);
}

TEST(FairnessTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0, 0, 0}), 0.0);
  EXPECT_THROW(jain_fairness_index({1.0, -2.0}), ParameterError);
}

TEST(StarvedFractionTest, CountsBelowFractionOfMean) {
  // mean = 25; 10% of mean = 2.5; one flow below.
  EXPECT_DOUBLE_EQ(starved_fraction({1, 24, 25, 50}, 0.1), 0.25);
  EXPECT_DOUBLE_EQ(starved_fraction({10, 10, 10}, 0.1), 0.0);
}

TEST(StarvedFractionTest, AllZeroMeansAllStarved) {
  EXPECT_DOUBLE_EQ(starved_fraction({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(starved_fraction({}), 0.0);
  EXPECT_THROW(starved_fraction({1.0}, 1.5), ParameterError);
}

}  // namespace
}  // namespace pdos
