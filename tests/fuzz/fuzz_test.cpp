// Randomized property tests: invariants that must survive arbitrary
// operation sequences, seeds, and loss processes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "util/rng.hpp"

namespace pdos {
namespace {

// ---------- scheduler ----------

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, RandomScheduleCancelRunKeepsInvariants) {
  Rng rng(GetParam());
  Scheduler sched;
  std::vector<EventId> live;
  std::int64_t expected_fires = 0;
  std::int64_t fired = 0;

  for (int op = 0; op < 2000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.55) {
      live.push_back(
          sched.schedule(rng.uniform(0.0, 100.0), [&fired] { ++fired; }));
      ++expected_fires;
    } else if (dice < 0.75 && !live.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, live.size() - 1));
      if (sched.cancel(live[pick])) --expected_fires;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const Time before = sched.now();
      sched.step();
      EXPECT_GE(sched.now(), before);  // time is monotone
    }
  }
  sched.run();
  EXPECT_EQ(fired, expected_fires);
  EXPECT_TRUE(sched.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---------- queues ----------

template <typename Queue>
void fuzz_queue(Queue& queue, std::uint64_t seed) {
  Rng rng(seed);
  std::int64_t accepted = 0;
  std::int64_t drained = 0;
  std::int64_t next_seq = 0;
  std::int64_t last_dequeued = -1;
  for (int op = 0; op < 20000; ++op) {
    if (rng.uniform() < 0.55) {
      Packet pkt;
      pkt.size_bytes = rng.uniform_int(40, 1500);
      pkt.type = rng.bernoulli(0.3) ? PacketType::kAttack
                                    : PacketType::kTcpData;
      pkt.seq = next_seq++;
      if (queue.enqueue(std::move(pkt))) ++accepted;
    } else {
      auto pkt = queue.dequeue();
      if (pkt) {
        ++drained;
        EXPECT_GT(pkt->seq, last_dequeued);  // FIFO order
        last_dequeued = pkt->seq;
      }
    }
    ASSERT_LE(queue.length(), queue.capacity());
  }
  // Conservation: every offered packet was accepted or counted dropped;
  // every accepted packet is either drained or still buffered.
  EXPECT_EQ(accepted + static_cast<std::int64_t>(queue.stats().dropped),
            next_seq);
  EXPECT_EQ(accepted,
            drained + static_cast<std::int64_t>(queue.length()));
  EXPECT_EQ(queue.stats().enqueued, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(queue.stats().dropped_tcp + queue.stats().dropped_attack,
            queue.stats().dropped);
}

class QueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueFuzz, DropTailConservation) {
  DropTailQueue queue(17);
  fuzz_queue(queue, GetParam());
}

TEST_P(QueueFuzz, RedConservationAndBounds) {
  RedParams params;
  params.capacity = 23;
  params.min_th = 3;
  params.max_th = 12;
  params.wq = 0.1;
  params.max_p = 0.2;
  RedQueue queue(params, Rng(GetParam() * 13 + 1));
  fuzz_queue(queue, GetParam());
  EXPECT_GE(queue.avg(), 0.0);
  EXPECT_LE(queue.avg(), static_cast<double>(params.capacity) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFuzz,
                         ::testing::Values(3, 17, 1001));

// ---------- link conservation ----------

TEST(LinkFuzz, OfferedEqualsDeliveredPlusDropped) {
  Simulator sim(5);
  struct Counter : PacketHandler {
    std::int64_t delivered = 0;
    std::int64_t last_seq = -1;
    bool fifo = true;
    void handle(Packet pkt) override {
      ++delivered;
      if (pkt.seq <= last_seq) fifo = false;
      last_seq = pkt.seq;
    }
  } sink;
  Link link(sim, "l", mbps(2), ms(3), std::make_unique<DropTailQueue>(5),
            &sink);
  Rng rng(11);
  std::int64_t offered = 0;
  for (int burst = 0; burst < 50; ++burst) {
    sim.schedule(rng.uniform(0.0, 5.0), [&] {
      for (int i = 0; i < 8; ++i) {
        Packet pkt;
        pkt.size_bytes = rng.uniform_int(100, 1500);
        pkt.seq = offered++;
        link.handle(std::move(pkt));
      }
    });
  }
  sim.run();
  EXPECT_EQ(offered, sink.delivered +
                         static_cast<std::int64_t>(
                             link.queue().stats().dropped));
  EXPECT_TRUE(sink.fifo);
  EXPECT_GT(link.queue().stats().dropped, 0u);  // bursts overflow 5 slots
}

// ---------- TCP under random loss ----------

/// Drops data packets i.i.d. with a fixed probability.
class RandomLossGate : public PacketHandler {
 public:
  RandomLossGate(PacketHandler* next, double loss_rate, std::uint64_t seed)
      : next_(next), loss_rate_(loss_rate), rng_(seed) {}
  void handle(Packet pkt) override {
    if (pkt.type == PacketType::kTcpData && rng_.bernoulli(loss_rate_)) {
      ++dropped_;
      return;
    }
    next_->handle(std::move(pkt));
  }
  std::int64_t dropped() const { return dropped_; }

 private:
  PacketHandler* next_;
  double loss_rate_;
  Rng rng_;
  std::int64_t dropped_ = 0;
};

class TcpLossFuzz : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossFuzz, SurvivesRandomLossWithExactDelivery) {
  const double loss_rate = GetParam();
  Simulator sim(21);
  struct Redirect : PacketHandler {
    PacketHandler* next = nullptr;
    void handle(Packet pkt) override { next->handle(std::move(pkt)); }
  } redirect;
  TcpReceiver receiver(sim, 0, 1, 0, &redirect, {});
  Link data_link(sim, "data", mbps(10), ms(10),
                 std::make_unique<DropTailQueue>(1000), &receiver);
  RandomLossGate gate(&data_link, loss_rate, 77);
  TcpSenderConfig config;
  config.rto_min = ms(200);
  TcpSender sender(sim, 0, 0, 1, &gate, config);
  Link ack_link(sim, "ack", mbps(10), ms(10),
                std::make_unique<DropTailQueue>(1000), &sender);
  redirect.next = &ack_link;

  sender.start(0.0);
  sim.run_until(sec(30.0));

  // Liveness: data keeps flowing at every loss rate.
  EXPECT_GT(receiver.next_expected(), 200) << "loss=" << loss_rate;
  // Safety: goodput counts each segment exactly once.
  EXPECT_EQ(receiver.goodput_bytes(),
            receiver.next_expected() * config.mss);
  // Sanity: cannot exceed the link.
  EXPECT_LE(static_cast<double>(receiver.goodput_bytes()) * 8.0 / 30.0,
            mbps(10) * 1.01);
  // Sequence-space invariants.
  EXPECT_LE(sender.snd_una(), sender.next_seq());
  EXPECT_GE(sender.cwnd(), 1.0);
  EXPECT_GT(gate.dropped(), 0);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossFuzz,
                         ::testing::Values(0.005, 0.02, 0.05, 0.10));

// ---------- end-to-end conservation ----------

TEST(ScenarioFuzz, BottleneckConservationUnderAttack) {
  for (std::uint64_t seed : {1ull, 9ull, 123ull}) {
    ScenarioConfig config = ScenarioConfig::ns2_dumbbell(8);
    config.seed = seed;
    PulseTrain train =
        PulseTrain::from_gamma(ms(60), mbps(30), 0.5, config.bottleneck);
    RunControl control;
    control.warmup = sec(2);
    control.measure = sec(6);
    const RunResult result = run_scenario(config, train, control);
    const auto& stats = result.bottleneck_queue;
    // Everything that reached the bottleneck was either enqueued or
    // dropped, and the enqueue/dequeue ledger stays consistent.
    EXPECT_EQ(stats.dropped_tcp + stats.dropped_attack, stats.dropped);
    EXPECT_GE(stats.enqueued, stats.dequeued);
    EXPECT_LE(stats.enqueued - stats.dequeued, 240u);  // <= buffer
    // Goodput cannot exceed capacity.
    EXPECT_LE(result.utilization, 1.0);
    EXPECT_GT(result.goodput_bytes, 0);
  }
}

}  // namespace
}  // namespace pdos
