#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "detect/dtw_detector.hpp"
#include "detect/rate_detector.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

// ---------- rate-anomaly detector ----------

RateDetectorConfig rate_config() {
  RateDetectorConfig config;
  config.window = sec(1.0);
  config.threshold_fraction = 0.9;
  config.capacity = mbps(10);
  return config;
}

TEST(RateDetectorTest, FloodingTriggersEveryWindow) {
  RateAnomalyDetector detector(rate_config());
  // 12 Mbps sustained: 1.5e6 bytes per second, spread over 10 ms packets.
  for (int t = 0; t < 1000; ++t) {
    detector.observe(t * 0.01, 15000);
  }
  detector.finish(sec(10.0));
  EXPECT_TRUE(detector.triggered());
  EXPECT_EQ(detector.alarm_count(), 10u);
}

TEST(RateDetectorTest, QuietTrafficNeverTriggers) {
  RateAnomalyDetector detector(rate_config());
  for (int t = 0; t < 1000; ++t) {
    detector.observe(t * 0.01, 2000);  // 1.6 Mbps
  }
  detector.finish(sec(10.0));
  EXPECT_FALSE(detector.triggered());
  EXPECT_EQ(detector.windows_evaluated(), 10u);
}

TEST(RateDetectorTest, PulsedTrafficBelowAverageThresholdEvades) {
  // PDoS train: 50 ms bursts at 40 Mbps once per second -> gamma = 0.2.
  // Per 1 s window: 0.05 * 40e6 / 8 = 250 kB -> 2 Mbps average. Evades.
  RateAnomalyDetector detector(rate_config());
  for (int pulse = 0; pulse < 10; ++pulse) {
    const Time start = pulse * 1.0;
    for (int i = 0; i < 50; ++i) {
      detector.observe(start + i * 0.001, 5000);  // 40 Mbps for 50 ms
    }
  }
  detector.finish(sec(10.0));
  EXPECT_FALSE(detector.triggered());
  EXPECT_NEAR(detector.peak_window_rate(), mbps(2), mbps(0.1));
}

TEST(RateDetectorTest, ShortWindowCatchesThePulse) {
  // Same pulse train, but a 50 ms detection window sees the full 40 Mbps.
  RateDetectorConfig config = rate_config();
  config.window = ms(50);
  RateAnomalyDetector detector(config);
  for (int pulse = 0; pulse < 10; ++pulse) {
    const Time start = pulse * 1.0;
    for (int i = 0; i < 50; ++i) {
      detector.observe(start + i * 0.001, 5000);
    }
  }
  detector.finish(sec(10.0));
  EXPECT_TRUE(detector.triggered());
}

TEST(RateDetectorTest, AlarmTimesAreWindowStarts) {
  RateAnomalyDetector detector(rate_config());
  for (int t = 0; t < 300; ++t) {
    // Hot only during the second window [1, 2).
    const Bytes bytes = (t >= 100 && t < 200) ? 15000 : 100;
    detector.observe(t * 0.01, bytes);
  }
  detector.finish(sec(3.0));
  ASSERT_EQ(detector.alarm_count(), 1u);
  EXPECT_DOUBLE_EQ(detector.alarm_times()[0], 1.0);
}

TEST(RateDetectorTest, TimeMustNotGoBackwards) {
  RateAnomalyDetector detector(rate_config());
  detector.observe(1.0, 100);
  EXPECT_THROW(detector.observe(0.5, 100), ParameterError);
}

TEST(RateDetectorTest, ConfigValidation) {
  RateDetectorConfig config = rate_config();
  config.window = 0.0;
  EXPECT_THROW(RateAnomalyDetector{config}, ParameterError);
  config = rate_config();
  config.capacity = 0.0;
  EXPECT_THROW(RateAnomalyDetector{config}, ParameterError);
}

// ---------- DTW pulse detector ----------

std::vector<double> pulse_series(std::size_t len, std::size_t period,
                                 std::size_t high, double amplitude,
                                 double base = 1.0) {
  std::vector<double> v(len, base);
  for (std::size_t i = 0; i < len; ++i) {
    if (i % period < high) v[i] += amplitude;
  }
  return v;
}

TEST(DtwDistanceTest, IdenticalSeriesHaveZeroDistance) {
  const std::vector<double> a{1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
}

TEST(DtwDistanceTest, TimeShiftedSeriesAreClose) {
  std::vector<double> a(40, 0.0);
  std::vector<double> b(40, 0.0);
  for (int i = 0; i < 5; ++i) {
    a[10 + i] = 1.0;
    b[13 + i] = 1.0;  // same pulse, shifted 3 samples
  }
  // DTW warps over the shift: far smaller than Euclidean per-sample error.
  EXPECT_LT(dtw_distance(a, b), 0.05);
}

TEST(DtwDistanceTest, DifferentShapesAreFar) {
  const std::vector<double> flat(40, 0.5);
  auto pulsed = pulse_series(40, 10, 2, 5.0, 0.0);
  EXPECT_GT(dtw_distance(flat, pulsed), 0.3);
}

TEST(DtwDistanceTest, EmptyInputIsInfinite) {
  EXPECT_TRUE(std::isinf(dtw_distance({}, {1.0})));
}

TEST(DtwDetectorTest, DetectsCleanPulseTrain) {
  DtwPulseDetector detector(DtwDetectorConfig{});
  const auto series = pulse_series(200, 20, 2, 50.0);
  const auto result = detector.analyze(series);
  EXPECT_TRUE(result.detected);
  EXPECT_NEAR(result.estimated_period, 20 * 0.1, 0.05);
}

TEST(DtwDetectorTest, IgnoresFlatTraffic) {
  DtwPulseDetector detector(DtwDetectorConfig{});
  const std::vector<double> series(200, 7.0);
  const auto result = detector.analyze(series);
  EXPECT_FALSE(result.detected);
  EXPECT_DOUBLE_EQ(result.score, 1.0);  // no structure to match
}

TEST(DtwDetectorTest, IgnoresWhiteNoiseTraffic) {
  DtwPulseDetector detector(DtwDetectorConfig{});
  std::vector<double> series;
  unsigned state = 12345;
  for (int i = 0; i < 300; ++i) {
    state = state * 1664525u + 1013904223u;
    series.push_back(static_cast<double>(state % 1000));
  }
  const auto result = detector.analyze(series);
  EXPECT_GT(result.score, 0.3);  // structureless: poor template match
}

TEST(DtwDetectorTest, TooFewSamplesNoDecision) {
  DtwPulseDetector detector(DtwDetectorConfig{});
  const auto series = pulse_series(10, 5, 1, 10.0);
  EXPECT_FALSE(detector.analyze(series).detected);
}

TEST(DtwDetectorTest, BlindWhenPulseShorterThanSamplingPeriod) {
  // The paper's critique of [8]: with T_extent < Ts the pulse is averaged
  // into its bin and the sampled series carries (almost) no pulse shape.
  // Model that by a series where each "pulse" bin barely differs from the
  // smoothed background it is averaged into.
  DtwDetectorConfig config;
  config.sampling_period = ms(500);  // Ts = 500 ms
  DtwPulseDetector detector(config);
  // Background TCP fluctuation with std ~3.5 in both series.
  auto jitter = [](unsigned& state) {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state % 300) / 25.0;
  };
  // Visible: T_extent = 1 s >= Ts, the pulse fills whole bins (amplitude
  // well above the noise). Diluted: T_extent = 50 ms averaged over a
  // 500 ms bin leaves a residue of amplitude/10, buried in the noise.
  std::vector<double> visible(200), diluted(200);
  unsigned s1 = 99, s2 = 7;
  for (std::size_t i = 0; i < 200; ++i) {
    visible[i] = 10.0 + jitter(s1) + (i % 4 < 2 ? 30.0 : 0.0);
    diluted[i] = 10.0 + jitter(s2) + (i % 4 == 0 ? 1.0 : 0.0);
  }
  const auto caught = detector.analyze(visible);
  const auto missed = detector.analyze(diluted);
  EXPECT_TRUE(caught.detected);
  EXPECT_FALSE(missed.detected);
  EXPECT_GT(missed.score, caught.score);
}

TEST(DtwDetectorTest, ConfigValidation) {
  DtwDetectorConfig config;
  config.sampling_period = 0.0;
  EXPECT_THROW(DtwPulseDetector{config}, ParameterError);
  config = DtwDetectorConfig{};
  config.min_samples = 1;
  EXPECT_THROW(DtwPulseDetector{config}, ParameterError);
}

}  // namespace
}  // namespace pdos
