// Steady-state allocation audit for batched replicate execution
// (DESIGN.md §14).
//
// A warm ReplicateBatch round-robins co-resident replicates through
// ScenarioWorkspace::advance_run. Once the workspaces are warm (arena
// blocks, scheduler slabs, container capacities sized by a first run) and
// the runs are begun, the interleaved event-loop phase must perform ZERO
// heap allocations: the per-run accumulators are reserved up front by
// begin_run and everything else lives in retained arena memory. This is
// the property that makes R co-resident simulations cache- and
// allocator-friendly instead of R× allocator churn.
//
// Own test binary: it overrides global operator new, which must not leak
// into the other suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <optional>
#include <vector>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "core/planner.hpp"
#include "sweep/sweep.hpp"

namespace {

std::size_t g_new_calls = 0;

}  // namespace

// Counting global allocator hooks. Single-threaded test binary, so a plain
// counter is enough; all variants funnel through these two signatures.
void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdos {
namespace {

TEST(ReplicateAllocTest, WarmBatchedAdvanceLoopIsAllocationFree) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(4);
  RunControl control;
  control.warmup = sec(0.5);
  control.measure = sec(1.5);

  AttackPlanRequest request;
  request.victim = config.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(25);
  request.attack_packet_bytes = config.attack_packet_bytes;
  request.victim_min_rto = config.tcp.rto_min;
  const PulseTrain train = plan_attack_at_gamma(request, 0.5).train;

  ScenarioWorkspace a;
  ScenarioWorkspace b;
  ScenarioConfig config_a = config;
  config_a.seed = sweep::replicate_seed(7, 0);
  ScenarioConfig config_b = config;
  config_b.seed = sweep::replicate_seed(7, 1);

  // Warm both workspaces with a full run each: first runs size the arenas,
  // scheduler slabs, and result-vector capacities.
  (void)a.run(config_a, train, control);
  (void)b.run(config_b, train, control);

  // Second, warm runs in phased form. begin_run may still touch the heap
  // (the ActiveRun block itself); the interleaved advance loop may not.
  a.begin_run(config_a, train, control);
  b.begin_run(config_b, train, control);

  const Time horizon = control.horizon();
  const Time slice = ms(100);
  const std::size_t before = g_new_calls;
  bool done = false;
  for (Time slice_end = slice; !done; slice_end += slice) {
    const Time target = std::min(slice_end, horizon);
    const bool done_a = a.advance_run(target);
    const bool done_b = b.advance_run(target);
    done = done_a && done_b;
  }
  const std::size_t after = g_new_calls;
  EXPECT_EQ(after - before, 0u)
      << "warm co-resident advance loop allocated";

  const RunResult ra = a.finish_run();
  const RunResult rb = b.finish_run();
  EXPECT_GT(ra.goodput_bytes, 0u);
  EXPECT_GT(rb.goodput_bytes, 0u);
  EXPECT_NE(ra.goodput_bytes, rb.goodput_bytes);  // seeds actually differ
}

}  // namespace
}  // namespace pdos
