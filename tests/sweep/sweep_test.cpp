#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <utility>

#include "core/planner.hpp"
#include "sweep/spec.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace pdos::sweep {
namespace {

/// A spec small enough for unit tests: 3 flows, short windows, 2 gammas.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.flow_counts = {3};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.3, 0.6};
  spec.replicates = 2;
  spec.control.warmup = sec(0.5);
  spec.control.measure = sec(1.5);
  return spec;
}

TEST(PairIndex, MatchesMapReferenceAcrossRandomInserts) {
  // The flat sorted-vector index must behave exactly like the std::map it
  // replaced, including repeated keys, negative components, and lookups.
  PairIndex index;
  std::map<std::pair<int, int>, std::size_t> ref;
  std::mt19937 rng(20250806);
  std::size_t next_slot = 0;
  for (int i = 0; i < 2000; ++i) {
    const int a = static_cast<int>(rng() % 17) - 8;
    const int b = static_cast<int>(rng() % 16);
    const auto [slot, inserted] = index.insert(a, b, next_slot);
    const auto [it, ref_inserted] = ref.emplace(std::make_pair(a, b),
                                                next_slot);
    ASSERT_EQ(inserted, ref_inserted);
    ASSERT_EQ(slot, it->second);
    if (inserted) ++next_slot;
  }
  EXPECT_EQ(index.size(), ref.size());
  for (const auto& [key, slot] : ref) {
    ASSERT_TRUE(index.contains(key.first, key.second));
    ASSERT_EQ(index.at(key.first, key.second), slot);
  }
  EXPECT_FALSE(index.contains(99, 99));
  EXPECT_THROW(index.at(99, 99), InvariantError);
}

TEST(SeedDerivation, StableAndDistinct) {
  const std::uint64_t a = replicate_seed(1, 0);
  EXPECT_EQ(a, replicate_seed(1, 0));  // deterministic
  std::set<std::uint64_t> seeds;
  for (int rep = 0; rep < 100; ++rep) seeds.insert(replicate_seed(1, rep));
  EXPECT_EQ(seeds.size(), 100u);  // no collisions across replicates
  EXPECT_NE(replicate_seed(1, 0), replicate_seed(2, 0));  // base matters
}

TEST(DeriveSeed, AsymmetricAndMixing) {
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(0, 0), 0u);
}

TEST(SweepSpec, EnumerationIsStable) {
  const SweepSpec spec = tiny_spec();
  const auto a = spec.enumerate();
  const auto b = spec.enumerate();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 4u);  // 2 gammas x 2 replicates
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gamma, b[i].gamma);
    EXPECT_EQ(a[i].replicate, b[i].replicate);
  }
}

TEST(SweepSpec, AutoGammaGridRespectsFeasibility) {
  SweepSpec spec = tiny_spec();
  spec.gammas.clear();  // auto grid
  spec.gamma_points = 9;
  spec.replicates = 1;
  const auto points = spec.enumerate();
  ASSERT_FALSE(points.empty());
  const double c_attack = mbps(25) / mbps(15);
  for (const auto& point : points) {
    EXPECT_GT(point.gamma, 0.0);
    EXPECT_LT(point.gamma, 1.0);
    EXPECT_LE(point.gamma, c_attack);
  }
}

TEST(SweepSpec, ExplicitPointsPassThrough) {
  SweepSpec spec;
  PointSpec point;
  point.flows = 5;
  point.gamma = 0.42;
  spec.explicit_points = {point};
  spec.replicates = 3;
  const auto points = spec.enumerate();
  ASSERT_EQ(points.size(), 3u);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(points[static_cast<std::size_t>(rep)].replicate, rep);
    EXPECT_EQ(points[static_cast<std::size_t>(rep)].gamma, 0.42);
  }
}

// The acceptance-criterion test: the same spec at 1 thread and at 8
// threads must produce byte-identical CSV (and JSON) output.
TEST(RunSweep, OutputIsByteIdenticalAcrossThreadCounts) {
  const SweepSpec spec = tiny_spec();

  SweepOptions serial;
  serial.threads = 1;
  const SweepResult a = run_sweep(spec, serial);

  SweepOptions parallel;
  parallel.threads = 8;
  const SweepResult b = run_sweep(spec, parallel);

  EXPECT_EQ(a.threads, 1);
  EXPECT_EQ(b.threads, 8);
  EXPECT_EQ(a.failures(), 0u);
  EXPECT_EQ(b.failures(), 0u);

  std::ostringstream csv_a, csv_b, json_a, json_b;
  a.write_csv(csv_a);
  b.write_csv(csv_b);
  a.write_json(json_a);
  b.write_json(json_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());
}

TEST(RunSweep, ReplicatesDiffer) {
  SweepSpec spec = tiny_spec();
  spec.gammas = {0.6};
  const SweepResult result = run_sweep(spec, {});
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_NE(result.points[0].seed, result.points[1].seed);
  // Different seeds, different stochastic environment, different goodput.
  EXPECT_NE(result.points[0].goodput, result.points[1].goodput);
}

TEST(RunSweep, CancellationPropagates) {
  SweepSpec spec;
  spec.control.warmup = sec(0.5);
  spec.control.measure = sec(1.0);
  // Point 0 is infeasible (gamma > C_attack forces T_space < 0, the planner
  // throws); the rest are fine. With one thread the failure lands before
  // any later point is dispatched, so everything after it must be skipped.
  PointSpec bad;
  bad.flows = 3;
  bad.gamma = 5.0;
  PointSpec good;
  good.flows = 3;
  good.gamma = 0.5;
  spec.explicit_points = {bad, good, good, good};

  SweepOptions options;
  options.threads = 1;
  const SweepResult result = run_sweep(spec, options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.failures(), 1u);
  EXPECT_EQ(result.points[0].status, PointStatus::kFailed);
  EXPECT_FALSE(result.points[0].error.empty());
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_EQ(result.points[i].status, PointStatus::kSkipped);
  }
}

TEST(RunSweep, KeepGoingRunsPastFailures) {
  SweepSpec spec;
  spec.control.warmup = sec(0.5);
  spec.control.measure = sec(1.0);
  PointSpec bad;
  bad.flows = 3;
  bad.gamma = 5.0;
  PointSpec good;
  good.flows = 3;
  good.gamma = 0.5;
  spec.explicit_points = {bad, good};

  SweepOptions options;
  options.threads = 2;
  options.cancel_on_failure = false;
  const SweepResult result = run_sweep(spec, options);
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(result.failures(), 1u);
  EXPECT_EQ(result.completed(), 1u);
  EXPECT_EQ(result.points[1].status, PointStatus::kOk);
}

TEST(RunSweep, ProgressReachesTotal) {
  SweepSpec spec = tiny_spec();
  spec.gammas = {0.5};
  spec.replicates = 1;
  std::atomic<std::size_t> last_done{0};
  std::atomic<std::size_t> total{0};
  SweepOptions options;
  options.threads = 2;
  options.on_progress = [&](const SweepProgress& progress) {
    EXPECT_GT(progress.done, last_done.load());  // serialized + monotonic
    last_done.store(progress.done);
    total.store(progress.total);
  };
  const SweepResult result = run_sweep(spec, options);
  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(last_done.load(), total.load());
  EXPECT_EQ(total.load(), 2u);  // 1 baseline + 1 point
}

TEST(RunSweep, CacheHitsAreWeightedNearZeroInEta) {
  // Satellite of DESIGN.md §14: the ETA extrapolates wall cost from the
  // SIMULATED tasks only. An all-hit --resume replay must report eta 0 and
  // cached == done at every snapshot, instead of pricing microsecond cache
  // replays at full simulation cost.
  char name[] = "/tmp/pdos_sweep_eta_test_XXXXXX";
  const int fd = mkstemp(name);
  ASSERT_GE(fd, 0);
  close(fd);
  std::remove(name);
  const std::string cache_path = name;

  SweepSpec spec = tiny_spec();
  SweepOptions options;
  options.threads = 1;
  options.cache_path = cache_path;

  // First pass simulates everything: no snapshot reports a cache hit.
  std::size_t snapshots = 0;
  options.on_progress = [&](const SweepProgress& progress) {
    EXPECT_EQ(progress.cached, 0u);
    ++snapshots;
  };
  const SweepResult first = run_sweep(spec, options);
  ASSERT_EQ(first.failures(), 0u);
  EXPECT_GT(snapshots, 0u);

  // Resume: every task replays from the cache, so the simulated-task count
  // stays zero and the hit-weighted ETA must stay exactly 0.
  options.on_progress = [](const SweepProgress& progress) {
    EXPECT_EQ(progress.cached, progress.done);
    EXPECT_EQ(progress.eta_seconds, 0.0);
  };
  const SweepResult resumed = run_sweep(spec, options);
  EXPECT_EQ(resumed.failures(), 0u);
  EXPECT_EQ(resumed.cache_hits, resumed.points.size() + 2u);  // + baselines

  std::remove(cache_path.c_str());
}

TEST(RunSweep, MeasurementsAreSane) {
  SweepSpec spec = tiny_spec();
  spec.gammas = {0.6};
  spec.replicates = 1;
  const SweepResult result = run_sweep(spec, {});
  ASSERT_EQ(result.points.size(), 1u);
  const PointResult& point = result.points[0];
  ASSERT_EQ(point.status, PointStatus::kOk);
  EXPECT_GT(point.baseline_goodput, 0.0);
  EXPECT_GT(point.goodput, 0.0);
  EXPECT_LT(point.goodput, point.baseline_goodput);  // the attack hurts
  EXPECT_GE(point.measured_degradation, 0.0);
  EXPECT_GT(point.attack_packets, 0u);
  EXPECT_GT(point.c_psi, 0.0);
}

TEST(SpecParser, ParsesTheFullGrammar) {
  const SpecFile file = parse_spec(R"(
# a comment
scenario     = ns2
queue        = droptail
backend      = fluid
hybrid_foreground = 6
flows        = 3, 5
textent_ms   = 50, 75
rattack_mbps = 25
gamma        = 0.3, 0.6
kappa        = 2.0
replicates   = 2
base_seed    = 7
warmup_s     = 1
measure_s    = 2
threads      = 4
csv          = out.csv
json         = out.json
)");
  EXPECT_EQ(file.spec.scenario, ScenarioKind::kNs2Dumbbell);
  EXPECT_EQ(file.spec.queue, QueueKind::kDropTail);
  EXPECT_EQ(file.spec.backend, Backend::kFluid);
  EXPECT_EQ(file.spec.hybrid_foreground, 6);
  EXPECT_EQ(file.spec.flow_counts, (std::vector<int>{3, 5}));
  ASSERT_EQ(file.spec.textents.size(), 2u);
  EXPECT_DOUBLE_EQ(file.spec.textents[1], ms(75));
  EXPECT_DOUBLE_EQ(file.spec.kappa, 2.0);
  EXPECT_EQ(file.spec.replicates, 2);
  EXPECT_EQ(file.spec.base_seed, 7u);
  EXPECT_DOUBLE_EQ(file.spec.control.measure, sec(2));
  EXPECT_EQ(file.options.threads, 4);
  EXPECT_EQ(file.csv_path, "out.csv");
  EXPECT_EQ(file.json_path, "out.json");
}

TEST(SpecParser, AutoGammaAndDefaults) {
  const SpecFile file = parse_spec("gamma = auto\n");
  EXPECT_TRUE(file.spec.gammas.empty());
  EXPECT_EQ(file.options.threads, 0);
}

TEST(SpecParser, RejectsUnknownKeysAndGarbage) {
  EXPECT_THROW(parse_spec("no_such_key = 1\n"), ParameterError);
  EXPECT_THROW(parse_spec("flows\n"), ParameterError);
  EXPECT_THROW(parse_spec("flows = abc\n"), ParameterError);
  EXPECT_THROW(parse_spec("scenario = ns3\n"), ParameterError);
  EXPECT_THROW(parse_spec("backend = warp\n"), ParameterError);
}

TEST(RunSweep, FluidBackendProducesComparableDegradation) {
  SweepSpec spec;
  spec.flow_counts = {15};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.5};
  spec.control.warmup = sec(5);
  spec.control.measure = sec(10);

  SweepOptions options;
  options.threads = 1;
  const SweepResult packet = run_sweep(spec, options);
  spec.backend = Backend::kFluid;
  const SweepResult fluid = run_sweep(spec, options);
  ASSERT_EQ(packet.failures(), 0u);
  ASSERT_EQ(fluid.failures(), 0u);
  ASSERT_EQ(packet.points.size(), 1u);
  ASSERT_EQ(fluid.points.size(), 1u);
  EXPECT_GT(fluid.points[0].baseline_goodput, 0.0);
  EXPECT_NEAR(fluid.points[0].measured_degradation,
              packet.points[0].measured_degradation, 0.25);
}

TEST(RunSweep, FluidBatchedPointsMatchDirectMeasurement) {
  // The fluid tier's phase-2 path groups a flows block's points, dedupes
  // replicates (fluid is seed-invariant), and solves the unique plans as
  // lanes of batched fluid evaluations (DESIGN.md §16). Every recorded
  // point must still be bit-identical to a direct single-point
  // measure_gain on the same scenario — across a grid wide enough to
  // force multiple batches and a ragged tail (2 textents × 5 gammas = 10
  // unique plans at width 8), plus replicates that must fan out.
  SweepSpec spec;
  spec.flow_counts = {9};
  spec.textents = {ms(50), ms(80)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.2, 0.35, 0.5, 0.65, 0.8};
  spec.replicates = 2;
  spec.backend = Backend::kFluid;
  spec.control.warmup = sec(2);
  spec.control.measure = sec(6);

  SweepOptions options;
  options.threads = 1;
  const SweepResult swept = run_sweep(spec, options);
  ASSERT_EQ(swept.failures(), 0u);
  ASSERT_EQ(swept.points.size(), 20u);

  for (const PointResult& point : swept.points) {
    const ScenarioConfig scenario = spec.make_scenario(point.point);
    const RunControl& control = spec.control;
    const BitRate baseline = measure_baseline(scenario, control);
    EXPECT_EQ(point.baseline_goodput, baseline);
    // The exact train the sweep planner derives for this point.
    AttackPlanRequest request;
    request.victim = scenario.victim_profile();
    request.textent = point.point.textent;
    request.rattack = point.point.rattack;
    request.kappa = point.point.kappa;
    request.attack_packet_bytes = scenario.attack_packet_bytes;
    request.victim_min_rto = scenario.tcp.rto_min;
    const AttackPlan plan = plan_attack_at_gamma(request, point.point.gamma);
    const GainMeasurement direct = measure_gain(
        scenario, plan.train, point.point.kappa, control, baseline);
    EXPECT_EQ(point.measured_gain, direct.gain)
        << "textent " << point.point.textent << " gamma "
        << point.point.gamma << " replicate " << point.point.replicate;
    EXPECT_EQ(point.measured_degradation, direct.degradation);
    EXPECT_EQ(point.goodput, direct.run.goodput_rate);
  }
}

TEST(SweepResult, CsvHasHeaderAndOneRowPerPoint) {
  SweepSpec spec = tiny_spec();
  spec.gammas = {0.5};
  spec.replicates = 1;
  const SweepResult result = run_sweep(spec, {});
  std::ostringstream out;
  result.write_csv(out);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u + result.points.size());
  EXPECT_EQ(csv.find("index,scenario_flows,"), 0u);
}

}  // namespace
}  // namespace pdos::sweep
