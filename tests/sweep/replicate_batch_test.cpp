// ReplicateBatch (DESIGN.md §14): the batched replicate runner must be
// BIT-identical to sequential per-replicate execution — every counter,
// every double, every series bin, and the sweep CSV bytes. These tests are
// the determinism contract the point-cache exclusion of `batch_replicates`
// rests on.
#include "sweep/replicate_batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "attack/pulse.hpp"
#include "core/planner.hpp"
#include "sweep/sweep.hpp"

namespace pdos::sweep {
namespace {

/// Small-but-real scenario: 4 flows, short windows, a genuine pulse train.
ScenarioConfig small_config(Backend backend) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(4);
  config.backend = backend;
  if (backend == Backend::kHybrid) config.hybrid_foreground = 2;
  return config;
}

RunControl quick_control() {
  RunControl control;
  control.warmup = sec(0.5);
  control.measure = sec(1.5);
  return control;
}

PulseTrain small_attack(const ScenarioConfig& config) {
  AttackPlanRequest request;
  request.victim = config.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(25);
  request.attack_packet_bytes = config.attack_packet_bytes;
  request.victim_min_rto = config.tcp.rto_min;
  return plan_attack_at_gamma(request, 0.5).train;
}

std::vector<std::uint64_t> seeds_for(std::size_t n) {
  std::vector<std::uint64_t> seeds;
  for (std::size_t r = 0; r < n; ++r) {
    seeds.push_back(replicate_seed(20250808, static_cast<int>(r)));
  }
  return seeds;
}

/// EXPECT_EQ on every field of RunResult — doubles compared exactly, since
/// the contract is bit-identity, not tolerance.
void expect_run_eq(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.goodput_bytes, b.goodput_bytes);
  EXPECT_EQ(a.goodput_rate, b.goodput_rate);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.per_flow_goodput, b.per_flow_goodput);
  EXPECT_EQ(a.fairness_index, b.fairness_index);
  EXPECT_EQ(a.incoming_bins, b.incoming_bins);
  EXPECT_EQ(a.attack_bins, b.attack_bins);
  EXPECT_EQ(a.bin_width, b.bin_width);
  EXPECT_EQ(a.bottleneck_queue.enqueued, b.bottleneck_queue.enqueued);
  EXPECT_EQ(a.bottleneck_queue.dequeued, b.bottleneck_queue.dequeued);
  EXPECT_EQ(a.bottleneck_queue.dropped, b.bottleneck_queue.dropped);
  EXPECT_EQ(a.bottleneck_queue.dropped_tcp, b.bottleneck_queue.dropped_tcp);
  EXPECT_EQ(a.bottleneck_queue.dropped_attack,
            b.bottleneck_queue.dropped_attack);
  EXPECT_EQ(a.bottleneck_queue.bytes_dropped,
            b.bottleneck_queue.bytes_dropped);
  EXPECT_EQ(a.red_early_drops, b.red_early_drops);
  EXPECT_EQ(a.red_forced_drops, b.red_forced_drops);
  EXPECT_EQ(a.queue_occupancy, b.queue_occupancy);
  EXPECT_EQ(a.red_avg_samples, b.red_avg_samples);
  EXPECT_EQ(a.total_timeouts, b.total_timeouts);
  EXPECT_EQ(a.total_fast_recoveries, b.total_fast_recoveries);
  EXPECT_EQ(a.total_retransmits, b.total_retransmits);
  EXPECT_EQ(a.mean_delivery_jitter, b.mean_delivery_jitter);
  EXPECT_EQ(a.attack_packets_sent, b.attack_packets_sent);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.cwnd_trace, b.cwnd_trace);
}

class ReplicateBatchBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ReplicateBatchBackends, AttackRunsMatchSequentialBitForBit) {
  const ScenarioConfig config = small_config(GetParam());
  const RunControl control = quick_control();
  const PulseTrain train = small_attack(config);
  const std::vector<std::uint64_t> seeds = seeds_for(3);

  std::vector<RunResult> sequential;
  {
    ScenarioWorkspace ws;
    for (std::uint64_t seed : seeds) {
      ScenarioConfig replicate = config;
      replicate.seed = seed;
      sequential.push_back(ws.run(replicate, train, control));
    }
  }

  ReplicateBatch batch;
  const std::vector<RunResult> batched =
      batch.run(config, train, control, seeds);
  ASSERT_EQ(batched.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("replicate " + std::to_string(i));
    expect_run_eq(batched[i], sequential[i]);
  }
}

TEST_P(ReplicateBatchBackends, BaselinesMatchSequentialBitForBit) {
  const ScenarioConfig config = small_config(GetParam());
  const RunControl control = quick_control();
  const std::vector<std::uint64_t> seeds = seeds_for(3);

  std::vector<BitRate> sequential;
  {
    ScenarioWorkspace ws;
    for (std::uint64_t seed : seeds) {
      ScenarioConfig replicate = config;
      replicate.seed = seed;
      sequential.push_back(ws.baseline(replicate, control));
    }
  }

  ReplicateBatch batch;
  const std::vector<BitRate> batched = batch.baseline(config, control, seeds);
  ASSERT_EQ(batched.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batched[i], sequential[i]) << "replicate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PacketTiers, ReplicateBatchBackends,
                         ::testing::Values(Backend::kFull, Backend::kFast,
                                           Backend::kHybrid),
                         [](const auto& info) {
                           return backend_name(info.param);
                         });

TEST(ReplicateBatch, SliceWidthNeverChangesResults) {
  // The round-robin quantum is a wall-clock locality knob only: any slice
  // partitions the same scheduler pops in the same order.
  const ScenarioConfig config = small_config(Backend::kFull);
  const RunControl control = quick_control();
  const PulseTrain train = small_attack(config);
  const std::vector<std::uint64_t> seeds = seeds_for(2);

  ReplicateBatchOptions coarse;
  coarse.slice = sec(10.0);  // one slice covers the whole horizon
  ReplicateBatch coarse_batch(coarse);
  const auto a = coarse_batch.run(config, train, control, seeds);

  ReplicateBatchOptions fine;
  fine.slice = ms(7);  // hundreds of slices, never aligned to events
  ReplicateBatch fine_batch(fine);
  const auto b = fine_batch.run(config, train, control, seeds);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("replicate " + std::to_string(i));
    expect_run_eq(a[i], b[i]);
  }
}

TEST(ReplicateBatch, FluidFanOutMatchesPerSeedSolves) {
  // The fluid solver never reads config.seed, so the batch solves once and
  // fans out; sequential per-seed solves must produce the exact same bits.
  const ScenarioConfig config = small_config(Backend::kFluid);
  const RunControl control = quick_control();
  const PulseTrain train = small_attack(config);
  const std::vector<std::uint64_t> seeds = seeds_for(3);

  std::vector<RunResult> sequential;
  {
    ScenarioWorkspace ws;
    for (std::uint64_t seed : seeds) {
      ScenarioConfig replicate = config;
      replicate.seed = seed;
      sequential.push_back(ws.run(replicate, train, control));
    }
  }

  ReplicateBatch batch;
  const auto batched = batch.run(config, train, control, seeds);
  ASSERT_EQ(batched.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("replicate " + std::to_string(i));
    expect_run_eq(batched[i], sequential[i]);
  }
}

TEST(ReplicateBatch, SlotsStayWarmAcrossCalls) {
  const ScenarioConfig config = small_config(Backend::kFast);
  const RunControl control = quick_control();
  const std::vector<std::uint64_t> seeds = seeds_for(3);

  ReplicateBatch batch;
  const auto first = batch.baseline(config, control, seeds);
  EXPECT_EQ(batch.slots(), 3u);
  const auto second = batch.baseline(config, control, seeds);
  EXPECT_EQ(batch.slots(), 3u);  // reused, not regrown
  EXPECT_EQ(first, second);      // warm rebuilds are bit-identical
}

/// run_sweep end-to-end: batched on/off must yield identical result tables
/// and identical CSV bytes, for both packet tiers and both replicate counts.
struct SweepCase {
  Backend backend;
  int replicates;
};

class BatchedSweepEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BatchedSweepEquivalence, CsvAndEveryCounterMatchSequential) {
  SweepSpec spec;
  spec.backend = GetParam().backend;
  spec.flow_counts = {3};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.4};
  spec.replicates = GetParam().replicates;
  spec.control.warmup = sec(0.5);
  spec.control.measure = sec(1.0);

  SweepSpec sequential_spec = spec;
  sequential_spec.batch_replicates = false;
  SweepSpec batched_spec = spec;
  batched_spec.batch_replicates = true;

  SweepOptions options;
  options.threads = 2;
  const SweepResult sequential = run_sweep(sequential_spec, options);
  const SweepResult batched = run_sweep(batched_spec, options);

  ASSERT_EQ(sequential.failures(), 0u);
  ASSERT_EQ(batched.failures(), 0u);
  ASSERT_EQ(batched.points.size(), sequential.points.size());
  for (std::size_t i = 0; i < sequential.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const PointResult& a = batched.points[i];
    const PointResult& b = sequential.points[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.c_psi, b.c_psi);
    EXPECT_EQ(a.analytic_degradation, b.analytic_degradation);
    EXPECT_EQ(a.analytic_gain, b.analytic_gain);
    EXPECT_EQ(a.shrew, b.shrew);
    EXPECT_EQ(a.baseline_goodput, b.baseline_goodput);
    EXPECT_EQ(a.goodput, b.goodput);
    EXPECT_EQ(a.measured_degradation, b.measured_degradation);
    EXPECT_EQ(a.measured_gain, b.measured_gain);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.fairness, b.fairness);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.fast_recoveries, b.fast_recoveries);
    EXPECT_EQ(a.attack_packets, b.attack_packets);
    EXPECT_EQ(a.events, b.events);
  }

  std::ostringstream csv_sequential, csv_batched;
  sequential.write_csv(csv_sequential);
  batched.write_csv(csv_batched);
  EXPECT_EQ(csv_batched.str(), csv_sequential.str());
}

INSTANTIATE_TEST_SUITE_P(
    TiersAndReplicateCounts, BatchedSweepEquivalence,
    ::testing::Values(SweepCase{Backend::kFull, 2},
                      SweepCase{Backend::kFull, 8},
                      SweepCase{Backend::kFast, 2},
                      SweepCase{Backend::kFast, 8}),
    [](const auto& info) {
      return std::string(backend_name(info.param.backend)) + "R" +
             std::to_string(info.param.replicates);
    });

TEST(BatchedSweep, FluidReplicateDedupeKeepsCsvBytes) {
  // The fluid tier's once-per-point solve (the throughput win the bench
  // gates) must be invisible in the output: same CSV bytes as solving every
  // replicate.
  SweepSpec spec;
  spec.backend = Backend::kFluid;
  spec.flow_counts = {3};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.4, 0.6};
  spec.replicates = 4;
  spec.control.warmup = sec(0.5);
  spec.control.measure = sec(1.0);

  SweepSpec sequential_spec = spec;
  sequential_spec.batch_replicates = false;
  const SweepResult sequential = run_sweep(sequential_spec, {});
  const SweepResult batched = run_sweep(spec, {});
  ASSERT_EQ(sequential.failures(), 0u);
  ASSERT_EQ(batched.failures(), 0u);

  std::ostringstream a, b;
  sequential.write_csv(a);
  batched.write_csv(b);
  EXPECT_EQ(b.str(), a.str());
}

TEST(AggregateReplicates, MeanStddevAndCiOverReplicates) {
  // Hand-checkable statistics: two axes groups, one with gains {1, 2, 3}
  // (mean 2, sample stddev 1), one with a failed replicate excluded.
  SweepResult result;
  auto push = [&result](double gamma, int replicate, double gain,
                        PointStatus status) {
    PointResult r;
    r.index = result.points.size();
    r.point.gamma = gamma;
    r.point.replicate = replicate;
    r.status = status;
    r.measured_gain = gain;
    r.measured_degradation = gain / 2.0;
    r.goodput = gain * 1e6;
    result.points.push_back(r);
  };
  push(0.3, 0, 1.0, PointStatus::kOk);
  push(0.3, 1, 2.0, PointStatus::kOk);
  push(0.3, 2, 3.0, PointStatus::kOk);
  push(0.6, 0, 5.0, PointStatus::kOk);
  push(0.6, 1, 0.0, PointStatus::kFailed);
  push(0.6, 2, 7.0, PointStatus::kOk);

  const std::vector<AggregateRow> rows = aggregate_replicates(result);
  ASSERT_EQ(rows.size(), 2u);

  EXPECT_EQ(rows[0].replicates, 3u);
  EXPECT_DOUBLE_EQ(rows[0].mean_gain, 2.0);
  EXPECT_DOUBLE_EQ(rows[0].stddev_gain, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].ci95_gain, 1.96 / std::sqrt(3.0));
  EXPECT_DOUBLE_EQ(rows[0].mean_degradation, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].mean_goodput, 2e6);

  EXPECT_EQ(rows[1].replicates, 2u);  // the failed replicate is excluded
  EXPECT_DOUBLE_EQ(rows[1].mean_gain, 6.0);
  EXPECT_DOUBLE_EQ(rows[1].stddev_gain, std::sqrt(2.0));

  std::ostringstream csv;
  write_aggregate_csv(rows, csv);
  EXPECT_NE(csv.str().find("mean_gain"), std::string::npos);
  EXPECT_NE(csv.str().find("ci95_gain"), std::string::npos);

  std::ostringstream json;
  write_aggregate_json(rows, json);
  EXPECT_EQ(json.str().front(), '[');
  EXPECT_NE(json.str().find("\"replicates\": 3"), std::string::npos);
}

TEST(AggregateReplicates, SingleReplicateHasZeroSpread) {
  SweepResult result;
  PointResult r;
  r.status = PointStatus::kOk;
  r.measured_gain = 4.2;
  result.points.push_back(r);
  const auto rows = aggregate_replicates(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].replicates, 1u);
  EXPECT_DOUBLE_EQ(rows[0].mean_gain, 4.2);
  EXPECT_DOUBLE_EQ(rows[0].stddev_gain, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].ci95_gain, 0.0);
}

}  // namespace
}  // namespace pdos::sweep
