// Campaign orchestration: cross-process dedup through the shared store,
// the no-duplicated-work invariant of run_campaign, byte-identical merged
// CSVs across campaigns, and lookup-only replay.
#include "sweep/campaign.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sweep/campaign_store.hpp"

namespace pdos::sweep {
namespace {

class TempDir {
 public:
  TempDir() {
    char name[] = "/tmp/pdos_campaign_test_XXXXXX";
    EXPECT_NE(mkdtemp(name), nullptr);
    path_ = name;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string sub(const std::string& leaf) const { return path_ + "/" + leaf; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Small, fast-backend grid: 2 points x 2 replicates + 2 baselines.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.backend = Backend::kFast;
  spec.flow_counts = {3};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.3, 0.6};
  spec.replicates = 2;
  spec.control.warmup = sec(0.5);
  spec.control.measure = sec(1.5);
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string csv_of(const SweepResult& result) {
  std::ostringstream out;
  result.write_csv(out);
  return out.str();
}

// The cross-process dedup satellite: a child process sweeps the grid cold
// through a CampaignStore, then this process sweeps the same grid against
// the same store — every task must be a hit and the tables byte-identical.
TEST(CampaignTest, SecondProcessGetsAllHitsAndIdenticalCsv) {
  TempDir dir;
  const SweepSpec spec = tiny_spec();
  const std::string child_csv = dir.sub("child.csv");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CampaignStore store(dir.sub("store.d"));
    SweepOptions options;
    options.threads = 1;
    options.store = &store;
    const SweepResult result = run_sweep(spec, options);
    std::ofstream out(child_csv, std::ios::binary);
    result.write_csv(out);
    out.close();  // _exit skips destructors; flush explicitly
    _exit(result.failures() == 0 ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  CampaignStore store(dir.sub("store.d"));
  SweepOptions options;
  options.threads = 1;
  options.store = &store;
  const SweepResult result = run_sweep(spec, options);
  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(result.simulated, 0u);  // 100% cache hits
  EXPECT_EQ(result.cache_hits, count_unique_tasks(spec));
  EXPECT_EQ(csv_of(result), slurp(child_csv));
}

TEST(CampaignTest, ColdCampaignNeverDuplicatesWork) {
  TempDir dir;
  CampaignSpec spec;
  spec.spec = tiny_spec();
  spec.csv_path = dir.sub("out/tiny.csv");
  spec.name = "tiny";

  CampaignOptions options;
  options.store_dir = dir.sub("store.d");
  options.workers = 2;
  options.threads = 1;
  options.claim_poll_seconds = 0.01;

  const CampaignResult cold = run_campaign({spec}, options);
  EXPECT_TRUE(cold.ok());
  EXPECT_EQ(cold.worker_failures, 0);
  EXPECT_EQ(cold.unique_tasks, count_unique_tasks(spec.spec));
  // The claim protocol's whole point: K workers, each walking the full
  // grid, together simulate each unique task at most once.
  EXPECT_LE(cold.worker_simulated + cold.final_simulated, cold.unique_tasks);
  EXPECT_GT(cold.worker_simulated + cold.final_simulated, 0u);
  const std::string cold_csv = slurp(spec.csv_path);
  EXPECT_FALSE(cold_csv.empty());

  // Resubmitting the identical campaign answers everything from the store
  // and reproduces the merged CSV byte for byte.
  CampaignSpec again = spec;
  again.csv_path = dir.sub("out/tiny2.csv");
  const CampaignResult warm = run_campaign({again}, options);
  EXPECT_TRUE(warm.ok());
  EXPECT_EQ(warm.worker_simulated, 0u);
  EXPECT_EQ(warm.final_simulated, 0u);
  EXPECT_EQ(slurp(again.csv_path), cold_csv);
}

TEST(CampaignTest, OverlappingSpecsShareTheStore) {
  TempDir dir;
  // Warm the store with a 1-gamma subset...
  SweepSpec subset = tiny_spec();
  subset.gammas = {0.3};
  {
    CampaignStore store(dir.sub("store.d"));
    SweepOptions options;
    options.threads = 1;
    options.store = &store;
    const SweepResult r = run_sweep(subset, options);
    ASSERT_EQ(r.failures(), 0u);
  }
  // ...then a lookup-only replay of the 2-gamma superset resolves exactly
  // the shared sub-grid (keys are content hashes, not per-spec).
  CampaignStore store(dir.sub("store.d"));
  const SweepSpec superset = tiny_spec();
  const SweepResult replay = replay_from_store(superset, store);
  std::size_t ok = 0, skipped = 0;
  for (const auto& point : replay.points) {
    if (point.status == PointStatus::kOk) ++ok;
    if (point.status == PointStatus::kSkipped) ++skipped;
  }
  EXPECT_EQ(ok, subset.enumerate().size());
  EXPECT_EQ(skipped, superset.enumerate().size() - subset.enumerate().size());

  // A full sweep of the superset only simulates the missing gamma.
  SweepOptions options;
  options.threads = 1;
  options.store = &store;
  const SweepResult full = run_sweep(superset, options);
  EXPECT_EQ(full.failures(), 0u);
  EXPECT_EQ(full.simulated,
            count_unique_tasks(superset) - count_unique_tasks(subset));
}

TEST(CampaignTest, CountUniqueTasksIsPointsPlusUniqueBaselines) {
  const SweepSpec spec = tiny_spec();
  // One flow count: one baseline per replicate, shared by both gammas.
  EXPECT_EQ(count_unique_tasks(spec),
            spec.enumerate().size() + spec.replicates);
}

}  // namespace
}  // namespace pdos::sweep
