// Warm-reuse determinism: a ScenarioWorkspace that has already run one
// scenario and been rewound must produce bit-identical results to a fresh
// Simulator for the next scenario — the reset contract the sweep engine's
// worker reuse depends on. Also pins the end-to-end resume path: running
// the same sweep twice against one cache file answers every task from the
// cache with a byte-identical CSV.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "sweep/sweep.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

RunControl quick_control() {
  RunControl control;
  control.warmup = sec(2);
  control.measure = sec(5);
  return control;
}

PulseTrain quick_train() {
  PulseTrain train;
  train.textent = ms(50);
  train.rattack = mbps(25);
  train.tspace = ms(450);
  train.packet_bytes = 1040;
  return train;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.goodput_bytes, b.goodput_bytes);
  EXPECT_EQ(a.goodput_rate, b.goodput_rate);
  EXPECT_EQ(a.per_flow_goodput, b.per_flow_goodput);
  EXPECT_EQ(a.fairness_index, b.fairness_index);
  EXPECT_EQ(a.incoming_bins, b.incoming_bins);
  EXPECT_EQ(a.attack_bins, b.attack_bins);
  EXPECT_EQ(a.queue_occupancy, b.queue_occupancy);
  EXPECT_EQ(a.red_avg_samples, b.red_avg_samples);
  EXPECT_EQ(a.bottleneck_queue.enqueued, b.bottleneck_queue.enqueued);
  EXPECT_EQ(a.bottleneck_queue.dropped, b.bottleneck_queue.dropped);
  EXPECT_EQ(a.total_timeouts, b.total_timeouts);
  EXPECT_EQ(a.total_fast_recoveries, b.total_fast_recoveries);
  EXPECT_EQ(a.total_retransmits, b.total_retransmits);
  EXPECT_EQ(a.mean_delivery_jitter, b.mean_delivery_jitter);
  EXPECT_EQ(a.attack_packets_sent, b.attack_packets_sent);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(WarmReuseTest, ReusedWorkspaceMatchesFreshRuns) {
  const RunControl control = quick_control();
  const ScenarioConfig small = ScenarioConfig::ns2_dumbbell(5);
  ScenarioConfig large = ScenarioConfig::ns2_dumbbell(9);
  large.seed = 77;

  // Fresh-simulator references, one per scenario.
  const RunResult fresh_small = run_scenario(small, std::nullopt, control);
  const RunResult fresh_large =
      run_scenario(large, quick_train(), control);

  // One workspace runs them back to back (and once more to catch state
  // leaking across MORE than one reset).
  ScenarioWorkspace ws;
  expect_identical(ws.run(small, std::nullopt, control), fresh_small);
  expect_identical(ws.run(large, quick_train(), control), fresh_large);
  expect_identical(ws.run(small, std::nullopt, control), fresh_small);
}

TEST(WarmReuseTest, WarmRunsDoNotGrowTheArena) {
  const RunControl control = quick_control();
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);

  ScenarioWorkspace ws;
  ws.run(config, quick_train(), control);
  const std::size_t reserved = ws.simulator().arena().bytes_reserved();
  ws.run(config, quick_train(), control);
  EXPECT_EQ(ws.simulator().arena().bytes_reserved(), reserved)
      << "an identical warm run must replay inside the retained blocks";
}

TEST(WarmReuseTest, CachedSweepReplaysByteIdentically) {
  char name[] = "/tmp/pdos_warm_reuse_cache_XXXXXX";
  const int fd = mkstemp(name);
  ASSERT_GE(fd, 0);
  close(fd);
  std::remove(name);
  const std::string cache_path = name;

  sweep::SweepSpec spec;
  spec.flow_counts = {5, 7};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.4, 0.8};
  spec.control.warmup = sec(1);
  spec.control.measure = sec(3);

  sweep::SweepOptions options;
  options.threads = 1;
  options.cache_path = cache_path;

  const sweep::SweepResult cold = sweep::run_sweep(spec, options);
  ASSERT_EQ(cold.failures(), 0u);
  EXPECT_EQ(cold.cache_hits, 0u);

  const sweep::SweepResult resumed = sweep::run_sweep(spec, options);
  ASSERT_EQ(resumed.failures(), 0u);
  // Every task answered from the cache: one baseline per flow count plus
  // every point.
  EXPECT_EQ(resumed.cache_hits, 2u + cold.points.size());

  std::ostringstream cold_csv;
  std::ostringstream resumed_csv;
  cold.write_csv(cold_csv);
  resumed.write_csv(resumed_csv);
  EXPECT_EQ(cold_csv.str(), resumed_csv.str())
      << "resume must reproduce the cold CSV byte for byte";

  std::remove(cache_path.c_str());
}

TEST(WarmReuseTest, SweepWithoutCachePathRecordsNoHits) {
  sweep::SweepSpec spec;
  spec.flow_counts = {5};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.5};
  spec.control.warmup = sec(1);
  spec.control.measure = sec(2);
  sweep::SweepOptions options;
  options.threads = 1;
  const sweep::SweepResult result = sweep::run_sweep(spec, options);
  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(result.cache_hits, 0u);
}

}  // namespace
}  // namespace pdos
