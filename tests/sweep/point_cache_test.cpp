// PointCache: key derivation sensitivity, persistence round-trips, and
// tolerance of corrupt or foreign cache files.
#include "sweep/point_cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sweep/sweep.hpp"

namespace pdos::sweep {
namespace {

class TempCacheFile {
 public:
  TempCacheFile() {
    char name[] = "/tmp/pdos_point_cache_test_XXXXXX";
    const int fd = mkstemp(name);
    EXPECT_GE(fd, 0);
    if (fd >= 0) close(fd);
    path_ = name;
    std::remove(path_.c_str());  // tests want "file does not exist yet"
  }
  ~TempCacheFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SweepSpec quick_spec() {
  SweepSpec spec;
  spec.flow_counts = {15};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.5};
  spec.control.warmup = sec(1);
  spec.control.measure = sec(2);
  return spec;
}

CachedPoint sample_point() {
  CachedPoint p;
  p.c_psi = 0.123456789012345678;
  p.analytic_degradation = 0.25;
  p.analytic_gain = 0.5;
  p.shrew = true;
  p.baseline_goodput = 14095466.666666666;
  p.goodput = 7047733.3333333331;
  p.measured_degradation = 0.5;
  p.measured_gain = 0.25;
  p.utilization = 0.47;
  p.fairness = 0.93;
  p.timeouts = 321;
  p.fast_recoveries = 12;
  p.attack_packets = 98765;
  p.events = 1234567890123ull;
  return p;
}

TEST(PointCacheTest, MissThenHit) {
  TempCacheFile file;
  PointCache cache(file.path());
  CachedPoint out;
  EXPECT_FALSE(cache.lookup_point(42, out));
  cache.store_point(42, sample_point());
  ASSERT_TRUE(cache.lookup_point(42, out));
  EXPECT_EQ(out.timeouts, 321u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PointCacheTest, PersistsExactDoublesAcrossReload) {
  TempCacheFile file;
  const CachedPoint stored = sample_point();
  {
    PointCache cache(file.path());
    cache.store_point(7, stored);
    cache.store_baseline(9, 14095466.666666666);
  }
  PointCache reloaded(file.path());
  EXPECT_EQ(reloaded.size(), 2u);
  CachedPoint out;
  ASSERT_TRUE(reloaded.lookup_point(7, out));
  // Bit-exact round-trip: cached results must reproduce the CSV a live
  // run would write, byte for byte.
  EXPECT_EQ(out.c_psi, stored.c_psi);
  EXPECT_EQ(out.baseline_goodput, stored.baseline_goodput);
  EXPECT_EQ(out.goodput, stored.goodput);
  EXPECT_EQ(out.fairness, stored.fairness);
  EXPECT_EQ(out.shrew, stored.shrew);
  EXPECT_EQ(out.events, stored.events);
  double goodput = 0.0;
  ASSERT_TRUE(reloaded.lookup_baseline(9, goodput));
  EXPECT_EQ(goodput, 14095466.666666666);
}

TEST(PointCacheTest, SkipsMalformedLines) {
  TempCacheFile file;
  {
    PointCache cache(file.path());
    cache.store_point(1, sample_point());
    cache.store_baseline(2, 5.0);
  }
  // Simulate a torn tail write plus random garbage in the middle.
  {
    std::ofstream out(file.path(), std::ios::app);
    out << "X nonsense record\n";
    out << "P 00000000000000ff 1.0 2.0\n";  // truncated point line
    out << "B zzzz not-a-number\n";
    out << "P 00000000000000";  // no newline, torn mid-key
  }
  PointCache reloaded(file.path());
  EXPECT_EQ(reloaded.size(), 2u) << "only the two intact records survive";
  CachedPoint out;
  EXPECT_TRUE(reloaded.lookup_point(1, out));
  CachedPoint bogus;
  EXPECT_FALSE(reloaded.lookup_point(0xff, bogus));
}

TEST(PointCacheTest, ForeignHeaderLoadsEmptyAndIsRewritten) {
  TempCacheFile file;
  {
    std::ofstream out(file.path());
    out << "some-other-format-v9\n";
    out << "P 0000000000000001 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n";
  }
  PointCache cache(file.path());
  EXPECT_EQ(cache.size(), 0u) << "foreign file must be ignored";
  cache.store_baseline(3, 7.0);

  PointCache reloaded(file.path());
  EXPECT_EQ(reloaded.size(), 1u);
  double goodput = 0.0;
  EXPECT_TRUE(reloaded.lookup_baseline(3, goodput));
  EXPECT_EQ(goodput, 7.0);
}

TEST(PointCacheTest, MissingDirectoryIsCreated) {
  TempCacheFile file;
  const std::string nested = file.path() + ".d/sub/points.cache";
  {
    PointCache cache(nested);
    cache.store_baseline(1, 2.0);
  }
  PointCache reloaded(nested);
  double goodput = 0.0;
  EXPECT_TRUE(reloaded.lookup_baseline(1, goodput));
  std::remove(nested.c_str());
  std::remove((file.path() + ".d/sub").c_str());
  std::remove((file.path() + ".d").c_str());
}

TEST(PointCacheKeyTest, DistinctPointsGetDistinctKeys) {
  const SweepSpec spec = quick_spec();
  PointSpec a;
  a.flows = 15;
  a.gamma = 0.5;
  PointSpec b = a;
  b.gamma = 0.6;
  EXPECT_NE(point_key(spec, a, 1), point_key(spec, b, 1));
  EXPECT_NE(point_key(spec, a, 1), point_key(spec, a, 2))
      << "seed must be part of the key";
}

TEST(PointCacheKeyTest, ScenarioChangesInvalidateTheKey) {
  const SweepSpec spec = quick_spec();
  PointSpec point;
  const std::uint64_t base = point_key(spec, point, 1);

  SweepSpec queue_changed = spec;
  queue_changed.queue = QueueKind::kDropTail;
  EXPECT_NE(point_key(queue_changed, point, 1), base);

  SweepSpec window_changed = spec;
  window_changed.control.measure = sec(3);
  EXPECT_NE(point_key(window_changed, point, 1), base);

  SweepSpec scenario_changed = spec;
  scenario_changed.scenario = ScenarioKind::kTestbed;
  EXPECT_NE(point_key(scenario_changed, point, 1), base);
}

TEST(PointCacheKeyTest, BaselineKeyIgnoresAttackAxes) {
  const SweepSpec spec = quick_spec();
  PointSpec a;
  a.textent = ms(50);
  a.rattack = mbps(25);
  a.gamma = 0.4;
  PointSpec b = a;
  b.textent = ms(100);
  b.rattack = mbps(40);
  b.gamma = 0.8;
  EXPECT_EQ(baseline_key(spec, a, 1), baseline_key(spec, b, 1))
      << "one baseline normalizes every attack point of its pair";
  b.flows = 25;
  EXPECT_NE(baseline_key(spec, a, 1), baseline_key(spec, b, 1));
}

TEST(PointCacheKeyTest, BackendIsPartOfTheKey) {
  // A --resume replay must never answer a fluid (or hybrid/fast) point
  // from a cache populated by a full-packet campaign, or vice versa: the
  // tiers measure different things at identical parameters.
  const SweepSpec spec = quick_spec();
  PointSpec point;
  const std::uint64_t base_point = point_key(spec, point, 1);
  const std::uint64_t base_baseline = baseline_key(spec, point, 1);

  for (Backend backend :
       {Backend::kFast, Backend::kFluid, Backend::kHybrid}) {
    SweepSpec tier = spec;
    tier.backend = backend;
    EXPECT_NE(point_key(tier, point, 1), base_point)
        << backend_name(backend);
    EXPECT_NE(baseline_key(tier, point, 1), base_baseline)
        << backend_name(backend);
  }

  // The tier tuning knobs are covered too.
  SweepSpec hybrid = spec;
  hybrid.backend = Backend::kHybrid;
  SweepSpec hybrid_wider = hybrid;
  hybrid_wider.hybrid_foreground = hybrid.hybrid_foreground + 2;
  EXPECT_NE(point_key(hybrid, point, 1), point_key(hybrid_wider, point, 1));

  // And the four backends are pairwise distinct.
  SweepSpec fluid = spec;
  fluid.backend = Backend::kFluid;
  EXPECT_NE(point_key(hybrid, point, 1), point_key(fluid, point, 1));
}

TEST(PointCacheKeyTest, ShardCountDoesNotChangeTheKey) {
  // The inverse of BackendIsPartOfTheKey: the conservative PDES partition
  // is bit-result-invariant (DESIGN.md §13, pinned by tests/pdes), so the
  // shard count must NOT fork the cache — a campaign swept at shards = 1
  // must replay all-hit when resumed at shards = 4, and vice versa. The
  // executor behind the shards never enters the key either (it is not even
  // a spec field). hash_common in point_cache.cpp documents the deliberate
  // exclusion; this test keeps it from regressing silently.
  const SweepSpec spec = quick_spec();
  PointSpec point;
  const std::uint64_t base_point = point_key(spec, point, 1);
  const std::uint64_t base_baseline = baseline_key(spec, point, 1);

  for (int shards : {2, 4, 8}) {
    SweepSpec sharded = spec;
    sharded.shards = shards;
    EXPECT_EQ(point_key(sharded, point, 1), base_point)
        << "shards=" << shards;
    EXPECT_EQ(baseline_key(sharded, point, 1), base_baseline)
        << "shards=" << shards;
  }
}

TEST(PointCacheKeyTest, BatchReplicatesDoesNotChangeTheKey) {
  // Like the shard count, batched replicate execution (DESIGN.md §14) is an
  // execution-strategy knob: every replicate keeps its own scheduler and
  // seed streams, so batched and sequential sweeps compute byte-identical
  // records and must share one cache.
  const SweepSpec spec = quick_spec();
  PointSpec point;
  SweepSpec batched = spec;
  batched.batch_replicates = true;
  SweepSpec sequential = spec;
  sequential.batch_replicates = false;
  EXPECT_EQ(point_key(batched, point, 1), point_key(sequential, point, 1));
  EXPECT_EQ(baseline_key(batched, point, 1),
            baseline_key(sequential, point, 1));
}

TEST(PointCacheResumeTest, BatchedAndSequentialSweepsShareOneCache) {
  // The end-to-end form of the key-invariance guarantee: a sweep run in
  // either execution mode must resume ALL-HIT from a cache written by the
  // other. A miss here means some input that differs between the modes
  // leaked into hash_common, or the modes stored different bytes.
  SweepSpec spec;
  spec.flow_counts = {3};
  spec.textents = {ms(50)};
  spec.rattacks = {mbps(25)};
  spec.gammas = {0.5};
  spec.replicates = 2;
  spec.control.warmup = sec(0.5);
  spec.control.measure = sec(1.0);

  SweepSpec batched = spec;
  batched.batch_replicates = true;
  SweepSpec sequential = spec;
  sequential.batch_replicates = false;

  const std::size_t tasks =
      spec.enumerate().size() + /* baselines: replicates of one flows */ 2;

  {
    // Batched writes, sequential resumes all-hit.
    TempCacheFile file;
    SweepOptions options;
    options.threads = 1;
    options.cache_path = file.path();
    const SweepResult first = run_sweep(batched, options);
    ASSERT_EQ(first.failures(), 0u);
    EXPECT_EQ(first.cache_hits, 0u);
    const SweepResult resumed = run_sweep(sequential, options);
    EXPECT_EQ(resumed.cache_hits, tasks);
    ASSERT_EQ(resumed.points.size(), first.points.size());
    for (std::size_t i = 0; i < first.points.size(); ++i) {
      EXPECT_EQ(resumed.points[i].goodput, first.points[i].goodput);
      EXPECT_EQ(resumed.points[i].events, first.points[i].events);
    }
  }
  {
    // Sequential writes, batched resumes all-hit.
    TempCacheFile file;
    SweepOptions options;
    options.threads = 1;
    options.cache_path = file.path();
    const SweepResult first = run_sweep(sequential, options);
    ASSERT_EQ(first.failures(), 0u);
    const SweepResult resumed = run_sweep(batched, options);
    EXPECT_EQ(resumed.cache_hits, tasks);
    ASSERT_EQ(resumed.points.size(), first.points.size());
    for (std::size_t i = 0; i < first.points.size(); ++i) {
      EXPECT_EQ(resumed.points[i].goodput, first.points[i].goodput);
      EXPECT_EQ(resumed.points[i].events, first.points[i].events);
    }
  }
}

TEST(PointCacheKeyTest, KeysAreStableAcrossCalls) {
  const SweepSpec spec = quick_spec();
  PointSpec point;
  EXPECT_EQ(point_key(spec, point, 1), point_key(spec, point, 1));
  EXPECT_EQ(baseline_key(spec, point, 1), baseline_key(spec, point, 1));
}

}  // namespace
}  // namespace pdos::sweep
