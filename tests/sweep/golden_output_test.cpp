// Golden-output determinism pin for the packet data path.
//
// Runs the fig. 6 quick-mode sweep (the same fixed spec tools/bench_report
// times) single-threaded and checksums the CSV it would write. The digest
// below was generated from the pre-overhaul data path (std::deque buffers,
// std::function taps, per-packet BinnedSeries::add), so any change to
// packet handling that alters simulation results for identical seeds —
// dropped packets, reordered arithmetic, different RNG consumption — fails
// here instead of silently shifting every figure. "Byte-identical for
// identical seeds" is pinned by CI, not just claimed in CHANGES.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "sweep/sweep.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// FNV-1a/64 of the fig. 6 quick-mode sweep CSV (84 points + header),
// generated at commit 9c72705 (pre data-path overhaul). Regenerate ONLY for
// a change that intentionally alters simulation semantics, and say so in
// the commit message.
constexpr std::uint64_t kFig06QuickCsvDigest = 0x10a056e89b4efd24ull;

TEST(GoldenOutputTest, Fig06QuickModeCsvMatchesCommittedDigest) {
  sweep::SweepSpec spec;
  spec.flow_counts = {15, 25, 35, 45};
  spec.textents = {ms(50), ms(75), ms(100)};
  spec.rattacks = {mbps(25)};
  spec.gamma_points = 7;
  spec.control.warmup = sec(5);
  spec.control.measure = sec(15);

  sweep::SweepOptions options;
  options.threads = 1;
  const sweep::SweepResult result = sweep::run_sweep(spec, options);
  ASSERT_EQ(result.failures(), 0u);
  ASSERT_FALSE(result.cancelled);

  std::ostringstream csv;
  result.write_csv(csv);
  const std::uint64_t digest = fnv1a64(csv.str());
  EXPECT_EQ(digest, kFig06QuickCsvDigest)
      << "fig06 quick-mode CSV changed: actual digest 0x" << std::hex
      << digest << " — the data path no longer reproduces the pinned "
      << "outputs for identical seeds";
}

}  // namespace
}  // namespace pdos
