// FluidGainPointStoreCache: a γ search resumed against a warmed store
// must skip every already-solved fluid lane (fluid_runs == 0) and return
// bit-identical results — the optimizer-side face of the lane-batched
// fluid tier's determinism contract (DESIGN.md §16). Plus key-derivation
// sensitivity for the fluid-gain/fluid-baseline digests.
#include "sweep/optimizer_cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/optimizer.hpp"
#include "sweep/point_cache.hpp"

namespace pdos::sweep {
namespace {

class TempCacheFile {
 public:
  TempCacheFile() {
    char name[] = "/tmp/pdos_optimizer_cache_test_XXXXXX";
    const int fd = mkstemp(name);
    EXPECT_GE(fd, 0);
    if (fd >= 0) close(fd);
    path_ = name;
    std::remove(path_.c_str());
  }
  ~TempCacheFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GammaSearch quick_search() {
  GammaSearch search;
  search.scenario = ScenarioConfig::ns2_dumbbell(15);
  search.textent = ms(50);
  search.rattack = mbps(25);
  search.kappa = 1.0;
  search.control.warmup = sec(2);
  search.control.measure = sec(6);
  search.grid_points = 5;
  search.confirm_top = 1;
  return search;
}

void expect_same_search_result(const GammaSearchResult& a,
                               const GammaSearchResult& b) {
  EXPECT_EQ(a.gamma_star, b.gamma_star);
  EXPECT_EQ(a.gain, b.gain);
  EXPECT_EQ(a.degradation, b.degradation);
  EXPECT_EQ(a.gamma_star_fluid, b.gamma_star_fluid);
  EXPECT_EQ(a.baseline_goodput, b.baseline_goodput);
  EXPECT_EQ(a.fluid_baseline_goodput, b.fluid_baseline_goodput);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].gamma, b.candidates[i].gamma);
    EXPECT_EQ(a.candidates[i].fluid_gain, b.candidates[i].fluid_gain);
    EXPECT_EQ(a.candidates[i].confirmed, b.candidates[i].confirmed);
  }
}

TEST(OptimizerCacheTest, ResumedSearchSkipsSolvedFluidLanes) {
  TempCacheFile file;
  GammaSearch search = quick_search();

  GammaSearchResult cold;
  {
    PointCache cache(file.path());
    FluidGainPointStoreCache fluid_cache(cache);
    search.fluid_cache = &fluid_cache;
    cold = search_confirm_gamma(search);
  }
  // Cold: every grid point plus the fluid baseline was actually solved.
  EXPECT_EQ(cold.fluid_runs, search.grid_points + 1);
  EXPECT_EQ(cold.packet_runs, search.confirm_top + 1);

  // Resume from the PERSISTED file in a fresh store instance, as a
  // restarted process would.
  PointCache cache(file.path());
  EXPECT_GT(cache.size(), 0u);
  FluidGainPointStoreCache fluid_cache(cache);
  search.fluid_cache = &fluid_cache;
  const GammaSearchResult warm = search_confirm_gamma(search);

  EXPECT_EQ(warm.fluid_runs, 0);  // every lane replayed from the store
  EXPECT_EQ(warm.packet_runs, search.confirm_top + 1);
  expect_same_search_result(cold, warm);
}

TEST(OptimizerCacheTest, PartiallyWarmedStoreSolvesOnlyTheMisses) {
  TempCacheFile file;
  PointCache cache(file.path());
  FluidGainPointStoreCache fluid_cache(cache);

  // Warm 2 of the 5 grid lanes plus the baseline by hand, with sentinel
  // gains that can't arise from a real solve — proving hits come from the
  // store, not a re-solve.
  GammaSearch search = quick_search();
  // Recover the search's auto γ grid by running once WITHOUT a cache, then
  // seed selected lanes (keys hash the exact candidate γ doubles).
  const GammaSearchResult reference = search_confirm_gamma(search);
  fluid_cache.store_baseline(search, reference.fluid_baseline_goodput);
  fluid_cache.store_gain(search, reference.candidates[1].gamma, 123.5);
  fluid_cache.store_gain(search, reference.candidates[3].gamma, -7.25);

  search.fluid_cache = &fluid_cache;
  const GammaSearchResult result = search_confirm_gamma(search);
  // 5 grid points, 2 warmed, baseline warmed: 3 solves.
  EXPECT_EQ(result.fluid_runs, search.grid_points - 2);
  EXPECT_EQ(result.candidates[1].fluid_gain, 123.5);
  EXPECT_EQ(result.candidates[3].fluid_gain, -7.25);
  // The cold lanes match the no-cache reference bit-for-bit (they ran in a
  // different batch shape — 3 lanes instead of 5 — which must not matter).
  EXPECT_EQ(result.candidates[0].fluid_gain,
            reference.candidates[0].fluid_gain);
  EXPECT_EQ(result.candidates[2].fluid_gain,
            reference.candidates[2].fluid_gain);
  EXPECT_EQ(result.candidates[4].fluid_gain,
            reference.candidates[4].fluid_gain);
}

TEST(OptimizerCacheTest, GainKeySensitivity) {
  const GammaSearch base = quick_search();
  const std::uint64_t key = fluid_gain_key(base, 0.5);

  EXPECT_NE(key, fluid_gain_key(base, 0.5000001)) << "gamma must key";
  {
    GammaSearch s = base;
    s.textent = ms(60);
    EXPECT_NE(key, fluid_gain_key(s, 0.5)) << "textent must key";
  }
  {
    GammaSearch s = base;
    s.rattack = mbps(30);
    EXPECT_NE(key, fluid_gain_key(s, 0.5)) << "rattack must key";
  }
  {
    GammaSearch s = base;
    s.kappa = 2.0;
    EXPECT_NE(key, fluid_gain_key(s, 0.5)) << "kappa must key";
  }
  {
    GammaSearch s = base;
    s.control.measure = sec(7);
    EXPECT_NE(key, fluid_gain_key(s, 0.5)) << "control must key";
  }
  {
    GammaSearch s = base;
    s.scenario = ScenarioConfig::ns2_dumbbell(16);
    EXPECT_NE(key, fluid_gain_key(s, 0.5)) << "scenario must key";
  }
  {
    GammaSearch s = base;
    s.scenario.fluid_dt_pulse = ms(5);
    EXPECT_NE(key, fluid_gain_key(s, 0.5)) << "fluid step must key";
  }
  // The confirm tier is NOT part of the fluid value: kFull and kFast
  // searches share their surrogate scores.
  {
    GammaSearch s = base;
    s.scenario.backend = Backend::kFast;
    EXPECT_EQ(key, fluid_gain_key(s, 0.5));
  }
  // Grid shape doesn't key either — a 5-point and a 9-point search reuse
  // each other's lanes wherever the γ values coincide.
  {
    GammaSearch s = base;
    s.grid_points = 9;
    s.confirm_top = 2;
    EXPECT_EQ(key, fluid_gain_key(s, 0.5));
  }
  // Gain and baseline namespaces never collide.
  EXPECT_NE(key, fluid_baseline_key(base));
}

TEST(OptimizerCacheTest, BaselineKeyIgnoresPulseShape) {
  const GammaSearch base = quick_search();
  GammaSearch other = base;
  other.textent = ms(100);
  other.rattack = mbps(40);
  other.kappa = 0.5;
  // One fluid baseline normalizes every pulse shape on this scenario.
  EXPECT_EQ(fluid_baseline_key(base), fluid_baseline_key(other));
  GammaSearch scen = base;
  scen.scenario = ScenarioConfig::ns2_dumbbell(20);
  EXPECT_NE(fluid_baseline_key(base), fluid_baseline_key(scen));
}

}  // namespace
}  // namespace pdos::sweep
