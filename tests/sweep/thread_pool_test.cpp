#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace {

std::atomic<std::size_t> g_new_calls{0};

}  // namespace

// Counting global allocator hooks (atomic: the pool is multi-threaded).
void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdos::sweep {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleThreadStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), ThreadPool::default_threads());
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  constexpr int kTasks = 20000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, NestedSubmitsAreWaitedFor) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &leaves] {
      for (int j = 0; j < 8; ++j) {
        pool.submit([&leaves] { leaves.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), 16 * 8);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WorkIsActuallyDistributed) {
  // With long-enough tasks and as many as 4x threads, at least two distinct
  // worker threads must participate (one worker would be twice as slow).
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&mutex, &seen] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(InlineFn{}), ParameterError);
}

TEST(ThreadPool, WarmSubmissionCycleIsAllocationFree) {
  // Tasks are InlineFns living in per-worker rings: once the rings have
  // grown to their high-water mark, an identical submit/drain cycle must
  // not touch the heap — no per-task std::function allocation, no ring
  // rebuild. A gate task parks every worker during submission so both
  // phases queue to exactly the same depth.
  ThreadPool pool(2);
  constexpr int kTasks = 256;
  std::atomic<int> count{0};
  std::atomic<bool> gate{false};

  const auto run_phase = [&] {
    gate.store(false);
    for (int w = 0; w < pool.size(); ++w) {
      pool.submit([&gate] {
        while (!gate.load()) std::this_thread::yield();
      });
    }
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    gate.store(true);
    pool.wait_idle();
  };

  run_phase();  // warm: grows each worker's ring to kTasks / size()
  const std::size_t before = g_new_calls.load();
  run_phase();
  const std::size_t after = g_new_calls.load();

  EXPECT_EQ(count.load(), 2 * kTasks);
  EXPECT_EQ(after - before, 0u)
      << "a warmed-up pool must run tasks without allocating";
}

TEST(ThreadPool, ParallelForClosureFitsInlineStorage) {
  // parallel_for's per-iteration closure is the largest task the sweep
  // engine submits; it must stay within the ring slot's inline budget.
  std::function<void(std::size_t)> fn;
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t i = 0;
  auto task = [i, &fn, &error_mutex, &first_error] {
    (void)i;
    (void)fn;
    (void)error_mutex;
    (void)first_error;
  };
  static_assert(sizeof(task) <= kInlineFnCapacity,
                "parallel_for closure exceeds InlineFn capacity");
}

TEST(ParallelFor, CoversTheFullRange) {
  ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i << " never ran";
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [&ran](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 64);  // remaining iterations still execute
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace pdos::sweep
