#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace pdos::sweep {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleThreadStillDrains) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), ThreadPool::default_threads());
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  constexpr int kTasks = 20000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, NestedSubmitsAreWaitedFor) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &leaves] {
      for (int j = 0; j < 8; ++j) {
        pool.submit([&leaves] { leaves.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), 16 * 8);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WorkIsActuallyDistributed) {
  // With long-enough tasks and as many as 4x threads, at least two distinct
  // worker threads must participate (one worker would be twice as slow).
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&mutex, &seen] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ParameterError);
}

TEST(ParallelFor, CoversTheFullRange) {
  ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i << " never ran";
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [&ran](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 64);  // remaining iterations still execute
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace pdos::sweep
